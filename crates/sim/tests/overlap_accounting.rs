//! Audit regression tests: `Resource`/`MultiResource` utilization
//! accounting under *overlapping jobs*.
//!
//! Historically every emulation ran one job, so each resource only ever
//! saw one job's stage windows. The multi-tenant scheduler interleaves
//! acquire calls from concurrent jobs on the same `Resource`. The audit
//! conclusion these tests pin down: the accounting is already correct
//! under interleaving — an FCFS single server serializes every grant,
//! the ledger records exactly the granted busy windows (which are
//! disjoint by construction), and total busy time equals the sum of
//! service demands regardless of which job issued which request.

use lmas_sim::{MultiResource, Resource, SimDuration, SimTime, UtilizationLedger};

#[test]
fn interleaved_jobs_serialize_and_account_exactly() {
    let mut cpu = Resource::new("cpu", SimDuration::from_micros(10));
    // Two jobs interleave requests at the same instants; service times
    // differ so misattribution would show up in total_busy.
    let a1 = cpu.acquire(SimTime(0), SimDuration::from_nanos(300)); // job A
    let b1 = cpu.acquire(SimTime(0), SimDuration::from_nanos(500)); // job B
    let a2 = cpu.acquire(SimTime(100), SimDuration::from_nanos(200)); // job A
    // FCFS: grants are back-to-back, no overlap, no gap while queued.
    assert_eq!(a1.start, SimTime(0));
    assert_eq!(a1.end, SimTime(300));
    assert_eq!(b1.start, SimTime(300));
    assert_eq!(b1.end, SimTime(800));
    assert_eq!(a2.start, SimTime(800));
    assert_eq!(a2.end, SimTime(1000));
    // Queue delay is waiting only, never service.
    assert_eq!(b1.queue_delay(SimTime(0)), SimDuration::from_nanos(300));
    assert_eq!(a2.queue_delay(SimTime(100)), SimDuration::from_nanos(700));
    // Busy time is the exact sum of service demands across both jobs.
    assert_eq!(cpu.total_busy(), SimDuration::from_nanos(1000));
    assert_eq!(cpu.grants(), 3);
    // The utilization series integrates to the same total: no window is
    // double-counted when jobs interleave.
    let series = cpu.utilization_series(SimTime(1000));
    let integrated: f64 = series.iter().sum::<f64>() * 10_000.0; // bins of 10µs
    assert!(
        (integrated - 1000.0).abs() < 1e-6,
        "series integral {integrated} != busy 1000"
    );
}

#[test]
fn ledger_windows_from_two_jobs_never_double_count() {
    // Jobs ping-pong disjoint busy windows into one ledger (exactly the
    // pattern FCFS grants produce); the per-bin series must integrate
    // to the exact sum and never exceed 1.0 per bin.
    let bin = SimDuration::from_nanos(100);
    let mut ledger = UtilizationLedger::new(bin);
    let mut t = 0u64;
    let mut total = 0u64;
    for i in 0..50u64 {
        let len = 30 + (i % 7) * 13; // varied, bin-straddling windows
        ledger.add_busy(SimTime(t), SimTime(t + len));
        total += len;
        t += len; // back-to-back: the FCFS invariant
    }
    assert_eq!(ledger.total_busy(), SimDuration::from_nanos(total));
    let series = ledger.series(SimTime(t));
    for (i, u) in series.iter().enumerate() {
        assert!(
            (0.0..=1.0 + 1e-9).contains(u),
            "bin {i} utilization {u} out of range"
        );
    }
    let integrated: f64 = series.iter().sum::<f64>() * 100.0;
    assert!(
        (integrated - total as f64).abs() < 1e-6,
        "integral {integrated} != total busy {total}"
    );
}

#[test]
fn multi_resource_aggregate_accounts_all_servers() {
    // k=2 disks serving three jobs' interleaved requests: aggregate
    // busy is the sum of all service, and the two servers genuinely
    // overlap (makespan < serialized sum).
    let mut disks = MultiResource::new("disks", 2, SimDuration::from_micros(1));
    let mut end = SimTime::ZERO;
    let services = [400u64, 300, 500, 200, 350, 250];
    for &s in &services {
        let g = disks.acquire(SimTime(0), SimDuration::from_nanos(s));
        end = end.max(g.end);
    }
    let total: u64 = services.iter().sum();
    assert_eq!(disks.total_busy(), SimDuration::from_nanos(total));
    assert_eq!(disks.grants(), services.len() as u64);
    assert!(
        end.0 < total,
        "two servers must overlap: finished at {} vs serialized {total}",
        end.0
    );
    // Aggregate series may exceed 1.0 (it sums k servers) but never k.
    let series = disks.utilization_series(end);
    for u in &series {
        assert!(*u <= 2.0 + 1e-9, "aggregate utilization {u} exceeds k=2");
    }
}
