//! Property tests for the simulation kernel's ordering and accounting
//! invariants.

use lmas_sim::{DetRng, EventQueue, Resource, SimDuration, SimTime, UtilizationLedger};
use proptest::prelude::*;

proptest! {
    /// The calendar is a total order: pops are sorted by time, and ties
    /// preserve scheduling order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation_exact(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times.iter().enumerate().map(|(i, &t)| (i, q.schedule(SimTime(t), i))).collect();
        let mut kept = Vec::new();
        for ((i, tok), &cancel) in tokens.into_iter().zip(cancel_mask.iter().chain(std::iter::repeat(&false))) {
            if cancel {
                q.cancel(tok);
            } else {
                kept.push(i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// FCFS resource: grants never overlap, never start before request,
    /// and total busy time equals the sum of service times.
    #[test]
    fn resource_grants_are_serial_and_conserve_time(
        reqs in prop::collection::vec((0u64..10_000, 0u64..500), 1..100),
    ) {
        let mut r = Resource::new("cpu", SimDuration(1_000));
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t);
        let mut prev_end = SimTime::ZERO;
        let mut service_sum = 0u64;
        for &(t, s) in &reqs {
            let g = r.acquire(SimTime(t), SimDuration(s));
            prop_assert!(g.start >= SimTime(t), "no service before request");
            prop_assert!(g.start >= prev_end, "no overlap");
            prop_assert_eq!(g.end.since(g.start), SimDuration(s));
            prev_end = g.end;
            service_sum += s;
        }
        prop_assert_eq!(r.total_busy(), SimDuration(service_sum));
        prop_assert_eq!(r.grants(), reqs.len() as u64);
    }

    /// The utilization ledger conserves busy time across bins.
    #[test]
    fn ledger_conserves_busy_time(
        intervals in prop::collection::vec((0u64..10_000, 0u64..500), 0..50),
        bin in 1u64..1_000,
    ) {
        let mut l = UtilizationLedger::new(SimDuration(bin));
        let mut total = 0u64;
        let mut horizon = 0u64;
        for &(start, len) in &intervals {
            l.add_busy(SimTime(start), SimTime(start + len));
            total += len;
            horizon = horizon.max(start + len);
        }
        prop_assert_eq!(l.total_busy(), SimDuration(total));
        let series = l.series(SimTime(horizon));
        let series_sum: f64 = series.iter().sum::<f64>() * bin as f64;
        prop_assert!((series_sum - total as f64).abs() < 1e-6 * (total.max(1) as f64) + 1e-6);
    }

    /// Differential model check: the indexed calendar agrees with a naive
    /// lazy-deletion `BinaryHeap` reference under arbitrary interleavings
    /// of schedule, cancel (idempotent, including cancel-after-fire),
    /// pop, and horizon-bounded pop. Timestamps come from a tiny range so
    /// same-instant ties — and the FIFO fast lane behind them — are
    /// exercised constantly.
    #[test]
    fn event_queue_matches_reference_model(
        ops in prop::collection::vec((0u8..6, 0u64..8, any::<u16>()), 1..400),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut q: lmas_sim::EventQueue<usize> = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        let mut tokens: Vec<lmas_sim::EventToken> = Vec::new();
        let mut alive: Vec<bool> = Vec::new();

        fn model_pop(
            model: &mut BinaryHeap<Reverse<(u64, usize)>>,
            alive: &mut [bool],
            horizon: u64,
        ) -> Option<(u64, usize)> {
            while let Some(&Reverse((t, id))) = model.peek() {
                if !alive[id] {
                    model.pop();
                    continue;
                }
                if t > horizon {
                    return None;
                }
                model.pop();
                alive[id] = false;
                return Some((t, id));
            }
            None
        }

        for &(kind, t, sel) in &ops {
            match kind {
                0..=2 => {
                    // Ids double as payloads; id order == seq order, so the
                    // reference's (time, id) order is the spec's (time, seq).
                    let id = tokens.len();
                    tokens.push(q.schedule(SimTime(t), id));
                    alive.push(true);
                    model.push(Reverse((t, id)));
                }
                3 => {
                    if !tokens.is_empty() {
                        let i = sel as usize % tokens.len();
                        q.cancel(tokens[i]); // may be live, fired, or cancelled
                        alive[i] = false;
                    }
                }
                4 => {
                    let got = q.pop().map(|(at, id)| (at.as_nanos(), id));
                    prop_assert_eq!(got, model_pop(&mut model, &mut alive, u64::MAX));
                }
                _ => {
                    let got = q.pop_not_after(SimTime(t)).map(|(at, id)| (at.as_nanos(), id));
                    prop_assert_eq!(got, model_pop(&mut model, &mut alive, t));
                }
            }
            prop_assert_eq!(q.live_len(), alive.iter().filter(|&&a| a).count());
        }
        // Drain both; the remaining sequences must agree one-for-one.
        loop {
            let got = q.pop().map(|(at, id)| (at.as_nanos(), id));
            let want = model_pop(&mut model, &mut alive, u64::MAX);
            prop_assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        prop_assert!(q.is_empty());
    }

    /// Derived RNG streams are reproducible and stream-independent.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), a in 0u64..1_000, b in 0u64..1_000) {
        let xs: Vec<u64> = { let mut r = DetRng::stream(seed, a); (0..16).map(|_| r.next_u64()).collect() };
        let ys: Vec<u64> = { let mut r = DetRng::stream(seed, a); (0..16).map(|_| r.next_u64()).collect() };
        prop_assert_eq!(&xs, &ys);
        if a != b {
            let zs: Vec<u64> = { let mut r = DetRng::stream(seed, b); (0..16).map(|_| r.next_u64()).collect() };
            prop_assert_ne!(xs, zs);
        }
    }
}
