//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in a simulation run derives from a single
//! master seed, so a run is bit-reproducible given its seed. Components
//! (actors, routing policies, workload generators) each own an independent
//! *stream* derived from `(seed, stream_id)`; adding a component never
//! perturbs the numbers any other component sees.
//!
//! The generator is SplitMix64 — tiny, fast, passes BigCrush for the
//! quantities of randomness we draw, and trivially seedable from a hash.


/// A deterministic 64-bit PRNG stream (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a stream directly from a raw state seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { state: seed }
    }

    /// Derive the `stream_id`-th independent stream of a master seed.
    ///
    /// Uses one SplitMix64 round over a mix of the seed and stream id so
    /// that nearby ids yield unrelated streams.
    pub fn stream(master_seed: u64, stream_id: u64) -> DetRng {
        let mut r = DetRng::new(
            master_seed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Burn one output so that stream 0 with seed 0 is not the
        // all-zeros fixed point.
        let _ = r.next_u64();
        r
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed float with the given rate parameter
    /// (mean `1/rate`). Panics on non-positive rate.
    #[inline]
    pub fn gen_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - self.gen_f64()).ln() / rate
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = DetRng::stream(7, 0);
        let mut b = DetRng::stream(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut r = DetRng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_f64_unit_interval_mean() {
        let mut r = DetRng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_exp_mean_matches_rate() {
        let mut r = DetRng::new(9);
        let n = 100_000;
        let rate = 2.0;
        let mean: f64 = (0..n).map(|_| r.gen_exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} should be ~1/rate");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        // And with overwhelming probability not the identity.
        assert_ne!(xs, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_bound_panics() {
        DetRng::new(0).gen_range(0);
    }
}
