//! # lmas-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the LMAS emulator (see the workspace `DESIGN.md`).
//! This crate knows nothing about storage or functors; it provides:
//!
//! - [`time`]: virtual nanoseconds ([`SimTime`], [`SimDuration`]);
//! - [`arrival`]: deterministic job-arrival schedules ([`ArrivalSpec`])
//!   for multi-tenant scheduling harnesses;
//! - [`event`]: a cancellable, totally ordered event calendar;
//! - [`engine`]: an actor loop ([`Simulation`], [`Actor`], [`Ctx`]);
//! - [`fault`]: deterministic fault schedules ([`FaultPlan`]), retry
//!   backoff ([`BackoffPolicy`]) and rearmable timeouts ([`Timer`]);
//! - [`resource`]: FCFS servers with utilization accounting — the CPUs,
//!   disks and links of an emulated cluster;
//! - [`intern`]: interned resource/metric names (allocation-free stamping);
//! - [`par`]: a conservative partitioned parallel coordinator — the same
//!   virtual time, byte for byte, across worker threads;
//! - [`rng`]: seed-derived deterministic random streams;
//! - [`stats`]: counters, time-weighted values, utilization ledgers;
//! - [`trace`]: an optional bounded event trace.
//!
//! Everything is deterministic: given the same seed and the same inputs, a
//! simulation produces bit-identical event orders, timings, and reports.
//!
//! ## Example
//!
//! ```
//! use lmas_sim::{Simulation, Ctx, SimTime, SimDuration, RunOutcome};
//!
//! // Two actors bouncing a token with a 1ms one-way delay.
//! let mut sim: Simulation<u32> = Simulation::new(42);
//! let a = sim.reserve_actor();
//! let b = sim.reserve_actor();
//! sim.install(a, Box::new(move |ctx: &mut Ctx<'_, u32>, n: u32| {
//!     if n > 0 { ctx.send(b, SimDuration::from_millis(1), n - 1); }
//! }));
//! sim.install(b, Box::new(move |ctx: &mut Ctx<'_, u32>, n: u32| {
//!     if n > 0 { ctx.send(a, SimDuration::from_millis(1), n - 1); }
//! }));
//! sim.seed_message(a, SimTime::ZERO, 10);
//! assert_eq!(sim.run(), RunOutcome::Drained);
//! assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(10));
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod engine;
pub mod event;
pub mod fault;
pub mod intern;
pub mod par;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use arrival::{ArrivalEvent, ArrivalSpec};
pub use engine::{Actor, ActorId, Ctx, RunOutcome, Simulation};
pub use event::{EventKey, EventQueue, EventToken, KeyedQueue};
pub use fault::{BackoffPolicy, FaultEvent, FaultPlan, Timer, TraceError};
pub use intern::{intern, Name};
pub use par::{run_partitioned, LogHist, ParOps, ParOutcome, PartitionWorker};
pub use resource::{Grant, MultiResource, Resource};
pub use rng::DetRng;
pub use stats::{Counter, DurationHistogram, TimeWeighted, UtilizationLedger};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
