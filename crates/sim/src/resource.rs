//! FCFS service resources: the CPUs, disks, and network links of the
//! emulated cluster.
//!
//! A [`Resource`] is a non-preemptive first-come-first-served server.
//! `acquire(now, service)` books the next available slot and returns the
//! `(start, end)` of service; the caller schedules its own completion event
//! at `end`. This models the paper's emulator, where each execution segment
//! or I/O occupies its device exclusively and the event queue enforces
//! causal order.
//!
//! Multi-server variants (e.g. a RAID group or multi-core host) are
//! provided by [`MultiResource`].

use crate::stats::UtilizationLedger;
use crate::time::{SimDuration, SimTime};

/// The booked service window returned by an acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (>= request time).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Time spent queueing before service started.
    pub fn queue_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.since(requested_at)
    }
}

/// A single FCFS server with utilization accounting.
#[derive(Debug)]
pub struct Resource {
    name: String,
    free_at: SimTime,
    ledger: UtilizationLedger,
    grants: u64,
}

impl Resource {
    /// A new idle resource. `bin_width` sets the resolution of the
    /// utilization series this resource records.
    pub fn new(name: impl Into<String>, bin_width: SimDuration) -> Self {
        Resource {
            name: name.into(),
            free_at: SimTime::ZERO,
            ledger: UtilizationLedger::new(bin_width),
            grants: 0,
        }
    }

    /// Book `service` time starting no earlier than `now`, behind any work
    /// already booked. Zero-length service is permitted and returns an
    /// empty window at the queue tail without occupying the server.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let start = now.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.ledger.add_busy(start, end);
        self.grants += 1;
        Grant { start, end }
    }

    /// The earliest time a new request would begin service.
    pub fn next_free(&self) -> SimTime {
        self.free_at
    }

    /// Whether the server is idle at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Backlog from `now` until the last booked work finishes.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.saturating_since(now)
    }

    /// Resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total busy time booked.
    pub fn total_busy(&self) -> SimDuration {
        self.ledger.total_busy()
    }

    /// Utilization series over `[0, horizon]` (see [`UtilizationLedger`]).
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<f64> {
        self.ledger.series(horizon)
    }

    /// Mean utilization over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        self.ledger.mean_utilization(horizon)
    }

    /// The ledger's bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.ledger.bin_width()
    }
}

/// `k` identical FCFS servers fed from one queue (join-shortest-backlog,
/// which for identical servers equals FCFS-to-first-free).
#[derive(Debug)]
pub struct MultiResource {
    name: String,
    free_at: Vec<SimTime>,
    ledger: UtilizationLedger,
    grants: u64,
}

impl MultiResource {
    /// `k` idle servers. Panics if `k == 0`.
    pub fn new(name: impl Into<String>, k: usize, bin_width: SimDuration) -> Self {
        assert!(k > 0, "MultiResource needs at least one server");
        MultiResource {
            name: name.into(),
            free_at: vec![SimTime::ZERO; k],
            ledger: UtilizationLedger::new(bin_width),
            grants: 0,
        }
    }

    /// Book `service` on the server that frees first.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("at least one server");
        let start = now.max(self.free_at[idx]);
        let end = start + service;
        self.free_at[idx] = end;
        self.ledger.add_busy(start, end);
        self.grants += 1;
        Grant { start, end }
    }

    /// Earliest time any server frees.
    pub fn next_free(&self) -> SimTime {
        *self.free_at.iter().min().expect("at least one server")
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total busy time across all servers.
    pub fn total_busy(&self) -> SimDuration {
        self.ledger.total_busy()
    }

    /// Aggregate utilization series; values range over `[0, k]`.
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<f64> {
        self.ledger.series(horizon)
    }

    /// Grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIN: SimDuration = SimDuration(1_000);

    #[test]
    fn fcfs_serializes_overlapping_requests() {
        let mut r = Resource::new("cpu", BIN);
        let a = r.acquire(SimTime(0), SimDuration(100));
        let b = r.acquire(SimTime(10), SimDuration(50));
        assert_eq!(a, Grant { start: SimTime(0), end: SimTime(100) });
        assert_eq!(b, Grant { start: SimTime(100), end: SimTime(150) });
        assert_eq!(b.queue_delay(SimTime(10)), SimDuration(90));
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new("disk", BIN);
        r.acquire(SimTime(0), SimDuration(10));
        let g = r.acquire(SimTime(500), SimDuration(10));
        assert_eq!(g.start, SimTime(500));
        assert!(r.is_idle(SimTime(600)));
        assert!(!r.is_idle(SimTime(505)));
    }

    #[test]
    fn backlog_reflects_booked_work() {
        let mut r = Resource::new("cpu", BIN);
        r.acquire(SimTime(0), SimDuration(100));
        assert_eq!(r.backlog(SimTime(30)), SimDuration(70));
        assert_eq!(r.backlog(SimTime(200)), SimDuration::ZERO);
    }

    #[test]
    fn zero_service_does_not_occupy() {
        let mut r = Resource::new("cpu", BIN);
        let g = r.acquire(SimTime(5), SimDuration::ZERO);
        assert_eq!(g.start, g.end);
        assert_eq!(r.total_busy(), SimDuration::ZERO);
        assert!(r.is_idle(SimTime(5)));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut r = Resource::new("cpu", BIN);
        r.acquire(SimTime(0), SimDuration(500));
        let s = r.utilization_series(SimTime(999));
        assert_eq!(s.len(), 1);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((r.mean_utilization(SimTime(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(r.grants(), 1);
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let mut m = MultiResource::new("raid", 2, BIN);
        let a = m.acquire(SimTime(0), SimDuration(100));
        let b = m.acquire(SimTime(0), SimDuration(100));
        let c = m.acquire(SimTime(0), SimDuration(100));
        assert_eq!(a.start, SimTime(0));
        assert_eq!(b.start, SimTime(0));
        assert_eq!(c.start, SimTime(100), "third waits for a server");
        assert_eq!(m.servers(), 2);
        assert_eq!(m.next_free(), SimTime(100));
    }

    #[test]
    fn multi_resource_aggregate_utilization_can_exceed_one() {
        let mut m = MultiResource::new("raid", 2, BIN);
        m.acquire(SimTime(0), SimDuration(1_000));
        m.acquire(SimTime(0), SimDuration(1_000));
        let s = m.utilization_series(SimTime(999));
        assert!((s[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_multi_resource_panics() {
        MultiResource::new("bad", 0, BIN);
    }
}
