//! FCFS service resources: the CPUs, disks, and network links of the
//! emulated cluster.
//!
//! A [`Resource`] is a non-preemptive first-come-first-served server.
//! `acquire(now, service)` books the next available slot and returns the
//! `(start, end)` of service; the caller schedules its own completion event
//! at `end`. This models the paper's emulator, where each execution segment
//! or I/O occupies its device exclusively and the event queue enforces
//! causal order.
//!
//! Multi-server variants (e.g. a RAID group or multi-core host) are
//! provided by [`MultiResource`].

use crate::intern::{intern, Name};
use crate::stats::UtilizationLedger;
use crate::time::{SimDuration, SimTime};

/// The booked service window returned by an acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (>= request time).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Time spent queueing before service started.
    pub fn queue_delay(&self, requested_at: SimTime) -> SimDuration {
        self.start.since(requested_at)
    }
}

/// A single FCFS server with utilization accounting.
#[derive(Debug)]
pub struct Resource {
    name: Name,
    free_at: SimTime,
    ledger: UtilizationLedger,
    grants: u64,
}

impl Resource {
    /// A new idle resource. `bin_width` sets the resolution of the
    /// utilization series this resource records. The name is interned:
    /// resources sharing a name share one allocation.
    pub fn new(name: impl AsRef<str>, bin_width: SimDuration) -> Self {
        Resource {
            name: intern(name.as_ref()),
            free_at: SimTime::ZERO,
            ledger: UtilizationLedger::new(bin_width),
            grants: 0,
        }
    }

    /// Book `service` time starting no earlier than `now`, behind any work
    /// already booked. Zero-length service is permitted and returns an
    /// empty window at the queue tail without occupying the server.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let start = now.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.ledger.add_busy(start, end);
        self.grants += 1;
        Grant { start, end }
    }

    /// Book `count` back-to-back services of `each` starting no earlier
    /// than `now`, in one accounting step. Bit-identical to calling
    /// [`Resource::acquire`] `count` times with `each` (the windows are
    /// contiguous, so the per-bin busy charges sum to the same values and
    /// `free_at` lands at the same instant) but touches the
    /// [`UtilizationLedger`] once. Returns the spanning window; the
    /// `i`-th sub-grant is `[start + each·i, start + each·(i+1))`.
    pub fn acquire_batch(&mut self, now: SimTime, count: u64, each: SimDuration) -> Grant {
        let start = now.max(self.free_at);
        let end = start + each * count;
        self.free_at = end;
        self.ledger.add_busy(start, end);
        self.grants += count;
        Grant { start, end }
    }

    /// The earliest time a new request would begin service.
    pub fn next_free(&self) -> SimTime {
        self.free_at
    }

    /// Whether the server is idle at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Backlog from `now` until the last booked work finishes.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.saturating_since(now)
    }

    /// Resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total busy time booked.
    pub fn total_busy(&self) -> SimDuration {
        self.ledger.total_busy()
    }

    /// Utilization series over `[0, horizon]` (see [`UtilizationLedger`]).
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<f64> {
        self.ledger.series(horizon)
    }

    /// Mean utilization over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        self.ledger.mean_utilization(horizon)
    }

    /// The ledger's bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.ledger.bin_width()
    }
}

/// `k` identical FCFS servers fed from one queue (join-shortest-backlog,
/// which for identical servers equals FCFS-to-first-free).
#[derive(Debug)]
pub struct MultiResource {
    name: Name,
    /// Binary min-heap of `(free_at, server index)`. The root is the
    /// next server to free; the index tie-break reproduces exactly the
    /// `(time, index)` order of the old linear min-scan, so grant
    /// assignment is unchanged while each acquire costs O(log k).
    heap: Vec<(SimTime, u32)>,
    ledger: UtilizationLedger,
    grants: u64,
}

impl MultiResource {
    /// `k` idle servers. Panics if `k == 0`.
    pub fn new(name: impl AsRef<str>, k: usize, bin_width: SimDuration) -> Self {
        assert!(k > 0, "MultiResource needs at least one server");
        MultiResource {
            name: intern(name.as_ref()),
            // Ascending indices at equal times already satisfy the heap
            // invariant.
            heap: (0..k).map(|i| (SimTime::ZERO, i as u32)).collect(),
            ledger: UtilizationLedger::new(bin_width),
            grants: 0,
        }
    }

    /// Book `service` on the server that frees first (ties broken by
    /// lowest server index, as ever).
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let (free_at, idx) = self.heap[0];
        let start = now.max(free_at);
        let end = start + service;
        self.heap[0] = (end, idx);
        self.sift_down_root();
        self.ledger.add_busy(start, end);
        self.grants += 1;
        Grant { start, end }
    }

    /// Restore the heap invariant after the root's key grew.
    fn sift_down_root(&mut self) {
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let min = if r < self.heap.len() && self.heap[r] < self.heap[l] {
                r
            } else {
                l
            };
            if self.heap[min] < self.heap[i] {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }

    /// Earliest time any server frees. O(1).
    pub fn next_free(&self) -> SimTime {
        self.heap[0].0
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.heap.len()
    }

    /// Resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total busy time across all servers.
    pub fn total_busy(&self) -> SimDuration {
        self.ledger.total_busy()
    }

    /// Aggregate utilization series; values range over `[0, k]`.
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<f64> {
        self.ledger.series(horizon)
    }

    /// Grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIN: SimDuration = SimDuration(1_000);

    #[test]
    fn fcfs_serializes_overlapping_requests() {
        let mut r = Resource::new("cpu", BIN);
        let a = r.acquire(SimTime(0), SimDuration(100));
        let b = r.acquire(SimTime(10), SimDuration(50));
        assert_eq!(a, Grant { start: SimTime(0), end: SimTime(100) });
        assert_eq!(b, Grant { start: SimTime(100), end: SimTime(150) });
        assert_eq!(b.queue_delay(SimTime(10)), SimDuration(90));
    }

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new("disk", BIN);
        r.acquire(SimTime(0), SimDuration(10));
        let g = r.acquire(SimTime(500), SimDuration(10));
        assert_eq!(g.start, SimTime(500));
        assert!(r.is_idle(SimTime(600)));
        assert!(!r.is_idle(SimTime(505)));
    }

    #[test]
    fn backlog_reflects_booked_work() {
        let mut r = Resource::new("cpu", BIN);
        r.acquire(SimTime(0), SimDuration(100));
        assert_eq!(r.backlog(SimTime(30)), SimDuration(70));
        assert_eq!(r.backlog(SimTime(200)), SimDuration::ZERO);
    }

    #[test]
    fn zero_service_does_not_occupy() {
        let mut r = Resource::new("cpu", BIN);
        let g = r.acquire(SimTime(5), SimDuration::ZERO);
        assert_eq!(g.start, g.end);
        assert_eq!(r.total_busy(), SimDuration::ZERO);
        assert!(r.is_idle(SimTime(5)));
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut r = Resource::new("cpu", BIN);
        r.acquire(SimTime(0), SimDuration(500));
        let s = r.utilization_series(SimTime(999));
        assert_eq!(s.len(), 1);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((r.mean_utilization(SimTime(1000)) - 0.5).abs() < 1e-12);
        assert_eq!(r.grants(), 1);
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let mut m = MultiResource::new("raid", 2, BIN);
        let a = m.acquire(SimTime(0), SimDuration(100));
        let b = m.acquire(SimTime(0), SimDuration(100));
        let c = m.acquire(SimTime(0), SimDuration(100));
        assert_eq!(a.start, SimTime(0));
        assert_eq!(b.start, SimTime(0));
        assert_eq!(c.start, SimTime(100), "third waits for a server");
        assert_eq!(m.servers(), 2);
        assert_eq!(m.next_free(), SimTime(100));
    }

    #[test]
    fn multi_resource_aggregate_utilization_can_exceed_one() {
        let mut m = MultiResource::new("raid", 2, BIN);
        m.acquire(SimTime(0), SimDuration(1_000));
        m.acquire(SimTime(0), SimDuration(1_000));
        let s = m.utilization_series(SimTime(999));
        assert!((s[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_multi_resource_panics() {
        MultiResource::new("bad", 0, BIN);
    }

    #[test]
    fn acquire_batch_matches_repeated_acquires() {
        let mut batched = Resource::new("cpu", SimDuration(10));
        let mut looped = Resource::new("cpu", SimDuration(10));
        // Pre-book some work so the batch queues behind it.
        batched.acquire(SimTime(0), SimDuration(37));
        looped.acquire(SimTime(0), SimDuration(37));
        let g = batched.acquire_batch(SimTime(2), 5, SimDuration(9));
        let mut first = None;
        let mut last = None;
        for _ in 0..5 {
            let gi = looped.acquire(SimTime(2), SimDuration(9));
            first.get_or_insert(gi.start);
            last = Some(gi.end);
        }
        assert_eq!(g.start, first.unwrap());
        assert_eq!(g.end, last.unwrap());
        assert_eq!(batched.next_free(), looped.next_free());
        assert_eq!(batched.grants(), looped.grants());
        assert_eq!(batched.total_busy(), looped.total_busy());
        assert_eq!(
            batched.utilization_series(SimTime(100)),
            looped.utilization_series(SimTime(100))
        );
    }

    #[test]
    fn acquire_batch_of_zero_service_is_an_empty_window() {
        let mut r = Resource::new("nic", BIN);
        r.acquire(SimTime(0), SimDuration(50));
        let g = r.acquire_batch(SimTime(10), 3, SimDuration::ZERO);
        assert_eq!(g.start, SimTime(50));
        assert_eq!(g.end, SimTime(50));
        assert_eq!(r.grants(), 4);
        assert_eq!(r.total_busy(), SimDuration(50));
    }

    #[test]
    fn multi_resource_heap_matches_linear_scan_reference() {
        // The heap must pick exactly the server the old O(k) min-scan
        // picked: min by (free_at, index).
        let mut m = MultiResource::new("raid", 5, BIN);
        let mut reference = [SimTime::ZERO; 5];
        let mut rng = crate::rng::DetRng::new(99);
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            now += SimDuration(rng.gen_range(40));
            let service = SimDuration(rng.gen_range(100));
            let got = m.acquire(now, service);
            let (idx, _) = reference
                .iter()
                .enumerate()
                .min_by_key(|(i, t)| (**t, *i))
                .unwrap();
            let start = now.max(reference[idx]);
            let end = start + service;
            reference[idx] = end;
            assert_eq!(got, Grant { start, end });
            assert_eq!(m.next_free(), *reference.iter().min().unwrap());
        }
    }
}
