//! The event queue: a totally ordered calendar of future work.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is
//! assigned at scheduling time. Two events at the same instant therefore
//! fire in the order they were scheduled — a total order that makes runs
//! deterministic regardless of hash-map iteration or heap tie-breaking.
//!
//! ## Internals
//!
//! The calendar is an **index-tracked 4-ary min-heap** over recycled
//! payload slots, plus a **same-instant FIFO fast lane**:
//!
//! - Payloads live in a slot arena with a free list, so steady-state
//!   scheduling allocates nothing: a fired or cancelled event's slot is
//!   reused by the next `schedule`. Each slot carries a generation
//!   counter; an [`EventToken`] packs `(slot, generation)`, which makes
//!   stale tokens (fired or already-cancelled events) detectable in O(1)
//!   without any tombstone set.
//! - The heap orders `(time, seq)` keys stored inline in the heap array
//!   (one cache line holds two entries), and each slot knows its heap
//!   position, so [`EventQueue::cancel`] removes the entry eagerly — a
//!   single sift, no tombstone accumulation, and
//!   [`EventQueue::peek_time`] never has to skip dead entries.
//! - Events scheduled **at the instant currently firing** — the
//!   `send_now` cascades that dominate the emulator's dispatch mix —
//!   bypass the heap entirely: they append to a FIFO lane whose entries
//!   all share one timestamp and arrive in `seq` order by construction.
//!   A pop takes whichever of (lane front, heap top) has the smaller
//!   `(time, seq)`, so the total order is exactly the one the old
//!   binary-heap calendar produced.
//!
//! Cancellation via the token is O(1) for lane entries and one
//! O(log₄ n) sift for heap entries; both free the slot immediately.
//! This supports the paper's blocking-synchronization idiom of posting a
//! wakeup at `t = ∞` and revising it on signal — in our engine the
//! equivalent is cancelling the stale timer and scheduling a fresh one.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Identifies a scheduled event so it can later be cancelled. Packs the
/// event's slot index (low 32 bits) and the slot's generation at
/// scheduling time (high 32 bits); a token outlives its event harmlessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(pub(crate) u64);

impl EventToken {
    /// Sentinel returned by sends in partitioned mode, where events are
    /// not cancellable. Never matches a live slot.
    pub(crate) const NULL: EventToken = EventToken(u64::MAX);

    fn pack(slot: u32, gen: u32) -> EventToken {
        EventToken(((gen as u64) << 32) | slot as u64)
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// `Slot::pos` sentinel: the event sits in the same-instant fast lane.
const IN_LANE: u32 = u32::MAX;
/// `Slot::pos` sentinel: a lane entry cancelled before firing; skipped
/// (and its slot freed) when the lane drains past it within the instant.
const LANE_CANCELLED: u32 = u32::MAX - 1;
/// `Slot::pos` sentinel: the slot is on the free list.
const FREE: u32 = u32::MAX - 2;

struct Slot<M> {
    /// Bumped every time the slot is freed; stale tokens mismatch.
    gen: u32,
    /// Heap position, or one of the sentinels above.
    pos: u32,
    seq: u64,
    time: SimTime,
    payload: Option<M>,
}

/// Heap entries carry the full `(time, seq)` ordering key inline so
/// comparisons during sifting never chase the slot arena.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A deterministic future-event calendar.
pub struct EventQueue<M> {
    slots: Vec<Slot<M>>,
    /// Recycled slot indices: the calendar's envelope free list.
    free: Vec<u32>,
    /// 4-ary min-heap of events *not* at the current instant.
    heap: Vec<HeapEntry>,
    /// Same-instant FIFO: slot indices, all at `lane_time`, seq-ascending.
    lane: VecDeque<u32>,
    /// Timestamp shared by every lane entry (valid while `lane` is
    /// non-empty).
    lane_time: SimTime,
    /// Time of the most recently popped event — "the current instant".
    front_time: SimTime,
    next_seq: u64,
    scheduled: u64,
    fired: u64,
    live: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            lane: VecDeque::new(),
            lane_time: SimTime::ZERO,
            front_time: SimTime::ZERO,
            next_seq: 0,
            scheduled: 0,
            fired: 0,
            live: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. `time` must be finite
    /// (not [`SimTime::NEVER`]) — model indefinite blocking by simply not
    /// scheduling, and waking via an explicit message instead.
    pub fn schedule(&mut self, time: SimTime, payload: M) -> EventToken {
        assert!(
            time != SimTime::NEVER,
            "cannot schedule at t=∞; wake blocked parties with a message"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.live += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.seq = seq;
                s.time = time;
                s.payload = Some(payload);
                i
            }
            None => {
                assert!(self.slots.len() < FREE as usize, "calendar slot overflow");
                self.slots.push(Slot {
                    gen: 0,
                    pos: FREE,
                    seq,
                    time,
                    payload: Some(payload),
                });
                (self.slots.len() - 1) as u32
            }
        };
        if time == self.front_time && (self.lane.is_empty() || self.lane_time == time) {
            // send_now fast lane: same instant as the event being
            // dispatched, seq necessarily above everything already there.
            self.lane_time = time;
            self.lane.push_back(idx);
            self.slots[idx as usize].pos = IN_LANE;
        } else {
            self.heap_push(HeapEntry { time, seq, slot: idx });
        }
        EventToken::pack(idx, self.slots[idx as usize].gen)
    }

    /// Cancel a previously scheduled event. Idempotent; cancelling an
    /// already-fired event has no effect. Lane entries are O(1); heap
    /// entries are removed eagerly with one sift (no tombstones linger).
    pub fn cancel(&mut self, token: EventToken) {
        let idx = token.slot();
        let Some(slot) = self.slots.get_mut(idx as usize) else {
            return;
        };
        if slot.gen != token.gen() {
            return; // already fired or cancelled; slot moved on
        }
        match slot.pos {
            FREE | LANE_CANCELLED => {}
            IN_LANE => {
                // The lane index stays; the drained-lane scan frees it.
                slot.payload = None;
                slot.pos = LANE_CANCELLED;
                self.live -= 1;
            }
            pos => {
                self.heap_remove(pos);
                self.free_slot(idx);
                self.live -= 1;
            }
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, M)> {
        self.pop_not_after(SimTime::NEVER)
    }

    /// Remove and return the earliest live event if it fires at or
    /// before `horizon`; `None` when the calendar is empty or the next
    /// event is later. One call replaces the peek-then-pop pair in
    /// dispatch loops.
    pub fn pop_not_after(&mut self, horizon: SimTime) -> Option<(SimTime, M)> {
        self.drop_cancelled_lane_prefix();
        let lane_key = self
            .lane
            .front()
            .map(|&i| (self.lane_time, self.slots[i as usize].seq));
        let heap_key = self.heap.first().map(HeapEntry::key);
        let from_lane = match (lane_key, heap_key) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(l), Some(h)) => l < h,
        };
        let idx = if from_lane {
            if self.lane_time > horizon {
                return None;
            }
            self.lane.pop_front().expect("lane front exists")
        } else {
            if self.heap[0].time > horizon {
                return None;
            }
            let top = self.heap[0];
            self.heap_remove(0);
            top.slot
        };
        let slot = &mut self.slots[idx as usize];
        let time = slot.time;
        let payload = slot.payload.take().expect("live event has a payload");
        self.free_slot(idx);
        self.fired += 1;
        self.live -= 1;
        self.front_time = time;
        Some((time, payload))
    }

    /// Time of the earliest live event without removing it. O(1).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.drop_cancelled_lane_prefix();
        let lane = self.lane.front().map(|_| self.lane_time);
        let heap = self.heap.first().map(|e| e.time);
        match (lane, heap) {
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(t),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of live (scheduled, not yet fired or cancelled) events.
    /// O(1) — the calendar tracks the count directly.
    pub fn live_len(&self) -> usize {
        self.live as usize
    }

    /// Lifetime counters: (scheduled, fired).
    pub fn counters(&self) -> (u64, u64) {
        (self.scheduled, self.fired)
    }

    /// Free cancelled entries parked at the head of the fast lane so the
    /// live front is directly inspectable.
    fn drop_cancelled_lane_prefix(&mut self) {
        while let Some(&i) = self.lane.front() {
            if self.slots[i as usize].pos == LANE_CANCELLED {
                self.lane.pop_front();
                self.free_slot(i);
            } else {
                break;
            }
        }
    }

    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.pos = FREE;
        slot.payload = None;
        self.free.push(idx);
    }

    // ---- 4-ary heap primitives (children of i: 4i+1 ..= 4i+4) ----

    fn heap_push(&mut self, entry: HeapEntry) {
        let pos = self.heap.len() as u32;
        self.slots[entry.slot as usize].pos = pos;
        self.heap.push(entry);
        self.sift_up(pos as usize);
    }

    /// Remove the entry at heap position `pos`, restoring heap order.
    fn heap_remove(&mut self, pos: u32) {
        let pos = pos as usize;
        let last = self.heap.pop().expect("heap entry to remove");
        if pos < self.heap.len() {
            self.heap[pos] = last;
            self.slots[last.slot as usize].pos = pos as u32;
            // The replacement came from the bottom: usually sifts down,
            // but under a different subtree it may need to rise instead.
            if !self.sift_up(pos) {
                self.sift_down(pos);
            }
        }
    }

    /// Move the entry at `i` up to its place; returns true if it moved.
    fn sift_up(&mut self, mut i: usize) -> bool {
        let mut moved = false;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                self.slots[self.heap[i].slot as usize].pos = i as u32;
                self.slots[self.heap[parent].slot as usize].pos = parent as u32;
                i = parent;
                moved = true;
            } else {
                break;
            }
        }
        moved
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = 4 * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut min = first;
            for c in first + 1..last {
                if self.heap[c].key() < self.heap[min].key() {
                    min = c;
                }
            }
            if self.heap[min].key() < self.heap[i].key() {
                self.heap.swap(i, min);
                self.slots[self.heap[i].slot as usize].pos = i as u32;
                self.slots[self.heap[min].slot as usize].pos = min as u32;
                i = min;
            } else {
                break;
            }
        }
    }
}

/// Composite ordering key for events in **partitioned** mode (see
/// `engine` / `par`): events are totally ordered by
/// `(arrival time, schedule time, packed chronological tiebreak)`.
///
/// The sequential calendar orders same-instant events by a global
/// sequence number assigned at scheduling time. Worker threads cannot
/// share such a counter without re-serializing the run, so partitioned
/// mode replaces it with a key every partition can compute locally:
///
/// - `at` — the arrival instant (the primary sort, as before);
/// - `sched` — the virtual instant the event was *scheduled* at. Runs
///   execute in virtual-time order, so sequence numbers are assigned in
///   ascending `sched` order; sorting by `sched` reproduces the seq
///   order across scheduling instants exactly.
/// - `packed` — a tiebreak within one scheduling instant: one bit of
///   *kind* (seed messages sort below runtime sends, as their seqs are
///   assigned before the run starts; seeds tiebreak on a per-partition
///   issuance counter, the order the build loop schedules them in), then
///   a 48-bit **partition-chronological counter** (send counter for
///   runtime sends, seed counter for seeds) and the 15-bit issuing
///   partition index.
///
/// The counter increments on every send a partition makes, in dispatch
/// order — it is the partition-local restriction of the sequential
/// engine's global sequence number. With **one** partition it *is* that
/// sequence number, so single-partition parallel runs reproduce the
/// sequential dispatch order exactly, same-instant FIFO cascades
/// included. Across partitions, two events tie on `(at, sched)` only
/// when they were scheduled concurrently in different workers — an
/// ordering the sequential engine resolves by global chronology, which
/// no local key can reconstruct; the counter-then-partition tiebreak
/// keeps that residual case deterministic.
///
/// Keys are unique per event, so heap pop order is a pure function of
/// the key set — independent of insertion order, and therefore of
/// thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Arrival instant.
    pub at: SimTime,
    /// Scheduling instant (nanoseconds).
    pub sched: u64,
    /// `kind:1 | partition-send-counter:48 | partition:15`.
    pub packed: u64,
}

/// A deterministic calendar ordered by [`EventKey`], used by partitioned
/// workers. Same 4-ary layout as [`EventQueue`], but with explicit keys
/// and no cancellation or same-instant lane (partitioned mode derives
/// its total order from keys alone, so no structural fast path may
/// reorder it).
pub struct KeyedQueue<M> {
    heap: Vec<(EventKey, M)>,
    scheduled: u64,
    fired: u64,
}

impl<M> Default for KeyedQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> KeyedQueue<M> {
    /// An empty keyed calendar.
    pub fn new() -> Self {
        KeyedQueue { heap: Vec::new(), scheduled: 0, fired: 0 }
    }

    /// Insert an event. Keys must be unique (the engine constructs them
    /// so by including a chronological send counter); `at` must be finite.
    pub fn push(&mut self, key: EventKey, payload: M) {
        assert!(key.at != SimTime::NEVER, "cannot schedule at t=∞");
        self.scheduled += 1;
        self.heap.push((key, payload));
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the smallest-key event if it arrives at or
    /// before `horizon` (inclusive).
    pub fn pop_not_after(&mut self, horizon: SimTime) -> Option<(EventKey, M)> {
        if self.heap.first().is_none_or(|(k, _)| k.at > horizon) {
            return None;
        }
        self.fired += 1;
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let out = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(out)
    }

    /// Arrival time of the earliest event, if any. O(1).
    pub fn peek_at(&self) -> Option<SimTime> {
        self.heap.first().map(|(k, _)| k.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime counters: (scheduled, fired).
    pub fn counters(&self) -> (u64, u64) {
        (self.scheduled, self.fired)
    }

    // ---- 4-ary heap primitives (children of i: 4i+1 ..= 4i+4) ----

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[i].0 < self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = 4 * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + 4).min(self.heap.len());
            let mut min = first;
            for c in first + 1..last {
                if self.heap[c].0 < self.heap[min].0 {
                    min = c;
                }
            }
            if self.heap[min].0 < self.heap[i].0 {
                self.heap.swap(i, min);
                i = min;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime(1), "a");
        let b = q.schedule(SimTime(2), "b");
        let _c = q.schedule(SimTime(3), "c");
        q.cancel(b);
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.pop(), None);
        let b = q.schedule(SimTime(2), "b");
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
        q.cancel(b); // already fired: no effect
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.live_len(), 1);
    }

    #[test]
    #[should_panic(expected = "t=∞")]
    fn scheduling_at_never_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::NEVER, ());
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), ());
        q.schedule(SimTime(2), ());
        q.pop();
        assert_eq!(q.counters(), (2, 1));
    }

    #[test]
    fn same_instant_cascade_stays_fifo() {
        // Mimics a send_now chain: each pop schedules a successor at the
        // popped instant; successors must fire after everything already
        // scheduled for that instant, in schedule order.
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), 0u32);
        q.schedule(SimTime(7), 1u32);
        let mut order = Vec::new();
        let mut next = 2u32;
        while let Some((t, v)) = q.pop() {
            assert_eq!(t, SimTime(7));
            order.push(v);
            if next < 6 {
                q.schedule(t, next);
                next += 1;
            }
        }
        assert_eq!(order, [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn lane_and_heap_interleave_by_seq() {
        let mut q = EventQueue::new();
        // Heap-resident events at t=5 scheduled first...
        q.schedule(SimTime(5), "early-a");
        q.schedule(SimTime(5), "early-b");
        q.schedule(SimTime(3), "first");
        assert_eq!(q.pop(), Some((SimTime(3), "first")));
        // ...then a pop at t=5 opens the fast lane; lane entries carry
        // later seqs and must fire after the heap's same-time entries.
        assert_eq!(q.pop(), Some((SimTime(5), "early-a")));
        q.schedule(SimTime(5), "lane-a");
        q.schedule(SimTime(5), "lane-b");
        assert_eq!(q.pop(), Some((SimTime(5), "early-b")));
        assert_eq!(q.pop(), Some((SimTime(5), "lane-a")));
        assert_eq!(q.pop(), Some((SimTime(5), "lane-b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_inside_fast_lane() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(0), "head");
        assert_eq!(q.pop(), Some((SimTime(0), "head")));
        let a = q.schedule(SimTime(0), "a");
        let b = q.schedule(SimTime(0), "b");
        let c = q.schedule(SimTime(0), "c");
        q.cancel(b);
        q.cancel(b); // idempotent on lane entries too
        assert_eq!(q.live_len(), 2);
        assert_eq!(q.pop(), Some((SimTime(0), "a")));
        assert_eq!(q.pop(), Some((SimTime(0), "c")));
        assert_eq!(q.pop(), None);
        let _ = (a, c);
    }

    #[test]
    fn slots_recycle_without_token_confusion() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), 1u32);
        assert_eq!(q.pop(), Some((SimTime(1), 1)));
        // The slot is recycled for `b`; the stale token must not hit it.
        let b = q.schedule(SimTime(2), 2u32);
        q.cancel(a);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop(), Some((SimTime(2), 2)));
        q.cancel(b);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_not_after_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "x");
        q.schedule(SimTime(20), "y");
        assert_eq!(q.pop_not_after(SimTime(5)), None);
        assert_eq!(q.pop_not_after(SimTime(15)), Some((SimTime(10), "x")));
        assert_eq!(q.pop_not_after(SimTime(15)), None);
        assert!(!q.is_empty());
        assert_eq!(q.pop_not_after(SimTime(20)), Some((SimTime(20), "y")));
        assert!(q.is_empty());
    }

    #[test]
    fn heavy_cancel_churn_keeps_order() {
        // Interleaved schedule/cancel across many instants; survivors
        // must still pop in exact (time, seq) order.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        let mut tokens = Vec::new();
        for round in 0u64..50 {
            for k in 0..20u64 {
                let t = (round * 7 + k * 13) % 97;
                let id = round * 100 + k;
                let tok = q.schedule(SimTime(t), id);
                tokens.push((tok, t, id));
            }
            // Cancel a deterministic third of everything scheduled so far.
            if round % 3 == 0 {
                for j in (0..tokens.len()).step_by(3) {
                    q.cancel(tokens[j].0);
                }
            }
        }
        // Recompute the surviving set directly from the cancel pattern.
        let mut dead = vec![false; tokens.len()];
        let mut scheduled_so_far = 0;
        for round in 0u64..50 {
            scheduled_so_far += 20;
            if round % 3 == 0 {
                for j in (0..scheduled_so_far).step_by(3) {
                    dead[j] = true;
                }
            }
        }
        for (j, &(_, t, id)) in tokens.iter().enumerate() {
            if !dead[j] {
                expected.push((t, id));
            }
        }
        expected.sort_by_key(|&(t, id)| (t, id));
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            popped.push((t.0, id));
        }
        // seq order == schedule order == ascending id within equal time.
        assert_eq!(popped, expected);
    }
}
