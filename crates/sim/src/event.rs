//! The event queue: a totally ordered calendar of future work.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is
//! assigned at scheduling time. Two events at the same instant therefore
//! fire in the order they were scheduled — a total order that makes runs
//! deterministic regardless of hash-map iteration or heap tie-breaking.
//!
//! Events can be cancelled via the [`EventToken`] returned at scheduling
//! time; cancellation is O(1) (lazy removal at pop). This supports the
//! paper's blocking-synchronization idiom of posting a wakeup at `t = ∞`
//! and revising it on signal — in our engine the equivalent is cancelling
//! the stale timer and scheduling a fresh one.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Identifies a scheduled event so it can later be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(pub(crate) u64);

struct Entry<M> {
    time: SimTime,
    seq: u64,
    payload: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}

impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event calendar.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    scheduled: u64,
    fired: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            scheduled: 0,
            fired: 0,
        }
    }

    /// Schedule `payload` to fire at `time`. `time` must be finite
    /// (not [`SimTime::NEVER`]) — model indefinite blocking by simply not
    /// scheduling, and waking via an explicit message instead.
    pub fn schedule(&mut self, time: SimTime, payload: M) -> EventToken {
        assert!(
            time != SimTime::NEVER,
            "cannot schedule at t=∞; wake blocked parties with a message"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, payload });
        EventToken(seq)
    }

    /// Cancel a previously scheduled event. Idempotent; cancelling an
    /// already-fired event has no effect.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Remove and return the earliest live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, M)> {
        while let Some(e) = self.heap.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            self.fired += 1;
            return Some((e.time, e.payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(e) = self.heap.peek() {
            if self.cancelled.contains(&e.seq) {
                let seq = e.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(e.time);
        }
        None
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of live (scheduled, not yet fired or cancelled) events.
    /// Linear in pending cancellations; intended for tests and reports.
    pub fn live_len(&self) -> usize {
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .count()
    }

    /// Lifetime counters: (scheduled, fired).
    pub fn counters(&self) -> (u64, u64) {
        (self.scheduled, self.fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let _a = q.schedule(SimTime(1), "a");
        let b = q.schedule(SimTime(2), "b");
        let _c = q.schedule(SimTime(3), "c");
        q.cancel(b);
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.pop(), None);
        let b = q.schedule(SimTime(2), "b");
        assert_eq!(q.pop(), Some((SimTime(2), "b")));
        q.cancel(b); // already fired: no effect
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.live_len(), 1);
    }

    #[test]
    #[should_panic(expected = "t=∞")]
    fn scheduling_at_never_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::NEVER, ());
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), ());
        q.schedule(SimTime(2), ());
        q.pop();
        assert_eq!(q.counters(), (2, 1));
    }
}
