//! Deterministic job-arrival schedules for multi-tenant simulations.
//!
//! An [`ArrivalSpec`] is the open-arrival counterpart of
//! [`FaultPlan`](crate::fault::FaultPlan): a virtual-time schedule of
//! job submissions, one per `(tenant, kind, at)` triple, that a
//! scheduler harness replays against its admission controller. The
//! spec itself carries no randomness — [`ArrivalSpec::poisson`] bakes
//! a seeded Poisson process into explicit [`SimTime`]s up front, so
//! the same seed reproduces the schedule byte for byte and a
//! multi-tenant run is exactly as replayable as a fault-free one.

use crate::fault::TraceError;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled job submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Submitting tenant (dense index, harness-defined).
    pub tenant: usize,
    /// Which job template out of the tenant's mix this submission
    /// instantiates (index into the harness's job-kind table).
    pub kind: usize,
    /// Virtual submission time.
    pub at: SimTime,
}

/// A deterministic schedule of job arrivals for one run.
///
/// Build with the chainable constructors, [`ArrivalSpec::poisson`], or
/// [`ArrivalSpec::from_trace`]; [`sorted_events`](ArrivalSpec::sorted_events)
/// interleaves the per-tenant streams into firing order (stable: ties
/// keep insertion order, which is tenant-major for generated specs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrivalSpec {
    events: Vec<ArrivalEvent>,
}

impl ArrivalSpec {
    /// An empty schedule (no jobs ever arrive).
    pub fn new() -> ArrivalSpec {
        ArrivalSpec::default()
    }

    /// Add one submission.
    pub fn job(mut self, tenant: usize, kind: usize, at: SimTime) -> ArrivalSpec {
        self.events.push(ArrivalEvent { tenant, kind, at });
        self
    }

    /// No arrivals scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The arrivals in firing order (stable: ties keep insertion order,
    /// so equal-time submissions from different tenants resolve in
    /// tenant-major order for generated specs).
    pub fn sorted_events(&self) -> Vec<ArrivalEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// An open Poisson arrival stream per tenant: tenant `t` submits
    /// jobs with exponentially distributed inter-arrival times (mean
    /// `mean_interarrival`) until `horizon`, each submission drawing a
    /// job kind from the weighted `mix` (kind `k` with probability
    /// `mix[k] / Σ mix`).
    ///
    /// Each tenant draws from its own [`DetRng`] stream
    /// (`DetRng::stream(seed, tenant)`), so the schedule is a pure
    /// function of `(seed, tenant)`: the same seed reproduces the
    /// schedule exactly, and adding tenants leaves existing tenants'
    /// streams untouched. Events are emitted tenant-major;
    /// [`sorted_events`](ArrivalSpec::sorted_events) interleaves them.
    pub fn poisson(
        seed: u64,
        tenants: usize,
        mean_interarrival: SimDuration,
        horizon: SimDuration,
        mix: &[u64],
    ) -> ArrivalSpec {
        assert!(
            mean_interarrival.as_nanos() > 0,
            "mean inter-arrival must be positive"
        );
        assert!(!mix.is_empty(), "job mix must name at least one kind");
        let total: u64 = mix.iter().sum();
        assert!(total > 0, "job mix weights must not all be zero");
        let rate = 1.0 / (mean_interarrival.as_nanos() as f64);
        let end = SimTime::ZERO + horizon;
        let mut spec = ArrivalSpec::new();
        for tenant in 0..tenants {
            let mut rng = DetRng::stream(seed, tenant as u64);
            let mut t = SimTime::ZERO;
            loop {
                // Draws are in nanoseconds (rate = 1/mean-ns); round up
                // so two submissions never share an instant by rounding.
                let gap = SimDuration::from_nanos(rng.gen_exp(rate).ceil() as u64)
                    .max(SimDuration::from_nanos(1));
                t += gap;
                if t >= end {
                    break;
                }
                let mut pick = rng.gen_range(total);
                let mut kind = 0usize;
                for (k, &w) in mix.iter().enumerate() {
                    if pick < w {
                        kind = k;
                        break;
                    }
                    pick -= w;
                }
                spec = spec.job(tenant, kind, t);
            }
        }
        spec
    }

    /// Parse an arrival schedule from a trace file: one submission per
    /// line, whitespace-separated, `#`-comments and blank lines ignored.
    ///
    /// ```text
    /// job <tenant> <kind> <at_ns>
    /// ```
    pub fn from_trace(text: &str) -> Result<ArrivalSpec, TraceError> {
        fn field<T: std::str::FromStr>(
            fields: &mut std::str::SplitWhitespace<'_>,
            line: usize,
            what: &str,
        ) -> Result<T, TraceError> {
            let raw = fields.next().ok_or_else(|| TraceError {
                line,
                reason: format!("missing {what}"),
            })?;
            raw.parse().map_err(|_| TraceError {
                line,
                reason: format!("bad {what}: {raw:?}"),
            })
        }
        let mut spec = ArrivalSpec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("");
            let mut fields = body.split_whitespace();
            let Some(kind) = fields.next() else { continue };
            spec = match kind {
                "job" => {
                    let tenant = field(&mut fields, line, "tenant")?;
                    let job_kind = field(&mut fields, line, "kind")?;
                    let at = SimTime(field(&mut fields, line, "time")?);
                    spec.job(tenant, job_kind, at)
                }
                other => {
                    return Err(TraceError {
                        line,
                        reason: format!("unknown event kind {other:?}"),
                    })
                }
            };
            if let Some(extra) = fields.next() {
                return Err(TraceError {
                    line,
                    reason: format!("trailing field {extra:?}"),
                });
            }
        }
        Ok(spec)
    }

    /// Render the schedule in [`from_trace`](ArrivalSpec::from_trace)
    /// format (insertion order; round-trips exactly).
    pub fn to_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("job {} {} {}\n", e.tenant, e.kind, e.at.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical() {
        let mk = || {
            ArrivalSpec::poisson(
                0xA11,
                3,
                SimDuration::from_millis(5),
                SimDuration::from_millis(100),
                &[3, 1],
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert_eq!(a.to_trace(), b.to_trace());
        assert!(!a.is_empty());
    }

    #[test]
    fn adding_tenants_preserves_existing_streams() {
        let small = ArrivalSpec::poisson(
            7,
            2,
            SimDuration::from_millis(2),
            SimDuration::from_millis(50),
            &[1],
        );
        let big = ArrivalSpec::poisson(
            7,
            4,
            SimDuration::from_millis(2),
            SimDuration::from_millis(50),
            &[1],
        );
        let first_two = |s: &ArrivalSpec| -> Vec<ArrivalEvent> {
            s.sorted_events()
                .into_iter()
                .filter(|e| e.tenant < 2)
                .collect()
        };
        assert_eq!(first_two(&small), first_two(&big));
    }

    #[test]
    fn trace_round_trips() {
        let spec = ArrivalSpec::new()
            .job(0, 1, SimTime(500))
            .job(2, 0, SimTime(100));
        let parsed = ArrivalSpec::from_trace(&spec.to_trace()).expect("parses");
        assert_eq!(parsed, spec);
        // Sorted order interleaves by time, ties keep insertion order.
        let sorted = spec.sorted_events();
        assert_eq!(sorted[0].at, SimTime(100));
        assert_eq!(sorted[1].tenant, 0);
    }

    #[test]
    fn trace_errors_are_located() {
        let err = ArrivalSpec::from_trace("job 0 0 10\nboom 1 2 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ArrivalSpec::from_trace("job 0 zero 10\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("kind"));
        let err = ArrivalSpec::from_trace("job 0 0 10 11\n").unwrap_err();
        assert!(err.reason.contains("trailing"));
    }

    #[test]
    fn mix_weights_cover_all_kinds() {
        let spec = ArrivalSpec::poisson(
            99,
            1,
            SimDuration::from_micros(50),
            SimDuration::from_millis(20),
            &[1, 1, 1],
        );
        let mut seen = [false; 3];
        for e in spec.sorted_events() {
            seen[e.kind] = true;
        }
        assert!(seen.iter().all(|&s| s), "every kind in the mix appears");
    }
}
