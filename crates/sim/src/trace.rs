//! Structured event tracing for debugging and reports.
//!
//! A [`Trace`] is a bounded ring buffer of `(time, subject, detail)`
//! entries. Tracing is cheap enough to leave on in tests but is entirely
//! optional: production runs construct a disabled trace and pay only a
//! branch per record — [`Trace::record_with`] takes a closure, so a
//! disabled trace never materialises the subject or detail strings at
//! all. Subjects are interned ([`crate::intern`]): the hot path stamps a
//! shared pointer rather than allocating a fresh `String` per entry.

use crate::intern::{intern, Name};
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Which component reported it (e.g. `"host0.cpu"`), interned.
    pub subject: Name,
    /// Free-form description.
    pub detail: String,
}

/// A bounded in-memory event trace.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// An enabled trace holding up to `capacity` most-recent entries.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// A disabled trace: `record` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// Whether entries are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry (no-op when disabled). Oldest entries are evicted
    /// once capacity is reached. Prefer [`Trace::record_with`] on hot
    /// paths: this eager variant builds its arguments even when the
    /// trace is disabled.
    pub fn record(&mut self, at: SimTime, subject: impl AsRef<str>, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.push(at, intern(subject.as_ref()), detail.into());
    }

    /// Record an entry built lazily: `f` runs — and its strings are
    /// allocated — only when the trace is enabled. This is the zero-cost
    /// variant for dispatch loops.
    pub fn record_with<S, D, F>(&mut self, at: SimTime, f: F)
    where
        S: AsRef<str>,
        D: Into<String>,
        F: FnOnce() -> (S, D),
    {
        if !self.enabled {
            return;
        }
        let (subject, detail) = f();
        self.push(at, intern(subject.as_ref()), detail.into());
    }

    fn push(&mut self, at: SimTime, subject: Name, detail: String) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, subject, detail });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render retained entries, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{} [{}] {}", e.at, e.subject, e.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::enabled(8);
        t.record(SimTime(1), "a", "x");
        t.record(SimTime(2), "b", "y");
        let subjects: Vec<&str> = t.entries().map(|e| e.subject.as_str()).collect();
        assert_eq!(subjects, ["a", "b"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::enabled(2);
        t.record(SimTime(1), "a", "");
        t.record(SimTime(2), "b", "");
        t.record(SimTime(3), "c", "");
        let subjects: Vec<&str> = t.entries().map(|e| e.subject.as_str()).collect();
        assert_eq!(subjects, ["b", "c"]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn disabled_trace_is_noop() {
        let mut t = Trace::disabled();
        t.record(SimTime(1), "a", "");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn record_with_skips_closure_when_disabled() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.record_with(SimTime(1), || {
            called = true;
            ("a", "x")
        });
        assert!(!called, "disabled trace must not build its strings");
        assert!(t.is_empty());

        let mut t = Trace::enabled(4);
        t.record_with(SimTime(2), || (format!("s{}", 1), format!("n={}", 42)));
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.subject, "s1");
        assert_eq!(e.detail, "n=42");
    }

    #[test]
    fn render_contains_fields() {
        let mut t = Trace::enabled(4);
        t.record(SimTime(1_000_000_000), "host0.cpu", "segment done");
        let s = t.render();
        assert!(s.contains("host0.cpu"));
        assert!(s.contains("segment done"));
    }
}
