//! Structured event tracing for debugging and reports.
//!
//! A [`Trace`] is a bounded ring buffer of `(time, subject, detail)`
//! entries. Tracing is cheap enough to leave on in tests but is entirely
//! optional: production runs construct a disabled trace and pay only a
//! branch per record — [`Trace::record_with`] takes a closure, so a
//! disabled trace never materialises the subject or detail strings at
//! all. Subjects are interned ([`crate::intern`]): the hot path stamps a
//! shared pointer rather than allocating a fresh `String` per entry.

use crate::intern::{intern, Name};
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded occurrence.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When it happened.
    pub at: SimTime,
    /// Which component reported it (e.g. `"host0.cpu"`), interned.
    pub subject: Name,
    /// Free-form description.
    pub detail: String,
    /// Dispatch ordering key within the instant, `(sched, packed)` from
    /// the partitioned engine ([`crate::engine::Ctx::par_key`]); `(0, 0)`
    /// for sequential runs. Lets [`Trace::merge`] interleave per-partition
    /// traces back into the exact sequential order. Bookkeeping only —
    /// excluded from equality and rendering.
    key: (u64, u64),
}

impl TraceEntry {
    /// The entry's dispatch ordering key (see the field doc). Exposed
    /// for diagnostics; not part of the entry's identity.
    pub fn order_key(&self) -> (u64, u64) {
        self.key
    }
}

impl PartialEq for TraceEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.subject == other.subject && self.detail == other.detail
    }
}
impl Eq for TraceEntry {}

/// A bounded in-memory event trace.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// An enabled trace holding up to `capacity` most-recent entries.
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            dropped: 0,
        }
    }

    /// A disabled trace: `record` is a no-op.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// Whether entries are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an entry (no-op when disabled). Oldest entries are evicted
    /// once capacity is reached. Prefer [`Trace::record_with`] on hot
    /// paths: this eager variant builds its arguments even when the
    /// trace is disabled.
    pub fn record(&mut self, at: SimTime, subject: impl AsRef<str>, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.push(at, (0, 0), intern(subject.as_ref()), detail.into());
    }

    /// Record an entry built lazily: `f` runs — and its strings are
    /// allocated — only when the trace is enabled. This is the zero-cost
    /// variant for dispatch loops.
    pub fn record_with<S, D, F>(&mut self, at: SimTime, f: F)
    where
        S: AsRef<str>,
        D: Into<String>,
        F: FnOnce() -> (S, D),
    {
        self.record_with_key(at, (0, 0), f)
    }

    /// [`Trace::record_with`], additionally stamping the entry with its
    /// dispatch ordering key so per-partition traces can be merged in
    /// exact sequential order. Sequential callers pass `(0, 0)` (or use
    /// `record_with`).
    pub fn record_with_key<S, D, F>(&mut self, at: SimTime, key: (u64, u64), f: F)
    where
        S: AsRef<str>,
        D: Into<String>,
        F: FnOnce() -> (S, D),
    {
        if !self.enabled {
            return;
        }
        let (subject, detail) = f();
        self.push(at, key, intern(subject.as_ref()), detail.into());
    }

    fn push(&mut self, at: SimTime, key: (u64, u64), subject: Name, detail: String) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, subject, detail, key });
    }

    /// Merge per-partition traces into the trace an equivalent sequential
    /// run would have produced.
    ///
    /// Entries are ordered canonically by `(time, dispatch key)` — the
    /// partitioned engine's total dispatch order — with a stable sort, so
    /// entries recorded in one dispatch keep their emission order. Each
    /// partition's ring buffer retains a *suffix* of its own (ordered)
    /// pushes, and the global tail window of `capacity` entries is
    /// contained in the union of those suffixes, so the merged trace is
    /// byte-identical to the sequential ring buffer, including the
    /// dropped count.
    pub fn merge(parts: Vec<Trace>) -> Trace {
        if !parts.iter().any(|t| t.enabled) {
            return Trace::disabled();
        }
        let capacity = parts.iter().map(|t| t.capacity).max().expect("non-empty parts");
        let pushes: u64 = parts
            .iter()
            .map(|t| t.entries.len() as u64 + t.dropped)
            .sum();
        let mut all: Vec<TraceEntry> = Vec::new();
        for t in parts {
            all.extend(t.entries);
        }
        all.sort_by_key(|e| (e.at, e.key));
        let skip = all.len().saturating_sub(capacity);
        let entries: VecDeque<TraceEntry> = all.into_iter().skip(skip).collect();
        let dropped = pushes - entries.len() as u64;
        Trace { entries, capacity, enabled: true, dropped }
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of entries evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render retained entries, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{} [{}] {}", e.at, e.subject, e.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::enabled(8);
        t.record(SimTime(1), "a", "x");
        t.record(SimTime(2), "b", "y");
        let subjects: Vec<&str> = t.entries().map(|e| e.subject.as_str()).collect();
        assert_eq!(subjects, ["a", "b"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::enabled(2);
        t.record(SimTime(1), "a", "");
        t.record(SimTime(2), "b", "");
        t.record(SimTime(3), "c", "");
        let subjects: Vec<&str> = t.entries().map(|e| e.subject.as_str()).collect();
        assert_eq!(subjects, ["b", "c"]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn disabled_trace_is_noop() {
        let mut t = Trace::disabled();
        t.record(SimTime(1), "a", "");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn record_with_skips_closure_when_disabled() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.record_with(SimTime(1), || {
            called = true;
            ("a", "x")
        });
        assert!(!called, "disabled trace must not build its strings");
        assert!(t.is_empty());

        let mut t = Trace::enabled(4);
        t.record_with(SimTime(2), || (format!("s{}", 1), format!("n={}", 42)));
        assert_eq!(t.len(), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.subject, "s1");
        assert_eq!(e.detail, "n=42");
    }

    #[test]
    fn merge_reconstructs_sequential_order() {
        // Two partitions record interleaved instants; within one instant
        // the dispatch key decides. The merge must equal a single trace
        // that saw every record in (at, key) order.
        let mut a = Trace::enabled(16);
        let mut b = Trace::enabled(16);
        a.record_with_key(SimTime(1), (0, 2), || ("p0", "e1"));
        a.record_with_key(SimTime(3), (1, 0), || ("p0", "e3"));
        b.record_with_key(SimTime(1), (0, 7), || ("p1", "e2"));
        b.record_with_key(SimTime(2), (1, 1), || ("p1", "early"));
        let merged = Trace::merge(vec![a, b]);
        let got: Vec<(u64, String)> = merged
            .entries()
            .map(|e| (e.at.as_nanos(), e.detail.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, "e1".into()),
                (1, "e2".into()),
                (2, "early".into()),
                (3, "e3".into())
            ]
        );
        assert_eq!(merged.dropped(), 0);
    }

    #[test]
    fn merge_respects_capacity_and_counts_drops() {
        // Global capacity 2: merging 4 retained entries keeps the last
        // two in canonical order and accounts the rest (plus any entries
        // the partitions had already evicted) as dropped.
        let mut a = Trace::enabled(2);
        let mut b = Trace::enabled(2);
        for t in [1u64, 5, 9] {
            a.record_with_key(SimTime(t), (t, 0), || ("a", "x")); // t=1 evicted locally
        }
        b.record_with_key(SimTime(3), (3, 0), || ("b", "y"));
        b.record_with_key(SimTime(7), (7, 0), || ("b", "y"));
        let merged = Trace::merge(vec![a, b]);
        let ats: Vec<u64> = merged.entries().map(|e| e.at.as_nanos()).collect();
        assert_eq!(ats, [7, 9]);
        assert_eq!(merged.dropped(), 3);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_of_single_partition_is_identity() {
        let mut a = Trace::enabled(4);
        a.record(SimTime(1), "s", "d1");
        a.record(SimTime(2), "s", "d2");
        let before = a.render();
        let merged = Trace::merge(vec![a]);
        assert_eq!(merged.render(), before);
        assert!(Trace::merge(vec![Trace::disabled(), Trace::disabled()]).is_empty());
    }

    #[test]
    fn render_contains_fields() {
        let mut t = Trace::enabled(4);
        t.record(SimTime(1_000_000_000), "host0.cpu", "segment done");
        let s = t.render();
        assert!(s.contains("host0.cpu"));
        assert!(s.contains("segment done"));
    }
}
