//! Deterministic fault injection for simulations.
//!
//! A [`FaultPlan`] is a virtual-time schedule of fault events — crashes,
//! recoveries, partial degradations, and lossy links — that a simulation
//! harness replays against its actors. The plan itself carries no
//! randomness: every event fires at an explicit [`SimTime`], and any
//! randomized consequences (retry jitter, per-packet drops) draw from
//! [`DetRng`] streams derived from the run's master seed, so a chaos run
//! is exactly as reproducible as a fault-free one.
//!
//! The module also provides the two timing building blocks recovery
//! protocols need:
//!
//! - [`BackoffPolicy`]: a bounded exponential backoff schedule with
//!   deterministic jitter, for retrying failed deliveries;
//! - [`Timer`]: a one-shot rearmable timeout handle built on the event
//!   calendar's O(1) cancel, for heartbeat/failure-detection timeouts.

use crate::engine::Ctx;
use crate::event::EventToken;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled fault. Nodes are identified by a harness-defined dense
/// index (the emulator uses hosts first, then ASUs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Node `node` fails completely at `at`: it stops processing, loses
    /// volatile state, and bounces deliveries until it recovers.
    Crash {
        /// Failed node index.
        node: usize,
        /// Virtual time of the failure.
        at: SimTime,
    },
    /// Node `node` returns to service at `at` with fresh (empty) volatile
    /// state. Durable storage survives the outage.
    Recover {
        /// Recovering node index.
        node: usize,
        /// Virtual time of the recovery.
        at: SimTime,
    },
    /// Node `node` keeps running but with scaled-down resources from `at`
    /// on (graceful degradation, not binary death).
    Degrade {
        /// Degraded node index.
        node: usize,
        /// Virtual time the degradation takes effect.
        at: SimTime,
        /// Remaining fraction of CPU speed, in `(0, 1]`.
        cpu_factor: f64,
        /// Remaining fraction of disk bandwidth, in `(0, 1]`.
        disk_factor: f64,
    },
    /// The directed link `from → to` starts dropping each packet with
    /// probability `drop_prob` from `at` on (0 restores the link).
    LinkLoss {
        /// Sending node index.
        from: usize,
        /// Receiving node index.
        to: usize,
        /// Virtual time the loss rate takes effect.
        at: SimTime,
        /// Per-packet drop probability in `[0, 1]`.
        drop_prob: f64,
    },
}

impl FaultEvent {
    /// The virtual time at which this event fires.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Recover { at, .. }
            | FaultEvent::Degrade { at, .. }
            | FaultEvent::LinkLoss { at, .. } => at,
        }
    }

    /// The node this event primarily concerns (the sender for link loss).
    pub fn node(&self) -> usize {
        match *self {
            FaultEvent::Crash { node, .. }
            | FaultEvent::Recover { node, .. }
            | FaultEvent::Degrade { node, .. } => node,
            FaultEvent::LinkLoss { from, .. } => from,
        }
    }
}

/// A deterministic schedule of fault events for one run.
///
/// Build with the chainable constructors and hand the plan to the
/// harness; events are replayed in time order (ties keep insertion
/// order, so a plan is a total order and two runs of the same plan are
/// bit-identical).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the harness should behave exactly as
    /// if no fault layer existed).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a raw event.
    pub fn push(mut self, ev: FaultEvent) -> FaultPlan {
        self.events.push(ev);
        self
    }

    /// Crash `node` at `at`.
    pub fn crash(self, node: usize, at: SimTime) -> FaultPlan {
        self.push(FaultEvent::Crash { node, at })
    }

    /// Recover `node` at `at`.
    pub fn recover(self, node: usize, at: SimTime) -> FaultPlan {
        self.push(FaultEvent::Recover { node, at })
    }

    /// Degrade `node` at `at` to `cpu_factor` CPU and `disk_factor` disk.
    pub fn degrade(self, node: usize, at: SimTime, cpu_factor: f64, disk_factor: f64) -> FaultPlan {
        assert!(
            cpu_factor > 0.0 && cpu_factor <= 1.0,
            "cpu_factor in (0, 1]"
        );
        assert!(
            disk_factor > 0.0 && disk_factor <= 1.0,
            "disk_factor in (0, 1]"
        );
        self.push(FaultEvent::Degrade {
            node,
            at,
            cpu_factor,
            disk_factor,
        })
    }

    /// Make the directed link `from → to` drop packets with probability
    /// `drop_prob` from `at` on.
    pub fn link_loss(self, from: usize, to: usize, at: SimTime, drop_prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob in [0, 1]");
        self.push(FaultEvent::LinkLoss {
            from,
            to,
            at,
            drop_prob,
        })
    }

    /// No events scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in firing order (stable: ties keep insertion order).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut evs = self.events.clone();
        evs.sort_by_key(|e| e.at());
        evs
    }

    /// A fleet-scale crash/recover schedule: every node in `nodes`
    /// alternates exponentially distributed up-times (mean `mttf`) and
    /// down-times (mean `mttr`) until `horizon`, the classic Poisson
    /// failure model mean-field durability analyses assume.
    ///
    /// Each node draws from its own [`DetRng`] stream
    /// (`DetRng::stream(seed, node)`), so the schedule is a pure function
    /// of `(seed, node)`: the same seed reproduces the plan exactly, and
    /// growing the fleet leaves existing nodes' timelines untouched.
    /// Events are emitted node-major; [`FaultPlan::sorted_events`]
    /// interleaves them into firing order.
    pub fn poisson(
        seed: u64,
        nodes: std::ops::Range<usize>,
        mttf: SimDuration,
        mttr: SimDuration,
        horizon: SimDuration,
    ) -> FaultPlan {
        assert!(mttf.as_nanos() > 0, "mttf must be positive");
        assert!(mttr.as_nanos() > 0, "mttr must be positive");
        let fail_rate = 1.0 / (mttf.as_nanos() as f64);
        let heal_rate = 1.0 / (mttr.as_nanos() as f64);
        let end = SimTime::ZERO + horizon;
        let mut plan = FaultPlan::new();
        for node in nodes {
            let mut rng = DetRng::stream(seed, node as u64);
            let mut t = SimTime::ZERO;
            loop {
                // Draws are in nanoseconds (rate = 1/mean-ns); round up
                // so a dwell is never zero-length.
                let up = SimDuration::from_nanos(rng.gen_exp(fail_rate).ceil() as u64)
                    .max(SimDuration::from_nanos(1));
                t += up;
                if t >= end {
                    break;
                }
                plan = plan.crash(node, t);
                let down = SimDuration::from_nanos(rng.gen_exp(heal_rate).ceil() as u64)
                    .max(SimDuration::from_nanos(1));
                t += down;
                if t >= end {
                    break;
                }
                plan = plan.recover(node, t);
            }
        }
        plan
    }

    /// Parse a fault plan from a trace file: one event per line,
    /// whitespace-separated, `#`-comments and blank lines ignored.
    ///
    /// ```text
    /// crash    <node> <at_ns>
    /// recover  <node> <at_ns>
    /// degrade  <node> <at_ns> <cpu_factor> <disk_factor>
    /// linkloss <from> <to> <at_ns> <drop_prob>
    /// ```
    pub fn from_trace(text: &str) -> Result<FaultPlan, TraceError> {
        fn field<'a, T: std::str::FromStr>(
            fields: &mut std::str::SplitWhitespace<'a>,
            line: usize,
            what: &str,
        ) -> Result<T, TraceError> {
            let raw = fields.next().ok_or_else(|| TraceError {
                line,
                reason: format!("missing {what}"),
            })?;
            raw.parse().map_err(|_| TraceError {
                line,
                reason: format!("bad {what}: {raw:?}"),
            })
        }
        let mut plan = FaultPlan::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("");
            let mut fields = body.split_whitespace();
            let Some(kind) = fields.next() else { continue };
            plan = match kind {
                "crash" => {
                    let node = field(&mut fields, line, "node")?;
                    let at = SimTime(field(&mut fields, line, "time")?);
                    plan.crash(node, at)
                }
                "recover" => {
                    let node = field(&mut fields, line, "node")?;
                    let at = SimTime(field(&mut fields, line, "time")?);
                    plan.recover(node, at)
                }
                "degrade" => {
                    let node = field(&mut fields, line, "node")?;
                    let at = SimTime(field(&mut fields, line, "time")?);
                    let cpu: f64 = field(&mut fields, line, "cpu_factor")?;
                    let disk: f64 = field(&mut fields, line, "disk_factor")?;
                    if !(cpu > 0.0 && cpu <= 1.0 && disk > 0.0 && disk <= 1.0) {
                        return Err(TraceError {
                            line,
                            reason: format!("degrade factors out of (0, 1]: {cpu} {disk}"),
                        });
                    }
                    plan.degrade(node, at, cpu, disk)
                }
                "linkloss" => {
                    let from = field(&mut fields, line, "from")?;
                    let to = field(&mut fields, line, "to")?;
                    let at = SimTime(field(&mut fields, line, "time")?);
                    let p: f64 = field(&mut fields, line, "drop_prob")?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(TraceError {
                            line,
                            reason: format!("drop_prob out of [0, 1]: {p}"),
                        });
                    }
                    plan.link_loss(from, to, at, p)
                }
                other => {
                    return Err(TraceError {
                        line,
                        reason: format!("unknown event kind {other:?}"),
                    })
                }
            };
            if fields.next().is_some() {
                return Err(TraceError {
                    line,
                    reason: "trailing fields".into(),
                });
            }
        }
        Ok(plan)
    }

    /// Render this plan in the [`FaultPlan::from_trace`] format
    /// (insertion order; round-trips exactly).
    pub fn to_trace(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::Crash { node, at } => {
                    let _ = writeln!(out, "crash {node} {}", at.as_nanos());
                }
                FaultEvent::Recover { node, at } => {
                    let _ = writeln!(out, "recover {node} {}", at.as_nanos());
                }
                FaultEvent::Degrade {
                    node,
                    at,
                    cpu_factor,
                    disk_factor,
                } => {
                    let _ = writeln!(
                        out,
                        "degrade {node} {} {cpu_factor} {disk_factor}",
                        at.as_nanos()
                    );
                }
                FaultEvent::LinkLoss {
                    from,
                    to,
                    at,
                    drop_prob,
                } => {
                    let _ = writeln!(out, "linkloss {from} {to} {} {drop_prob}", at.as_nanos());
                }
            }
        }
        out
    }
}

/// A malformed line in a fault-plan trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

/// Bounded exponential backoff with deterministic jitter.
///
/// Retry `k` (1-based) waits a uniformly jittered duration in
/// `[d/2, d]` where `d = min(base · 2^(k-1), cap)`; after
/// `max_attempts` retries the delivery is declared failed. All jitter
/// comes from the caller's [`DetRng`] stream, so the schedule is a pure
/// function of (seed, stream, attempt sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// First-retry target delay.
    pub base: SimDuration,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Retries allowed before the delivery fails (0 disables retrying).
    pub max_attempts: u32,
}

impl BackoffPolicy {
    /// A policy retrying `max_attempts` times from `base` up to `cap`.
    pub fn new(base: SimDuration, cap: SimDuration, max_attempts: u32) -> BackoffPolicy {
        assert!(base.as_nanos() > 0, "backoff base must be positive");
        assert!(cap >= base, "backoff cap below base");
        BackoffPolicy {
            base,
            cap,
            max_attempts,
        }
    }

    /// 2002-era defaults: 200µs base, 20ms cap, 8 attempts.
    pub fn default_2002() -> BackoffPolicy {
        BackoffPolicy::new(
            SimDuration::from_micros(200),
            SimDuration::from_millis(20),
            8,
        )
    }

    /// The jittered delay before retry `attempt` (1-based), or `None`
    /// when the attempt budget is exhausted.
    pub fn delay(&self, attempt: u32, rng: &mut DetRng) -> Option<SimDuration> {
        if attempt == 0 || attempt > self.max_attempts {
            return None;
        }
        let shift = (attempt - 1).min(32);
        let target = self
            .base
            .as_nanos()
            .saturating_mul(1u64 << shift)
            .min(self.cap.as_nanos())
            .max(1);
        // Uniform in [target/2, target]: half deterministic floor, half
        // jitter, so retries from co-failing senders decorrelate without
        // ever collapsing to zero delay.
        let half = target / 2;
        let jitter = rng.gen_range(target - half + 1);
        Some(SimDuration::from_nanos(half + jitter))
    }

    /// Worst-case total delay across every retry (no jitter shortfall):
    /// an upper bound on how long a sender can keep a packet alive.
    pub fn max_total_delay(&self) -> SimDuration {
        let mut total = 0u64;
        for attempt in 1..=self.max_attempts {
            let shift = (attempt - 1).min(32);
            total = total.saturating_add(
                self.base
                    .as_nanos()
                    .saturating_mul(1u64 << shift)
                    .min(self.cap.as_nanos()),
            );
        }
        SimDuration::from_nanos(total)
    }
}

/// A one-shot, rearmable timeout bound to one actor.
///
/// Wraps an [`EventToken`] so timeout protocols (heartbeats, delivery
/// deadlines) can re-arm without leaking stale events: `arm` cancels any
/// outstanding shot first, using the indexed calendar's O(1) cancel.
/// When the timeout fires, call [`Timer::clear`] in the handler so the
/// handle stops referring to the delivered event (a stale token is
/// harmless — generation checks make cancel a no-op — but `is_armed`
/// would misreport).
#[derive(Debug, Default)]
pub struct Timer {
    token: Option<EventToken>,
}

impl Timer {
    /// A timer with no outstanding shot.
    pub fn idle() -> Timer {
        Timer { token: None }
    }

    /// Arm (or re-arm) the timer: deliver `msg` to the calling actor
    /// after `delay`, cancelling any previously armed shot.
    pub fn arm<M>(&mut self, ctx: &mut Ctx<'_, M>, delay: SimDuration, msg: M) {
        self.disarm(ctx);
        self.token = Some(ctx.timer(delay, msg));
    }

    /// Cancel the outstanding shot, if any.
    pub fn disarm<M>(&mut self, ctx: &mut Ctx<'_, M>) {
        if let Some(tok) = self.token.take() {
            ctx.cancel(tok);
        }
    }

    /// Forget the outstanding token without cancelling (call when the
    /// shot has just been delivered).
    pub fn clear(&mut self) {
        self.token = None;
    }

    /// Is a shot outstanding?
    pub fn is_armed(&self) -> bool {
        self.token.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Ctx, Simulation};
    use crate::time::{SimDuration, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn plan_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .recover(1, SimTime(50))
            .crash(0, SimTime(10))
            .crash(1, SimTime(10))
            .degrade(2, SimTime(30), 0.5, 0.5);
        let evs = plan.sorted_events();
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs[0],
            FaultEvent::Crash {
                node: 0,
                at: SimTime(10)
            }
        );
        assert_eq!(
            evs[1],
            FaultEvent::Crash {
                node: 1,
                at: SimTime(10)
            }
        );
        assert_eq!(evs[2].node(), 2);
        assert_eq!(
            evs[3],
            FaultEvent::Recover {
                node: 1,
                at: SimTime(50)
            }
        );
        assert!(FaultPlan::new().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn backoff_is_bounded_exponential_and_deterministic() {
        let p = BackoffPolicy::new(
            SimDuration::from_nanos(1_000),
            SimDuration::from_nanos(8_000),
            5,
        );
        let mut r1 = DetRng::stream(7, 3);
        let mut r2 = DetRng::stream(7, 3);
        let d1: Vec<Option<SimDuration>> = (1..=6).map(|a| p.delay(a, &mut r1)).collect();
        let d2: Vec<Option<SimDuration>> = (1..=6).map(|a| p.delay(a, &mut r2)).collect();
        assert_eq!(d1, d2, "same stream, same schedule");
        // Attempts within budget produce delays in [target/2, target].
        for (i, d) in d1.iter().take(5).enumerate() {
            let target = (1_000u64 << i).min(8_000);
            let d = d.expect("within budget").as_nanos();
            assert!(d >= target / 2 && d <= target, "attempt {}: {d}", i + 1);
        }
        // Budget exhausted.
        assert_eq!(d1[5], None);
        assert_eq!(p.delay(0, &mut r1), None, "attempt numbering is 1-based");
        // Worst-case sum: 1 + 2 + 4 + 8 + 8 (capped) = 23µs-in-ns.
        assert_eq!(p.max_total_delay().as_nanos(), 23_000);
    }

    #[test]
    fn timer_rearm_cancels_previous_shot() {
        let fired: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let f = fired.clone();
        let timer: Rc<RefCell<Timer>> = Rc::new(RefCell::new(Timer::idle()));
        let t = timer.clone();
        let mut sim: Simulation<&'static str> = Simulation::new(0);
        let a = sim.add_actor(Box::new(
            move |ctx: &mut Ctx<'_, &'static str>, m| match m {
                "start" => {
                    let mut tm = t.borrow_mut();
                    tm.arm(ctx, SimDuration::from_nanos(100), "first");
                    assert!(tm.is_armed());
                    // Re-arming replaces the first shot entirely.
                    tm.arm(ctx, SimDuration::from_nanos(50), "second");
                }
                "second" => {
                    let mut tm = t.borrow_mut();
                    tm.clear();
                    assert!(!tm.is_armed());
                    f.borrow_mut().push("second");
                }
                other => panic!("stale shot fired: {other}"),
            },
        ));
        sim.seed_message(a, SimTime::ZERO, "start");
        sim.run();
        assert_eq!(*fired.borrow(), vec!["second"]);
    }

    #[test]
    fn poisson_same_seed_identical() {
        let mttf = SimDuration::from_secs(40);
        let mttr = SimDuration::from_secs(2);
        let horizon = SimDuration::from_secs(600);
        let a = FaultPlan::poisson(9, 0..8, mttf, mttr, horizon);
        let b = FaultPlan::poisson(9, 0..8, mttf, mttr, horizon);
        assert_eq!(a, b, "same seed, same plan");
        assert!(
            !a.is_empty(),
            "600s horizon at 40s MTTF must produce crashes"
        );
        let c = FaultPlan::poisson(10, 0..8, mttf, mttr, horizon);
        assert_ne!(a, c, "different seed, different plan");
        // Per-node timelines are seed-stable under fleet growth: the
        // first 8 nodes of a 16-node plan match the 8-node plan.
        let wide = FaultPlan::poisson(9, 0..16, mttf, mttr, horizon);
        let narrow: Vec<_> = wide
            .sorted_events()
            .into_iter()
            .filter(|e| e.node() < 8)
            .collect();
        assert_eq!(a.sorted_events(), narrow);
    }

    #[test]
    fn poisson_alternates_crash_recover_within_horizon() {
        let plan = FaultPlan::poisson(
            3,
            0..4,
            SimDuration::from_secs(30),
            SimDuration::from_secs(3),
            SimDuration::from_secs(500),
        );
        let end = SimTime::ZERO + SimDuration::from_secs(500);
        let mut up = [true; 4];
        for ev in plan.sorted_events() {
            assert!(ev.at() < end, "event past horizon: {ev:?}");
            match ev {
                FaultEvent::Crash { node, .. } => {
                    assert!(up[node], "crash of an already-down node");
                    up[node] = false;
                }
                FaultEvent::Recover { node, .. } => {
                    assert!(!up[node], "recovery of an up node");
                    up[node] = true;
                }
                other => panic!("poisson emitted {other:?}"),
            }
        }
    }

    #[test]
    fn trace_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::new()
            .crash(3, SimTime(1_000))
            .recover(3, SimTime(2_000))
            .degrade(1, SimTime(1_500), 0.5, 0.25)
            .link_loss(0, 2, SimTime(500), 0.1);
        let text = plan.to_trace();
        let back = FaultPlan::from_trace(&text).expect("round trip parses");
        assert_eq!(plan, back);

        let commented = "# header\n\n  crash 1 10 # inline\nrecover 1 20\n";
        let p = FaultPlan::from_trace(commented).expect("comments ignored");
        assert_eq!(p.len(), 2);

        let bad_kind = FaultPlan::from_trace("explode 1 10\n").unwrap_err();
        assert_eq!(bad_kind.line, 1);
        assert!(bad_kind.reason.contains("explode"), "{bad_kind}");
        let missing = FaultPlan::from_trace("crash 1\n").unwrap_err();
        assert!(missing.reason.contains("missing time"), "{missing}");
        let bad_prob = FaultPlan::from_trace("linkloss 0 1 10 1.5\n").unwrap_err();
        assert!(bad_prob.reason.contains("drop_prob"), "{bad_prob}");
        let trailing = FaultPlan::from_trace("crash 1 10 extra\n").unwrap_err();
        assert!(trailing.reason.contains("trailing"), "{trailing}");
        let bad_factor = FaultPlan::from_trace("degrade 1 10 0.0 0.5\n").unwrap_err();
        assert!(bad_factor.reason.contains("factors"), "{bad_factor}");
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn link_loss_rejects_bad_probability() {
        let _ = FaultPlan::new().link_loss(0, 1, SimTime::ZERO, 1.5);
    }

    #[test]
    #[should_panic(expected = "cpu_factor")]
    fn degrade_rejects_zero_factor() {
        let _ = FaultPlan::new().degrade(0, SimTime::ZERO, 0.0, 0.5);
    }
}
