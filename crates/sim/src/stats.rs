//! Measurement primitives: counters, time-weighted values, utilization
//! ledgers, and simple histograms.
//!
//! The emulator's instrumentation (Section 5 of the paper reports
//! "application progress, overall runtime, and resource utilization for
//! each host and ASU") is built from these pieces.

use crate::time::{SimDuration, SimTime};

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn bump(&mut self) {
        self.0 += 1;
    }
    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
    /// Fold another partition's counter into this one.
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

/// Integral of a piecewise-constant value over virtual time; yields the
/// time-weighted mean (e.g. mean queue depth).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64, // value * ns
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            value: v0,
            last_change: t0,
            integral: 0.0,
            start: t0,
            peak: v0,
        }
    }

    /// Record that the value changed to `v` at time `now` (must be >= the
    /// previous change time).
    pub fn set(&mut self, now: SimTime, v: f64) {
        assert!(now >= self.last_change, "TimeWeighted updates must be in order");
        self.integral += self.value * now.since(self.last_change).as_nanos() as f64;
        self.last_change = now;
        self.value = v;
        if v > self.peak {
            self.peak = v;
        }
    }

    /// Adjust the value by `delta` at `now`.
    pub fn adjust(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value seen.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let tail = self.value * now.saturating_since(self.last_change).as_nanos() as f64;
        let span = now.saturating_since(self.start).as_nanos() as f64;
        if span == 0.0 {
            self.value
        } else {
            (self.integral + tail) / span
        }
    }
}

/// Busy-time ledger with fixed-width bins, for utilization-vs-time series
/// like the paper's Figure 10.
///
/// `add_busy(start, end)` marks the half-open interval `[start, end)` as
/// busy, spreading it across bins. `utilization(bin)` is busy-ns / bin-ns.
#[derive(Debug, Clone)]
pub struct UtilizationLedger {
    bin_width: SimDuration,
    bins: Vec<u64>, // busy ns per bin
    total_busy: SimDuration,
}

impl UtilizationLedger {
    /// A ledger with the given bin width. Panics on zero width.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(bin_width > SimDuration::ZERO, "bin width must be positive");
        UtilizationLedger {
            bin_width,
            bins: Vec::new(),
            total_busy: SimDuration::ZERO,
        }
    }

    /// Mark `[start, end)` busy. Overlapping charges accumulate (callers
    /// modelling a single server should never overlap; multi-server
    /// callers may exceed 1.0 utilization per bin deliberately).
    pub fn add_busy(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        self.total_busy += end.since(start);
        let w = self.bin_width.as_nanos();
        let mut s = start.as_nanos();
        let e = end.as_nanos();
        // Fast path: the whole interval lands in one bin — the common
        // case, with µs-scale service times against 100ms default bins.
        let bin = (s / w) as usize;
        if e <= (bin as u64 + 1) * w {
            if self.bins.len() <= bin {
                self.bins.resize(bin + 1, 0);
            }
            self.bins[bin] += e - s;
            return;
        }
        while s < e {
            let bin = (s / w) as usize;
            let bin_end = (bin as u64 + 1) * w;
            let chunk = e.min(bin_end) - s;
            if self.bins.len() <= bin {
                self.bins.resize(bin + 1, 0);
            }
            self.bins[bin] += chunk;
            s += chunk;
        }
    }

    /// Total busy time recorded.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Utilization in `[0,1]`-ish per bin, up to and including the bin
    /// containing `horizon` (trailing empty bins included so series align).
    pub fn series(&self, horizon: SimTime) -> Vec<f64> {
        let w = self.bin_width.as_nanos();
        let nbins = (horizon.as_nanos() / w + 1) as usize;
        let mut out = Vec::with_capacity(nbins);
        for i in 0..nbins {
            let busy = self.bins.get(i).copied().unwrap_or(0);
            out.push(busy as f64 / w as f64);
        }
        out
    }

    /// The bin width this ledger was built with.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Mean utilization over `[0, horizon]`.
    pub fn mean_utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.total_busy.as_nanos() as f64 / horizon.as_nanos() as f64
    }

    /// Fold another ledger (same bin width) into this one, bin-wise.
    /// Busy intervals are disjoint facts about virtual time, so the merge
    /// of per-partition ledgers equals the sequential ledger exactly —
    /// bins are integer nanosecond sums, with no float accumulation
    /// order to worry about.
    pub fn merge(&mut self, other: &UtilizationLedger) {
        assert_eq!(
            self.bin_width, other.bin_width,
            "cannot merge ledgers with different bin widths"
        );
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.total_busy += other.total_busy;
    }
}

/// A power-of-two bucketed histogram of durations (latency distributions).
#[derive(Debug, Clone, Default)]
pub struct DurationHistogram {
    // bucket i counts samples with floor(log2(ns)) == i; bucket 0 also
    // holds zero-length samples.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl DurationHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let bucket = if ns == 0 { 0 } else { 63 - ns.leading_zeros() as usize };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.max = self.max.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration((self.sum / self.count as u128) as u64)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration(self.max)
    }

    /// Fold another histogram into this one, bucket-wise. Exact: buckets,
    /// counts, sums, and maxima are all order-independent.
    pub fn merge(&mut self, other: &DurationHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Approximate quantile (upper edge of the bucket containing it).
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return SimDuration(1u64 << (i + 1).min(63));
            }
        }
        SimDuration(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn time_weighted_mean_of_step_function() {
        // value 0 on [0,10), 4 on [10,20): mean over [0,20] = 2
        let mut tw = TimeWeighted::new(SimTime(0), 0.0);
        tw.set(SimTime(10), 4.0);
        assert!((tw.mean(SimTime(20)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_adjust_tracks_queue_depth() {
        let mut tw = TimeWeighted::new(SimTime(0), 0.0);
        tw.adjust(SimTime(0), 1.0); // arrival
        tw.adjust(SimTime(5), 1.0); // arrival
        tw.adjust(SimTime(10), -1.0); // departure
        // depth: 1 on [0,5), 2 on [5,10), 1 on [10,20)
        let mean = tw.mean(SimTime(20));
        assert!((mean - (5.0 + 10.0 + 10.0) / 20.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_splits_interval_across_bins() {
        let mut l = UtilizationLedger::new(SimDuration(10));
        l.add_busy(SimTime(5), SimTime(25)); // bins 0:[5,10)=5, 1:[10,20)=10, 2:[20,25)=5
        let s = l.series(SimTime(29));
        assert_eq!(s.len(), 3);
        assert!((s[0] - 0.5).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert!((s[2] - 0.5).abs() < 1e-12);
        assert_eq!(l.total_busy(), SimDuration(20));
    }

    #[test]
    fn ledger_empty_interval_is_noop() {
        let mut l = UtilizationLedger::new(SimDuration(10));
        l.add_busy(SimTime(5), SimTime(5));
        assert_eq!(l.total_busy(), SimDuration::ZERO);
        assert_eq!(l.series(SimTime(0)), vec![0.0]);
    }

    #[test]
    fn ledger_mean_utilization() {
        let mut l = UtilizationLedger::new(SimDuration(10));
        l.add_busy(SimTime(0), SimTime(50));
        assert!((l.mean_utilization(SimTime(100)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_mean_max_quantiles() {
        let mut h = DurationHistogram::new();
        for ns in [1u64, 2, 4, 8, 1024] {
            h.record(SimDuration(ns));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), SimDuration((1 + 2 + 4 + 8 + 1024) / 5));
        assert_eq!(h.max(), SimDuration(1024));
        assert!(h.quantile(0.5) >= SimDuration(2));
        assert!(h.quantile(1.0) >= SimDuration(1024));
    }

    #[test]
    fn histogram_zero_duration_goes_to_bucket_zero() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn merges_equal_the_unpartitioned_aggregates() {
        // Counter: partition sums == whole.
        let mut c = Counter(3);
        c.merge(Counter(4));
        assert_eq!(c.get(), 7);

        // Ledger: splitting the busy intervals across two ledgers and
        // merging reproduces the single-ledger series bit-for-bit.
        let mut whole = UtilizationLedger::new(SimDuration(10));
        whole.add_busy(SimTime(5), SimTime(25));
        whole.add_busy(SimTime(30), SimTime(31));
        let mut a = UtilizationLedger::new(SimDuration(10));
        let mut b = UtilizationLedger::new(SimDuration(10));
        a.add_busy(SimTime(5), SimTime(25));
        b.add_busy(SimTime(30), SimTime(31));
        a.merge(&b);
        assert_eq!(a.series(SimTime(35)), whole.series(SimTime(35)));
        assert_eq!(a.total_busy(), whole.total_busy());

        // Histogram: bucket-wise merge matches recording everything in one.
        let mut whole_h = DurationHistogram::new();
        let mut ha = DurationHistogram::new();
        let mut hb = DurationHistogram::new();
        for ns in [1u64, 2, 4, 8, 1024] {
            whole_h.record(SimDuration(ns));
        }
        for ns in [1u64, 4, 1024] {
            ha.record(SimDuration(ns));
        }
        for ns in [2u64, 8] {
            hb.record(SimDuration(ns));
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), whole_h.count());
        assert_eq!(ha.mean(), whole_h.mean());
        assert_eq!(ha.max(), whole_h.max());
        assert_eq!(ha.quantile(0.5), whole_h.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn ledger_merge_rejects_mismatched_bins() {
        let mut a = UtilizationLedger::new(SimDuration(10));
        let b = UtilizationLedger::new(SimDuration(20));
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn time_weighted_rejects_out_of_order() {
        let mut tw = TimeWeighted::new(SimTime(10), 0.0);
        tw.set(SimTime(5), 1.0);
    }
}
