//! The simulation engine: an actor loop over the event calendar.
//!
//! The engine owns a set of actors and an [`EventQueue`] of addressed
//! messages. `run` repeatedly pops the earliest message, advances virtual
//! time, and dispatches to the destination actor, which may send further
//! messages (to itself or others, now or later) through the [`Ctx`] handle.
//!
//! The paper's emulator stores per-node execution context in OS threads and
//! lets the event queue drive context switches. We keep the same semantics
//! — nodes make progress only when the calendar says so, in causal order —
//! but express each node as an explicit state machine, which needs no
//! threads and is deterministic by construction.

use crate::event::{EventQueue, EventToken};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// A simulation participant. Actors are state machines: all behaviour
/// happens in response to a delivered message.
pub trait Actor<M> {
    /// Handle a message delivered at the current virtual time.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M);
}

/// Blanket impl so closures can serve as simple actors in tests.
impl<M, F: FnMut(&mut Ctx<'_, M>, M)> Actor<M> for F {
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        self(ctx, msg)
    }
}

struct Envelope<M> {
    to: ActorId,
    msg: M,
}

/// Handle through which an actor interacts with the engine during dispatch.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: ActorId,
    queue: &'a mut EventQueue<Envelope<M>>,
    rng: &'a mut DetRng,
    stop: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor being dispatched.
    #[inline]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Send `msg` to `to` after `delay`.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M) -> EventToken {
        self.queue.schedule(self.now + delay, Envelope { to, msg })
    }

    /// Send `msg` to `to` at the current instant (fires after all messages
    /// already scheduled for this instant — scheduling order is preserved).
    pub fn send_now(&mut self, to: ActorId, msg: M) -> EventToken {
        self.send(to, SimDuration::ZERO, msg)
    }

    /// Send `msg` to `to` at absolute time `at` (must be >= now).
    pub fn send_at(&mut self, to: ActorId, at: SimTime, msg: M) -> EventToken {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule(at, Envelope { to, msg })
    }

    /// Schedule a message to self.
    pub fn timer(&mut self, delay: SimDuration, msg: M) -> EventToken {
        self.send(self.me, delay, msg)
    }

    /// Cancel a previously scheduled message.
    pub fn cancel(&mut self, token: EventToken) {
        self.queue.cancel(token);
    }

    /// Engine-level RNG stream (distinct from per-component streams an
    /// actor may own). Deterministic across runs.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Ask the engine to stop after this dispatch completes; pending
    /// events stay in the calendar.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

/// Outcome of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar drained: no live events remain.
    Drained,
    /// An actor called [`Ctx::request_stop`].
    Stopped,
    /// The time horizon passed before the calendar drained.
    HorizonReached,
}

/// A deterministic discrete-event simulation over actors exchanging
/// messages of type `M`.
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    queue: EventQueue<Envelope<M>>,
    now: SimTime,
    rng: DetRng,
    dispatched: u64,
}

impl<M> Simulation<M> {
    /// New simulation at `t=0` with the given master seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            actors: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: DetRng::stream(seed, u64::MAX),
            dispatched: 0,
        }
    }

    /// Register an actor; returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        id
    }

    /// Pre-allocate an actor slot to obtain its id before construction
    /// (for mutually referencing actors). The slot must be filled with
    /// [`Simulation::install`] before any message reaches it.
    pub fn reserve_actor(&mut self) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(None);
        id
    }

    /// Fill a slot created by [`Simulation::reserve_actor`].
    pub fn install(&mut self, id: ActorId, actor: Box<dyn Actor<M>>) {
        assert!(
            self.actors[id.0].is_none(),
            "actor slot {id:?} already installed"
        );
        self.actors[id.0] = Some(actor);
    }

    /// Schedule an initial message before the run starts.
    pub fn seed_message(&mut self, to: ActorId, at: SimTime, msg: M) -> EventToken {
        self.queue.schedule(at, Envelope { to, msg })
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Run until the calendar drains, an actor requests a stop, or virtual
    /// time would exceed `horizon`.
    ///
    /// The loop allocates nothing per dispatch: envelopes are recycled
    /// through the calendar's slot free list, and the horizon check is
    /// folded into the pop ([`EventQueue::pop_not_after`]) instead of a
    /// separate peek.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let mut stop = false;
        loop {
            let Some((t, env)) = self.queue.pop_not_after(horizon) else {
                return if self.queue.is_empty() {
                    RunOutcome::Drained
                } else {
                    RunOutcome::HorizonReached
                };
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatched += 1;
            let mut actor = self.actors[env.to.0]
                .take()
                .unwrap_or_else(|| panic!("message to uninstalled actor {:?}", env.to));
            {
                let mut ctx = Ctx {
                    now: self.now,
                    me: env.to,
                    queue: &mut self.queue,
                    rng: &mut self.rng,
                    stop: &mut stop,
                };
                actor.on_message(&mut ctx, env.msg);
            }
            self.actors[env.to.0] = Some(actor);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// Run until the calendar drains or an actor requests a stop.
    pub fn run(&mut self) -> RunOutcome {
        // NEVER-1 keeps the horizon comparison strict but unreachable.
        self.run_until(SimTime(u64::MAX - 1))
    }

    /// Mutable access to a registered actor between runs (e.g. to harvest
    /// results). Panics if the actor is mid-dispatch (impossible between
    /// runs) or uninstalled.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        self.actors[id.0]
            .as_deref_mut()
            .expect("actor uninstalled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn ping_pong_alternates_in_time() {
        #[derive(Debug, PartialEq)]
        enum Msg {
            Ping(u32),
            Pong(u32),
        }
        let log: Rc<RefCell<Vec<(u64, String)>>> = Rc::default();
        let mut sim: Simulation<Msg> = Simulation::new(0);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();

        let log_a = log.clone();
        sim.install(
            a,
            Box::new(move |ctx: &mut Ctx<'_, Msg>, msg: Msg| {
                if let Msg::Pong(n) = msg {
                    log_a.borrow_mut().push((ctx.now().as_nanos(), format!("pong{n}")));
                    if n < 3 {
                        ctx.send(b, SimDuration::from_nanos(10), Msg::Ping(n + 1));
                    }
                }
            }),
        );
        let log_b = log.clone();
        sim.install(
            b,
            Box::new(move |ctx: &mut Ctx<'_, Msg>, msg: Msg| {
                if let Msg::Ping(n) = msg {
                    log_b.borrow_mut().push((ctx.now().as_nanos(), format!("ping{n}")));
                    ctx.send(a, SimDuration::from_nanos(5), Msg::Pong(n));
                }
            }),
        );
        sim.seed_message(b, SimTime(0), Msg::Ping(1));
        assert_eq!(sim.run(), RunOutcome::Drained);
        let got = log.borrow().clone();
        assert_eq!(
            got,
            vec![
                (0, "ping1".into()),
                (5, "pong1".into()),
                (15, "ping2".into()),
                (20, "pong2".into()),
                (30, "ping3".into()),
                (35, "pong3".into()),
            ]
        );
    }

    #[test]
    fn horizon_stops_before_late_events() {
        let fired: Rc<RefCell<u32>> = Rc::default();
        let mut sim: Simulation<()> = Simulation::new(0);
        let f = fired.clone();
        let a = sim.add_actor(Box::new(move |_: &mut Ctx<'_, ()>, ()| {
            *f.borrow_mut() += 1;
        }));
        sim.seed_message(a, SimTime(10), ());
        sim.seed_message(a, SimTime(1000), ());
        assert_eq!(sim.run_until(SimTime(100)), RunOutcome::HorizonReached);
        assert_eq!(*fired.borrow(), 1);
        // The late event is still pending; a later run picks it up.
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*fired.borrow(), 2);
    }

    #[test]
    fn request_stop_halts_immediately() {
        let mut sim: Simulation<u32> = Simulation::new(0);
        let count: Rc<RefCell<u32>> = Rc::default();
        let c = count.clone();
        let a = sim.add_actor(Box::new(move |ctx: &mut Ctx<'_, u32>, n: u32| {
            *c.borrow_mut() += 1;
            if n == 2 {
                ctx.request_stop();
            }
        }));
        for i in 1..=5 {
            sim.seed_message(a, SimTime(i), i as u32);
        }
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(*count.borrow(), 2);
        assert_eq!(sim.now(), SimTime(2));
    }

    #[test]
    fn determinism_same_seed_same_dispatch_trace() {
        fn run(seed: u64) -> Vec<u64> {
            let trace: Rc<RefCell<Vec<u64>>> = Rc::default();
            let mut sim: Simulation<u32> = Simulation::new(seed);
            let t = trace.clone();
            let a = sim.add_actor(Box::new(move |ctx: &mut Ctx<'_, u32>, hops: u32| {
                t.borrow_mut().push(ctx.now().as_nanos());
                if hops > 0 {
                    let d = SimDuration::from_nanos(ctx.rng().gen_range(100) + 1);
                    let me = ctx.me();
                    ctx.send(me, d, hops - 1);
                }
            }));
            sim.seed_message(a, SimTime(0), 50);
            sim.run();
            let out = trace.borrow().clone();
            out
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn send_at_past_panics() {
        let mut sim: Simulation<()> = Simulation::new(0);
        let a = sim.add_actor(Box::new(|ctx: &mut Ctx<'_, ()>, ()| {
            let me = ctx.me();
            ctx.send_at(me, SimTime(0), ());
        }));
        sim.seed_message(a, SimTime(10), ());
        sim.run();
    }

    #[test]
    fn timer_cancellation_suppresses_delivery() {
        let fired: Rc<RefCell<u32>> = Rc::default();
        let mut sim: Simulation<&'static str> = Simulation::new(0);
        let f = fired.clone();
        let a = sim.add_actor(Box::new(move |ctx: &mut Ctx<'_, &'static str>, m| {
            match m {
                "start" => {
                    let tok = ctx.timer(SimDuration::from_nanos(100), "late");
                    ctx.cancel(tok);
                    ctx.timer(SimDuration::from_nanos(50), "kept");
                }
                "kept" => *f.borrow_mut() += 1,
                "late" => panic!("cancelled timer fired"),
                _ => unreachable!(),
            }
        }));
        sim.seed_message(a, SimTime(0), "start");
        sim.run();
        assert_eq!(*fired.borrow(), 1);
    }
}
