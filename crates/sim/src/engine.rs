//! The simulation engine: an actor loop over the event calendar.
//!
//! The engine owns a set of actors and an [`EventQueue`] of addressed
//! messages. `run` repeatedly pops the earliest message, advances virtual
//! time, and dispatches to the destination actor, which may send further
//! messages (to itself or others, now or later) through the [`Ctx`] handle.
//!
//! The paper's emulator stores per-node execution context in OS threads and
//! lets the event queue drive context switches. We keep the same semantics
//! — nodes make progress only when the calendar says so, in causal order —
//! but express each node as an explicit state machine, which needs no
//! threads and is deterministic by construction.
//!
//! # Partitioned mode
//!
//! A `Simulation` can alternatively be created as one *partition* of a
//! parallel run (see the [`crate::par`] coordinator). The actor-id space is
//! global — every partition calls [`Simulation::reserve_to`] so ids agree —
//! but each partition installs only the actors it owns and runs its own
//! keyed calendar ([`crate::event::KeyedQueue`]). Sends to non-owned actors
//! are buffered in an outbox and flushed between lookahead windows; the
//! composite [`crate::event::EventKey`] reproduces the sequential
//! dispatch order exactly, so virtual time is byte-identical to a
//! single-threaded run. Cancellation and `request_stop` are not available
//! in this mode (the conservative window protocol cannot retract or halt
//! remote progress); both panic.

use crate::event::{EventKey, EventQueue, EventToken, KeyedQueue};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use std::sync::Arc;

/// Identifies an actor registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

/// A simulation participant. Actors are state machines: all behaviour
/// happens in response to a delivered message.
pub trait Actor<M> {
    /// Handle a message delivered at the current virtual time.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M);
}

/// Blanket impl so closures can serve as simple actors in tests.
impl<M, F: FnMut(&mut Ctx<'_, M>, M)> Actor<M> for F {
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, msg: M) {
        self(ctx, msg)
    }
}

struct Envelope<M> {
    to: ActorId,
    msg: M,
}

/// A cross-partition message in flight: the destination partition pushes
/// it into its keyed calendar at the next window boundary.
pub(crate) struct RemoteEvent<M> {
    pub(crate) key: EventKey,
    pub(crate) to: ActorId,
    pub(crate) msg: M,
}

/// Partitioned-mode calendar state: a keyed queue for owned events plus
/// the bookkeeping that makes locally-computed keys globally consistent.
struct ParCal<M> {
    queue: KeyedQueue<Envelope<M>>,
    /// This partition's index.
    part: u32,
    /// Owning partition of every actor id (global, shared).
    owners: Arc<Vec<u32>>,
    /// Minimum virtual latency of any cross-partition send.
    lookahead: SimDuration,
    /// Partition-chronological send counter (bits 15..63 of the event
    /// key). Increments on *every* send this partition makes, in dispatch
    /// order — the local restriction of the sequential engine's global
    /// sequence number, and exactly that number when the run has a
    /// single partition.
    ctr: u64,
    /// Key `(sched, packed)` of the event currently being dispatched.
    cur: (u64, u64),
    /// Partition-chronological *seed* counter (bits 15..63 of a seed's
    /// event key, kind bit clear). Same-instant seeds to one actor would
    /// collide under any id-derived tiebreak; issuance order is the
    /// sequential insertion order, so the counter reproduces it exactly.
    seed_ctr: u64,
    /// Cross-partition sends buffered until the window boundary, bucketed
    /// by destination partition so the coordinator can hand each bucket
    /// over with a single lock acquisition.
    outbox: Vec<Vec<RemoteEvent<M>>>,
    remote_sent: u64,
}

impl<M> ParCal<M> {
    fn send(&mut self, now: SimTime, _from: ActorId, to: ActorId, at: SimTime, msg: M) {
        let c = self.ctr;
        self.ctr += 1;
        assert!(c < 1 << 48, "partition send counter overflows the event key");
        let packed = (1u64 << 63) | (c << 15) | self.part as u64;
        let key = EventKey { at, sched: now.as_nanos(), packed };
        let dest = self.owners[to.0];
        if dest == self.part {
            self.queue.push(key, Envelope { to, msg });
        } else {
            // Conservative synchronization is only sound if every remote
            // arrival lands beyond the current lookahead window.
            assert!(
                at >= now + self.lookahead,
                "cross-partition send violates the lookahead bound"
            );
            self.remote_sent += 1;
            self.outbox[dest as usize].push(RemoteEvent { key, to, msg });
        }
    }
}

/// The event calendar: a sequential queue with tokens and cancellation,
/// or one partition's keyed calendar in parallel mode.
enum Calendar<M> {
    Seq(EventQueue<Envelope<M>>),
    Par(Box<ParCal<M>>),
}

/// Handle through which an actor interacts with the engine during dispatch.
pub struct Ctx<'a, M> {
    now: SimTime,
    me: ActorId,
    cal: &'a mut Calendar<M>,
    rng: &'a mut DetRng,
    stop: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor being dispatched.
    #[inline]
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Send `msg` to `to` after `delay`.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M) -> EventToken {
        self.send_at(to, self.now + delay, msg)
    }

    /// Send `msg` to `to` at the current instant (fires after all messages
    /// already scheduled for this instant — scheduling order is preserved).
    pub fn send_now(&mut self, to: ActorId, msg: M) -> EventToken {
        self.send(to, SimDuration::ZERO, msg)
    }

    /// Send `msg` to `to` at absolute time `at` (must be >= now).
    pub fn send_at(&mut self, to: ActorId, at: SimTime, msg: M) -> EventToken {
        assert!(at >= self.now, "cannot schedule into the past");
        match self.cal {
            Calendar::Seq(ref mut q) => q.schedule(at, Envelope { to, msg }),
            Calendar::Par(ref mut p) => {
                p.send(self.now, self.me, to, at, msg);
                EventToken::NULL
            }
        }
    }

    /// Schedule a message to self.
    pub fn timer(&mut self, delay: SimDuration, msg: M) -> EventToken {
        self.send(self.me, delay, msg)
    }

    /// Cancel a previously scheduled message.
    pub fn cancel(&mut self, token: EventToken) {
        match self.cal {
            Calendar::Seq(ref mut q) => q.cancel(token),
            Calendar::Par(_) => panic!("event cancellation is unsupported in partitioned mode"),
        }
    }

    /// Engine-level RNG stream (distinct from per-component streams an
    /// actor may own). Deterministic across runs. In partitioned mode each
    /// partition owns an independent stream (partition 0 matches the
    /// sequential stream).
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Ask the engine to stop after this dispatch completes; pending
    /// events stay in the calendar.
    pub fn request_stop(&mut self) {
        match self.cal {
            Calendar::Seq(_) => *self.stop = true,
            Calendar::Par(_) => panic!("request_stop is unsupported in partitioned mode"),
        }
    }

    /// In partitioned mode, the composite ordering key `(sched, packed)` of
    /// the event being dispatched; `None` sequentially. Higher layers tag
    /// order-sensitive side effects (trace lines, gauge journal entries)
    /// with it so per-partition logs merge back into the exact sequential
    /// order.
    pub fn par_key(&self) -> Option<(u64, u64)> {
        match self.cal {
            Calendar::Seq(_) => None,
            Calendar::Par(ref p) => Some(p.cur),
        }
    }
}

/// Outcome of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar drained: no live events remain.
    Drained,
    /// An actor called [`Ctx::request_stop`].
    Stopped,
    /// The time horizon passed before the calendar drained.
    HorizonReached,
}

/// A deterministic discrete-event simulation over actors exchanging
/// messages of type `M`.
pub struct Simulation<M> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    cal: Calendar<M>,
    now: SimTime,
    rng: DetRng,
    dispatched: u64,
}

impl<M> Simulation<M> {
    /// New simulation at `t=0` with the given master seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            actors: Vec::new(),
            cal: Calendar::Seq(EventQueue::new()),
            now: SimTime::ZERO,
            rng: DetRng::stream(seed, u64::MAX),
            dispatched: 0,
        }
    }

    /// New simulation acting as partition `part` of a parallel run (see
    /// [`crate::par::run_partitioned`]): keyed calendar, outbox for
    /// cross-partition sends, per-partition RNG stream.
    pub(crate) fn new_partition(
        seed: u64,
        part: u32,
        owners: Arc<Vec<u32>>,
        lookahead: SimDuration,
        nparts: usize,
    ) -> Self {
        assert!(
            lookahead.as_nanos() > 0,
            "partitioned mode needs a positive lookahead"
        );
        assert!(part < 1 << 15, "partition index overflows the event key");
        Simulation {
            actors: Vec::new(),
            cal: Calendar::Par(Box::new(ParCal {
                queue: KeyedQueue::new(),
                part,
                owners,
                lookahead,
                ctr: 0,
                cur: (0, 0),
                seed_ctr: 0,
                outbox: (0..nparts).map(|_| Vec::new()).collect(),
                remote_sent: 0,
            })),
            now: SimTime::ZERO,
            // Partition 0's stream coincides with the sequential engine
            // stream; others are disjoint SplitMix64 streams.
            rng: DetRng::stream(seed, u64::MAX ^ part as u64),
            dispatched: 0,
        }
    }

    /// Register an actor; returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        id
    }

    /// Pre-allocate an actor slot to obtain its id before construction
    /// (for mutually referencing actors). The slot must be filled with
    /// [`Simulation::install`] before any message reaches it.
    pub fn reserve_actor(&mut self) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(None);
        id
    }

    /// Grow the actor-id space to at least `n` reserved slots (installing
    /// none). Partitioned builds call this so every partition agrees on
    /// the global id assignment while instantiating only the actors it
    /// owns; non-owned slots simply stay empty.
    pub fn reserve_to(&mut self, n: usize) {
        while self.actors.len() < n {
            self.actors.push(None);
        }
    }

    /// Fill a slot created by [`Simulation::reserve_actor`].
    pub fn install(&mut self, id: ActorId, actor: Box<dyn Actor<M>>) {
        assert!(
            self.actors[id.0].is_none(),
            "actor slot {id:?} already installed"
        );
        self.actors[id.0] = Some(actor);
    }

    /// Schedule an initial message before the run starts.
    ///
    /// Partitioned runs may only seed actors the partition owns, and every
    /// partition must issue its seeds in the same relative order the
    /// sequential build does (the natural build order), so the per-partition
    /// seed counter reproduces the sequential insertion sequence at one
    /// partition and a stable total order at several.
    pub fn seed_message(&mut self, to: ActorId, at: SimTime, msg: M) -> EventToken {
        match &mut self.cal {
            Calendar::Seq(q) => q.schedule(at, Envelope { to, msg }),
            Calendar::Par(p) => {
                assert_eq!(p.owners[to.0], p.part, "seeded a non-owned actor");
                let c = p.seed_ctr;
                p.seed_ctr += 1;
                assert!(c < 1 << 48, "partition seed counter overflows the event key");
                // Kind bit 0: seeds order before any runtime send at the
                // same instant, exactly like pre-run sequence numbers.
                // Same-instant seeds tiebreak on (issuance order, partition)
                // — unique even when one actor is seeded twice at the same
                // instant (e.g. several fault-plan events firing together).
                let packed = (c << 15) | p.part as u64;
                p.queue
                    .push(EventKey { at, sched: 0, packed }, Envelope { to, msg });
                EventToken::NULL
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Run until the calendar drains, an actor requests a stop, or virtual
    /// time would exceed `horizon`.
    ///
    /// The loop allocates nothing per dispatch: envelopes are recycled
    /// through the calendar's slot free list, and the horizon check is
    /// folded into the pop ([`EventQueue::pop_not_after`]) instead of a
    /// separate peek.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let mut stop = false;
        loop {
            let popped = match &mut self.cal {
                Calendar::Seq(queue) => queue.pop_not_after(horizon),
                Calendar::Par(_) => {
                    panic!("run_until is sequential-only; partitions advance via the coordinator")
                }
            };
            let Some((t, env)) = popped else {
                let empty = match &mut self.cal {
                    Calendar::Seq(queue) => queue.is_empty(),
                    Calendar::Par(_) => unreachable!(),
                };
                return if empty {
                    RunOutcome::Drained
                } else {
                    RunOutcome::HorizonReached
                };
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatched += 1;
            let mut actor = self.actors[env.to.0]
                .take()
                .unwrap_or_else(|| panic!("message to uninstalled actor {:?}", env.to));
            {
                let mut ctx = Ctx {
                    now: self.now,
                    me: env.to,
                    cal: &mut self.cal,
                    rng: &mut self.rng,
                    stop: &mut stop,
                };
                actor.on_message(&mut ctx, env.msg);
            }
            self.actors[env.to.0] = Some(actor);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// Run until the calendar drains or an actor requests a stop.
    pub fn run(&mut self) -> RunOutcome {
        // NEVER-1 keeps the horizon comparison strict but unreachable.
        self.run_until(SimTime(u64::MAX - 1))
    }

    /// Partitioned mode: dispatch every owned event arriving at or before
    /// `horizon` (inclusive), in composite-key order. Cross-partition sends
    /// accumulate in the outbox. Returns the number of dispatches.
    pub(crate) fn run_window(&mut self, horizon: SimTime) -> u64 {
        let mut count = 0u64;
        loop {
            let popped = match &mut self.cal {
                Calendar::Par(p) => match p.queue.pop_not_after(horizon) {
                    Some((key, env)) => {
                        p.cur = (key.sched, key.packed);
                        Some((key.at, env))
                    }
                    None => None,
                },
                Calendar::Seq(_) => unreachable!("run_window on a sequential calendar"),
            };
            let Some((t, env)) = popped else {
                return count;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatched += 1;
            count += 1;
            let mut actor = self.actors[env.to.0]
                .take()
                .unwrap_or_else(|| panic!("message to uninstalled actor {:?}", env.to));
            {
                let mut stop = false;
                let mut ctx = Ctx {
                    now: self.now,
                    me: env.to,
                    cal: &mut self.cal,
                    rng: &mut self.rng,
                    stop: &mut stop,
                };
                actor.on_message(&mut ctx, env.msg);
            }
            self.actors[env.to.0] = Some(actor);
        }
    }

    /// Partitioned mode: arrival time of this partition's earliest pending
    /// event in nanoseconds, or `u64::MAX` when idle.
    pub(crate) fn par_next_time(&self) -> u64 {
        match &self.cal {
            Calendar::Par(p) => p.queue.peek_at().map_or(u64::MAX, |t| t.as_nanos()),
            Calendar::Seq(_) => unreachable!("par_next_time on a sequential calendar"),
        }
    }

    /// Partitioned mode: accept a cross-partition message routed here by
    /// the coordinator.
    pub(crate) fn par_push_remote(&mut self, ev: RemoteEvent<M>) {
        match &mut self.cal {
            Calendar::Par(p) => {
                debug_assert_eq!(p.owners[ev.to.0], p.part, "remote event misrouted");
                p.queue.push(ev.key, Envelope { to: ev.to, msg: ev.msg });
            }
            Calendar::Seq(_) => unreachable!("par_push_remote on a sequential calendar"),
        }
    }

    /// Partitioned mode: the buffered cross-partition sends, bucketed by
    /// destination partition. The coordinator swaps each non-empty bucket
    /// into the matching `(src, dst)` mailbox slot at the window boundary
    /// (recycling the slot's empty allocation back into the bucket).
    pub(crate) fn par_outbox_mut(&mut self) -> &mut Vec<Vec<RemoteEvent<M>>> {
        match &mut self.cal {
            Calendar::Par(p) => &mut p.outbox,
            Calendar::Seq(_) => unreachable!("par_outbox_mut on a sequential calendar"),
        }
    }

    /// Partitioned mode: lifetime count of cross-partition sends.
    pub(crate) fn par_remote_sent(&self) -> u64 {
        match &self.cal {
            Calendar::Par(p) => p.remote_sent,
            Calendar::Seq(_) => unreachable!("par_remote_sent on a sequential calendar"),
        }
    }

    /// Mutable access to a registered actor between runs (e.g. to harvest
    /// results). Panics if the actor is mid-dispatch (impossible between
    /// runs) or uninstalled.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor<M> {
        self.actors[id.0]
            .as_deref_mut()
            .expect("actor uninstalled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn ping_pong_alternates_in_time() {
        #[derive(Debug, PartialEq)]
        enum Msg {
            Ping(u32),
            Pong(u32),
        }
        let log: Rc<RefCell<Vec<(u64, String)>>> = Rc::default();
        let mut sim: Simulation<Msg> = Simulation::new(0);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();

        let log_a = log.clone();
        sim.install(
            a,
            Box::new(move |ctx: &mut Ctx<'_, Msg>, msg: Msg| {
                if let Msg::Pong(n) = msg {
                    log_a.borrow_mut().push((ctx.now().as_nanos(), format!("pong{n}")));
                    if n < 3 {
                        ctx.send(b, SimDuration::from_nanos(10), Msg::Ping(n + 1));
                    }
                }
            }),
        );
        let log_b = log.clone();
        sim.install(
            b,
            Box::new(move |ctx: &mut Ctx<'_, Msg>, msg: Msg| {
                if let Msg::Ping(n) = msg {
                    log_b.borrow_mut().push((ctx.now().as_nanos(), format!("ping{n}")));
                    ctx.send(a, SimDuration::from_nanos(5), Msg::Pong(n));
                }
            }),
        );
        sim.seed_message(b, SimTime(0), Msg::Ping(1));
        assert_eq!(sim.run(), RunOutcome::Drained);
        let got = log.borrow().clone();
        assert_eq!(
            got,
            vec![
                (0, "ping1".into()),
                (5, "pong1".into()),
                (15, "ping2".into()),
                (20, "pong2".into()),
                (30, "ping3".into()),
                (35, "pong3".into()),
            ]
        );
    }

    #[test]
    fn horizon_stops_before_late_events() {
        let fired: Rc<RefCell<u32>> = Rc::default();
        let mut sim: Simulation<()> = Simulation::new(0);
        let f = fired.clone();
        let a = sim.add_actor(Box::new(move |_: &mut Ctx<'_, ()>, ()| {
            *f.borrow_mut() += 1;
        }));
        sim.seed_message(a, SimTime(10), ());
        sim.seed_message(a, SimTime(1000), ());
        assert_eq!(sim.run_until(SimTime(100)), RunOutcome::HorizonReached);
        assert_eq!(*fired.borrow(), 1);
        // The late event is still pending; a later run picks it up.
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(*fired.borrow(), 2);
    }

    #[test]
    fn request_stop_halts_immediately() {
        let mut sim: Simulation<u32> = Simulation::new(0);
        let count: Rc<RefCell<u32>> = Rc::default();
        let c = count.clone();
        let a = sim.add_actor(Box::new(move |ctx: &mut Ctx<'_, u32>, n: u32| {
            *c.borrow_mut() += 1;
            if n == 2 {
                ctx.request_stop();
            }
        }));
        for i in 1..=5 {
            sim.seed_message(a, SimTime(i), i as u32);
        }
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(*count.borrow(), 2);
        assert_eq!(sim.now(), SimTime(2));
    }

    #[test]
    fn determinism_same_seed_same_dispatch_trace() {
        fn run(seed: u64) -> Vec<u64> {
            let trace: Rc<RefCell<Vec<u64>>> = Rc::default();
            let mut sim: Simulation<u32> = Simulation::new(seed);
            let t = trace.clone();
            let a = sim.add_actor(Box::new(move |ctx: &mut Ctx<'_, u32>, hops: u32| {
                t.borrow_mut().push(ctx.now().as_nanos());
                if hops > 0 {
                    let d = SimDuration::from_nanos(ctx.rng().gen_range(100) + 1);
                    let me = ctx.me();
                    ctx.send(me, d, hops - 1);
                }
            }));
            sim.seed_message(a, SimTime(0), 50);
            sim.run();
            let out = trace.borrow().clone();
            out
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn send_at_past_panics() {
        let mut sim: Simulation<()> = Simulation::new(0);
        let a = sim.add_actor(Box::new(|ctx: &mut Ctx<'_, ()>, ()| {
            let me = ctx.me();
            ctx.send_at(me, SimTime(0), ());
        }));
        sim.seed_message(a, SimTime(10), ());
        sim.run();
    }

    #[test]
    fn timer_cancellation_suppresses_delivery() {
        let fired: Rc<RefCell<u32>> = Rc::default();
        let mut sim: Simulation<&'static str> = Simulation::new(0);
        let f = fired.clone();
        let a = sim.add_actor(Box::new(move |ctx: &mut Ctx<'_, &'static str>, m| {
            match m {
                "start" => {
                    let tok = ctx.timer(SimDuration::from_nanos(100), "late");
                    ctx.cancel(tok);
                    ctx.timer(SimDuration::from_nanos(50), "kept");
                }
                "kept" => *f.borrow_mut() += 1,
                "late" => panic!("cancelled timer fired"),
                _ => unreachable!(),
            }
        }));
        sim.seed_message(a, SimTime(0), "start");
        sim.run();
        assert_eq!(*fired.borrow(), 1);
    }

    #[test]
    fn reserve_to_grows_without_installing() {
        let mut sim: Simulation<()> = Simulation::new(0);
        let a = sim.reserve_actor();
        sim.reserve_to(5);
        sim.reserve_to(3); // never shrinks
        let b = sim.add_actor(Box::new(|_: &mut Ctx<'_, ()>, ()| {}));
        assert_eq!(a, ActorId(0));
        assert_eq!(b, ActorId(5));
        sim.install(a, Box::new(|_: &mut Ctx<'_, ()>, ()| {}));
    }
}
