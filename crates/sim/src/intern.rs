//! Interned names for resources, metrics, and trace subjects.
//!
//! The emulator stamps every resource and trace entry with a name like
//! `"host0.cpu"`. Those names repeat millions of times across a sweep;
//! interning stores each distinct string once and hands out shared
//! pointers, so stamping a name is a pointer copy instead of a `String`
//! allocation, and equality checks usually resolve on the pointer.
//!
//! The intern table is thread-local: sweeps that fan emulations out
//! across threads (`lmas-par`) each keep their own small table, which
//! avoids any locking on the hot path.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A cheaply clonable, interned, immutable string.
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// The interned text.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Intern `s`, returning a shared handle. Repeated calls with equal text
/// on the same thread return clones of one allocation.
pub fn intern(s: &str) -> Name {
    thread_local! {
        static TABLE: RefCell<HashSet<Arc<str>>> = RefCell::new(HashSet::new());
    }
    TABLE.with(|table| {
        let mut table = table.borrow_mut();
        if let Some(existing) = table.get(s) {
            Name(existing.clone())
        } else {
            let arc: Arc<str> = Arc::from(s);
            table.insert(arc.clone());
            Name(arc)
        }
    })
}

impl std::ops::Deref for Name {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    #[inline]
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Same-thread interned names with equal text share one Arc.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let a = intern("host0.cpu");
        let b = intern("host0.cpu");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(a, "host0.cpu");
    }

    #[test]
    fn distinct_names_differ() {
        let a = intern("host0.cpu");
        let b = intern("host0.nic");
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), "host0.cpu");
        assert_eq!(format!("{b:?}"), "\"host0.nic\"");
    }
}
