//! Interned names for resources, metrics, and trace subjects.
//!
//! The emulator stamps every resource and trace entry with a name like
//! `"host0.cpu"`. Those names repeat millions of times across a sweep;
//! interning stores each distinct string once and hands out shared
//! pointers, so stamping a name is a pointer copy instead of a `String`
//! allocation, and equality checks usually resolve on the pointer.
//!
//! The intern table is global and sharded: partitioned simulation runs
//! (`lmas-sim`'s parallel kernel, `lmas-par` sweeps) intern names from
//! many threads at once, and merged reports compare names across the
//! threads that created them. A name's text picks its shard, so equal
//! text always lands in the same shard and resolves to the *same*
//! allocation regardless of thread — `Name` equality stays a pointer
//! comparison in the common case. Shard locks are uncontended in
//! sequential runs and name creation is rare (names repeat; the table
//! hit path is one short critical section).

use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, LazyLock, Mutex};

/// A cheaply clonable, interned, immutable string.
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// The interned text.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

const SHARD_COUNT: usize = 16;

static SHARDS: LazyLock<Vec<Mutex<HashSet<Arc<str>>>>> =
    LazyLock::new(|| (0..SHARD_COUNT).map(|_| Mutex::new(HashSet::new())).collect());

/// FNV-1a shard selector: equal text → equal shard, on every thread.
fn shard_of(s: &str) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) & (SHARD_COUNT - 1)
}

/// Intern `s`, returning a shared handle. Repeated calls with equal text
/// — from any thread — return clones of one allocation.
pub fn intern(s: &str) -> Name {
    let mut table = SHARDS[shard_of(s)].lock().unwrap();
    if let Some(existing) = table.get(s) {
        Name(existing.clone())
    } else {
        let arc: Arc<str> = Arc::from(s);
        table.insert(arc.clone());
        Name(arc)
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    #[inline]
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Interned names with equal text share one Arc, whichever
        // threads created them.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let a = intern("host0.cpu");
        let b = intern("host0.cpu");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(a, "host0.cpu");
    }

    #[test]
    fn concurrent_interning_round_trips() {
        // Many threads intern overlapping name sets; every handle must
        // round-trip to its text, and equal text must share one
        // allocation across threads (stable global identity).
        let texts: Vec<String> = (0..64).map(|i| format!("par{}.cpu", i % 12)).collect();
        let per_thread: Vec<Vec<Name>> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..4)
                .map(|_| {
                    let texts = &texts;
                    s.spawn(move || texts.iter().map(|t| intern(t)).collect::<Vec<Name>>())
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for names in &per_thread {
            for (name, text) in names.iter().zip(&texts) {
                assert_eq!(name.as_str(), text.as_str());
            }
        }
        for names in &per_thread[1..] {
            for (a, b) in per_thread[0].iter().zip(names) {
                assert!(Arc::ptr_eq(&a.0, &b.0), "cross-thread interning must dedupe");
            }
        }
    }

    #[test]
    fn distinct_names_differ() {
        let a = intern("host0.cpu");
        let b = intern("host0.nic");
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), "host0.cpu");
        assert_eq!(format!("{b:?}"), "\"host0.nic\"");
    }
}
