//! Virtual time for the simulation kernel.
//!
//! Simulated time is a monotone counter of **nanoseconds** since the start
//! of the run, wrapped in [`SimTime`]. Durations are [`SimDuration`]. Both
//! are plain `u64` newtypes: cheap to copy, totally ordered, and impossible
//! to confuse with wall-clock time, which never appears inside the
//! simulation.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel "never" used for blocking waits (the paper's emulator
    /// posts wakeups at `t = ∞` and revises them on signal).
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Largest of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Smallest of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Build a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Build a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds, rounding to nanoseconds.
    /// Panics on negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        // NEVER must absorb any finite delay rather than wrap.
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::NEVER {
            write!(f, "t=∞")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(t - SimTime(1_000_000), SimDuration::from_millis(4));
    }

    #[test]
    fn never_absorbs_delays() {
        assert_eq!(SimTime::NEVER + SimDuration::from_secs(1), SimTime::NEVER);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_panics_on_inversion() {
        let _ = SimTime(5).since(SimTime(10));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(7), SimDuration::from_nanos(7000));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration(250_000_000));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d + d, SimDuration::from_micros(20));
        assert_eq!(d - SimDuration::from_micros(4), SimDuration::from_micros(6));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::NEVER), "t=∞");
    }
}
