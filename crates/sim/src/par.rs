//! Conservative parallel coordinator: bounded-lag windows over
//! partitioned [`Simulation`]s.
//!
//! The actor graph is split across worker threads; each partition runs a
//! private keyed calendar over the *global* actor-id space (non-owned
//! slots stay empty). Synchronization is conservative, in the
//! null-message tradition but window-based so no protocol events pollute
//! dispatch counts: each round, every partition publishes the arrival
//! time of its earliest pending event and — because every cross-partition
//! send carries at least `L` (the lookahead) of virtual latency — derives
//! a safe per-partition dispatch horizon from the published vector (see
//! *Adaptive lookahead* below). Cross-partition sends buffered during the
//! window are exchanged at the boundary through per-`(src, dst)` mailbox
//! slots, each touched by exactly one writer and one reader per round.
//!
//! # Adaptive lookahead
//!
//! With `NT_q` the published next-event time of partition `q`, any event
//! partition `p` has not yet heard about must travel a chain of one or
//! more cross-partition hops starting from some partition's current
//! calendar, so its arrival time is bounded below by
//!
//! * `min_{q≠p} NT_q + L` — a direct send out of a peer's pending work
//!   (one hop), and
//! * `NT_p + 2L` — any longer chain, including responses bounced back to
//!   `p`'s own outgoing mail: two or more hops from a calendar whose
//!   earliest entry is at least the global minimum.
//!
//! `p` may therefore dispatch through
//! `min(min_{q≠p} NT_q + L, NT_p + 2L) − 1` — never narrower than the
//! classic fleet-wide `[T, T+L)` window, and much wider whenever peers
//! are ahead of the global minimum, which is what lets faulted and
//! rebalanced runs amortize barriers past four threads.
//!
//! Determinism does not depend on thread interleaving: events carry
//! composite keys ([`crate::event::EventKey`]) that totally order them
//! exactly as the sequential engine's `(time, seq)` order would, and keys
//! are unique, so each partition's dispatch order is a pure function of
//! the event set. The two barriers per round make the slot reads/writes
//! race-free (slots are written only before barrier A and read only
//! between A and B).

use crate::engine::{RemoteEvent, Simulation};
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A reusable barrier that can be *poisoned* by a panicking partition.
/// `std::sync::Barrier` would leave the surviving partitions deadlocked
/// mid-round; this one wakes them so the whole run fails loudly instead
/// of hanging the test suite.
struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState { count: 0, generation: 0, poisoned: false }),
            cvar: Condvar::new(),
        }
    }

    fn wait(&self) {
        // A panicking waiter std-poisons the inner mutex; our own flag is
        // the signal that matters, so recover the guard in that case.
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.poisoned {
            panic!("a peer partition panicked");
        }
        let generation = st.generation;
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            self.cvar.notify_all();
        } else {
            while st.generation == generation && !st.poisoned {
                st = self.cvar.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned {
                panic!("a peer partition panicked");
            }
        }
    }

    /// Never panics: called from `Drop` during unwinding.
    fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.poisoned = true;
        self.cvar.notify_all();
    }
}

/// Poisons the shared barrier if its thread unwinds, releasing peers
/// parked mid-round.
struct PoisonOnPanic<'a>(&'a PoisonBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One partition's build/finish hooks for [`run_partitioned`].
///
/// `build` runs on the worker thread before the clock starts: reserve the
/// global id space, install owned actors, seed initial messages (in
/// ascending actor-id order). `finish` runs after the fleet drains, still
/// on the worker thread, and may use [`ParOps`] for collective reductions
/// (every partition must issue the same sequence of collectives).
///
/// `Built` carries thread-local state (e.g. `Rc` handles shared with the
/// actors) from `build` to `finish`; it never crosses threads, so it need
/// not be `Send`.
pub trait PartitionWorker<M, T>: Send {
    /// Thread-local state handed from `build` to `finish`.
    type Built;

    /// Install this partition's actors and seeds.
    fn build(&mut self, sim: &mut Simulation<M>) -> Self::Built;

    /// Harvest results once the fleet has drained.
    fn finish(self, built: Self::Built, sim: Simulation<M>, ops: &ParOps<'_>) -> T;
}

/// Collective operations available to [`PartitionWorker::finish`].
pub struct ParOps<'a> {
    me: usize,
    slots: &'a [AtomicU64],
    barrier: &'a PoisonBarrier,
}

impl ParOps<'_> {
    /// This partition's index.
    pub fn partition(&self) -> usize {
        self.me
    }

    /// Barrier-synchronized max-reduction over all partitions. Every
    /// partition must call this the same number of times, in the same
    /// order.
    pub fn allreduce_max(&self, v: u64) -> u64 {
        self.slots[self.me].store(v, Ordering::SeqCst);
        self.barrier.wait();
        let m = self
            .slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .max()
            .unwrap_or(0);
        self.barrier.wait();
        m
    }
}

/// A log₂-bucketed histogram: bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (zero lands in bucket 0). Cheap enough to
/// record per window, merges by bucket-wise sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHist {
    /// Bucket counts, index = floor(log2(value)).
    pub buckets: [u64; 64],
}

impl LogHist {
    /// All-zero histogram.
    pub fn new() -> Self {
        LogHist { buckets: [0; 64] }
    }

    /// Count one value.
    pub fn record(&mut self, v: u64) {
        let i = if v == 0 { 0 } else { 63 - v.leading_zeros() as usize };
        self.buckets[i] += 1;
    }

    /// Bucket-wise accumulate another histogram.
    pub fn absorb(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Total count across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

/// What a partitioned run produced, plus fleet-level counters.
#[derive(Debug)]
pub struct ParOutcome<T> {
    /// Per-partition results, in partition order.
    pub results: Vec<T>,
    /// Total dispatches across all partitions (equals the sequential
    /// dispatch count for an equivalent run).
    pub dispatched: u64,
    /// Number of lookahead windows executed.
    pub windows: u64,
    /// Critical-path dispatches: `Σ_w max_p dispatches(p, w)`. The
    /// virtual-parallelism analogue of wall-clock — what a `P`-core
    /// machine cannot go below. `dispatched / critical_dispatched` is the
    /// model speedup.
    pub critical_dispatched: u64,
    /// Cross-partition messages exchanged.
    pub remote_messages: u64,
    /// Adaptive window widths (virtual nanoseconds past the round's
    /// global minimum), one sample per partition per window.
    /// Deterministic: a pure function of the event set.
    pub window_width_hist: LogHist,
    /// Wall-clock nanoseconds spent parked at barriers, one sample per
    /// partition per barrier. *Not* deterministic — never diff it; it
    /// exists to make synchronization cost measurable in benches.
    pub barrier_wait_hist: LogHist,
}

/// Run one partitioned simulation to completion.
///
/// `owners[actor_id]` names the partition owning each global actor id;
/// `workers[p]` builds and harvests partition `p`. `lookahead` must be a
/// positive lower bound on the virtual latency of every cross-partition
/// send (enforced per send; violations panic).
pub fn run_partitioned<M, T, W>(
    seed: u64,
    owners: Arc<Vec<u32>>,
    lookahead: SimDuration,
    workers: Vec<W>,
) -> ParOutcome<T>
where
    M: Send,
    T: Send,
    W: PartitionWorker<M, T>,
{
    let nparts = workers.len();
    assert!(nparts > 0, "need at least one partition");
    assert!(
        owners.iter().all(|&o| (o as usize) < nparts),
        "actor owner out of partition range"
    );
    let la = lookahead.as_nanos();
    assert!(la > 0, "lookahead must be positive");

    let slots: Vec<AtomicU64> = (0..nparts).map(|_| AtomicU64::new(0)).collect();
    let barrier = PoisonBarrier::new(nparts);
    // One slot per (src, dst) pair: src writes between the barriers, dst
    // drains at the top of the next round, so each lock is uncontended
    // and a whole window's mail moves with one swap per pair.
    let mailboxes: Vec<Mutex<Vec<RemoteEvent<M>>>> =
        (0..nparts * nparts).map(|_| Mutex::new(Vec::new())).collect();

    struct PartOut<T> {
        result: T,
        dispatched: u64,
        remote: u64,
        per_window: Vec<u64>,
        width_hist: LogHist,
        wait_hist: LogHist,
    }

    let per_part: Vec<PartOut<T>> = std::thread::scope(|scope| {
        let joins: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(p, mut worker)| {
                let owners = owners.clone();
                let slots = &slots;
                let barrier = &barrier;
                let mailboxes = &mailboxes;
                scope.spawn(move || {
                    let _guard = PoisonOnPanic(barrier);
                    let mut sim =
                        Simulation::new_partition(seed, p as u32, owners, lookahead, nparts);
                    let built = worker.build(&mut sim);
                    let mut per_window: Vec<u64> = Vec::new();
                    let mut width_hist = LogHist::new();
                    let mut wait_hist = LogHist::new();
                    let timed_wait = |h: &mut LogHist| {
                        let t0 = std::time::Instant::now();
                        barrier.wait();
                        h.record(t0.elapsed().as_nanos() as u64);
                    };
                    loop {
                        // Accept mail posted at the previous boundary, then
                        // publish our next-event time.
                        for q in 0..nparts {
                            let slot = &mailboxes[q * nparts + p];
                            for ev in std::mem::take(&mut *slot.lock().unwrap()) {
                                sim.par_push_remote(ev);
                            }
                        }
                        let nt = sim.par_next_time();
                        slots[p].store(nt, Ordering::SeqCst);
                        timed_wait(&mut wait_hist); // A: all slots published
                        let mut t = nt;
                        let mut peer_min = u64::MAX;
                        for (q, s) in slots.iter().enumerate() {
                            let v = s.load(Ordering::SeqCst);
                            t = t.min(v);
                            if q != p {
                                peer_min = peer_min.min(v);
                            }
                        }
                        if t == u64::MAX {
                            // Every calendar is empty and (by protocol
                            // phasing) no mail is in flight: drained. The
                            // extra barrier keeps peers from reusing the
                            // slots (finish-time collectives) while
                            // laggards are still reading them.
                            barrier.wait();
                            break;
                        }
                        // Adaptive horizon (module docs): unheard-of events
                        // reach us at >= min(min_{q!=p} NT_q + L, NT_p + 2L).
                        // Never narrower than the classic [t, t+L) window.
                        let horizon = if nparts == 1 {
                            u64::MAX - 1
                        } else {
                            // bound >= t + L >= 1, so the -1 cannot wrap.
                            peer_min
                                .saturating_add(la)
                                .min(nt.saturating_add(la).saturating_add(la))
                                - 1
                        };
                        debug_assert!(horizon >= t, "horizon below the global minimum");
                        width_hist.record(horizon.saturating_sub(t).saturating_add(1));
                        per_window.push(sim.run_window(SimTime(horizon)));
                        for (dst, bucket) in sim.par_outbox_mut().iter_mut().enumerate() {
                            if !bucket.is_empty() {
                                let mut slot =
                                    mailboxes[p * nparts + dst].lock().unwrap();
                                debug_assert!(slot.is_empty(), "mailbox not drained");
                                // The drained slot's allocation swaps back
                                // into the bucket for reuse next window.
                                std::mem::swap(&mut *slot, bucket);
                            }
                        }
                        timed_wait(&mut wait_hist); // B: all mail delivered
                    }
                    let dispatched = sim.dispatched();
                    let remote = sim.par_remote_sent();
                    let ops = ParOps { me: p, slots, barrier };
                    let result = worker.finish(built, sim, &ops);
                    PartOut { result, dispatched, remote, per_window, width_hist, wait_hist }
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("partition worker panicked"))
            .collect()
    });

    let windows = per_part[0].per_window.len();
    debug_assert!(per_part.iter().all(|o| o.per_window.len() == windows));
    let critical_dispatched: u64 = (0..windows)
        .map(|w| per_part.iter().map(|o| o.per_window[w]).max().unwrap_or(0))
        .sum();
    let mut window_width_hist = LogHist::new();
    let mut barrier_wait_hist = LogHist::new();
    for o in &per_part {
        window_width_hist.absorb(&o.width_hist);
        barrier_wait_hist.absorb(&o.wait_hist);
    }
    ParOutcome {
        dispatched: per_part.iter().map(|o| o.dispatched).sum(),
        remote_messages: per_part.iter().map(|o| o.remote).sum(),
        windows: windows as u64,
        critical_dispatched,
        window_width_hist,
        barrier_wait_hist,
        results: per_part.into_iter().map(|o| o.result).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ActorId, Ctx, RunOutcome};
    use std::cell::RefCell;
    use std::rc::Rc;

    const RING: usize = 4;
    const HOPS: u32 = 40;
    const DELAY: u64 = 100;
    const LOOKAHEAD: u64 = 50;

    type Log = Vec<(u64, usize, u32)>;

    /// Install ring actor `i` (forwards a countdown token to `(i+1)%RING`
    /// after DELAY ns) into `sim`, logging every visit.
    type RingActor = Box<dyn FnMut(&mut Ctx<'_, u32>, u32)>;

    fn ring_actor(i: usize, log: Rc<RefCell<Log>>) -> RingActor {
        Box::new(move |ctx: &mut Ctx<'_, u32>, hops: u32| {
            log.borrow_mut().push((ctx.now().as_nanos(), i, hops));
            if hops > 0 {
                ctx.send(
                    ActorId((i + 1) % RING),
                    SimDuration::from_nanos(DELAY),
                    hops - 1,
                );
            }
        })
    }

    fn sequential_log() -> Log {
        let log: Rc<RefCell<Log>> = Rc::default();
        let mut sim: Simulation<u32> = Simulation::new(9);
        for i in 0..RING {
            let l = log.clone();
            sim.add_actor(Box::new(ring_actor(i, l)));
        }
        sim.seed_message(ActorId(0), SimTime(0), HOPS);
        assert_eq!(sim.run(), RunOutcome::Drained);
        let out = log.borrow().clone();
        out
    }

    struct RingWorker {
        part: u32,
        owners: Arc<Vec<u32>>,
    }

    impl PartitionWorker<u32, Log> for RingWorker {
        type Built = Rc<RefCell<Log>>;

        fn build(&mut self, sim: &mut Simulation<u32>) -> Self::Built {
            let log: Rc<RefCell<Log>> = Rc::default();
            sim.reserve_to(RING);
            for i in 0..RING {
                if self.owners[i] == self.part {
                    sim.install(ActorId(i), Box::new(ring_actor(i, log.clone())));
                }
            }
            if self.owners[0] == self.part {
                sim.seed_message(ActorId(0), SimTime(0), HOPS);
            }
            log
        }

        fn finish(self, built: Self::Built, sim: Simulation<u32>, ops: &ParOps<'_>) -> Log {
            let end = ops.allreduce_max(sim.now().as_nanos());
            assert_eq!(end, (HOPS as u64) * DELAY);
            drop(sim); // actors (and their Rc clones) die with the engine
            Rc::try_unwrap(built).expect("sole owner").into_inner()
        }
    }

    fn parallel_log(owners: Vec<u32>, nparts: usize) -> (Log, ParOutcome<Log>) {
        let owners = Arc::new(owners);
        let workers: Vec<RingWorker> = (0..nparts)
            .map(|p| RingWorker { part: p as u32, owners: owners.clone() })
            .collect();
        let mut outcome =
            run_partitioned(9, owners, SimDuration::from_nanos(LOOKAHEAD), workers);
        let mut merged: Log = outcome.results.iter().flatten().copied().collect();
        merged.sort_unstable();
        outcome.results = vec![];
        (merged, outcome)
    }

    #[test]
    fn partitioned_ring_matches_sequential() {
        let seq = sequential_log();
        for (owners, nparts) in [
            (vec![0, 0, 0, 0], 1),
            (vec![0, 1, 0, 1], 2),
            (vec![0, 1, 2, 3], 4),
        ] {
            let (par, stats) = parallel_log(owners, nparts);
            assert_eq!(par, seq, "{nparts}-way partition diverged");
            assert_eq!(stats.dispatched, (HOPS as u64) + 1);
            if nparts > 1 {
                assert!(stats.remote_messages > 0, "ring must cross partitions");
            } else {
                assert_eq!(stats.remote_messages, 0);
            }
        }
    }

    #[test]
    fn partitioned_run_is_repeatable() {
        let (a, sa) = parallel_log(vec![0, 1, 0, 1], 2);
        let (b, sb) = parallel_log(vec![0, 1, 0, 1], 2);
        assert_eq!(a, b);
        assert_eq!(sa.windows, sb.windows);
        assert_eq!(sa.critical_dispatched, sb.critical_dispatched);
        assert_eq!(sa.remote_messages, sb.remote_messages);
        // Window widths are virtual quantities: deterministic across runs
        // (barrier waits are wall-clock and deliberately not compared).
        assert_eq!(sa.window_width_hist.buckets, sb.window_width_hist.buckets);
        assert_eq!(sa.window_width_hist.total(), sa.windows * 2);
    }

    #[test]
    fn adaptive_horizon_widens_past_the_static_window() {
        // Partition 0 runs a dense local chain (hops every 10 ns) while
        // partition 1 stays idle: its published next-event time is MAX, so
        // partition 0's horizon stretches to NT_p + 2L = NT_p + 100 each
        // round instead of the static NT_p + 50 — half the rounds.
        const CHAIN: u32 = 50;
        const STEP: u64 = 10;
        struct ChainWorker {
            part: u32,
        }
        impl PartitionWorker<u32, u64> for ChainWorker {
            type Built = ();
            fn build(&mut self, sim: &mut Simulation<u32>) {
                sim.reserve_to(2);
                if self.part == 0 {
                    sim.install(
                        ActorId(0),
                        Box::new(|ctx: &mut Ctx<'_, u32>, hops: u32| {
                            if hops > 0 {
                                let me = ctx.me();
                                ctx.send(me, SimDuration::from_nanos(STEP), hops - 1);
                            }
                        }),
                    );
                    sim.seed_message(ActorId(0), SimTime(0), CHAIN);
                } else {
                    sim.install(ActorId(1), Box::new(|_: &mut Ctx<'_, u32>, _| {}));
                }
            }
            fn finish(self, (): (), sim: Simulation<u32>, _: &ParOps<'_>) -> u64 {
                sim.dispatched()
            }
        }
        let owners = Arc::new(vec![0u32, 1]);
        let workers = vec![ChainWorker { part: 0 }, ChainWorker { part: 1 }];
        let outcome = run_partitioned(
            3,
            owners,
            SimDuration::from_nanos(LOOKAHEAD),
            workers,
        );
        assert_eq!(outcome.dispatched, CHAIN as u64 + 1);
        let static_rounds = (CHAIN as u64 * STEP).div_ceil(LOOKAHEAD);
        assert!(
            outcome.windows <= static_rounds / 2 + 1,
            "adaptive lookahead used {} rounds; static would need {}",
            outcome.windows,
            static_rounds
        );
    }

    #[test]
    #[should_panic(expected = "partition worker panicked")]
    fn lookahead_violation_is_fatal() {
        struct Eager {
            part: u32,
        }
        impl PartitionWorker<(), ()> for Eager {
            type Built = ();
            fn build(&mut self, sim: &mut Simulation<()>) {
                sim.reserve_to(2);
                if self.part == 0 {
                    // Sends to the remote actor with zero delay: inside
                    // the lookahead window, which the engine must reject.
                    sim.install(
                        ActorId(0),
                        Box::new(|ctx: &mut Ctx<'_, ()>, ()| {
                            ctx.send_now(ActorId(1), ());
                        }),
                    );
                    sim.seed_message(ActorId(0), SimTime(0), ());
                } else {
                    sim.install(ActorId(1), Box::new(|_: &mut Ctx<'_, ()>, ()| {}));
                }
            }
            fn finish(self, _: (), _: Simulation<()>, _: &ParOps<'_>) {}
        }
        let owners = Arc::new(vec![0u32, 1]);
        let workers = vec![Eager { part: 0 }, Eager { part: 1 }];
        run_partitioned::<(), (), _>(0, owners, SimDuration::from_nanos(50), workers);
    }
}
