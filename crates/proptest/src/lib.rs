//! A vendored, dependency-free subset of the `proptest` API.
//!
//! This workspace builds in offline environments with no crates.io
//! access, so the real `proptest` crate cannot be fetched. This shim
//! implements the slice of its surface the test suite uses — the
//! `proptest!` macro, `prop_assert*`, `any::<T>()`, range and tuple
//! strategies, `prop::collection::vec`, and `prop_map` — on top of a
//! deterministic SplitMix64 generator.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with its case index; rerun
//!   with the same build to reproduce (generation is fully deterministic
//!   per test name and case index).
//! - **Default cases = 64** (upstream 256), overridable per block via
//!   `ProptestConfig::with_cases` or globally via `PROPTEST_CASES`.
//! - Values are drawn uniformly; there is no bias toward edge cases, so
//!   tests that must cover boundaries should probe them explicitly.

use std::ops::Range;

/// Deterministic SplitMix64 stream (mirrors `lmas_sim::DetRng`, inlined
/// here so the shim has no dependencies).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream seeded from a raw state.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform integer in `[0, bound)`. Panics on zero bound.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test deterministic stream: FNV-1a over the test name, mixed with
/// the case index. Used by the `proptest!` expansion.
#[doc(hidden)]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Run configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).checked_sub(self.start as u64)
                    .filter(|&s| s > 0)
                    .expect("empty or inverted range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty or inverted range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
sint_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (self.start as f64, self.end as f64);
                assert!(b > a, "empty or inverted range strategy");
                (a + rng.unit_f64() * (b - a)) as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-range generator.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert within a property; panics (no shrink pass in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declare deterministic property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100, v in prop::collection::vec(any::<u32>(), 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let ::std::result::Result::Err(e) = __outcome {
                        eprintln!(
                            "proptest `{}`: case {}/{} failed (deterministic; rerun reproduces)",
                            stringify!($name), __case + 1, __cfg.cases,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::test_rng("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_rng("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds", 1);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::sample(&(0.0f32..1.0), &mut rng);
            assert!((0.0..1.0).contains(&y));
            let z = Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, tuples, vec, and prop_map.
        #[test]
        fn macro_surface_works(
            n in 1usize..9,
            pair in (any::<bool>(), 0u64..100),
            v in prop::collection::vec(any::<u32>(), 0..20),
            mapped in (0u32..5).prop_map(|x| x * 2),
        ) {
            prop_assert!((1..9).contains(&n));
            prop_assert!(pair.1 < 100);
            prop_assert!(v.len() < 20);
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(n, 0);
        }
    }
}
