//! A minimal, dependency-free stand-in for the slice of `rayon` the
//! bench sweeps use: `items.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The workspace builds offline, so the real `rayon` cannot be fetched;
//! dependents import this crate under the name `rayon` (see the
//! workspace manifest) and keep the familiar spelling. Execution model:
//!
//! - one scoped `std::thread` per available core (capped at the item
//!   count), pulling indices from a shared atomic counter, so uneven
//!   per-item costs (different cluster sizes, different γ splits) still
//!   balance;
//! - results are reassembled **in input order**, so a parallel sweep
//!   prints and serializes byte-identically to its serial form;
//! - panics in workers propagate to the caller (scoped threads).
//!
//! Each mapped item must be independent — the bench sweeps satisfy this
//! by construction, since every emulation owns its cluster, RNG streams,
//! and report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Map `f` over `items` in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(&items[i]))).expect("receiver outlives scope");
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            debug_assert!(out[i].is_none(), "index {i} computed twice");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|slot| slot.expect("every index computed"))
            .collect()
    })
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Attach the map stage; nothing runs until `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map, executed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Run the map across threads and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        let ordered: Vec<R> = std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let f = &self.f;
                let items = self.items;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    tx.send((i, f(&items[i]))).expect("receiver outlives scope");
                });
            }
            drop(tx);
            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                out[i] = Some(r);
            }
            out.into_iter()
                .map(|slot| slot.expect("every index computed"))
                .collect()
        });
        ordered.into_iter().collect()
    }
}

/// `.par_iter()` on slices, arrays, and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: 'a;

    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Drop-in for `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_matches_serial() {
        let items = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let par: Vec<usize> = items.par_iter().map(|&x| x * x).collect();
        let ser: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_costs_balance() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let spin = if x % 7 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
