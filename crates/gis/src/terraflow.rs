//! The TerraFlow watershed pipeline on the emulated cluster.
//!
//! Section 4.1's three steps, each timed separately so the asymmetric-
//! parallelism story is visible:
//!
//! 1. **Restructure** (data-parallel, ASU-resident): each ASU converts
//!    its block of grid rows into neighbour-annotated [`CellRec`]s —
//!    "easily distributed … because it has minimal data dependencies".
//! 2. **Sort by elevation**: DSM-Sort over the cell records (Section
//!    4.3), ASUs + hosts.
//! 3. **Color propagation** (order-dependent, host-only): time-forward
//!    processing through one [`WatershedFunctor`] — "difficult to
//!    parallelize because it … relies on ordering for correctness".
//!
//! Steps 1–2 scale with the number of ASUs; step 3 does not. That is the
//! paper's claim, and the per-step report makes it measurable.
//!
//! *Modeling note*: step 3 streams the sorted cells through a single
//! relay on ASU 0 so the stream edge preserves global order; in a full
//! system the D ASUs would merge-stream to the host, but step 3's time is
//! host-CPU-bound either way.

use crate::cell::CellRec;
use crate::flow::{watershed_oracle, WatershedFunctor};
use crate::grid::Grid;
use lmas_core::functor::lib::RelayFunctor;
use lmas_core::functor::{Emit, Functor, FunctorKind};
use lmas_core::{
    packetize, EdgeKind, FlowGraph, NodeId, Packet, Placement, Record, RoutingPolicy, Work,
};
use lmas_emulator::{run_job, ClusterConfig, EmulationReport, Job};
use lmas_sim::SimDuration;
use lmas_sort::{run_dsm_sort, DsmConfig, DsmError, LoadMode};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Quantized grid shared by restructure functor instances.
#[derive(Debug)]
pub struct QuantGrid {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Row-major quantized elevations.
    pub q: Vec<u16>,
}

impl QuantGrid {
    /// Quantize a grid (elevations capped at 65534, like `restructure`).
    pub fn from_grid(g: &Grid) -> QuantGrid {
        QuantGrid {
            width: g.width(),
            height: g.height(),
            q: g.quantized().into_iter().map(|e| e.min(u16::MAX - 1)).collect(),
        }
    }
}

/// Step-1 functor: fills a cell's neighbour elevations from the grid.
/// Bounded per-record work and constant state: ASU-eligible.
pub struct RestructureFunctor {
    grid: Arc<QuantGrid>,
}

impl RestructureFunctor {
    /// A restructure functor over the shared quantized grid.
    pub fn new(grid: Arc<QuantGrid>) -> Self {
        RestructureFunctor { grid }
    }
}

impl Functor<CellRec> for RestructureFunctor {
    fn name(&self) -> String {
        "restructure".into()
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 64 }
    }
    fn process(&mut self, input: Packet<CellRec>, out: &mut Emit<CellRec>) {
        let g = &self.grid;
        let filled: Packet<CellRec> = input
            .into_records()
            .into_iter()
            .map(|mut c| {
                for (i, &(dx, dy)) in crate::grid::NEIGHBOR_OFFSETS.iter().enumerate() {
                    let nx = c.x as isize + dx;
                    let ny = c.y as isize + dy;
                    c.neighbors[i] = if nx >= 0
                        && ny >= 0
                        && (nx as usize) < g.width
                        && (ny as usize) < g.height
                    {
                        g.q[ny as usize * g.width + nx as usize]
                    } else {
                        crate::cell::NO_NEIGHBOR
                    };
                }
                c
            })
            .collect();
        out.push0(filled);
    }
    fn flush(&mut self, _out: &mut Emit<CellRec>) {}
    fn cost(&self, input: &Packet<CellRec>) -> Work {
        let n = input.len() as u64;
        // Eight neighbour probes plus record handling.
        Work::compares(8 * n) + Work::moves(n) + Work::bytes(n * CellRec::SIZE as u64)
    }
}

/// Per-step timing and results of a TerraFlow run.
pub struct TerraFlowOutcome {
    /// Step-1 (restructure) report.
    pub step1: EmulationReport<CellRec>,
    /// Step-2 (sort) pass-1 + pass-2 reports, via DSM-Sort.
    pub sort: lmas_sort::DsmOutcome<CellRec>,
    /// Step-3 (color propagation) report.
    pub step3: EmulationReport<CellRec>,
    /// Step durations (t1, t2, t3).
    pub times: (SimDuration, SimDuration, SimDuration),
    /// Row-major watershed colors.
    pub colors: Vec<u32>,
    /// Number of distinct watersheds.
    pub watersheds: u32,
}

impl TerraFlowOutcome {
    /// Total pipeline time.
    pub fn total(&self) -> SimDuration {
        self.times.0 + self.times.1 + self.times.2
    }
}

/// Unfilled cell records for the grid, split into row blocks per ASU.
fn raw_cells_per_asu(g: &QuantGrid, d: usize) -> Vec<Vec<CellRec>> {
    let mut out = Vec::with_capacity(d);
    for i in 0..d {
        let y0 = i * g.height / d;
        let y1 = (i + 1) * g.height / d;
        let mut block = Vec::with_capacity((y1 - y0) * g.width);
        for y in y0..y1 {
            for x in 0..g.width {
                block.push(CellRec {
                    x: x as u16,
                    y: y as u16,
                    elev: g.q[y * g.width + x],
                    neighbors: [crate::cell::NO_NEIGHBOR; 8],
                    color: 0,
                });
            }
        }
        out.push(block);
    }
    out
}

/// Build the step-1 restructure job without running it — the GIS
/// job-factory hook for the multi-tenant scheduler (`lmas-sched`): a
/// self-contained source-equals-sink job (the cell set is produced and
/// stored at the ASUs) that merges cleanly into a
/// [`lmas_emulator::run_jobs`] submission. [`run_terraflow`]'s first
/// step is exactly this job, run alone.
pub fn build_restructure_job(
    cluster: &ClusterConfig,
    grid: &Grid,
    dsm: &DsmConfig,
) -> Job<CellRec> {
    let qg = Arc::new(QuantGrid::from_grid(grid));
    let d = cluster.asus;
    let mut g1: FlowGraph<CellRec> = FlowGraph::new();
    let qg1 = qg.clone();
    let s1 = g1.add_source_stage(d, move |_| {
        Box::new(RestructureFunctor::new(qg1.clone())) as Box<dyn Functor<CellRec>>
    });
    let mut p1 = Placement::new();
    p1.spread_over_asus(s1, d, d);
    let mut inputs = BTreeMap::new();
    for (asu, block) in raw_cells_per_asu(&qg, d).into_iter().enumerate() {
        inputs.insert((s1.0, asu), packetize(block, dsm.input_packet_records));
    }
    Job { graph: g1, placement: p1, inputs }
}

/// Run the full TerraFlow watershed pipeline.
pub fn run_terraflow(
    cluster: &ClusterConfig,
    grid: &Grid,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<TerraFlowOutcome, DsmError> {
    // ---- Step 1: restructure on the ASUs (source == sink: the cell set
    // is produced and stored at the ASUs).
    let step1 = run_job(cluster, build_restructure_job(cluster, grid, dsm))?;
    let cells: Vec<CellRec> = step1.sink_records();

    // ---- Step 2: sort by (elevation, position) via DSM-Sort.
    let sort = run_dsm_sort(cluster, cells, dsm, mode)?;
    let sorted = lmas_sort::reconstruct_sorted(&sort.output)
        .map_err(|e| DsmError::InputShape(format!("sort output invalid: {e}")))?;

    // ---- Step 3: time-forward color propagation on one host.
    let mut g3: FlowGraph<CellRec> = FlowGraph::new();
    let src = g3.add_source_stage(1, |_| {
        Box::new(RelayFunctor::new("stream-sorted")) as Box<dyn Functor<CellRec>>
    });
    let shed = g3.add_stage(1, |_| {
        Box::new(WatershedFunctor::new(1 << 16)) as Box<dyn Functor<CellRec>>
    });
    g3.connect(src, shed, RoutingPolicy::Static, EdgeKind::Stream)
        .map_err(lmas_emulator::JobError::Graph)?;
    let mut p3 = Placement::new();
    p3.assign(src, 0, NodeId::Asu(0));
    p3.assign(shed, 0, NodeId::Host(0));
    let mut inputs3 = BTreeMap::new();
    inputs3.insert(
        (src.0, 0usize),
        packetize(sorted, dsm.input_packet_records),
    );
    let step3 = run_job(cluster, Job { graph: g3, placement: p3, inputs: inputs3 })?;

    // Harvest colors.
    let w = grid.width();
    let mut colors = vec![0u32; grid.len()];
    let mut watersheds = 0;
    for c in step3.sink_packets().flat_map(|p| p.records()) {
        colors[c.y as usize * w + c.x as usize] = c.color;
        watersheds = watersheds.max(c.color + 1);
    }
    let times = (step1.makespan, sort.total, step3.makespan);
    Ok(TerraFlowOutcome {
        step1,
        sort,
        step3,
        times,
        colors,
        watersheds,
    })
}

/// Convenience check: does an emulated run agree with the sequential
/// oracle on every cell?
pub fn matches_oracle(grid: &Grid, outcome: &TerraFlowOutcome) -> bool {
    watershed_oracle(grid) == outcome.colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{fractal_terrain, twin_valley_terrain};

    fn small_dsm() -> DsmConfig {
        let mut c = DsmConfig::new(4, 128, 4, 64);
        c.input_packet_records = 128;
        c
    }

    #[test]
    fn terraflow_matches_oracle_on_fractal_terrain() {
        let cluster = ClusterConfig::era_2002(1, 2, 8.0);
        let grid = fractal_terrain(33, 33, 0.55, 4);
        let out = run_terraflow(&cluster, &grid, &small_dsm(), LoadMode::Static).unwrap();
        assert!(matches_oracle(&grid, &out), "emulated labels differ from oracle");
        assert!(out.watersheds >= 1);
        assert!(out.total().as_nanos() > 0);
    }

    #[test]
    fn terraflow_auto_placement_matches_oracle() {
        // The sort step under LoadMode::Auto: the planner picks the
        // block-sort replication and placement, and the pipeline output
        // must stay oracle-exact, with the plan riding on the outcome.
        let cluster = ClusterConfig::era_2002(2, 2, 8.0);
        let grid = fractal_terrain(33, 33, 0.55, 4);
        let out = run_terraflow(&cluster, &grid, &small_dsm(), LoadMode::Auto).unwrap();
        assert!(matches_oracle(&grid, &out), "auto placement broke the labels");
        let plan = out.sort.plan.as_ref().expect("auto sort carries its plan");
        assert!(plan.sorters_per_subset >= 1);
    }

    #[test]
    fn terraflow_two_valleys_two_watersheds() {
        let cluster = ClusterConfig::era_2002(1, 2, 8.0);
        let grid = twin_valley_terrain(16, 8);
        let out = run_terraflow(&cluster, &grid, &small_dsm(), LoadMode::Static).unwrap();
        assert_eq!(out.watersheds, 2);
        assert!(matches_oracle(&grid, &out));
    }

    #[test]
    fn steps_one_and_two_scale_with_asus_step_three_does_not() {
        let grid = fractal_terrain(65, 65, 0.55, 6);
        let run = |d: usize| {
            let cluster = ClusterConfig::era_2002(1, d, 8.0);
            run_terraflow(&cluster, &grid, &small_dsm(), LoadMode::Static).unwrap()
        };
        let small = run(2);
        let big = run(8);
        let (t1s, _, t3s) = small.times;
        let (t1b, _, t3b) = big.times;
        assert!(
            t1b.as_secs_f64() < t1s.as_secs_f64() * 0.7,
            "restructure should speed up with ASUs: {t1s} → {t1b}"
        );
        let ratio = t3b.as_secs_f64() / t3s.as_secs_f64();
        assert!(
            (0.8..1.2).contains(&ratio),
            "step 3 should be insensitive to ASU count: {t3s} → {t3b}"
        );
    }

    #[test]
    fn raw_cells_cover_grid_exactly_once() {
        let g = QuantGrid::from_grid(&fractal_terrain(20, 15, 0.5, 1));
        let blocks = raw_cells_per_asu(&g, 4);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 300);
        let mut seen = vec![false; 300];
        for c in blocks.iter().flatten() {
            let idx = c.y as usize * 20 + c.x as usize;
            assert!(!seen[idx], "duplicate cell");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
