//! # lmas-gis — GIS workloads on load-managed active storage
//!
//! The paper's Section 4 example applications, built on the LMAS
//! programming model and emulator:
//!
//! - [`grid`], [`cell`]: raster terrains and the restructured cell
//!   records of TerraFlow step 1;
//! - [`pqueue`]: the external-memory priority queue behind time-forward
//!   processing;
//! - [`flow`]: watershed color propagation (step 3) with a sequential
//!   oracle;
//! - [`terraflow`]: the full three-step pipeline with per-step timing —
//!   steps 1–2 scale with ASUs, step 3 does not (Section 4.1);
//! - [`rtree`]: STR-bulk-loaded R-trees and the *partition* vs *stripe*
//!   distributed organizations of Figure 5.

#![warn(missing_docs)]

pub mod cell;
pub mod flow;
pub mod grid;
pub mod pqueue;
pub mod rtree;
pub mod terraflow;

pub use cell::{restructure, CellRec, NO_NEIGHBOR};
pub use flow::{watershed_oracle, WatershedFunctor, WatershedLabeler};
pub use grid::{cone_terrain, fractal_terrain, twin_valley_terrain, Grid};
pub use pqueue::ExternalPq;
pub use rtree::dist::{run_queries, DistRTree, Layout, QRec, QueryRun};
pub use rtree::{linear_scan, random_points, PointRec, QueryResult, RTree, Rect};
pub use terraflow::{
    build_restructure_job, matches_oracle, run_terraflow, RestructureFunctor, TerraFlowOutcome,
};
