//! Cell records: the restructured grid of TerraFlow step 1.
//!
//! "Step 1 restructures the grid to include neighbor and position
//! information in each grid cell, allowing cells to be processed
//! independently and effectively converting the grid from a stream into
//! a set" (Section 4.1). A [`CellRec`] carries its position, its own
//! quantized elevation, and the elevations of its eight D8 neighbours;
//! its sort key totally orders cells by `(elevation, position)` so the
//! elevation sort of step 2 is deterministic.

use crate::grid::{Grid, NEIGHBOR_OFFSETS};
use lmas_core::Record;

/// Sentinel for a neighbour outside the grid.
pub const NO_NEIGHBOR: u16 = u16::MAX;

/// A restructured grid cell (fixed-size record, 28 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRec {
    /// Cell x coordinate.
    pub x: u16,
    /// Cell y coordinate.
    pub y: u16,
    /// Quantized elevation (0..65535; `NO_NEIGHBOR`-safe: own elevation
    /// is capped at 65534 by the restructure).
    pub elev: u16,
    /// Quantized elevations of the D8 neighbours in
    /// [`NEIGHBOR_OFFSETS`] order; `NO_NEIGHBOR` when off-grid.
    pub neighbors: [u16; 8],
    /// Watershed color (assigned in step 3; 0 = unassigned).
    pub color: u32,
}

impl CellRec {
    /// The total-order sort key `(elev, y, x)` packed into a `u64`.
    pub fn sort_key(elev: u16, x: u16, y: u16) -> u64 {
        ((elev as u64) << 32) | ((y as u64) << 16) | x as u64
    }

    /// The sort key of the neighbour at offset index `i`, if on-grid.
    pub fn neighbor_key(&self, i: usize) -> Option<u64> {
        if self.neighbors[i] == NO_NEIGHBOR {
            return None;
        }
        let (dx, dy) = NEIGHBOR_OFFSETS[i];
        let nx = (self.x as isize + dx) as u16;
        let ny = (self.y as isize + dy) as u16;
        Some(CellRec::sort_key(self.neighbors[i], nx, ny))
    }

    /// Index (into [`NEIGHBOR_OFFSETS`]) of the steepest strictly lower
    /// neighbour under the total order, if any: the D8 flow direction.
    /// "Lower" means smaller `(elev, y, x)` key; among those, the one
    /// with the smallest elevation (ties by offset order) receives flow.
    pub fn flow_direction(&self) -> Option<usize> {
        let me = CellRec::sort_key(self.elev, self.x, self.y);
        let mut best: Option<(u16, usize)> = None;
        for i in 0..8 {
            if let Some(nk) = self.neighbor_key(i) {
                if nk < me {
                    let e = self.neighbors[i];
                    if best.is_none_or(|(be, _)| e < be) {
                        best = Some((e, i));
                    }
                }
            }
        }
        best.map(|(_, i)| i)
    }
}

impl Record for CellRec {
    const SIZE: usize = 28;
    type Key = u64;

    #[inline]
    fn key(&self) -> u64 {
        CellRec::sort_key(self.elev, self.x, self.y)
    }

    fn to_bytes(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.x.to_le_bytes());
        out[2..4].copy_from_slice(&self.y.to_le_bytes());
        out[4..6].copy_from_slice(&self.elev.to_le_bytes());
        for (i, n) in self.neighbors.iter().enumerate() {
            out[6 + 2 * i..8 + 2 * i].copy_from_slice(&n.to_le_bytes());
        }
        out[22..26].copy_from_slice(&self.color.to_le_bytes());
        out[26..28].copy_from_slice(&[0, 0]);
    }

    fn from_bytes(b: &[u8]) -> Self {
        let mut neighbors = [0u16; 8];
        for (i, n) in neighbors.iter_mut().enumerate() {
            *n = u16::from_le_bytes(b[6 + 2 * i..8 + 2 * i].try_into().expect("2 bytes"));
        }
        CellRec {
            x: u16::from_le_bytes(b[0..2].try_into().expect("2 bytes")),
            y: u16::from_le_bytes(b[2..4].try_into().expect("2 bytes")),
            elev: u16::from_le_bytes(b[4..6].try_into().expect("2 bytes")),
            neighbors,
            color: u32::from_le_bytes(b[22..26].try_into().expect("4 bytes")),
        }
    }
}

/// Step 1: restructure a grid into cell records, row-major order.
/// Elevations are quantized to 16 bits, capped at 65534 so the
/// `NO_NEIGHBOR` sentinel stays unambiguous.
pub fn restructure(grid: &Grid) -> Vec<CellRec> {
    let q: Vec<u16> = grid
        .quantized()
        .into_iter()
        .map(|e| e.min(u16::MAX - 1))
        .collect();
    let w = grid.width();
    let h = grid.height();
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let mut neighbors = [NO_NEIGHBOR; 8];
            for (i, &(dx, dy)) in NEIGHBOR_OFFSETS.iter().enumerate() {
                let nx = x as isize + dx;
                let ny = y as isize + dy;
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    neighbors[i] = q[ny as usize * w + nx as usize];
                }
            }
            out.push(CellRec {
                x: x as u16,
                y: y as u16,
                elev: q[y * w + x],
                neighbors,
                color: 0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::cone_terrain;

    #[test]
    fn record_roundtrip() {
        let c = CellRec {
            x: 3,
            y: 7,
            elev: 1000,
            neighbors: [1, 2, 3, 4, 5, 6, 7, NO_NEIGHBOR],
            color: 42,
        };
        let mut buf = [0u8; 28];
        c.to_bytes(&mut buf);
        assert_eq!(CellRec::from_bytes(&buf), c);
    }

    #[test]
    fn sort_key_orders_by_elev_then_position() {
        let a = CellRec::sort_key(5, 9, 9);
        let b = CellRec::sort_key(6, 0, 0);
        assert!(a < b, "elevation dominates");
        let c = CellRec::sort_key(5, 1, 0); // x=1, y=0
        let d = CellRec::sort_key(5, 0, 1); // x=0, y=1
        assert!(c < d, "y breaks elevation ties before x");
    }

    #[test]
    fn restructure_captures_neighbors() {
        let g = cone_terrain(5, 5);
        let cells = restructure(&g);
        assert_eq!(cells.len(), 25);
        // Corner cell has exactly 3 on-grid neighbours.
        let corner = &cells[0];
        assert_eq!((corner.x, corner.y), (0, 0));
        let on_grid = corner.neighbors.iter().filter(|&&n| n != NO_NEIGHBOR).count();
        assert_eq!(on_grid, 3);
        // Interior cell has 8.
        let interior = &cells[2 * 5 + 2];
        assert!(interior.neighbors.iter().all(|&n| n != NO_NEIGHBOR));
    }

    #[test]
    fn cone_centre_is_global_minimum_with_no_flow_direction() {
        let g = cone_terrain(9, 9);
        let cells = restructure(&g);
        let centre = cells.iter().find(|c| c.x == 4 && c.y == 4).unwrap();
        assert_eq!(centre.flow_direction(), None, "minimum flows nowhere");
        // A rim cell flows somewhere.
        let rim = cells.iter().find(|c| c.x == 0 && c.y == 0).unwrap();
        assert!(rim.flow_direction().is_some());
    }

    #[test]
    fn neighbor_key_reconstructs_position() {
        let g = cone_terrain(5, 5);
        let cells = restructure(&g);
        let c = cells.iter().find(|c| c.x == 2 && c.y == 2).unwrap();
        // Neighbour 0 is (0, -1): position (2, 1).
        let nk = c.neighbor_key(0).unwrap();
        assert_eq!(nk & 0xFFFF, 2, "x");
        assert_eq!((nk >> 16) & 0xFFFF, 1, "y");
        // Off-grid neighbour of a corner yields None.
        let corner = &cells[0];
        assert!(corner.neighbor_key(0).is_none(), "N of (0,0) is off-grid");
    }

    #[test]
    fn flow_direction_picks_steepest() {
        let c = CellRec {
            x: 1,
            y: 1,
            elev: 100,
            neighbors: [90, 50, 95, NO_NEIGHBOR, 100, 101, 99, 98],
            color: 0,
        };
        // Lowest lower neighbour is index 1 (elev 50).
        assert_eq!(c.flow_direction(), Some(1));
    }
}
