//! Distributed R-trees over ASUs: the two organizations of Figure 5.
//!
//! "For an R-tree with multiple ASUs, the upper portion of the original
//! tree is unchanged and placed on one host … The lower part of the tree
//! is replaced with subtrees on the disk nodes."
//!
//! - [`Layout::Partition`]: "build a tree over all the data at each ASU,
//!   and treat each as a leaf of the host tree" — a query visits only
//!   the ASUs whose partition it intersects, so concurrent queries
//!   spread across ASUs (throughput).
//! - [`Layout::Stripe`]: "stripe a host leaf across all of the ASUs …
//!   every query executes in parallel on all of the ASUs, which is
//!   useful to bound search latency."
//!
//! The query workload runs on the emulator as a dataflow: a host-side
//! dispatch functor routes query records to ASU-resident search functors
//! (each holding its subtree), whose per-query result records return to a
//! host collector.

use crate::rtree::{PointRec, RTree, Rect};
use lmas_core::functor::lib::RelayFunctor;
use lmas_core::functor::{Emit, Functor, FunctorKind};
use lmas_core::{
    packetize, EdgeKind, FlowGraph, NodeId, Packet, Placement, Record, RoutingPolicy, Work,
};
use lmas_emulator::{run_job, ClusterConfig, EmulationReport, Job, JobError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the lower tree levels map onto ASUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Spatial partition: subtree per ASU, queries visit intersecting
    /// partitions only.
    Partition,
    /// Round-robin stripe: every query visits every ASU.
    Stripe,
    /// The paper's hybrid: spatial partitions, each subtree *replicated*
    /// on `copies` ASUs; a query picks the least-loaded replica, so hot
    /// regions spread across replicas ("Hybrid solutions using a subset
    /// of the ASUs or replicating subtrees on multiple ASUs are also
    /// possible").
    Replicated {
        /// Replicas per partition; must divide the ASU count.
        copies: usize,
    },
}

/// A query/result record (24 bytes): a rectangle on the way out, a match
/// count on the way back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QRec {
    /// Query id.
    pub qid: u32,
    /// Query rectangle.
    pub rect: [f32; 4],
    /// Matches found (filled by the search functor).
    pub count: u32,
}

impl QRec {
    /// A fresh query.
    pub fn query(qid: u32, r: Rect) -> QRec {
        QRec {
            qid,
            rect: [r.x0, r.y0, r.x1, r.y1],
            count: 0,
        }
    }

    /// The rectangle.
    pub fn rect(&self) -> Rect {
        Rect::new(self.rect[0], self.rect[1], self.rect[2], self.rect[3])
    }
}

impl Record for QRec {
    const SIZE: usize = 24;
    type Key = u32;

    fn key(&self) -> u32 {
        self.qid
    }

    fn to_bytes(&self, out: &mut [u8]) {
        out[0..4].copy_from_slice(&self.qid.to_le_bytes());
        for (i, v) in self.rect.iter().enumerate() {
            out[4 + 4 * i..8 + 4 * i].copy_from_slice(&v.to_le_bytes());
        }
        out[20..24].copy_from_slice(&self.count.to_le_bytes());
    }

    fn from_bytes(b: &[u8]) -> Self {
        let mut rect = [0f32; 4];
        for (i, v) in rect.iter_mut().enumerate() {
            *v = f32::from_le_bytes(b[4 + 4 * i..8 + 4 * i].try_into().expect("4 bytes"));
        }
        QRec {
            qid: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            rect,
            count: u32::from_le_bytes(b[20..24].try_into().expect("4 bytes")),
        }
    }
}

/// A distributed R-tree: one subtree per ASU plus the host-side routing
/// metadata (partition MBRs).
pub struct DistRTree {
    /// The layout in force.
    pub layout: Layout,
    /// Subtree per ASU.
    pub trees: Vec<Arc<RTree>>,
    /// Partition MBRs (the host tree's bottom level).
    pub mbrs: Vec<Rect>,
    total_points: usize,
}

impl DistRTree {
    /// Distribute `points` over `d` ASUs under `layout` with the given
    /// leaf fanout.
    pub fn build(mut points: Vec<PointRec>, d: usize, fanout: usize, layout: Layout) -> DistRTree {
        assert!(d > 0, "need at least one ASU");
        let total_points = points.len();
        let slabs = |points: &mut Vec<PointRec>, k: usize| -> Vec<Vec<PointRec>> {
            // Spatial slabs by x (the top of an STR split).
            points.sort_by(|a, b| a.x.total_cmp(&b.x));
            let n = points.len();
            (0..k)
                .map(|i| points[i * n / k..(i + 1) * n / k].to_vec())
                .collect()
        };
        let (trees, mbrs): (Vec<Arc<RTree>>, Vec<Rect>) = match layout {
            Layout::Partition => {
                let trees: Vec<Arc<RTree>> = slabs(&mut points, d)
                    .into_iter()
                    .map(|c| Arc::new(RTree::bulk_load(c, fanout)))
                    .collect();
                let mbrs = trees.iter().map(|t| t.mbr().unwrap_or(Rect::EMPTY)).collect();
                (trees, mbrs)
            }
            Layout::Stripe => {
                let mut out: Vec<Vec<PointRec>> = (0..d).map(|_| Vec::new()).collect();
                for (i, p) in points.into_iter().enumerate() {
                    out[i % d].push(p);
                }
                let trees: Vec<Arc<RTree>> = out
                    .into_iter()
                    .map(|c| Arc::new(RTree::bulk_load(c, fanout)))
                    .collect();
                let mbrs = trees.iter().map(|t| t.mbr().unwrap_or(Rect::EMPTY)).collect();
                (trees, mbrs)
            }
            Layout::Replicated { copies } => {
                assert!(copies >= 1 && d.is_multiple_of(copies), "copies must divide the ASU count");
                let parts = d / copies;
                let part_trees: Vec<Arc<RTree>> = slabs(&mut points, parts)
                    .into_iter()
                    .map(|c| Arc::new(RTree::bulk_load(c, fanout)))
                    .collect();
                // ASU j holds a replica of partition j / copies.
                let trees = (0..d).map(|j| part_trees[j / copies].clone()).collect();
                // One routing MBR per partition (dispatch port group).
                let mbrs = part_trees
                    .iter()
                    .map(|t| t.mbr().unwrap_or(Rect::EMPTY))
                    .collect();
                (trees, mbrs)
            }
        };
        DistRTree {
            layout,
            trees,
            mbrs,
            total_points,
        }
    }

    /// Total indexed points.
    pub fn len(&self) -> usize {
        self.total_points
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.total_points == 0
    }

    /// Which ASUs *could* serve a query under this layout (for
    /// replicated layouts, all replicas of each intersecting partition).
    pub fn targets(&self, rect: &Rect) -> Vec<usize> {
        match self.layout {
            Layout::Stripe => (0..self.trees.len()).collect(),
            Layout::Partition => self
                .mbrs
                .iter()
                .enumerate()
                .filter(|(_, m)| m.intersects(rect))
                .map(|(i, _)| i)
                .collect(),
            Layout::Replicated { copies } => self
                .mbrs
                .iter()
                .enumerate()
                .filter(|(_, m)| m.intersects(rect))
                .flat_map(|(p, _)| p * copies..(p + 1) * copies)
                .collect(),
        }
    }
}

/// Host-side dispatch: routes each query to the ASUs its layout demands
/// (one output port per ASU).
struct DispatchFunctor {
    mbrs: Vec<Rect>,
    stripe: bool,
}

impl Functor<QRec> for DispatchFunctor {
    fn name(&self) -> String {
        format!("dispatch({})", if self.stripe { "stripe" } else { "partition" })
    }
    fn out_ports(&self) -> usize {
        self.mbrs.len()
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 4096 }
    }
    fn process(&mut self, input: Packet<QRec>, out: &mut Emit<QRec>) {
        let d = self.mbrs.len();
        let mut per_port: Vec<Vec<QRec>> = (0..d).map(|_| Vec::new()).collect();
        for q in input.into_records() {
            for (port, mbr) in per_port.iter_mut().zip(&self.mbrs) {
                if self.stripe || mbr.intersects(&q.rect()) {
                    port.push(q);
                }
            }
        }
        for (p, qs) in per_port.into_iter().enumerate() {
            out.push(p, Packet::new(qs));
        }
    }
    fn flush(&mut self, _out: &mut Emit<QRec>) {}
    fn cost(&self, input: &Packet<QRec>) -> Work {
        // MBR tests against each partition, plus handling.
        let n = input.len() as u64;
        Work::compares(n * self.mbrs.len() as u64) + Work::moves(n)
    }
}

/// ASU-resident search: runs each query against the local subtree and
/// emits a count record.
struct SearchFunctor {
    tree: Arc<RTree>,
}

impl Functor<QRec> for SearchFunctor {
    fn name(&self) -> String {
        "rtree-search".into()
    }
    fn kind(&self) -> FunctorKind {
        // Prevalidated index-search kernel resident on the ASU.
        FunctorKind::VerifiedKernel { max_state_bytes: usize::MAX }
    }
    fn process(&mut self, input: Packet<QRec>, out: &mut Emit<QRec>) {
        let results: Packet<QRec> = input
            .into_records()
            .into_iter()
            .map(|mut q| {
                q.count = self.tree.query(&q.rect()).ids.len() as u32;
                q
            })
            .collect();
        out.push0(results);
    }
    fn flush(&mut self, _out: &mut Emit<QRec>) {}
    fn cost(&self, input: &Packet<QRec>) -> Work {
        let mut w = Work::ZERO;
        for q in input.records() {
            let (nodes, scanned) = self.tree.query_cost(&q.rect());
            w += Work::compares(nodes * self.tree.fanout() as u64 + scanned)
                + Work::moves(1)
                + Work::bytes(scanned * PointRec::SIZE as u64);
        }
        w
    }
}

/// Outcome of a query batch on the emulator.
pub struct QueryRun {
    /// Emulation report (timing, utilization).
    pub report: EmulationReport<QRec>,
    /// Total matches per query id.
    pub counts: BTreeMap<u32, u64>,
}

/// Execute `queries` against a distributed R-tree on the emulated
/// cluster. Queries are injected at host 0, searched on the ASUs, and
/// collected at host 0.
pub fn run_queries(
    cluster: &ClusterConfig,
    index: &DistRTree,
    queries: &[Rect],
    queries_per_packet: usize,
) -> Result<QueryRun, JobError> {
    assert_eq!(
        index.trees.len(),
        cluster.asus,
        "index was built for a different ASU count"
    );
    let d = cluster.asus;
    let mut g: FlowGraph<QRec> = FlowGraph::new();
    let mbrs = index.mbrs.clone();
    let stripe = index.layout == Layout::Stripe;
    let dispatch = g.add_source_stage(1, move |_| {
        Box::new(DispatchFunctor { mbrs: mbrs.clone(), stripe }) as Box<dyn Functor<QRec>>
    });
    let trees = index.trees.clone();
    let search = g.add_stage(d, move |i| {
        Box::new(SearchFunctor { tree: trees[i].clone() }) as Box<dyn Functor<QRec>>
    });
    let collect = g.add_stage(1, |_| {
        Box::new(RelayFunctor::new("collect-results")) as Box<dyn Functor<QRec>>
    });
    match index.layout {
        // Port p → ASU p (static).
        Layout::Partition | Layout::Stripe => {
            g.connect(dispatch, search, RoutingPolicy::Static, EdgeKind::Set)?;
        }
        // Port p → the least-loaded replica within partition p's group:
        // the system load-balances across replicas (Section 3.3).
        Layout::Replicated { copies } => {
            g.connect_scoped(
                dispatch,
                search,
                RoutingPolicy::LoadAware,
                EdgeKind::Set,
                lmas_core::RouteScope::PortGroups { group_size: copies },
            )?;
        }
    }
    g.connect(search, collect, RoutingPolicy::Static, EdgeKind::Set)?;
    let mut placement = Placement::new();
    placement.assign(dispatch, 0, NodeId::Host(0));
    placement.spread_over_asus(search, d, d);
    placement.assign(collect, 0, NodeId::Host(0));

    let qrecs: Vec<QRec> = queries
        .iter()
        .enumerate()
        .map(|(i, r)| QRec::query(i as u32, *r))
        .collect();
    let mut inputs = BTreeMap::new();
    inputs.insert((dispatch.0, 0usize), packetize(qrecs, queries_per_packet));

    let report = run_job(cluster, Job { graph: g, placement, inputs })?;
    let mut counts = BTreeMap::new();
    for q in report.sink_packets().flat_map(|p| p.records()) {
        *counts.entry(q.qid).or_insert(0u64) += q.count as u64;
    }
    Ok(QueryRun { report, counts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtree::{linear_scan, random_points};

    fn queries() -> Vec<Rect> {
        vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.1, 0.1, 0.3, 0.3),
            Rect::new(0.45, 0.0, 0.55, 1.0), // spans partitions
            Rect::new(0.9, 0.9, 0.95, 0.95),
            Rect::new(-1.0, -1.0, -0.5, -0.5), // empty
        ]
    }

    #[test]
    fn both_layouts_count_correctly() {
        let cluster = ClusterConfig::era_2002(1, 4, 8.0);
        let points = random_points(3_000, 7);
        for layout in [Layout::Partition, Layout::Stripe] {
            let index = DistRTree::build(points.clone(), 4, 16, layout);
            let run = run_queries(&cluster, &index, &queries(), 4).unwrap();
            for (i, rect) in queries().iter().enumerate() {
                let want = linear_scan(&points, rect).len() as u64;
                let got = run.counts.get(&(i as u32)).copied().unwrap_or(0);
                assert_eq!(got, want, "{layout:?} query {i}");
            }
        }
    }

    #[test]
    fn partition_targets_subset_stripe_targets_all() {
        let points = random_points(1_000, 3);
        let part = DistRTree::build(points.clone(), 8, 16, Layout::Partition);
        let stripe = DistRTree::build(points, 8, 16, Layout::Stripe);
        // A narrow slab query touches few partitions…
        let narrow = Rect::new(0.01, 0.0, 0.05, 1.0);
        assert!(part.targets(&narrow).len() <= 2, "{:?}", part.targets(&narrow));
        // …but every stripe.
        assert_eq!(stripe.targets(&narrow).len(), 8);
    }

    #[test]
    fn partition_spreads_points_spatially() {
        let points = random_points(1_000, 5);
        let part = DistRTree::build(points, 4, 16, Layout::Partition);
        // Slab MBRs are (nearly) disjoint in x: each ends before the
        // next one's upper edge.
        for w in part.mbrs.windows(2) {
            assert!(w[0].x0 <= w[1].x0);
        }
        assert_eq!(part.len(), 1_000);
    }

    #[test]
    fn query_record_roundtrip() {
        let q = QRec { qid: 9, rect: [0.1, 0.2, 0.3, 0.4], count: 17 };
        let mut buf = [0u8; 24];
        q.to_bytes(&mut buf);
        assert_eq!(QRec::from_bytes(&buf), q);
    }

    #[test]
    fn stripe_single_query_is_faster_than_partition() {
        // One big query: stripe parallelizes the leaf scans over all
        // ASUs; partition concentrates them on the intersecting slabs.
        let cluster = ClusterConfig::era_2002(1, 8, 8.0);
        let points = random_points(40_000, 11);
        let q = vec![Rect::new(0.4, 0.0, 0.6, 1.0)]; // 20% slab
        let part = DistRTree::build(points.clone(), 8, 16, Layout::Partition);
        let stripe = DistRTree::build(points, 8, 16, Layout::Stripe);
        let tp = run_queries(&cluster, &part, &q, 1).unwrap();
        let ts = run_queries(&cluster, &stripe, &q, 1).unwrap();
        assert!(
            ts.report.makespan < tp.report.makespan,
            "stripe {} should beat partition {} on one query",
            ts.report.makespan,
            tp.report.makespan
        );
    }
}

#[cfg(test)]
mod replicated_tests {
    use super::*;
    use crate::rtree::{linear_scan, random_points};

    #[test]
    fn replicated_layout_counts_correctly() {
        let cluster = ClusterConfig::era_2002(1, 8, 8.0);
        let points = random_points(4_000, 13);
        let index = DistRTree::build(points.clone(), 8, 16, Layout::Replicated { copies: 2 });
        let queries = vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.3, 0.3, 0.6, 0.6),
            Rect::new(0.95, 0.95, 1.0, 1.0),
        ];
        let run = run_queries(&cluster, &index, &queries, 2).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                run.counts.get(&(i as u32)).copied().unwrap_or(0),
                linear_scan(&points, q).len() as u64,
                "query {i}"
            );
        }
    }

    #[test]
    fn replicated_targets_cover_all_replicas() {
        let points = random_points(1_000, 3);
        let index = DistRTree::build(points, 8, 16, Layout::Replicated { copies: 4 });
        assert_eq!(index.mbrs.len(), 2, "two partitions");
        let everywhere = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(index.targets(&everywhere).len(), 8);
    }

    #[test]
    fn replication_spreads_a_hot_region_across_replicas() {
        // All queries hammer one spatial region: a plain partition layout
        // serializes them on one ASU; replication load-balances replicas.
        let d = 8;
        let cluster = ClusterConfig::era_2002(1, d, 8.0);
        let points = random_points(40_000, 21);
        let hot: Vec<Rect> = (0..48)
            .map(|i| {
                let off = (i % 8) as f32 * 0.004;
                Rect::new(0.05 + off, 0.1, 0.09 + off, 0.9)
            })
            .collect();
        let part = DistRTree::build(points.clone(), d, 16, Layout::Partition);
        let repl = DistRTree::build(points, d, 16, Layout::Replicated { copies: 4 });
        let tp = run_queries(&cluster, &part, &hot, 1).unwrap().report.makespan;
        let tr = run_queries(&cluster, &repl, &hot, 1).unwrap().report.makespan;
        assert!(
            tr.as_secs_f64() < tp.as_secs_f64() * 0.8,
            "replicas should absorb the hot region: partition {tp}, replicated {tr}"
        );
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn replication_must_divide_asu_count() {
        DistRTree::build(random_points(100, 1), 8, 16, Layout::Replicated { copies: 3 });
    }
}
