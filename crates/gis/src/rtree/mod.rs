//! R-trees: multi-dimensional spatial indexes (Section 4.2).
//!
//! "An R-tree is a general structure used to build multi-dimensional
//! indexes by splitting a space into a hierarchy of nested and possibly
//! overlapping regions." This module implements an STR (sort-tile-
//! recursive) bulk-loaded R-tree over 2-D points, with node-visit
//! accounting so the emulator can charge search cost; [`dist`] builds
//! the paper's two distributed organizations (Figure 5).

pub mod dist;

use lmas_core::Record;

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f32,
    /// Bottom edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
}

impl Rect {
    /// The empty rectangle (inverted bounds; unions fix it up).
    pub const EMPTY: Rect = Rect {
        x0: f32::INFINITY,
        y0: f32::INFINITY,
        x1: f32::NEG_INFINITY,
        y1: f32::NEG_INFINITY,
    };

    /// A rectangle from corner coordinates (normalizing order).
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Rect {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Whether the point `(x, y)` lies inside (inclusive).
    pub fn contains(&self, x: f32, y: f32) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// Whether two rectangles overlap (inclusive).
    pub fn intersects(&self, o: &Rect) -> bool {
        self.x0 <= o.x1 && o.x0 <= self.x1 && self.y0 <= o.y1 && o.y0 <= self.y1
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, o: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(o.x0),
            y0: self.y0.min(o.y0),
            x1: self.x1.max(o.x1),
            y1: self.y1.max(o.y1),
        }
    }

    /// Grow to include a point.
    pub fn expand(&mut self, x: f32, y: f32) {
        self.x0 = self.x0.min(x);
        self.y0 = self.y0.min(y);
        self.x1 = self.x1.max(x);
        self.y1 = self.y1.max(y);
    }
}

/// An indexed point (fixed-size record: 16 bytes, id is the key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRec {
    /// Unique id.
    pub id: u64,
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
}

impl Record for PointRec {
    const SIZE: usize = 16;
    type Key = u64;

    fn key(&self) -> u64 {
        self.id
    }

    fn to_bytes(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.id.to_le_bytes());
        out[8..12].copy_from_slice(&self.x.to_le_bytes());
        out[12..16].copy_from_slice(&self.y.to_le_bytes());
    }

    fn from_bytes(b: &[u8]) -> Self {
        PointRec {
            id: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            x: f32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            y: f32::from_le_bytes(b[12..16].try_into().expect("4 bytes")),
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { mbr: Rect, points: Vec<PointRec> },
    Inner { mbr: Rect, children: Vec<usize> },
}

impl Node {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }
}

/// An STR bulk-loaded R-tree over points.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    fanout: usize,
    len: usize,
}

/// Result of a range query: matches plus traversal accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Ids of matching points.
    pub ids: Vec<u64>,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Leaf points scanned.
    pub points_scanned: u64,
}

impl RTree {
    /// Bulk load with sort-tile-recursive packing at the given fanout.
    pub fn bulk_load(mut points: Vec<PointRec>, fanout: usize) -> RTree {
        assert!(fanout >= 2, "fanout must be at least 2");
        let len = points.len();
        let mut tree = RTree {
            nodes: Vec::new(),
            root: None,
            fanout,
            len,
        };
        if points.is_empty() {
            return tree;
        }
        // STR: sort by x, cut into vertical slabs of √(n/B) leaves' worth,
        // sort each slab by y, pack leaves.
        let b = fanout;
        let nleaves = len.div_ceil(b);
        let slabs = (nleaves as f64).sqrt().ceil() as usize;
        let per_slab = len.div_ceil(slabs);
        points.sort_by(|a, b| a.x.total_cmp(&b.x));
        let mut leaf_ids = Vec::with_capacity(nleaves);
        for slab in points.chunks_mut(per_slab.max(1)) {
            slab.sort_by(|a, b| a.y.total_cmp(&b.y));
            for chunk in slab.chunks(b) {
                let mut mbr = Rect::EMPTY;
                for p in chunk {
                    mbr.expand(p.x, p.y);
                }
                leaf_ids.push(tree.push(Node::Leaf {
                    mbr,
                    points: chunk.to_vec(),
                }));
            }
        }
        // Pack upward.
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(b));
            for chunk in level.chunks(b) {
                let mut mbr = Rect::EMPTY;
                for &c in chunk {
                    mbr = mbr.union(&tree.nodes[c].mbr());
                }
                next.push(tree.push(Node::Inner {
                    mbr,
                    children: chunk.to_vec(),
                }));
            }
            level = next;
        }
        tree.root = level.first().copied();
        tree
    }

    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of everything, if non-empty.
    pub fn mbr(&self) -> Option<Rect> {
        self.root.map(|r| self.nodes[r].mbr())
    }

    /// Tree height (leaf = 1), 0 when empty.
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut cur = self.root;
        while let Some(i) = cur {
            h += 1;
            cur = match &self.nodes[i] {
                Node::Inner { children, .. } => children.first().copied(),
                Node::Leaf { .. } => None,
            };
        }
        h
    }

    /// Range query: all points inside `rect`, with traversal accounting.
    pub fn query(&self, rect: &Rect) -> QueryResult {
        let mut result = QueryResult {
            ids: Vec::new(),
            nodes_visited: 0,
            points_scanned: 0,
        };
        let Some(root) = self.root else {
            return result;
        };
        let mut stack = vec![root];
        while let Some(i) = stack.pop() {
            result.nodes_visited += 1;
            match &self.nodes[i] {
                Node::Leaf { points, .. } => {
                    for p in points {
                        result.points_scanned += 1;
                        if rect.contains(p.x, p.y) {
                            result.ids.push(p.id);
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for &c in children {
                        if self.nodes[c].mbr().intersects(rect) {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        result
    }

    /// Traversal cost of a query without materializing matches (for
    /// declared functor cost bounds).
    pub fn query_cost(&self, rect: &Rect) -> (u64, u64) {
        let r = self.query(rect);
        (r.nodes_visited, r.points_scanned)
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

/// Brute-force oracle for tests.
pub fn linear_scan(points: &[PointRec], rect: &Rect) -> Vec<u64> {
    points
        .iter()
        .filter(|p| rect.contains(p.x, p.y))
        .map(|p| p.id)
        .collect()
}

/// Uniformly random points in the unit square.
pub fn random_points(n: usize, seed: u64) -> Vec<PointRec> {
    let mut rng = lmas_sim::DetRng::stream(seed, 0x907);
    (0..n)
        .map(|i| PointRec {
            id: i as u64,
            x: rng.gen_f64() as f32,
            y: rng.gen_f64() as f32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(1.0, 1.0, 0.0, 0.0); // normalized
        assert!(r.contains(0.5, 0.5));
        assert!(r.contains(0.0, 1.0), "inclusive edges");
        assert!(!r.contains(1.1, 0.5));
        let o = Rect::new(0.9, 0.9, 2.0, 2.0);
        assert!(r.intersects(&o));
        assert!(!r.intersects(&Rect::new(2.0, 2.0, 3.0, 3.0)));
        let u = r.union(&o);
        assert_eq!((u.x0, u.y0, u.x1, u.y1), (0.0, 0.0, 2.0, 2.0));
    }

    #[test]
    fn point_record_roundtrip() {
        let p = PointRec {
            id: 7,
            x: 0.25,
            y: 0.75,
        };
        let mut buf = [0u8; 16];
        p.to_bytes(&mut buf);
        assert_eq!(PointRec::from_bytes(&buf), p);
    }

    #[test]
    fn query_matches_linear_scan() {
        let pts = random_points(2_000, 3);
        let tree = RTree::bulk_load(pts.clone(), 16);
        assert_eq!(tree.len(), 2_000);
        for (i, rect) in [
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.2, 0.2, 0.4, 0.9),
            Rect::new(0.5, 0.5, 0.5001, 0.5001),
            Rect::new(-1.0, -1.0, -0.5, -0.5),
        ]
        .iter()
        .enumerate()
        {
            let got = sorted(tree.query(rect).ids);
            let want = sorted(linear_scan(&pts, rect));
            assert_eq!(got, want, "query {i}");
        }
    }

    #[test]
    fn full_query_returns_everything() {
        let pts = random_points(500, 1);
        let tree = RTree::bulk_load(pts, 8);
        let all = tree.query(&Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(all.ids.len(), 500);
        assert!(all.nodes_visited > 1);
    }

    #[test]
    fn small_query_prunes_subtrees() {
        let pts = random_points(10_000, 5);
        let tree = RTree::bulk_load(pts, 16);
        let tiny = tree.query(&Rect::new(0.1, 0.1, 0.12, 0.12));
        assert!(
            tiny.points_scanned < 2_000,
            "pruning should avoid most leaves: scanned {}",
            tiny.points_scanned
        );
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::bulk_load(vec![], 8);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.mbr().is_none());
        assert!(tree.query(&Rect::new(0.0, 0.0, 1.0, 1.0)).ids.is_empty());
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = RTree::bulk_load(random_points(16, 1), 16);
        let big = RTree::bulk_load(random_points(10_000, 1), 16);
        assert_eq!(small.height(), 1);
        assert!(big.height() >= 3);
        assert!(big.height() <= 5);
    }

    #[test]
    fn mbr_covers_all_points() {
        let pts = random_points(300, 9);
        let tree = RTree::bulk_load(pts.clone(), 8);
        let mbr = tree.mbr().unwrap();
        for p in &pts {
            assert!(mbr.contains(p.x, p.y));
        }
    }
}
