//! External-memory priority queue.
//!
//! TerraFlow's step 3 uses *time-forward processing* [Chiang et al.,
//! SODA'95]: cells processed in elevation order send messages "forward"
//! to cells processed later, buffered in an external priority queue.
//! This is the classic sorted-run implementation: inserts accumulate in a
//! bounded in-memory buffer; on overflow the buffer is sorted and spilled
//! as a run; `pop_min` draws from the buffer and all run heads. Spilled
//! bytes are counted so the emulator can charge I/O for them.

/// A min-priority queue with bounded memory and sorted-run spills.
#[derive(Debug)]
pub struct ExternalPq<K: Ord + Copy, V: Clone> {
    buffer: Vec<(K, V)>,
    buffer_sorted: bool,
    buffer_limit: usize,
    runs: Vec<Run<K, V>>,
    len: usize,
    spilled_items: u64,
}

#[derive(Debug)]
struct Run<K, V> {
    items: Vec<(K, V)>, // ascending by key
    cursor: usize,
}

impl<K: Ord + Copy, V: Clone> Run<K, V> {
    fn head(&self) -> Option<&(K, V)> {
        self.items.get(self.cursor)
    }
}

impl<K: Ord + Copy, V: Clone> ExternalPq<K, V> {
    /// A queue spilling once more than `buffer_limit` items are buffered.
    pub fn new(buffer_limit: usize) -> Self {
        assert!(buffer_limit > 0, "buffer must hold at least one item");
        ExternalPq {
            buffer: Vec::new(),
            buffer_sorted: true,
            buffer_limit,
            runs: Vec::new(),
            len: 0,
            spilled_items: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items spilled to runs over the queue's lifetime (I/O accounting).
    pub fn spilled_items(&self) -> u64 {
        self.spilled_items
    }

    /// Live in-memory footprint in items (buffer only; runs are
    /// conceptually external).
    pub fn in_memory_items(&self) -> usize {
        self.buffer.len()
    }

    /// Insert an item.
    pub fn push(&mut self, key: K, value: V) {
        self.buffer.push((key, value));
        self.buffer_sorted = false;
        self.len += 1;
        if self.buffer.len() > self.buffer_limit {
            self.spill();
        }
    }

    fn spill(&mut self) {
        let mut items = std::mem::take(&mut self.buffer);
        items.sort_by_key(|&(k, _)| k);
        self.spilled_items += items.len() as u64;
        self.runs.push(Run { items, cursor: 0 });
        self.buffer_sorted = true;
        // Keep the run count bounded: merge all runs once there are more
        // than a handful (a miniature multiway merge pass).
        if self.runs.len() > 8 {
            self.merge_runs();
        }
    }

    fn merge_runs(&mut self) {
        let runs = std::mem::take(&mut self.runs);
        let mut merged: Vec<(K, V)> = Vec::with_capacity(
            runs.iter().map(|r| r.items.len() - r.cursor).sum(),
        );
        for r in runs {
            merged.extend(r.items.into_iter().skip(r.cursor));
        }
        merged.sort_by_key(|&(k, _)| k);
        self.runs.push(Run { items: merged, cursor: 0 });
    }

    fn ensure_buffer_sorted(&mut self) {
        if !self.buffer_sorted {
            // Descending, so the minimum is at the tail (O(1) pop).
            self.buffer.sort_by_key(|&(k, _)| std::cmp::Reverse(k));
            self.buffer_sorted = true;
        }
    }

    /// The minimum key currently queued.
    pub fn peek_min_key(&mut self) -> Option<K> {
        self.ensure_buffer_sorted();
        let buf_min = self.buffer.last().map(|&(k, _)| k);
        let run_min = self
            .runs
            .iter()
            .filter_map(|r| r.head().map(|&(k, _)| k))
            .min();
        match (buf_min, run_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Remove and return the minimum item.
    pub fn pop_min(&mut self) -> Option<(K, V)> {
        self.ensure_buffer_sorted();
        let buf_min = self.buffer.last().map(|&(k, _)| k);
        let run_idx = self
            .runs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.head().map(|&(k, _)| (k, i)))
            .min_by_key(|&(k, i)| (k, i))
            .map(|(_, i)| i);
        let take_buffer = match (buf_min, run_idx) {
            (Some(b), Some(i)) => b <= self.runs[i].head().expect("head").0,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        self.len -= 1;
        if take_buffer {
            self.buffer.pop()
        } else {
            let i = run_idx.expect("run index");
            let r = &mut self.runs[i];
            let item = r.items[r.cursor].clone();
            r.cursor += 1;
            Some(item)
        }
    }

    /// Pop every item whose key equals `key` (in insertion-independent
    /// order). Used to collect all messages addressed to one cell.
    pub fn pop_all_eq(&mut self, key: K) -> Vec<V> {
        let mut out = Vec::new();
        while self.peek_min_key() == Some(key) {
            out.push(self.pop_min().expect("peeked").1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order_across_spills() {
        let mut pq = ExternalPq::new(4);
        let keys = [9u32, 3, 7, 1, 8, 2, 6, 0, 5, 4];
        for &k in &keys {
            pq.push(k, k * 10);
        }
        assert_eq!(pq.len(), 10);
        assert!(pq.spilled_items() > 0, "small buffer must spill");
        let mut got = Vec::new();
        while let Some((k, v)) = pq.pop_min() {
            assert_eq!(v, k * 10);
            got.push(k);
        }
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
        assert!(pq.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut pq = ExternalPq::new(2);
        pq.push(5u32, ());
        pq.push(1, ());
        assert_eq!(pq.pop_min().unwrap().0, 1);
        pq.push(3, ());
        pq.push(0, ());
        assert_eq!(pq.pop_min().unwrap().0, 0);
        assert_eq!(pq.pop_min().unwrap().0, 3);
        assert_eq!(pq.pop_min().unwrap().0, 5);
        assert!(pq.pop_min().is_none());
    }

    #[test]
    fn duplicate_keys_all_pop() {
        let mut pq = ExternalPq::new(3);
        for i in 0..7u32 {
            pq.push(42u32, i);
        }
        pq.push(7, 99);
        let below = pq.pop_min().unwrap();
        assert_eq!(below.0, 7);
        let all = pq.pop_all_eq(42);
        assert_eq!(all.len(), 7);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<u32>>());
        assert!(pq.is_empty());
    }

    #[test]
    fn pop_all_eq_on_absent_key_is_empty() {
        let mut pq: ExternalPq<u32, ()> = ExternalPq::new(4);
        pq.push(5, ());
        assert!(pq.pop_all_eq(3).is_empty());
        assert_eq!(pq.len(), 1);
    }

    #[test]
    fn many_spills_merge_runs() {
        let mut pq = ExternalPq::new(1);
        for k in (0..100u32).rev() {
            pq.push(k, ());
        }
        let got: Vec<u32> = std::iter::from_fn(|| pq.pop_min().map(|(k, _)| k)).collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn matches_binary_heap_on_random_ops() {
        use lmas_sim::DetRng;
        use std::collections::BinaryHeap;
        let mut rng = DetRng::new(77);
        let mut pq = ExternalPq::new(8);
        let mut oracle: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
        for _ in 0..2_000 {
            if rng.gen_f64() < 0.6 || oracle.is_empty() {
                let k = rng.gen_range(1000);
                pq.push(k, ());
                oracle.push(std::cmp::Reverse(k));
            } else {
                let got = pq.pop_min().map(|(k, _)| k);
                let want = oracle.pop().map(|r| r.0);
                assert_eq!(got, want);
            }
            assert_eq!(pq.len(), oracle.len());
        }
    }
}
