//! Watershed labeling: TerraFlow step 3, time-forward processing.
//!
//! "Step 3 uses neighbor information to propagate colors from the lowest
//! points up/outward to the peaks and ridges. This step is difficult to
//! parallelize because it uses time-forward processing and relies on
//! ordering for correctness" (Section 4.1).
//!
//! Cells arrive in increasing `(elevation, position)` order. A local
//! minimum (no lower neighbour) opens a new watershed color; every other
//! cell adopts the color of its steepest lower neighbour (its D8 flow
//! direction). A colored cell *forwards* its color to each higher
//! neighbour through the external priority queue, keyed by that
//! neighbour's sort key — time-forward processing.

use crate::cell::CellRec;
use crate::grid::Grid;
use crate::pqueue::ExternalPq;
use lmas_core::functor::{Emit, Functor, FunctorKind};
use lmas_core::{log2_ceil, Packet, Record, Work};

/// A color message: "cell at `sender_pos` has `color`".
#[derive(Debug, Clone, Copy)]
struct ColorMsg {
    sender_x: u16,
    sender_y: u16,
    color: u32,
}

/// Core of the labeling: consumes cells in key order, returns each cell
/// with its watershed color. Shared by the oracle and the functor.
#[derive(Debug)]
pub struct WatershedLabeler {
    pq: ExternalPq<u64, ColorMsg>,
    next_color: u32,
    processed: u64,
    last_key: Option<u64>,
}

impl Default for WatershedLabeler {
    fn default() -> Self {
        Self::new(1 << 16)
    }
}

impl WatershedLabeler {
    /// A labeler whose message queue buffers `pq_buffer` items in memory.
    pub fn new(pq_buffer: usize) -> WatershedLabeler {
        WatershedLabeler {
            pq: ExternalPq::new(pq_buffer),
            next_color: 0,
            processed: 0,
            last_key: None,
        }
    }

    /// Number of distinct watershed colors assigned so far.
    pub fn colors(&self) -> u32 {
        self.next_color
    }

    /// Cells labeled so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Current message-queue length (memory accounting).
    pub fn queued_messages(&self) -> usize {
        self.pq.len()
    }

    /// Label one cell. Cells **must** arrive in increasing key order.
    pub fn label(&mut self, mut cell: CellRec) -> CellRec {
        let key = cell.key();
        assert!(
            self.last_key.is_none_or(|k| k <= key),
            "cells must arrive in sorted order (time-forward processing)"
        );
        self.last_key = Some(key);
        let msgs = self.pq.pop_all_eq(key);
        let color = match cell.flow_direction() {
            None => {
                // Local minimum: a new watershed springs here.
                let c = self.next_color;
                self.next_color += 1;
                c
            }
            Some(fd) => {
                // Adopt the color of the steepest lower neighbour; its
                // message was forwarded when it was processed.
                let (dx, dy) = crate::grid::NEIGHBOR_OFFSETS[fd];
                let nx = (cell.x as isize + dx) as u16;
                let ny = (cell.y as isize + dy) as u16;
                msgs.iter()
                    .find(|m| m.sender_x == nx && m.sender_y == ny)
                    .unwrap_or_else(|| {
                        panic!(
                            "missing color message from ({nx},{ny}) to ({},{})",
                            cell.x, cell.y
                        )
                    })
                    .color
            }
        };
        cell.color = color;
        // Forward my color to every strictly higher neighbour.
        for i in 0..8 {
            if let Some(nk) = cell.neighbor_key(i) {
                if nk > key {
                    self.pq.push(
                        nk,
                        ColorMsg {
                            sender_x: cell.x,
                            sender_y: cell.y,
                            color,
                        },
                    );
                }
            }
        }
        self.processed += 1;
        cell
    }
}

/// Sequential oracle: restructure + sort + label, all in memory. Returns
/// row-major colors.
pub fn watershed_oracle(grid: &Grid) -> Vec<u32> {
    let mut cells = crate::cell::restructure(grid);
    cells.sort_by_key(|c| c.key());
    let mut labeler = WatershedLabeler::default();
    let w = grid.width();
    let mut colors = vec![0u32; grid.len()];
    for cell in cells {
        let labeled = labeler.label(cell);
        colors[labeled.y as usize * w + labeled.x as usize] = labeled.color;
    }
    colors
}

/// The step-3 functor: a host-only stream operator wrapping
/// [`WatershedLabeler`]. Input must be a globally sorted stream of cells;
/// output is the same cells, colored.
pub struct WatershedFunctor {
    labeler: WatershedLabeler,
}

impl WatershedFunctor {
    /// A watershed functor with the given PQ memory budget (items).
    pub fn new(pq_buffer: usize) -> WatershedFunctor {
        WatershedFunctor {
            labeler: WatershedLabeler::new(pq_buffer),
        }
    }

    /// Colors assigned so far.
    pub fn colors(&self) -> u32 {
        self.labeler.colors()
    }
}

impl Functor<CellRec> for WatershedFunctor {
    fn name(&self) -> String {
        "watershed".into()
    }
    fn kind(&self) -> FunctorKind {
        // Time-forward processing holds an input-sized message queue:
        // unbounded per-record state, hence host-only — this is exactly
        // why the paper says step 3 resists ASU offload.
        FunctorKind::HostOnly
    }
    fn process(&mut self, input: Packet<CellRec>, out: &mut Emit<CellRec>) {
        let labeled: Packet<CellRec> = input
            .into_records()
            .into_iter()
            .map(|c| self.labeler.label(c))
            .collect();
        out.push0(labeled);
    }
    fn flush(&mut self, _out: &mut Emit<CellRec>) {}
    fn cost(&self, input: &Packet<CellRec>) -> Work {
        // Per cell: 8 neighbour comparisons, a PQ pop/push round at
        // ~log(queue) compares, one record move.
        let n = input.len() as u64;
        let pq_log = log2_ceil(self.labeler.queued_messages().max(2) as u64);
        Work::compares(n * (8 + 2 * pq_log)) + Work::moves(n)
    }
    fn state_bytes(&self) -> usize {
        self.labeler.queued_messages() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{cone_terrain, fractal_terrain, twin_valley_terrain};

    #[test]
    fn cone_is_one_watershed() {
        let g = cone_terrain(17, 17);
        let colors = watershed_oracle(&g);
        assert!(colors.iter().all(|&c| c == colors[0]));
    }

    #[test]
    fn twin_valley_is_two_watersheds() {
        let g = twin_valley_terrain(16, 8);
        let colors = watershed_oracle(&g);
        let mut distinct: Vec<u32> = colors.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2, "one basin per valley");
        // Left and right edges belong to different basins.
        assert_ne!(colors[0], colors[15]);
    }

    #[test]
    fn fractal_labels_are_complete_and_contiguousish() {
        let g = fractal_terrain(33, 33, 0.55, 3);
        let colors = watershed_oracle(&g);
        assert_eq!(colors.len(), 33 * 33);
        let mut distinct: Vec<u32> = colors.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(!distinct.is_empty());
        // Colors are dense 0..k.
        assert_eq!(distinct, (0..distinct.len() as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn every_cell_shares_color_with_flow_target() {
        // The defining invariant: each non-minimum cell has the color of
        // its flow-direction neighbour.
        let g = fractal_terrain(17, 17, 0.6, 5);
        let colors = watershed_oracle(&g);
        let cells = crate::cell::restructure(&g);
        let w = g.width();
        for c in &cells {
            if let Some(fd) = c.flow_direction() {
                let (dx, dy) = crate::grid::NEIGHBOR_OFFSETS[fd];
                let nx = (c.x as isize + dx) as usize;
                let ny = (c.y as isize + dy) as usize;
                assert_eq!(
                    colors[c.y as usize * w + c.x as usize],
                    colors[ny * w + nx],
                    "cell ({},{}) disagrees with its flow target",
                    c.x,
                    c.y
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "sorted order")]
    fn out_of_order_input_rejected() {
        use crate::cell::{CellRec, NO_NEIGHBOR};
        // Two isolated minima delivered in descending key order.
        let hi = CellRec { x: 0, y: 0, elev: 10, neighbors: [NO_NEIGHBOR; 8], color: 0 };
        let lo = CellRec { x: 1, y: 0, elev: 5, neighbors: [NO_NEIGHBOR; 8], color: 0 };
        let mut labeler = WatershedLabeler::default();
        labeler.label(hi);
        labeler.label(lo);
    }

    #[test]
    fn functor_matches_oracle() {
        let g = fractal_terrain(17, 17, 0.5, 8);
        let oracle = watershed_oracle(&g);
        let mut cells = crate::cell::restructure(&g);
        cells.sort_by_key(|c| c.key());
        let mut f = WatershedFunctor::new(64);
        let mut e = Emit::new(1);
        for chunk in cells.chunks(100) {
            f.process(Packet::new(chunk.to_vec()), &mut e);
        }
        let w = g.width();
        for (_, p) in e.take() {
            for c in p.records() {
                assert_eq!(c.color, oracle[c.y as usize * w + c.x as usize]);
            }
        }
    }

    #[test]
    fn labeler_with_tiny_pq_buffer_still_correct() {
        // Forces heavy spilling in the external PQ.
        let g = fractal_terrain(17, 17, 0.5, 9);
        let mut cells = crate::cell::restructure(&g);
        cells.sort_by_key(|c| c.key());
        let mut small = WatershedLabeler::new(4);
        let mut big = WatershedLabeler::new(1 << 20);
        for c in cells {
            assert_eq!(small.label(c).color, big.label(c).color);
        }
        assert_eq!(small.colors(), big.colors());
    }
}
