//! Admission control and fairness policies.
//!
//! [`PolicyGate`] is the crate's [`SchedGate`] implementation: a
//! per-tenant token/quota admission controller with a load-based gate
//! (predicted per-node CPU occupancy against a saturation threshold),
//! bounded per-tenant queues, and a pluggable dispatch [`Policy`] —
//! FCFS, shortest-predicted-job-first, or weighted-fair
//! (deficit-round-robin over tenants in predicted makespan-seconds).
//!
//! Everything the gate consults is *predicted* (phase-1 planner
//! estimates), so its decisions are a pure function of the
//! arrival/completion sequence — the whole multi-tenant run stays
//! deterministic.

use crate::error::SchedError;
use lmas_emulator::{GateDecision, SchedGate};
use lmas_sim::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Dispatch-order policy for queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First come, first served, globally: strict arrival order with
    /// head-of-line blocking.
    Fcfs,
    /// Shortest predicted job first: of every queued job whose tenant
    /// has quota and whose load fits, the smallest predicted makespan
    /// dispatches first.
    Spjf,
    /// Weighted fair queueing: deficit round robin over tenants,
    /// spending predicted makespan-nanoseconds against per-tenant
    /// deficit counters that grow in proportion to tenant weight.
    WeightedFair,
}

impl Policy {
    /// Stable lower-case name (report keys, CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "fcfs",
            Policy::Spjf => "spjf",
            Policy::WeightedFair => "wfq",
        }
    }
}

/// What the gate knows about one job before it runs: who submitted it
/// and what the phase-1 planner predicts it costs.
#[derive(Debug, Clone)]
pub struct JobShape {
    /// Submitting tenant (dense index).
    pub tenant: usize,
    /// Predicted makespan in nanoseconds (the planner estimate; the
    /// currency SPJF and weighted-fair schedule in).
    pub cost_ns: u64,
    /// Predicted CPU occupancy fraction per planner node (hosts first,
    /// then ASUs): `node_cpu_ns / makespan_ns` from the estimate.
    pub cpu_share: Vec<f64>,
}

/// Knobs of a [`PolicyGate`].
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Dispatch policy for queued jobs.
    pub policy: Policy,
    /// Number of tenants.
    pub tenants: usize,
    /// Max jobs a tenant may have *running* at once (its token quota).
    pub quota: usize,
    /// Max jobs a tenant may have *queued* at once; an arrival beyond
    /// this is rejected with a typed [`SchedError`].
    pub queue_cap: usize,
    /// Saturation threshold for the load gate: a job only dispatches
    /// while every node's predicted CPU occupancy (running jobs plus
    /// this one) stays at or below this fraction. `≥ 1.0` with
    /// single-job shares below 1 effectively disables the gate.
    pub load_limit: f64,
    /// Per-tenant weights for [`Policy::WeightedFair`] (empty = all 1).
    pub weights: Vec<u64>,
}

/// DRR quantum per weight unit (predicted nanoseconds of service a
/// backlogged tenant accrues per top-up round).
const QUANTUM_NS_PER_WEIGHT: f64 = 1.0e6;

/// The admission/fairness gate (see the module docs).
pub struct PolicyGate {
    cfg: GateConfig,
    jobs: Vec<JobShape>,
    // State, all derived from the call sequence:
    running: Vec<bool>,
    tenant_running: Vec<usize>,
    running_count: usize,
    queues: Vec<VecDeque<usize>>,
    node_load: Vec<f64>,
    deficit: Vec<f64>,
    rr: usize,
    rejections: Rc<RefCell<Vec<SchedError>>>,
}

impl PolicyGate {
    /// Build a gate for `jobs` (indexed by job id, which [`run_jobs`]
    /// assigns in submission order — submit in arrival order so FCFS
    /// means what it says). Returns the gate and a shared handle to its
    /// typed rejection log, readable after the run consumes the gate.
    ///
    /// [`run_jobs`]: lmas_emulator::run_jobs
    pub fn new(cfg: GateConfig, jobs: Vec<JobShape>) -> (PolicyGate, Rc<RefCell<Vec<SchedError>>>) {
        assert!(cfg.tenants > 0, "gate needs at least one tenant");
        assert!(
            jobs.iter().all(|j| j.tenant < cfg.tenants),
            "job tenant out of range"
        );
        let nodes = jobs.iter().map(|j| j.cpu_share.len()).max().unwrap_or(0);
        let rejections = Rc::new(RefCell::new(Vec::new()));
        let gate = PolicyGate {
            running: vec![false; jobs.len()],
            tenant_running: vec![0; cfg.tenants],
            running_count: 0,
            queues: vec![VecDeque::new(); cfg.tenants],
            node_load: vec![0.0; nodes],
            deficit: vec![0.0; cfg.tenants],
            rr: 0,
            rejections: rejections.clone(),
            cfg,
            jobs,
        };
        (gate, rejections)
    }

    fn weight(&self, tenant: usize) -> f64 {
        *self.cfg.weights.get(tenant).unwrap_or(&1) as f64
    }

    /// Would job `j` dispatch right now? Quota first, then the load
    /// gate. An idle cluster always admits (work conservation: the
    /// first job can never be starved by its own predicted size).
    fn can_dispatch(&self, j: usize) -> bool {
        let shape = &self.jobs[j];
        if self.tenant_running[shape.tenant] >= self.cfg.quota {
            return false;
        }
        if self.running_count == 0 {
            return true;
        }
        shape
            .cpu_share
            .iter()
            .enumerate()
            .all(|(u, &s)| self.node_load[u] + s <= self.cfg.load_limit + 1e-9)
    }

    fn start(&mut self, j: usize) {
        debug_assert!(!self.running[j]);
        self.running[j] = true;
        self.running_count += 1;
        let shape = &self.jobs[j];
        self.tenant_running[shape.tenant] += 1;
        for (u, &s) in shape.cpu_share.iter().enumerate() {
            self.node_load[u] += s;
        }
    }

    fn finish(&mut self, j: usize) {
        debug_assert!(self.running[j]);
        self.running[j] = false;
        self.running_count -= 1;
        let shape = &self.jobs[j];
        self.tenant_running[shape.tenant] -= 1;
        for (u, &s) in shape.cpu_share.iter().enumerate() {
            self.node_load[u] = (self.node_load[u] - s).max(0.0);
        }
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Pop the next job to dispatch under the configured policy, or
    /// `None` when nothing dispatchable is queued.
    fn pick(&mut self) -> Option<usize> {
        match self.cfg.policy {
            Policy::Fcfs => {
                // Global arrival order with head-of-line blocking: only
                // the earliest queued job may go.
                let head = self
                    .queues
                    .iter()
                    .filter_map(|q| q.front().copied())
                    .min()?;
                if !self.can_dispatch(head) {
                    return None;
                }
                let t = self.jobs[head].tenant;
                self.queues[t].pop_front();
                Some(head)
            }
            Policy::Spjf => {
                // Smallest predicted cost among every dispatchable
                // queued job (ties to the earlier arrival).
                let mut best: Option<(u64, usize)> = None;
                for q in &self.queues {
                    for &j in q {
                        if !self.can_dispatch(j) {
                            continue;
                        }
                        let key = (self.jobs[j].cost_ns, j);
                        if best.map(|b| key < b).unwrap_or(true) {
                            best = Some(key);
                        }
                    }
                }
                let (_, j) = best?;
                let t = self.jobs[j].tenant;
                self.queues[t].retain(|&x| x != j);
                Some(j)
            }
            Policy::WeightedFair => self.pick_drr(),
        }
    }

    /// Deficit round robin over tenants' queue heads. Backlogged
    /// tenants accrue `weight · quantum` per top-up round; a head
    /// dispatches once its tenant's deficit covers its predicted cost.
    /// Rather than looping rounds one by one, jump straight to the
    /// fewest top-ups any dispatchable head needs (ties resolve in
    /// round-robin order from the cursor) — identical schedule, bounded
    /// work. Starvation-free: deficits only grow while a tenant stays
    /// backlogged, so every dispatchable head eventually covers its
    /// cost.
    fn pick_drr(&mut self) -> Option<usize> {
        let t_count = self.cfg.tenants;
        let mut best: Option<(u64, usize, usize, usize)> = None; // (rounds, rr_dist, tenant, job)
        for t in 0..t_count {
            let Some(&head) = self.queues[t].front() else {
                continue;
            };
            if !self.can_dispatch(head) {
                continue;
            }
            let need = self.jobs[head].cost_ns as f64 - self.deficit[t];
            let quantum = self.weight(t) * QUANTUM_NS_PER_WEIGHT;
            let rounds = if need <= 0.0 {
                0u64
            } else {
                (need / quantum).ceil() as u64
            };
            let dist = (t + t_count - self.rr) % t_count;
            let key = (rounds, dist, t, head);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (rounds, _, t, j) = best?;
        if rounds > 0 {
            for u in 0..t_count {
                if !self.queues[u].is_empty() {
                    self.deficit[u] += rounds as f64 * self.weight(u) * QUANTUM_NS_PER_WEIGHT;
                }
            }
        }
        self.deficit[t] -= self.jobs[j].cost_ns as f64;
        self.queues[t].pop_front();
        if self.queues[t].is_empty() {
            // Standard DRR: an emptied tenant forfeits leftover credit.
            self.deficit[t] = 0.0;
        }
        self.rr = (t + 1) % t_count;
        Some(j)
    }

    fn drain(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(j) = self.pick() {
            self.start(j);
            out.push(j);
        }
        out
    }
}

impl SchedGate for PolicyGate {
    fn on_arrival(&mut self, job: usize, _now: SimTime) -> GateDecision {
        let tenant = self.jobs[job].tenant;
        // FCFS never overtakes: an arrival dispatches immediately only
        // if nothing at all is queued. The other policies only require
        // the tenant's own FIFO to be empty.
        let bypass_ok = match self.cfg.policy {
            Policy::Fcfs => self.total_queued() == 0,
            _ => self.queues[tenant].is_empty(),
        };
        if bypass_ok && self.can_dispatch(job) {
            self.start(job);
            return GateDecision::Dispatch;
        }
        if self.queues[tenant].len() < self.cfg.queue_cap {
            self.queues[tenant].push_back(job);
            return GateDecision::Queue;
        }
        let err = if self.tenant_running[tenant] >= self.cfg.quota {
            SchedError::QuotaExceeded {
                tenant,
                limit: self.cfg.quota,
            }
        } else {
            SchedError::AdmissionRejected {
                tenant,
                job,
                queued: self.queues[tenant].len(),
                cap: self.cfg.queue_cap,
            }
        };
        self.rejections.borrow_mut().push(err);
        GateDecision::Reject
    }

    fn on_completion(&mut self, job: usize, _now: SimTime) -> Vec<usize> {
        self.finish(job);
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(costs: &[(usize, u64)]) -> Vec<JobShape> {
        costs
            .iter()
            .map(|&(tenant, cost_ns)| JobShape {
                tenant,
                cost_ns,
                cpu_share: vec![0.4],
            })
            .collect()
    }

    fn gate(policy: Policy, tenants: usize, quota: usize, jobs: Vec<JobShape>) -> PolicyGate {
        PolicyGate::new(
            GateConfig {
                policy,
                tenants,
                quota,
                queue_cap: 16,
                load_limit: 1.0,
                weights: Vec::new(),
            },
            jobs,
        )
        .0
    }

    /// Feed all arrivals, then complete running jobs in the order they
    /// dispatched; return the full dispatch order.
    fn play(gate: &mut PolicyGate, n: usize) -> Vec<usize> {
        let mut order = Vec::new();
        let mut frontier: VecDeque<usize> = VecDeque::new();
        for j in 0..n {
            if gate.on_arrival(j, SimTime(j as u64)) == GateDecision::Dispatch {
                order.push(j);
                frontier.push_back(j);
            }
        }
        while let Some(done) = frontier.pop_front() {
            for j in gate.on_completion(done, SimTime(1_000_000)) {
                order.push(j);
                frontier.push_back(j);
            }
        }
        order
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let jobs = shapes(&[(0, 900), (1, 100), (0, 500), (1, 50)]);
        let mut g = gate(Policy::Fcfs, 2, 1, jobs);
        assert_eq!(play(&mut g, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spjf_dispatches_cheapest_first() {
        // Quota 1 per tenant, one tenant: jobs queue behind job 0 and
        // then dispatch by predicted cost, not arrival.
        let jobs = shapes(&[(0, 400), (0, 900), (0, 100), (0, 500)]);
        let mut g = gate(Policy::Spjf, 1, 1, jobs);
        assert_eq!(play(&mut g, 4), vec![0, 2, 3, 1]);
    }

    #[test]
    fn weighted_fair_shares_by_weight() {
        // Tenant 0 has weight 3, tenant 1 weight 1; both backlogged
        // with equal-cost jobs behind one *shared* slot (each job takes
        // 0.6 of the node, limit 0.9, quotas slack — the load gate, not
        // the quota, serializes). Count the first 8 dispatches after
        // the seed job: tenant 0 should get ~3× tenant 1's service.
        let mut jobs = vec![JobShape {
            tenant: 0,
            cost_ns: 1_000_000,
            cpu_share: vec![0.6],
        }];
        for _ in 0..6 {
            jobs.push(JobShape {
                tenant: 0,
                cost_ns: 1_000_000,
                cpu_share: vec![0.6],
            });
            jobs.push(JobShape {
                tenant: 1,
                cost_ns: 1_000_000,
                cpu_share: vec![0.6],
            });
        }
        let total = jobs.len();
        let (mut g, _log) = PolicyGate::new(
            GateConfig {
                policy: Policy::WeightedFair,
                tenants: 2,
                quota: 8,
                queue_cap: 16,
                load_limit: 0.9,
                weights: vec![3, 1],
            },
            jobs,
        );
        let order = play(&mut g, total);
        assert_eq!(order.len(), total, "weighted-fair starves no one");
        let first8 = &order[1..9];
        let t0 = first8.iter().filter(|&&j| g.jobs[j].tenant == 0).count();
        assert!(
            t0 >= 5,
            "weight-3 tenant got only {t0}/8 early dispatches: {order:?}"
        );
    }

    #[test]
    fn quota_and_queue_bounds_reject_typed() {
        let jobs = shapes(&[(0, 100), (0, 100), (0, 100)]);
        let (mut g, log) = PolicyGate::new(
            GateConfig {
                policy: Policy::Fcfs,
                tenants: 1,
                quota: 1,
                queue_cap: 1,
                load_limit: 1.0,
                weights: Vec::new(),
            },
            jobs,
        );
        assert_eq!(g.on_arrival(0, SimTime(0)), GateDecision::Dispatch);
        assert_eq!(g.on_arrival(1, SimTime(1)), GateDecision::Queue);
        assert_eq!(g.on_arrival(2, SimTime(2)), GateDecision::Reject);
        let rej = log.borrow();
        assert_eq!(
            rej.as_slice(),
            &[SchedError::QuotaExceeded { tenant: 0, limit: 1 }]
        );
    }

    #[test]
    fn load_gate_queues_past_saturation() {
        // Two tenants, quota 2 each, but each job takes 0.6 of node 0:
        // the second arrival queues on load, not quota, and dispatches
        // when the first completes.
        let jobs = vec![
            JobShape { tenant: 0, cost_ns: 100, cpu_share: vec![0.6] },
            JobShape { tenant: 1, cost_ns: 100, cpu_share: vec![0.6] },
        ];
        let (mut g, log) = PolicyGate::new(
            GateConfig {
                policy: Policy::Fcfs,
                tenants: 2,
                quota: 2,
                queue_cap: 4,
                load_limit: 0.9,
                weights: Vec::new(),
            },
            jobs,
        );
        assert_eq!(g.on_arrival(0, SimTime(0)), GateDecision::Dispatch);
        assert_eq!(g.on_arrival(1, SimTime(1)), GateDecision::Queue);
        assert_eq!(g.on_completion(0, SimTime(2)), vec![1]);
        assert!(log.borrow().is_empty());
    }
}
