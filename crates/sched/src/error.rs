//! The scheduler's typed error taxonomy.
//!
//! Admission failures are *per-job outcomes*, not run aborts: a
//! rejected job is recorded in the run's [`SchedOutcome`] with the
//! variant that explains which limit was binding, while the other
//! tenants' jobs keep running. Only planning failures
//! ([`SchedError::PlanInfeasible`]) abort a run — there is no layout to
//! run the job on.
//!
//! [`SchedOutcome`]: crate::run::SchedOutcome

use lmas_sort::PlanWireError;
use std::fmt;

/// Why the scheduler refused (or could not place) a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The admission gate turned the job away: the cluster was
    /// saturated and the tenant's queue was already full.
    AdmissionRejected {
        /// Submitting tenant.
        tenant: usize,
        /// The rejected job id.
        job: usize,
        /// Jobs already waiting in the tenant's queue.
        queued: usize,
        /// The tenant's queue bound.
        cap: usize,
    },
    /// The tenant was at its in-flight quota and had no queue room to
    /// wait for a slot.
    QuotaExceeded {
        /// Submitting tenant.
        tenant: usize,
        /// The tenant's in-flight quota.
        limit: usize,
    },
    /// Phase-1 planning could not produce a runnable layout for a job.
    PlanInfeasible(PlanWireError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::AdmissionRejected {
                tenant,
                job,
                queued,
                cap,
            } => write!(
                f,
                "admission rejected job {job} of tenant {tenant}: \
                 queue full ({queued}/{cap})"
            ),
            SchedError::QuotaExceeded { tenant, limit } => write!(
                f,
                "tenant {tenant} at its in-flight quota ({limit}) with no queue room"
            ),
            SchedError::PlanInfeasible(e) => write!(f, "no feasible layout: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::PlanInfeasible(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanWireError> for SchedError {
    fn from(e: PlanWireError) -> Self {
        SchedError::PlanInfeasible(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_rejected_names_the_binding_queue() {
        let e = SchedError::AdmissionRejected {
            tenant: 2,
            job: 7,
            queued: 3,
            cap: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("job 7"), "{msg}");
        assert!(msg.contains("tenant 2"), "{msg}");
        assert!(msg.contains("3/3"), "{msg}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn quota_exceeded_names_the_limit() {
        let e = SchedError::QuotaExceeded { tenant: 1, limit: 4 };
        let msg = e.to_string();
        assert!(msg.contains("tenant 1"), "{msg}");
        assert!(msg.contains("quota (4)"), "{msg}");
    }

    #[test]
    fn plan_infeasible_wraps_the_wire_error() {
        let e = SchedError::from(PlanWireError::MissingSorterNodes);
        assert_eq!(
            e,
            SchedError::PlanInfeasible(PlanWireError::MissingSorterNodes)
        );
        assert!(e.to_string().contains("no feasible layout"));
        // The source chain exposes the wrapped planner error.
        let src = std::error::Error::source(&e).expect("has a source");
        assert_eq!(src.to_string(), PlanWireError::MissingSorterNodes.to_string());
    }
}
