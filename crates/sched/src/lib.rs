//! # lmas-sched — multi-tenant job scheduling for the LMAS emulator
//!
//! Turns the single-job emulator into a job-serving system: open
//! arrivals ([`ArrivalSpec`], from `lmas-sim`) feed an admission
//! controller with per-tenant quotas, bounded queues, and a load-based
//! gate; a pluggable fairness [`Policy`] (FCFS, shortest-predicted-job
//! -first, weighted-fair DRR) picks dispatch order; and placement can
//! be *interference-aware* — each job planned against the
//! [`ResidualCapacity`](lmas_plan::ResidualCapacity) left by the jobs
//! predicted to still be running — instead of stacking every job onto
//! the same static layout.
//!
//! - [`policy`]: [`PolicyGate`], the gate the emulator's multi-job
//!   runtime calls back into;
//! - [`run`]: [`run_scheduled`], the end-to-end pipeline
//!   (arrivals → per-job planning → gated concurrent emulation);
//! - [`error`]: the typed [`SchedError`] taxonomy.
//!
//! Everything is deterministic: arrivals are seeded, planning uses
//! predicted occupancy, and the gate is a pure function of the
//! arrival/completion sequence — the same spec replays byte for byte.

#![warn(missing_docs)]

pub mod error;
pub mod policy;
pub mod run;

pub use error::SchedError;
pub use lmas_sim::{ArrivalEvent, ArrivalSpec};
pub use policy::{GateConfig, JobShape, Policy, PolicyGate};
pub use run::{run_scheduled, SchedOutcome, SchedRunError, SchedSpec};
