//! End-to-end multi-tenant runs: arrivals → planning → gate → emulator.
//!
//! [`run_scheduled`] replays an [`ArrivalSpec`] against a
//! [`PolicyGate`]: each arrival instantiates a pass-1 DSM-Sort job from
//! the tenant's job mix, phase-1 planning predicts its cost and
//! per-node footprint, and the merged job set runs concurrently on one
//! emulated cluster under the configured admission/fairness policy.
//!
//! Placement comes in two flavours, selected by [`SchedSpec::aware`]:
//!
//! - **naive** — every job takes the static block-subset layout
//!   ([`LoadMode::Static`]), so concurrent jobs stack their sorters on
//!   the same hosts;
//! - **interference-aware** — each job is planned against the
//!   [`ResidualCapacity`] left by the jobs predicted to still be
//!   running at its arrival, so planning places around them.
//!
//! Both paths are pure functions of `(cluster, dsm, spec)`: planning
//! uses predicted (not measured) occupancy, so the whole run — gate
//! decisions included — is byte-replayable from the seed.

use crate::error::SchedError;
use crate::policy::{GateConfig, JobShape, Policy, PolicyGate};
use lmas_core::{generate_rec8, KeyDist, Rec8};
use lmas_emulator::{
    run_jobs, ClusterConfig, JobError, JobStats, SchedEvent, TenantJob,
};
use lmas_plan::{Estimate, ResidualCapacity};
use lmas_sim::{ArrivalSpec, SimDuration, SimTime};
use lmas_sort::{
    build_pass1_job, build_pass1_job_placed, choose_splitters, estimate_pass1_solo,
    plan_pass1_coded, plan_pass1_residual, split_across_asus, DsmConfig, DsmError, LoadMode,
    Pass1Job, PlanWireError,
};

/// Everything a multi-tenant run needs beyond the cluster and sort
/// configuration. Build with [`SchedSpec::new`] and chain the `with_*`
/// setters.
#[derive(Debug, Clone)]
pub struct SchedSpec {
    /// The open-arrival schedule (who submits what, when).
    pub arrivals: ArrivalSpec,
    /// Record count per job kind: an arrival of kind `k` sorts
    /// `kind_records[k]` records.
    pub kind_records: Vec<u64>,
    /// Dispatch policy for queued jobs.
    pub policy: Policy,
    /// Max running jobs per tenant.
    pub quota: usize,
    /// Max queued jobs per tenant (arrivals beyond it are rejected).
    pub queue_cap: usize,
    /// Saturation threshold for the load gate (predicted per-node CPU
    /// occupancy).
    pub load_limit: f64,
    /// Per-tenant weights for [`Policy::WeightedFair`] (empty = all 1).
    pub weights: Vec<u64>,
    /// Interference-aware placement (residual-capacity planning) rather
    /// than the naive static layout.
    pub aware: bool,
    /// Seed for per-job input data (combined with the job index).
    pub seed: u64,
}

impl SchedSpec {
    /// A spec with permissive defaults: FCFS, quota 1, queue cap 8,
    /// load limit 1.0, uniform weights, naive placement.
    pub fn new(arrivals: ArrivalSpec, kind_records: Vec<u64>) -> SchedSpec {
        assert!(
            !kind_records.is_empty(),
            "need at least one job kind"
        );
        SchedSpec {
            arrivals,
            kind_records,
            policy: Policy::Fcfs,
            quota: 1,
            queue_cap: 8,
            load_limit: 1.0,
            weights: Vec::new(),
            aware: false,
            seed: 0x5EED_0001,
        }
    }

    /// Set the dispatch policy.
    pub fn with_policy(mut self, policy: Policy) -> SchedSpec {
        self.policy = policy;
        self
    }

    /// Set the per-tenant running quota.
    pub fn with_quota(mut self, quota: usize) -> SchedSpec {
        self.quota = quota;
        self
    }

    /// Set the per-tenant queue bound.
    pub fn with_queue_cap(mut self, cap: usize) -> SchedSpec {
        self.queue_cap = cap;
        self
    }

    /// Set the load gate's saturation threshold.
    pub fn with_load_limit(mut self, limit: f64) -> SchedSpec {
        self.load_limit = limit;
        self
    }

    /// Set per-tenant weights (for [`Policy::WeightedFair`]).
    pub fn with_weights(mut self, weights: Vec<u64>) -> SchedSpec {
        self.weights = weights;
        self
    }

    /// Select interference-aware (residual-planned) placement.
    pub fn with_aware(mut self, aware: bool) -> SchedSpec {
        self.aware = aware;
        self
    }

    /// Set the input-data seed.
    pub fn with_seed(mut self, seed: u64) -> SchedSpec {
        self.seed = seed;
        self
    }
}

/// Why a whole multi-tenant run (as opposed to one job) failed.
#[derive(Debug)]
pub enum SchedRunError {
    /// A scheduler-level failure (planning could not place a job).
    Sched(SchedError),
    /// Job construction failed (configuration or input shape).
    Dsm(DsmError),
    /// The emulator rejected the merged run.
    Job(JobError),
}

impl std::fmt::Display for SchedRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedRunError::Sched(e) => write!(f, "scheduler: {e}"),
            SchedRunError::Dsm(e) => write!(f, "job build: {e}"),
            SchedRunError::Job(e) => write!(f, "emulator: {e}"),
        }
    }
}

impl std::error::Error for SchedRunError {}

impl From<SchedError> for SchedRunError {
    fn from(e: SchedError) -> Self {
        SchedRunError::Sched(e)
    }
}

impl From<DsmError> for SchedRunError {
    fn from(e: DsmError) -> Self {
        // Plan-wiring failures are the scheduler's typed
        // `PlanInfeasible`; everything else stays a build error.
        match e {
            DsmError::Wire(w) => SchedRunError::Sched(SchedError::PlanInfeasible(w)),
            other => SchedRunError::Dsm(other),
        }
    }
}

impl From<JobError> for SchedRunError {
    fn from(e: JobError) -> Self {
        SchedRunError::Job(e)
    }
}

/// Outcome of one multi-tenant run.
#[derive(Debug, Default)]
pub struct SchedOutcome {
    /// Policy name the run used (stable key: `fcfs`/`spjf`/`wfq`).
    pub policy: &'static str,
    /// Whether placement was interference-aware.
    pub aware: bool,
    /// Per-job outcomes, in arrival order (rejected jobs included).
    pub jobs: Vec<JobStats>,
    /// Job kind per job, parallel to `jobs`.
    pub kinds: Vec<usize>,
    /// Predicted makespan per job (the gate's scheduling currency),
    /// parallel to `jobs`.
    pub predicted_ns: Vec<u64>,
    /// Every gate transition, in virtual-time order.
    pub events: Vec<SchedEvent>,
    /// Typed rejection record, in rejection order.
    pub rejections: Vec<SchedError>,
    /// Merged-run makespan.
    pub makespan: SimDuration,
    /// Records processed across all dispatched jobs.
    pub records_processed: u64,
}

impl SchedOutcome {
    /// Completed job count.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.completed_at.is_some()).count()
    }

    /// Latency (arrival → completion) of completed jobs, sorted.
    pub fn latencies(&self) -> Vec<SimDuration> {
        let mut ls: Vec<SimDuration> = self.jobs.iter().filter_map(|j| j.latency()).collect();
        ls.sort();
        ls
    }

    /// Nearest-rank latency percentile over completed jobs (`p` in
    /// `(0, 1]`); `None` when nothing completed.
    pub fn latency_percentile(&self, p: f64) -> Option<SimDuration> {
        let ls = self.latencies();
        if ls.is_empty() {
            return None;
        }
        let rank = ((p * ls.len() as f64).ceil() as usize).clamp(1, ls.len());
        Some(ls[rank - 1])
    }

    /// Mean queue wait across all dispatched jobs.
    pub fn mean_queue_wait(&self) -> SimDuration {
        let waited: Vec<&JobStats> = self
            .jobs
            .iter()
            .filter(|j| j.dispatched_at.is_some())
            .collect();
        if waited.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = waited.iter().map(|j| j.queue_wait.as_nanos()).sum();
        SimDuration::from_nanos(total / waited.len() as u64)
    }

    /// Render the outcome as a deterministic JSON object (no float
    /// formatting ambiguity: everything integral).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"policy\": \"{}\",\n", self.policy));
        s.push_str(&format!("  \"aware\": {},\n", self.aware));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs.len()));
        s.push_str(&format!("  \"completed\": {},\n", self.completed()));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejections.len()));
        s.push_str(&format!(
            "  \"p50_latency_ns\": {},\n",
            self.latency_percentile(0.50)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        s.push_str(&format!(
            "  \"p99_latency_ns\": {},\n",
            self.latency_percentile(0.99)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        s.push_str(&format!(
            "  \"mean_queue_wait_ns\": {},\n",
            self.mean_queue_wait().as_nanos()
        ));
        s.push_str(&format!(
            "  \"makespan_ns\": {},\n",
            self.makespan.as_nanos()
        ));
        s.push_str(&format!(
            "  \"records_processed\": {},\n",
            self.records_processed
        ));
        s.push_str("  \"per_job\": [\n");
        for (j, stats) in self.jobs.iter().enumerate() {
            let lat = stats
                .latency()
                .map(|d| d.as_nanos().to_string())
                .unwrap_or_else(|| "null".into());
            s.push_str(&format!(
                "    {{\"tenant\": {}, \"kind\": {}, \"arrival_ns\": {}, \
                 \"predicted_ns\": {}, \"queue_wait_ns\": {}, \"latency_ns\": {}, \
                 \"rejected\": {}}}{}\n",
                stats.tenant,
                self.kinds[j],
                stats.arrival.0,
                self.predicted_ns[j],
                stats.queue_wait.as_nanos(),
                lat,
                stats.rejected,
                if j + 1 < self.jobs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Congestion slack on predicted-active windows: a job is treated as
/// occupying its nodes for `WINDOW_STRETCH ×` its standalone makespan.
/// Contended jobs run slower than their solo estimate, so un-stretched
/// windows expire before the next arrival and planning would see an
/// empty cluster exactly when it matters most.
const WINDOW_STRETCH: f64 = 2.5;

/// Per-node predicted occupancy shares of one planned job, in
/// [`ResidualCapacity`] node order (hosts first, then ASUs).
struct Footprint {
    start: SimTime,
    done_pred: SimTime,
    cpu: Vec<f64>,
    disk: Vec<f64>,
    nic: Vec<f64>,
}

impl Footprint {
    /// How much of this job's occupancy is still ahead at `at`: 1 just
    /// after dispatch, linearly decaying to 0 at the predicted window
    /// end. Without the decay, a few overlapping windows drive every
    /// node to the residual floor and the planner loses the gradient
    /// that tells it which hosts are *more* loaded.
    fn remaining(&self, at: SimTime) -> f64 {
        if at >= self.done_pred {
            return 0.0;
        }
        let total = self.done_pred.0.saturating_sub(self.start.0).max(1);
        let left = self.done_pred.0.saturating_sub(at.0);
        (left as f64 / total as f64).clamp(0.0, 1.0)
    }
}

/// Extract a job's predicted per-node occupancy from its *solo*
/// estimate: the fraction of the standalone makespan each node spends
/// busy on it. Residual estimates inflate with the congestion they
/// were planned under, so footprints always come from the full-rate
/// scoring of the chosen assignment — otherwise jobs planned on a busy
/// cluster would under-charge the gate and over-admit.
fn footprint(estimate: &Estimate, hosts: usize, nodes: usize, at: SimTime) -> Footprint {
    let mk = estimate.makespan_ns.max(1.0);
    let mut fp = Footprint {
        start: at,
        done_pred: at + SimDuration::from_nanos((mk * WINDOW_STRETCH) as u64),
        cpu: vec![0.0; nodes],
        disk: vec![0.0; nodes],
        nic: vec![0.0; nodes],
    };
    let fill = |slot: &mut Vec<f64>, loads: &[(lmas_core::NodeId, f64)]| {
        for &(node, ns) in loads {
            let ui = ResidualCapacity::node_index(hosts, node);
            if ui < slot.len() {
                slot[ui] += (ns / mk).clamp(0.0, 1.0);
            }
        }
    };
    fill(&mut fp.cpu, &estimate.node_cpu_ns);
    fill(&mut fp.disk, &estimate.node_disk_ns);
    fill(&mut fp.nic, &estimate.node_nic_ns);
    fp
}

/// Run the full multi-tenant pipeline (see the module docs).
///
/// # Errors
///
/// [`SchedRunError::Sched`] when planning cannot place a job
/// ([`SchedError::PlanInfeasible`]); [`SchedRunError::Dsm`] /
/// [`SchedRunError::Job`] for configuration, input-shape, or emulator
/// failures. Admission rejections are *not* errors — they land in
/// [`SchedOutcome::rejections`].
pub fn run_scheduled(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    spec: &SchedSpec,
) -> Result<SchedOutcome, SchedRunError> {
    let events = spec.arrivals.sorted_events();
    if events.is_empty() {
        return Ok(SchedOutcome {
            policy: spec.policy.name(),
            aware: spec.aware,
            ..SchedOutcome::default()
        });
    }
    let tenants = events.iter().map(|e| e.tenant).max().unwrap_or(0) + 1;
    let nodes = cluster.hosts + cluster.asus;

    let mut tenant_jobs: Vec<TenantJob<Rec8>> = Vec::with_capacity(events.len());
    let mut shapes: Vec<JobShape> = Vec::with_capacity(events.len());
    let mut kinds: Vec<usize> = Vec::with_capacity(events.len());
    let mut predicted_ns: Vec<u64> = Vec::with_capacity(events.len());
    let mut footprints: Vec<Footprint> = Vec::new();
    let mut shared_cluster: Option<ClusterConfig> = None;

    for (j, e) in events.iter().enumerate() {
        assert!(
            e.kind < spec.kind_records.len(),
            "arrival kind {} outside the job-kind table (len {})",
            e.kind,
            spec.kind_records.len()
        );
        let n = spec.kind_records[e.kind];
        let data_seed = spec.seed ^ ((j as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let data = generate_rec8(n, KeyDist::Uniform, data_seed);
        let splitters = choose_splitters(&data, dsm.alpha);
        let per_asu = split_across_asus(&data, cluster.asus);

        let (assignment, built): (Vec<Vec<lmas_core::NodeId>>, Pass1Job<Rec8>) = if spec.aware {
            // Plan against the capacity left by jobs predicted to still
            // be running at this arrival.
            let mut res = ResidualCapacity::full(nodes);
            for fp in footprints.iter() {
                let w = fp.remaining(e.at);
                if w <= 0.0 {
                    continue;
                }
                for u in 0..nodes {
                    res.occupy(u, fp.cpu[u] * w, fp.disk[u] * w, fp.nic[u] * w);
                }
            }
            let outcome = plan_pass1_residual::<Rec8>(cluster, dsm, n, &res)?;
            let sorters = outcome
                .assignment
                .get(1)
                .filter(|s| s.len() == dsm.alpha)
                .cloned()
                .ok_or(SchedError::PlanInfeasible(
                    PlanWireError::MissingSorterNodes,
                ))?;
            let built = build_pass1_job_placed(cluster, per_asu, splitters, dsm, &sorters)?;
            (outcome.assignment, built)
        } else {
            // Naive: predict on (and run with) the static block-subset
            // layout — concurrent jobs stack onto the same hosts.
            let (_, outcome) =
                plan_pass1_coded::<Rec8>(cluster, dsm, n, &[dsm.coded_r.max(1)])?;
            let built = build_pass1_job(cluster, per_asu, splitters, dsm, LoadMode::Static)?;
            (outcome.assignment, built)
        };

        // Gate currency: the chosen assignment scored on an EMPTY
        // cluster. Same units for both paths — residual-planned jobs
        // are charged what they demand, not what congestion predicts.
        let solo = estimate_pass1_solo::<Rec8>(cluster, dsm, n, &assignment);
        let fp = footprint(&solo, cluster.hosts, nodes, e.at);
        let cost_ns = (solo.makespan_ns.max(1.0)) as u64;
        shapes.push(JobShape {
            tenant: e.tenant,
            cost_ns,
            cpu_share: fp.cpu.clone(),
        });
        footprints.push(fp);
        predicted_ns.push(cost_ns);
        kinds.push(e.kind);
        shared_cluster.get_or_insert(built.cluster);
        tenant_jobs.push(TenantJob {
            tenant: e.tenant,
            arrival: e.at,
            job: built.job,
        });
    }

    let (gate, rejection_log) = PolicyGate::new(
        GateConfig {
            policy: spec.policy,
            tenants,
            quota: spec.quota,
            queue_cap: spec.queue_cap,
            load_limit: spec.load_limit,
            weights: spec.weights.clone(),
        },
        shapes,
    );
    let run_cluster = shared_cluster.expect("at least one job was built");
    let rep = run_jobs(&run_cluster, tenant_jobs, Box::new(gate))?;
    let rejections = rejection_log.borrow().clone();

    Ok(SchedOutcome {
        policy: spec.policy.name(),
        aware: spec.aware,
        jobs: rep.jobs,
        kinds,
        predicted_ns,
        events: rep.events,
        rejections,
        makespan: rep.report.makespan,
        records_processed: rep.report.records_processed,
    })
}
