//! Scheduler integration tests: golden byte-identity of a lone job
//! against the direct pass-1 path, whole-pipeline determinism, and
//! property tests over the admission gate (quota safety,
//! starvation-freedom).

use lmas_core::{generate_rec8, KeyDist, Rec8};
use lmas_emulator::{ClusterConfig, GateDecision, SchedGate};
use lmas_sched::{
    run_scheduled, ArrivalSpec, GateConfig, JobShape, Policy, PolicyGate, SchedError, SchedSpec,
};
use lmas_sim::{SimDuration, SimTime};
use lmas_sort::{choose_splitters, run_pass1, split_across_asus, DsmConfig, LoadMode};
use proptest::prelude::*;

fn cluster() -> ClusterConfig {
    ClusterConfig::era_2002(2, 4, 8.0)
}

fn dsm() -> DsmConfig {
    DsmConfig::new(4, 256, 4, 64)
}

/// The data seed `run_scheduled` derives for job index `j`.
fn job_seed(spec_seed: u64, j: u64) -> u64 {
    spec_seed ^ ((j + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A lone job submitted at t = 0 through the whole scheduler pipeline
/// is byte-identical to the direct `run_pass1` on the same data: same
/// virtual makespan, same record count — the scheduling layer adds no
/// virtual time of its own.
#[test]
fn single_job_through_scheduler_matches_direct_pass1() {
    let cluster = cluster();
    let dsm = dsm();
    let n = 5_000u64;
    let seed = 0xD15C_0001u64;

    let spec = SchedSpec::new(ArrivalSpec::new().job(0, 0, SimTime::ZERO), vec![n])
        .with_seed(seed);
    let sched = run_scheduled(&cluster, &dsm, &spec).expect("scheduled run");

    let data = generate_rec8(n, KeyDist::Uniform, job_seed(seed, 0));
    let splitters = choose_splitters(&data, dsm.alpha);
    let per_asu = split_across_asus(&data, cluster.asus);
    let direct =
        run_pass1::<Rec8>(&cluster, per_asu, splitters, &dsm, LoadMode::Static)
            .expect("direct pass 1");

    assert_eq!(sched.jobs.len(), 1);
    let job = &sched.jobs[0];
    assert_eq!(job.dispatched_at, Some(SimTime::ZERO), "dispatched on arrival");
    assert_eq!(job.queue_wait, SimDuration::ZERO);
    assert_eq!(
        sched.makespan, direct.report.makespan,
        "scheduler adds no virtual time"
    );
    assert_eq!(sched.records_processed, direct.report.records_processed);
    // Completion is the last sink flush; the makespan additionally
    // covers the post-flush disk quiesce, so latency ∈ (0, makespan].
    let lat = job.latency().expect("completed");
    assert!(lat > SimDuration::ZERO && lat <= direct.report.makespan);
    assert!(sched.rejections.is_empty());
}

/// The whole pipeline — arrivals, planning, gating, emulation, JSON —
/// is a pure function of its spec: run twice, byte-identical.
#[test]
fn same_spec_runs_byte_identical() {
    let cluster = cluster();
    let dsm = dsm();
    let arrivals = ArrivalSpec::poisson(
        0xA2215,
        2,
        SimDuration::from_millis(40),
        SimDuration::from_millis(160),
        &[2, 1],
    );
    let mk = |aware: bool| {
        let spec = SchedSpec::new(arrivals.clone(), vec![3_000, 6_000])
            .with_policy(Policy::WeightedFair)
            .with_weights(vec![2, 1])
            .with_quota(2)
            .with_aware(aware);
        run_scheduled(&cluster, &dsm, &spec).expect("run")
    };
    for aware in [false, true] {
        let a = mk(aware);
        let b = mk(aware);
        assert_eq!(a.to_json(), b.to_json(), "aware={aware}");
        assert_eq!(a.events, b.events, "aware={aware}");
    }
}

/// Under contention, queued jobs wait (positive queue time) and every
/// admitted job still completes; rejections, when they happen, carry
/// the typed reason.
#[test]
fn contended_run_queues_and_completes() {
    let cluster = cluster();
    let dsm = dsm();
    // Four near-simultaneous jobs from two tenants, quota 1, tiny queue.
    let arrivals = ArrivalSpec::new()
        .job(0, 0, SimTime::ZERO)
        .job(1, 0, SimTime(1_000))
        .job(0, 0, SimTime(2_000))
        .job(1, 0, SimTime(3_000))
        .job(0, 0, SimTime(4_000));
    let spec = SchedSpec::new(arrivals, vec![3_000])
        .with_quota(1)
        .with_queue_cap(1)
        .with_seed(7);
    let out = run_scheduled(&cluster, &dsm, &spec).expect("run");

    let completed = out.completed();
    let rejected = out.jobs.iter().filter(|j| j.rejected).count();
    assert_eq!(completed + rejected, out.jobs.len(), "no job is lost");
    assert_eq!(rejected, out.rejections.len());
    // Tenant 0's third job finds one running + one queued: rejected.
    assert!(rejected >= 1, "queue cap 1 must reject the burst");
    assert!(matches!(
        out.rejections[0],
        SchedError::QuotaExceeded { tenant: 0, .. }
    ));
    // Somebody waited.
    assert!(
        out.jobs.iter().any(|j| j.queue_wait > SimDuration::ZERO),
        "quota 1 with burst arrivals must queue someone"
    );
    // Completions are serialized per tenant (quota 1): a tenant's
    // second dispatch never precedes its first completion.
    for t in 0..2 {
        let mine: Vec<_> = out.jobs.iter().filter(|j| j.tenant == t && !j.rejected).collect();
        for w in mine.windows(2) {
            assert!(w[1].dispatched_at.unwrap() >= w[0].completed_at.unwrap());
        }
    }
}

/// Interference-aware placement runs end to end and spreads sorters:
/// with another job predicted to be mid-flight, the planner must not
/// produce a worse p99 than it predicts for the naive stack (full
/// comparison is bench F-MT's job; this is the smoke gate).
#[test]
fn aware_placement_completes_under_contention() {
    let cluster = cluster();
    let dsm = dsm();
    let arrivals = ArrivalSpec::new()
        .job(0, 0, SimTime::ZERO)
        .job(1, 0, SimTime(10_000))
        .job(0, 0, SimTime(20_000));
    let spec = SchedSpec::new(arrivals, vec![4_000])
        .with_quota(2)
        .with_aware(true)
        .with_seed(11);
    let out = run_scheduled(&cluster, &dsm, &spec).expect("aware run");
    assert_eq!(out.completed(), 3, "all aware jobs complete");
    assert!(out.rejections.is_empty());
    assert!(out.predicted_ns.iter().all(|&c| c > 0));
}

/// Drive a standalone gate through an arrival/completion schedule,
/// checking the quota invariant after every transition. Returns
/// (dispatched, rejected) job sets.
fn drive_gate(
    policy: Policy,
    tenants: usize,
    quota: usize,
    queue_cap: usize,
    shapes: Vec<JobShape>,
    completion_picks: &[usize],
) -> (Vec<usize>, usize) {
    let n = shapes.len();
    let tenant_of: Vec<usize> = shapes.iter().map(|s| s.tenant).collect();
    let (mut gate, log) = PolicyGate::new(
        GateConfig {
            policy,
            tenants,
            quota,
            queue_cap,
            load_limit: 1.0,
            weights: vec![1; tenants],
        },
        shapes,
    );
    let mut running: Vec<usize> = Vec::new();
    let mut dispatched: Vec<usize> = Vec::new();
    let mut counts = vec![0usize; tenants];
    let check = |running: &[usize], counts: &mut Vec<usize>| {
        counts.iter_mut().for_each(|c| *c = 0);
        for &j in running {
            counts[tenant_of[j]] += 1;
            assert!(
                counts[tenant_of[j]] <= quota,
                "tenant {} exceeds quota {quota}",
                tenant_of[j]
            );
        }
    };
    for j in 0..n {
        if gate.on_arrival(j, SimTime(j as u64)) == GateDecision::Dispatch {
            running.push(j);
            dispatched.push(j);
            check(&running, &mut counts);
        }
    }
    let mut pick_i = 0usize;
    while !running.is_empty() {
        let idx = completion_picks.get(pick_i).copied().unwrap_or(0) % running.len();
        pick_i += 1;
        let done = running.swap_remove(idx);
        for j in gate.on_completion(done, SimTime(1_000 + pick_i as u64)) {
            running.push(j);
            dispatched.push(j);
            check(&running, &mut counts);
        }
    }
    let rejected = log.borrow().len();
    (dispatched, rejected)
}

proptest! {
    /// Admission never exceeds the per-tenant quota, under any policy,
    /// any job mix, and any completion order.
    #[test]
    fn quota_is_never_exceeded(
        tenants in 1usize..4,
        quota in 1usize..3,
        queue_cap in 0usize..4,
        policy_ix in 0u8..3,
        job_draws in prop::collection::vec((0usize..4, 1u64..10_000_000), 1..24),
        picks in prop::collection::vec(0usize..64, 64..65),
    ) {
        let policy = [Policy::Fcfs, Policy::Spjf, Policy::WeightedFair][policy_ix as usize];
        let shapes: Vec<JobShape> = job_draws
            .iter()
            .map(|&(t, cost_ns)| JobShape {
                tenant: t % tenants,
                cost_ns,
                cpu_share: vec![0.2],
            })
            .collect();
        let n = shapes.len();
        // drive_gate asserts the invariant after every transition.
        let (dispatched, rejected) =
            drive_gate(policy, tenants, quota, queue_cap, shapes, &picks);
        prop_assert_eq!(dispatched.len() + rejected, n, "every job dispatches or rejects");
    }

    /// Weighted-fair is starvation-free: whatever the weights and
    /// backlog, every admitted job is eventually dispatched once
    /// completions keep coming.
    #[test]
    fn weighted_fair_starves_no_admitted_job(
        tenants in 1usize..4,
        job_draws in prop::collection::vec((0usize..4, 1u64..10_000_000), 1..24),
        picks in prop::collection::vec(0usize..64, 64..65),
    ) {
        let shapes: Vec<JobShape> = job_draws
            .iter()
            .map(|&(t, cost_ns)| JobShape {
                tenant: t % tenants,
                cost_ns,
                cpu_share: vec![0.2],
            })
            .collect();
        let n = shapes.len();
        let (dispatched, rejected) = drive_gate(
            Policy::WeightedFair,
            tenants,
            1,
            n, // queue deep enough to admit everything
            shapes,
            &picks,
        );
        prop_assert_eq!(rejected, 0, "deep queues admit everything");
        let mut seen = dispatched.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>(), "every job dispatched");
    }
}
