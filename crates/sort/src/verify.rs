//! Output verification: sortedness and permutation checks.
//!
//! DSM-Sort's final output is a set of sorted stripes scattered across
//! the ASUs. Because the stripes partition one globally sorted sequence
//! into key intervals, ordering them by `(min, max)` and concatenating
//! must reproduce a sorted sequence; any corruption (lost records,
//! mis-bucketed keys, unsorted runs) breaks one of the checks here.

use lmas_core::{Packet, Record};
use std::fmt;

/// Verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A stripe was internally unsorted.
    UnsortedStripe {
        /// Index of the stripe in input order.
        index: usize,
    },
    /// Concatenation in (min, max) order is not globally sorted.
    GlobalOrderBroken {
        /// Position of the inversion in the reconstructed sequence.
        position: usize,
    },
    /// Record count differs from expectation.
    WrongCount {
        /// Expected record count.
        expected: u64,
        /// Actual record count.
        actual: u64,
    },
    /// The tag multiset is not the permutation `0..n`.
    NotAPermutation {
        /// First offending tag position.
        position: usize,
    },
    /// Two outputs differ under the canonical byte comparison.
    OutputMismatch {
        /// First differing record position in canonical order (equal to
        /// the shorter length when one output is a prefix of the other).
        position: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnsortedStripe { index } => write!(f, "stripe {index} is unsorted"),
            VerifyError::GlobalOrderBroken { position } => {
                write!(f, "global order broken at position {position}")
            }
            VerifyError::WrongCount { expected, actual } => {
                write!(f, "expected {expected} records, found {actual}")
            }
            VerifyError::NotAPermutation { position } => {
                write!(f, "tags are not a permutation (first mismatch at {position})")
            }
            VerifyError::OutputMismatch { position } => {
                write!(f, "outputs differ at canonical position {position}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Reconstruct the globally sorted sequence from sorted stripes; checks
/// each stripe and the reconstructed order.
pub fn reconstruct_sorted<R: Record>(stripes: &[Packet<R>]) -> Result<Vec<R>, VerifyError> {
    for (i, s) in stripes.iter().enumerate() {
        if !s.is_sorted() {
            return Err(VerifyError::UnsortedStripe { index: i });
        }
    }
    let mut order: Vec<&Packet<R>> = stripes.iter().filter(|s| !s.is_empty()).collect();
    order.sort_by_key(|s| (s.min_key().expect("non-empty"), s.max_key().expect("non-empty")));
    let mut out = Vec::with_capacity(order.iter().map(|s| s.len()).sum());
    for s in order {
        out.extend(s.records().iter().cloned());
    }
    for (i, w) in out.windows(2).enumerate() {
        if w[0].key() > w[1].key() {
            return Err(VerifyError::GlobalOrderBroken { position: i + 1 });
        }
    }
    Ok(out)
}

/// Check that `tags` (in any order) is exactly the multiset `0..n`.
pub fn check_tag_permutation(
    tags: impl IntoIterator<Item = u64>,
    n: u64,
) -> Result<(), VerifyError> {
    let mut tags: Vec<u64> = tags.into_iter().collect();
    if tags.len() as u64 != n {
        return Err(VerifyError::WrongCount {
            expected: n,
            actual: tags.len() as u64,
        });
    }
    tags.sort_unstable();
    for (i, &t) in tags.iter().enumerate() {
        if t != i as u64 {
            return Err(VerifyError::NotAPermutation { position: i });
        }
    }
    Ok(())
}

/// The records of `stripes` in canonical order: sorted by
/// `(key, tag64)`. Stripe boundaries and the placement of equal-keyed
/// records across them are routing artifacts; the canonical form is
/// what "the same sorted output" means when comparing a fault-injected
/// run against a fault-free one.
pub fn canonical_records<R: Record>(stripes: &[Packet<R>]) -> Vec<R> {
    let mut out: Vec<R> = stripes
        .iter()
        .flat_map(|p| p.records().iter().cloned())
        .collect();
    out.sort_by_key(|r| (r.key(), r.tag64()));
    out
}

/// Prove two outputs identical: equal record counts and byte-identical
/// records in canonical `(key, tag64)` order. This is the recovery
/// acceptance check — a crashed-and-repaired DSM-Sort passes iff every
/// record of the fault-free run is present exactly once, byte for byte.
pub fn canonical_equal<R: Record>(
    a: &[Packet<R>],
    b: &[Packet<R>],
) -> Result<(), VerifyError> {
    let ca = canonical_records(a);
    let cb = canonical_records(b);
    if ca.len() != cb.len() {
        return Err(VerifyError::OutputMismatch {
            position: ca.len().min(cb.len()),
        });
    }
    let mut ba = vec![0u8; R::SIZE];
    let mut bb = vec![0u8; R::SIZE];
    for (i, (ra, rb)) in ca.iter().zip(&cb).enumerate() {
        ra.to_bytes(&mut ba);
        rb.to_bytes(&mut bb);
        if ba != bb {
            return Err(VerifyError::OutputMismatch { position: i });
        }
    }
    Ok(())
}

/// Full check for `Rec128` outputs: reconstruct, verify order, count, and
/// the tag permutation. Returns the sorted records.
pub fn verify_rec128_output(
    stripes: &[Packet<lmas_core::Rec128>],
    n: u64,
) -> Result<Vec<lmas_core::Rec128>, VerifyError> {
    let out = reconstruct_sorted(stripes)?;
    check_tag_permutation(out.iter().map(|r| r.tag()), n)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::Rec8;

    fn stripe(keys: &[u32]) -> Packet<Rec8> {
        Packet::new(keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect())
    }

    #[test]
    fn reconstructs_interleaved_stripes() {
        let stripes = vec![stripe(&[4, 5]), stripe(&[0, 1]), stripe(&[2, 3])];
        let out = reconstruct_sorted(&stripes).unwrap();
        assert_eq!(out.iter().map(|r| r.key).collect::<Vec<_>>(), [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn handles_duplicate_boundaries() {
        // Stripes sharing boundary keys still reconstruct.
        let stripes = vec![stripe(&[2, 2, 3]), stripe(&[1, 2, 2])];
        let out = reconstruct_sorted(&stripes).unwrap();
        assert_eq!(out.iter().map(|r| r.key).collect::<Vec<_>>(), [1, 2, 2, 2, 2, 3]);
    }

    #[test]
    fn detects_unsorted_stripe() {
        let stripes = vec![stripe(&[3, 1])];
        assert_eq!(
            reconstruct_sorted(&stripes),
            Err(VerifyError::UnsortedStripe { index: 0 })
        );
    }

    #[test]
    fn detects_overlapping_stripes() {
        // [0, 5] and [1, 2]: true interleaving that no stripe order fixes.
        let stripes = vec![stripe(&[0, 5]), stripe(&[1, 2])];
        assert!(matches!(
            reconstruct_sorted(&stripes),
            Err(VerifyError::GlobalOrderBroken { .. })
        ));
    }

    #[test]
    fn empty_stripes_are_skipped() {
        let stripes = vec![stripe(&[]), stripe(&[1]), stripe(&[])];
        let out = reconstruct_sorted(&stripes).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn permutation_check_catches_everything() {
        assert!(check_tag_permutation([0, 1, 2], 3).is_ok());
        assert!(check_tag_permutation([2, 0, 1], 3).is_ok());
        assert_eq!(
            check_tag_permutation([0, 1], 3),
            Err(VerifyError::WrongCount { expected: 3, actual: 2 })
        );
        assert_eq!(
            check_tag_permutation([0, 1, 1], 3),
            Err(VerifyError::NotAPermutation { position: 2 })
        );
        assert_eq!(
            check_tag_permutation([0, 1, 5], 3),
            Err(VerifyError::NotAPermutation { position: 2 })
        );
    }

    #[test]
    fn canonical_equality_ignores_striping_but_not_content() {
        let a = vec![stripe(&[0, 1]), stripe(&[2, 3])];
        let b = vec![stripe(&[2]), stripe(&[0, 3]), stripe(&[1])];
        assert!(canonical_equal(&a, &b).is_ok());
        // A missing record is a length mismatch at the shorter length.
        let short = vec![stripe(&[0, 1, 2])];
        assert_eq!(
            canonical_equal(&a, &short),
            Err(VerifyError::OutputMismatch { position: 3 })
        );
        // Same keys, different payload bytes: caught by the byte compare.
        let mut tweaked = vec![stripe(&[0, 1]), stripe(&[2, 3])];
        tweaked[1] = Packet::new(vec![
            Rec8 { key: 2, tag: 9 },
            Rec8 { key: 3, tag: 3 },
        ]);
        assert_eq!(
            canonical_equal(&a, &tweaked),
            Err(VerifyError::OutputMismatch { position: 2 })
        );
    }
}
