//! DSM-Sort configuration: the (α, β, γ₁, γ₂) knobs.
//!
//! Section 4.3: an α-way distribute partitions the data into α subsets;
//! blocks of β records are sorted into runs ("the available memory size
//! limits the run length"); a γ-way merge with γ = γ₁·γ₂ split between
//! ASUs (γ₁) and hosts (γ₂) produces the sorted result, striped across
//! the ASUs. Choosing the parameters "allows us to balance computation at
//! ASUs and hosts, as well as conform to memory constraints on the ASUs",
//! with the work identity `Total Work = n·log(αβγ)`.

use lmas_core::log2_ceil;
use std::fmt;

/// Parameters of one DSM-Sort run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmConfig {
    /// Distribute order: number of subsets.
    pub alpha: usize,
    /// Run length: records per sorted block.
    pub beta: usize,
    /// ASU-side merge fan-in.
    pub gamma1: usize,
    /// Host-side merge fan-in.
    pub gamma2: usize,
    /// Records per input packet streamed off the ASU disks.
    pub input_packet_records: usize,
    /// Records per output stripe written back to the ASUs.
    pub stripe_records: usize,
    /// Coded-shuffle broadcast-group size `r` for the distribute and
    /// merge shuffles (1 = uncoded point-to-point). Destination
    /// instances group into r-sized broadcast groups; each sender
    /// writes its subset runs r-way replicated (an `(r-1)`-fold extra
    /// disk write) and ships only 1/r of the shuffle bytes. Must divide
    /// α. Under [`LoadMode::Auto`] a value > 1 forces that `r`;
    /// leaving it at 1 lets the planner sweep r jointly with the
    /// replication degree.
    pub coded_r: usize,
}

/// Configuration validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmConfigError {
    /// A parameter is zero.
    ZeroParameter(&'static str),
    /// `α·β·γ < n`: two passes cannot sort this input.
    InsufficientCapacity {
        /// Input size.
        n: u64,
        /// `α·β·γ₁·γ₂`.
        capacity: u64,
    },
    /// The coded broadcast-group size does not divide α, so the subset
    /// destinations cannot partition into whole groups.
    CodedGroupMismatch {
        /// Distribute order.
        alpha: usize,
        /// The offending group size.
        coded_r: usize,
    },
}

impl fmt::Display for DsmConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmConfigError::ZeroParameter(p) => write!(f, "parameter {p} must be positive"),
            DsmConfigError::InsufficientCapacity { n, capacity } => write!(
                f,
                "α·β·γ = {capacity} < n = {n}: two passes cannot sort this input"
            ),
            DsmConfigError::CodedGroupMismatch { alpha, coded_r } => write!(
                f,
                "coded group size {coded_r} does not divide α = {alpha}"
            ),
        }
    }
}

impl std::error::Error for DsmConfigError {}

impl DsmConfig {
    /// A configuration with default packet/stripe granularity.
    pub fn new(alpha: usize, beta: usize, gamma1: usize, gamma2: usize) -> DsmConfig {
        DsmConfig {
            alpha,
            beta,
            gamma1,
            gamma2,
            input_packet_records: 1024,
            stripe_records: 1024,
            coded_r: 1,
        }
    }

    /// Set the coded-shuffle broadcast-group size (must divide α).
    pub fn with_coded(mut self, r: usize) -> DsmConfig {
        self.coded_r = r;
        self
    }

    /// Total merge fan-in γ = γ₁·γ₂.
    pub fn gamma(&self) -> usize {
        self.gamma1 * self.gamma2
    }

    /// Validate against an input of `n` records.
    pub fn validate_for(&self, n: u64) -> Result<(), DsmConfigError> {
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta", self.beta),
            ("gamma1", self.gamma1),
            ("gamma2", self.gamma2),
            ("input_packet_records", self.input_packet_records),
            ("stripe_records", self.stripe_records),
            ("coded_r", self.coded_r),
        ] {
            if v == 0 {
                return Err(DsmConfigError::ZeroParameter(name));
            }
        }
        if !self.alpha.is_multiple_of(self.coded_r) {
            return Err(DsmConfigError::CodedGroupMismatch {
                alpha: self.alpha,
                coded_r: self.coded_r,
            });
        }
        let capacity = (self.alpha as u64)
            .saturating_mul(self.beta as u64)
            .saturating_mul(self.gamma() as u64);
        if capacity < n {
            return Err(DsmConfigError::InsufficientCapacity { n, capacity });
        }
        Ok(())
    }

    /// The paper's accounting bound: `n·(log α + log β + log γ)` compares.
    pub fn work_bound_compares(&self, n: u64) -> u64 {
        n * (log2_ceil(self.alpha as u64)
            + log2_ceil(self.beta as u64)
            + log2_ceil(self.gamma() as u64))
    }
}

/// How pass-1 block-sort load is distributed across hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// No load control: subset `i` is pinned to one host (Figure 10's
    /// baseline: "assigns half of the α distribute subsets to one host,
    /// and the other half to the second host").
    Static,
    /// Load-managed: every subset is spread across all hosts, routed by
    /// the given policy ("each of the α subsets is spread across both
    /// hosts … A simple randomization (SR) policy assigns the records").
    Managed(lmas_core::RoutingPolicy),
    /// Planner-managed: `lmas-plan` chooses the block-sort replication
    /// (sorters per subset) and the host/ASU assignment from the
    /// functors' declared costs, scoring candidates with the analytic
    /// makespan estimator. With more than one sorter per subset the
    /// records route by power-of-two-choices; compose with
    /// `ClusterConfig::with_balancer` for runtime feedback re-weighting.
    Auto,
}

impl LoadMode {
    /// The Figure 10 load-managed default: simple randomization.
    pub fn managed_sr() -> LoadMode {
        LoadMode::Managed(lmas_core::RoutingPolicy::SimpleRandomization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_product() {
        let c = DsmConfig::new(16, 1024, 4, 8);
        assert_eq!(c.gamma(), 32);
    }

    #[test]
    fn validate_accepts_sufficient_capacity() {
        let c = DsmConfig::new(16, 1024, 4, 8);
        // capacity = 16·1024·32 = 524288
        assert!(c.validate_for(524_288).is_ok());
        assert_eq!(
            c.validate_for(524_289),
            Err(DsmConfigError::InsufficientCapacity {
                n: 524_289,
                capacity: 524_288
            })
        );
    }

    #[test]
    fn validate_rejects_zero_parameters() {
        assert_eq!(
            DsmConfig::new(0, 1, 1, 1).validate_for(1),
            Err(DsmConfigError::ZeroParameter("alpha"))
        );
        let mut c = DsmConfig::new(1, 1, 1, 1);
        c.stripe_records = 0;
        assert_eq!(
            c.validate_for(1),
            Err(DsmConfigError::ZeroParameter("stripe_records"))
        );
    }

    #[test]
    fn coded_group_must_divide_alpha() {
        let c = DsmConfig::new(4, 16, 2, 2).with_coded(3);
        assert_eq!(
            c.validate_for(1),
            Err(DsmConfigError::CodedGroupMismatch { alpha: 4, coded_r: 3 })
        );
        assert!(DsmConfig::new(4, 16, 2, 2).with_coded(2).validate_for(1).is_ok());
        assert_eq!(
            DsmConfig::new(4, 16, 2, 2).with_coded(0).validate_for(1),
            Err(DsmConfigError::ZeroParameter("coded_r"))
        );
    }

    #[test]
    fn work_bound_matches_paper_identity() {
        // αβγ = n ⇒ bound = n·log2(n) when all are powers of two.
        let c = DsmConfig::new(16, 1024, 4, 16); // αβγ = 2^4·2^10·2^6 = 2^20
        let n = 1u64 << 20;
        assert_eq!(c.work_bound_compares(n), n * 20);
    }

    #[test]
    fn load_mode_default_is_sr() {
        assert_eq!(
            LoadMode::managed_sr(),
            LoadMode::Managed(lmas_core::RoutingPolicy::SimpleRandomization)
        );
    }
}
