//! Adaptive configuration: "DSM-Sort can adaptively reconfigure to match
//! varying parameters of the active storage systems" (Section 4.3).
//!
//! The adaptive series of Figure 9 is produced by letting the analytic
//! pipeline model pick α at each cluster size; the merge split (γ₁, γ₂)
//! follows from the ASU buffer bound.

use crate::config::DsmConfig;
use lmas_core::Record;
use lmas_emulator::ClusterConfig;

/// The α values the paper sweeps in Figure 9.
pub const ALPHA_CANDIDATES: [u64; 5] = [1, 4, 16, 64, 256];

/// Pick a full configuration for sorting `n` records of type `R` on
/// `cluster`, given the host-memory-bound run length β and the ASU
/// buffer bound on γ₁.
pub fn adaptive_config<R: Record>(
    cluster: &ClusterConfig,
    n: u64,
    beta: usize,
    max_gamma1: u64,
) -> DsmConfig {
    let model = cluster.pipeline_model(R::SIZE);
    let alpha = model.pick_alpha(&ALPHA_CANDIDATES, beta as u64) as usize;
    let gamma = n.div_ceil(alpha as u64 * beta as u64).max(1);
    let (g1, g2) = model.pick_gamma_split_bounded(gamma, max_gamma1);
    // The host merge sees at most ceil(runs_b / γ₁) runs per subset, but
    // striping across D ASUs adds per-ASU ceiling slack; pad γ₂ by D.
    let g2 = g2 + cluster.asus as u64;
    DsmConfig::new(alpha, beta, g1 as usize, g2 as usize)
}

/// The α the adaptive series picks at each cluster size (for Figure 9's
/// "adaptive" line).
pub fn adaptive_alpha<R: Record>(cluster: &ClusterConfig, beta: usize) -> u64 {
    cluster
        .pipeline_model(R::SIZE)
        .pick_alpha(&ALPHA_CANDIDATES, beta as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::Rec128;

    #[test]
    fn adaptive_alpha_grows_with_asus() {
        let beta = 1 << 13;
        let small = adaptive_alpha::<Rec128>(&ClusterConfig::era_2002(1, 2, 8.0), beta);
        let large = adaptive_alpha::<Rec128>(&ClusterConfig::era_2002(1, 64, 8.0), beta);
        assert!(large >= small, "α should not shrink with more ASUs");
        assert_eq!(large, 256, "plentiful ASUs absorb the biggest α");
    }

    #[test]
    fn adaptive_config_is_valid_for_n() {
        let cluster = ClusterConfig::era_2002(1, 16, 8.0);
        let n = 1u64 << 20;
        let cfg = adaptive_config::<Rec128>(&cluster, n, 1 << 13, 16);
        cfg.validate_for(n).expect("adaptive config must be valid");
        assert!(cfg.gamma1 <= 16, "ASU buffer bound respected");
    }

    #[test]
    fn adaptive_config_covers_tiny_inputs() {
        let cluster = ClusterConfig::era_2002(1, 2, 4.0);
        let cfg = adaptive_config::<Rec128>(&cluster, 100, 1 << 13, 8);
        cfg.validate_for(100).expect("tiny inputs are fine");
    }
}
