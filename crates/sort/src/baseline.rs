//! The passive-storage baseline: conventional storage units with no
//! integrated processing.
//!
//! Figure 9's speedups are "relative to a baseline using conventional
//! storage units with no integrated processing; all computation occurs on
//! the host." Here the ASUs only stream raw blocks (a zero-cost relay —
//! the disk and NIC still charge their time) while the hosts run a fused
//! distribute+sort ([`crate::functors::DistributeSortFunctor`]): the same
//! `log α + log β` comparison work as the active configuration, paid in a
//! single streaming pass per record, as a real single-host external sort
//! would.

use crate::config::{DsmConfig, LoadMode};
use crate::dsm::{DsmError, Pass1Result};
use crate::functors::DistributeSortFunctor;
use lmas_core::functor::lib::RelayFunctor;
use lmas_core::{
    packetize, EdgeKind, FlowGraph, Functor, Packet, Placement, Record, RoutingPolicy,
};
use lmas_emulator::{run_job, ClusterConfig, Job, JobError};
use std::collections::BTreeMap;

/// Run pass 1 of the sort on **passive** storage: ASUs stream, hosts
/// compute everything. Interface mirrors [`crate::dsm::run_pass1`].
pub fn run_pass1_baseline<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
) -> Result<Pass1Result<R>, DsmError> {
    // Pass 1 is γ-independent: validate parameter shape only. The
    // two-pass capacity rule (α·β·γ ≥ n) is enforced by run_dsm_sort.
    dsm.validate_for(1)?;
    if data_per_asu.len() != cluster.asus {
        return Err(DsmError::InputShape(format!(
            "data_per_asu has {} entries for {} ASUs",
            data_per_asu.len(),
            cluster.asus
        )));
    }
    if splitters.len() + 1 != dsm.alpha {
        return Err(DsmError::InputShape(format!(
            "{} splitters do not make α = {} subsets",
            splitters.len(),
            dsm.alpha
        )));
    }

    let d = cluster.asus;
    let h = cluster.hosts;
    let beta = dsm.beta;

    let mut g: FlowGraph<R> = FlowGraph::new();
    // Passive scan: raw blocks leave the storage unit uninspected.
    let scan = g.add_source_stage(d, |_| {
        Box::new(RelayFunctor::new("passive-scan")) as Box<dyn Functor<R>>
    });
    // Hosts run a fused distribute+sort, one instance per host, fed
    // round-robin from the passive scans.
    let sp = splitters.clone();
    let dist_sort = g.add_stage(h, move |_| {
        Box::new(DistributeSortFunctor::<R>::new(sp.clone(), beta)) as Box<dyn Functor<R>>
    });
    let collect = g.add_stage(d, |_| {
        Box::new(RelayFunctor::new("collect-runs")) as Box<dyn Functor<R>>
    });
    g.connect(scan, dist_sort, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .map_err(JobError::Graph)?;
    g.connect(dist_sort, collect, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .map_err(JobError::Graph)?;

    let mut placement = Placement::new();
    placement.spread_over_asus(scan, d, d);
    placement.spread_over_hosts(dist_sort, h, h);
    placement.spread_over_asus(collect, d, d);

    let mut inputs = BTreeMap::new();
    for (asu, data) in data_per_asu.into_iter().enumerate() {
        inputs.insert((scan.0, asu), packetize(data, dsm.input_packet_records));
    }

    let report = run_job(cluster, Job { graph: g, placement, inputs })?;
    let runs_per_asu = (0..d)
        .map(|asu| {
            report
                .sink_outputs
                .get(&(collect.0, asu))
                .map(|v| v.iter().map(|(_, p)| p.clone()).collect::<Vec<Packet<R>>>())
                .unwrap_or_default()
        })
        .collect();
    Ok(Pass1Result { report, runs_per_asu, coded_r: 1, plan: None })
}

/// Convenience: pass-1 makespans of the active configuration and the
/// passive baseline on identical inputs; `speedup = baseline / active`.
pub fn pass1_speedup<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<(f64, f64, f64), DsmError> {
    let active = crate::dsm::run_pass1(
        cluster,
        data_per_asu.clone(),
        splitters.clone(),
        dsm,
        mode,
    )?;
    let base = run_pass1_baseline(cluster, data_per_asu, splitters, dsm)?;
    let ta = active.report.makespan.as_secs_f64();
    let tb = base.report.makespan.as_secs_f64();
    Ok((tb / ta, ta, tb))
}
