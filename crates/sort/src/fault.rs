//! Degraded-mode DSM-Sort: run under a fault plan, then repair.
//!
//! The emulator's fault layer ([`lmas_emulator::fault`]) masks crashes
//! *inside* a pass: deliveries bounce off dead nodes and fail over to
//! surviving replicas. What it cannot recover by itself are records that
//! were lost **with** a node — queued packets, in-flight work, and runs
//! already stored on an ASU that is still offline when the pass ends.
//! This module closes that gap at the orchestration level:
//!
//! 1. run pass 1 under the plan (non-fatal mode: undeliverable records
//!    are dropped and counted, the pass drains);
//! 2. diff the per-record identity tags ([`Record::tag64`]) of the
//!    surviving, *reachable* runs against the input — the difference is
//!    exactly the lost records, wherever they died;
//! 3. re-dispatch the lost records through a repair pass on the
//!    surviving nodes (input extents are assumed replicated across the
//!    ASU pool, the paper's storage-redundancy premise, so lost extents
//!    can be re-read from surviving replicas);
//! 4. merge as usual in pass 2, with the dead ASUs contributing nothing.
//!
//! When recovery succeeds, [`canonical_equal`](crate::verify) proves the
//! final output byte-identical to a fault-free run: every input record
//! present exactly once, bytes and all. The whole procedure is
//! deterministic — same seed and plan, same output, same virtual times.

use crate::config::{DsmConfig, LoadMode};
use crate::dsm::{
    choose_splitters, run_pass1_with, run_pass2_with, split_across_asus, DsmError, Pass1Result,
};
use lmas_core::{NodeId, Packet, Record};
use lmas_emulator::{ClusterConfig, EmulationReport, FaultSpec};
use lmas_sim::SimDuration;
use std::collections::BTreeMap;

/// Outcome of a fault-injected DSM-Sort with repair.
pub struct FaultyDsmOutcome<R: Record> {
    /// Pass-1 report (ran under the fault plan).
    pub pass1: EmulationReport<R>,
    /// The repair pass, when one was needed.
    pub repair: Option<EmulationReport<R>>,
    /// Pass-2 report.
    pub pass2: EmulationReport<R>,
    /// Total emulated time including repair.
    pub total: SimDuration,
    /// Final sorted stripes.
    pub output: Vec<Packet<R>>,
    /// The splitters used.
    pub splitters: Vec<<R as Record>::Key>,
    /// Records the tag diff found missing and re-dispatched.
    pub recovered_records: u64,
    /// ASUs still down at the end of pass 1 (their stored runs were
    /// unreachable and their records went through repair).
    pub lost_asus: Vec<usize>,
}

/// Where each surviving run lives and what was lost: the reachable runs
/// per ASU (empty for offline ASUs) plus the tag set they cover.
fn reachable_runs<R: Record>(p1: &Pass1Result<R>) -> (Vec<Vec<Packet<R>>>, Vec<usize>) {
    let lost_asus: Vec<usize> = p1
        .report
        .down_nodes
        .iter()
        .filter_map(|id| match id {
            NodeId::Asu(d) => Some(*d),
            NodeId::Host(_) => None,
        })
        .collect();
    let runs = p1
        .runs_per_asu
        .iter()
        .enumerate()
        .map(|(d, runs)| {
            if lost_asus.contains(&d) {
                Vec::new()
            } else {
                runs.clone()
            }
        })
        .collect();
    (runs, lost_asus)
}

/// Run the full two-pass DSM-Sort on `data` under `spec`'s fault plan,
/// repairing lost records between the passes.
///
/// Repair identifies lost records by [`Record::tag64`], so the input
/// must carry unique tags (`Rec128`'s permutation tag, or any unique
/// `Rec8::tag`); a record without one (`u64::MAX`) is rejected up
/// front rather than silently unrecoverable.
pub fn run_dsm_sort_faulty<R: Record>(
    cluster: &ClusterConfig,
    spec: &FaultSpec,
    data: Vec<R>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<FaultyDsmOutcome<R>, DsmError> {
    dsm.validate_for(data.len() as u64)?;
    let splitters = choose_splitters(&data, dsm.alpha);

    // Tag → record index for the repair diff. Built before the data is
    // split so a lost record can be re-materialized from the "replica".
    let mut by_tag: BTreeMap<u64, R> = BTreeMap::new();
    if spec.is_active() {
        for r in &data {
            let t = r.tag64();
            if t == u64::MAX {
                return Err(DsmError::InputShape(
                    "fault repair requires per-record tags (Record::tag64)".into(),
                ));
            }
            if by_tag.insert(t, r.clone()).is_some() {
                return Err(DsmError::InputShape(format!(
                    "fault repair requires unique tags (tag {t} repeats)"
                )));
            }
        }
    }

    let per_asu = split_across_asus(&data, cluster.asus);
    drop(data);
    let p1 = run_pass1_with(cluster, spec, per_asu, splitters.clone(), dsm, mode)?;
    let (mut runs, lost_asus) = reachable_runs(&p1);

    // Tag diff: whatever the reachable runs don't cover was lost —
    // dropped in flight, discarded with a crashed instance, or stored on
    // an ASU that is still offline.
    let mut missing = by_tag;
    for asu_runs in &runs {
        for run in asu_runs {
            for r in run.records() {
                missing.remove(&r.tag64());
            }
        }
    }
    let recovered_records = missing.len() as u64;

    let repair = if missing.is_empty() {
        None
    } else {
        // Re-dispatch the lost records through a pass-1-shaped job on
        // the surviving nodes only (modeled as a cluster of just the
        // live hosts and ASUs).
        let live_asus: Vec<usize> =
            (0..cluster.asus).filter(|d| !lost_asus.contains(d)).collect();
        let down_hosts: Vec<usize> = p1
            .report
            .down_nodes
            .iter()
            .filter_map(|id| match id {
                NodeId::Host(h) => Some(*h),
                NodeId::Asu(_) => None,
            })
            .collect();
        let live_hosts = cluster.hosts - down_hosts.len();
        if live_asus.is_empty() || live_hosts == 0 {
            return Err(DsmError::InputShape(
                "no surviving nodes to repair on".into(),
            ));
        }
        let mut repair_cluster = *cluster;
        repair_cluster.hosts = live_hosts;
        repair_cluster.asus = live_asus.len();
        let lost: Vec<R> = missing.into_values().collect();
        let lost_per_asu = split_across_asus(&lost, live_asus.len());
        let rp = run_pass1_with(
            &repair_cluster,
            &FaultSpec::none(),
            lost_per_asu,
            splitters.clone(),
            dsm,
            mode,
        )?;
        // Repair ASU i stands in for the i-th surviving original ASU;
        // its new runs land alongside that ASU's surviving runs.
        for (i, extra) in rp.runs_per_asu.into_iter().enumerate() {
            runs[live_asus[i]].extend(extra);
        }
        Some(rp.report)
    };

    // Pass 2 runs fault-free on the original cluster: the plan's events
    // already fired, and offline ASUs simply hold no runs to merge.
    let p2 = run_pass2_with(cluster, &FaultSpec::none(), runs, splitters.clone(), dsm)?;
    let total = p1.report.makespan
        + repair.as_ref().map_or(SimDuration::ZERO, |r| r.makespan)
        + p2.report.makespan;
    Ok(FaultyDsmOutcome {
        pass1: p1.report,
        repair,
        pass2: p2.report,
        total,
        output: p2.output,
        splitters,
        recovered_records,
        lost_asus,
    })
}
