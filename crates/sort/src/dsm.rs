//! DSM-Sort orchestration: the two passes of Figure 7 on the emulator.
//!
//! **Pass 1 (run formation).** The input, initially distributed across
//! the ASUs, streams through α-way distribute functors *on the ASUs*;
//! records travel to block-sort functors on the hosts that form sorted
//! runs of β records per subset; the runs return to the ASUs and are
//! stored (striped round-robin).
//!
//! **Pass 2 (merge).** Each ASU merges its locally stored runs γ₁ at a
//! time per subset; the merged runs of subset `b` flow to host-merge
//! instance `b`, which performs the final γ₂-way merge and stripes the
//! sorted subset back across the ASUs.
//!
//! The first pass is what Figure 9 times ("We report timings from the
//! first pass of sorting (run formation), omitting the final merge
//! phases"); [`run_dsm_sort`] runs both and verifies the output.

use crate::config::{DsmConfig, DsmConfigError, LoadMode};
use crate::functors::{FullMergeFunctor, SubsetMergeFunctor};
use lmas_core::functor::lib::{BlockSortFunctor, DistributeFunctor, RelayFunctor};
use lmas_core::functor::FunctorKind;
use lmas_core::kernels::select_splitters;
use lmas_core::{
    log2_ceil, packetize, EdgeKind, FlowGraph, Functor, NodeId, Packet, Placement, Record,
    RouteScope, RoutingPolicy, StageId, Work,
};
use lmas_plan::{
    plan, plan_best_residual, CodedPoint, ClusterShape, Estimate, PlanEdge, PlanOutcome,
    PlanSpec, ResidualCapacity, StageSpec,
};
use lmas_emulator::{
    run_job, run_job_with_faults, ClusterConfig, EmulationReport, FaultSpec, Job, JobError,
};
use lmas_sim::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// The planner's wiring contract was violated when compiling a pass
/// graph: a placement decision requires data the caller did not supply.
/// Typed (rather than a panic) so orchestration layers can report which
/// wire broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanWireError {
    /// An explicit block-sort layout was selected but no sorter nodes
    /// were provided.
    MissingSorterNodes,
}

impl fmt::Display for PlanWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanWireError::MissingSorterNodes => {
                write!(f, "explicit sorter layout selected but no sorter nodes supplied")
            }
        }
    }
}

impl std::error::Error for PlanWireError {}

/// DSM-Sort failure.
#[derive(Debug)]
pub enum DsmError {
    /// Bad configuration.
    Config(DsmConfigError),
    /// The emulator rejected a pass.
    Job(JobError),
    /// Input shape mismatch.
    InputShape(String),
    /// The planner could not place a pass (`LoadMode::Auto`).
    Plan(lmas_plan::PlanError),
    /// The planner's wiring was internally inconsistent.
    Wire(PlanWireError),
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Config(e) => write!(f, "configuration: {e}"),
            DsmError::Job(e) => write!(f, "job: {e}"),
            DsmError::InputShape(s) => write!(f, "input: {s}"),
            DsmError::Plan(e) => write!(f, "planner: {e}"),
            DsmError::Wire(e) => write!(f, "plan wiring: {e}"),
        }
    }
}

impl std::error::Error for DsmError {}

impl From<DsmConfigError> for DsmError {
    fn from(e: DsmConfigError) -> Self {
        DsmError::Config(e)
    }
}

impl From<JobError> for DsmError {
    fn from(e: JobError) -> Self {
        DsmError::Job(e)
    }
}

impl From<PlanWireError> for DsmError {
    fn from(e: PlanWireError) -> Self {
        DsmError::Wire(e)
    }
}

/// Sorted runs resident on each ASU: `runs[asu]` is that ASU's run
/// packets in storage order.
pub type RunsPerAsu<R> = Vec<Vec<Packet<R>>>;

/// Result of pass 1: the emulation report and the sorted runs now stored
/// on each ASU.
pub struct Pass1Result<R: Record> {
    /// Timing and utilization of the pass.
    pub report: EmulationReport<R>,
    /// Runs stored per ASU (striped round-robin by the collector stage).
    pub runs_per_asu: Vec<Vec<Packet<R>>>,
    /// The planner's account when the pass ran under
    /// [`LoadMode::Auto`]; `None` for static/managed placement.
    pub plan: Option<PlanOutcome>,
    /// Coded broadcast-group size the distribute edge actually ran with
    /// (planner-chosen in Auto mode, `DsmConfig::coded_r` otherwise).
    pub coded_r: usize,
}

/// Result of pass 2: the report and the final sorted stripes.
pub struct Pass2Result<R: Record> {
    /// Timing and utilization of the pass.
    pub report: EmulationReport<R>,
    /// Sorted output stripes as stored across the ASUs.
    pub output: Vec<Packet<R>>,
    /// The planner's account when the pass ran under
    /// [`run_pass2_auto`]; `None` for the static layout.
    pub plan: Option<PlanOutcome>,
}

/// Outcome of a full two-pass DSM-Sort.
pub struct DsmOutcome<R: Record> {
    /// Pass-1 report (the quantity Figure 9 measures).
    pub pass1: EmulationReport<R>,
    /// Pass-2 report.
    pub pass2: EmulationReport<R>,
    /// Total emulated time (pass 1 + pass 2).
    pub total: SimDuration,
    /// Final sorted stripes.
    pub output: Vec<Packet<R>>,
    /// The splitters used by the distribute.
    pub splitters: Vec<<R as Record>::Key>,
    /// Planner decisions and analytic predictions when run under
    /// [`LoadMode::Auto`]; `None` otherwise.
    pub plan: Option<DsmPlanInfo>,
}

/// What the planner decided (and predicted) for an Auto-mode sort.
/// The predictions are the analytic estimator's makespans for the
/// placements actually run, so they can be validated against the
/// measured reports.
#[derive(Debug, Clone)]
pub struct DsmPlanInfo {
    /// Block-sort replicas per subset chosen for pass 1 (the winning
    /// replication degree of the candidate sweep).
    pub sorters_per_subset: usize,
    /// Coded broadcast-group size chosen for the pass-1 distribute
    /// shuffle (1 = uncoded; the predicted tradeoff curve behind the
    /// choice is in `pass1_report_json` under `coded_curve`).
    pub coded_r: usize,
    /// Predicted pass-1 makespan.
    pub pass1_predicted: SimDuration,
    /// Predicted pass-2 makespan.
    pub pass2_predicted: SimDuration,
    /// Machine-readable pass-1 plan report (JSON).
    pub pass1_report_json: String,
    /// Machine-readable pass-2 plan report (JSON).
    pub pass2_report_json: String,
}

/// Host index for static subset assignment: subset `i` of α pinned to a
/// contiguous block of hosts ("assigns half of the α distribute subsets
/// to one host, and the other half to the second host").
pub fn static_host_of(subset: usize, alpha: usize, hosts: usize) -> usize {
    (subset * hosts / alpha).min(hosts - 1)
}

/// When the cluster opted into functor-tuned prefetch
/// (`auto_read_ahead` with a buffer pool), return a copy of the config
/// with the read-ahead window set from the pass's source functor hint;
/// otherwise return the config unchanged.
fn tuned_cluster(cluster: &ClusterConfig, hint: usize) -> ClusterConfig {
    let mut c = *cluster;
    if c.storage.pool_frames > 0 && c.storage.auto_read_ahead {
        c.storage.read_ahead = hint.max(1);
    }
    c
}

/// The planner's cluster model for this emulated cluster: same H/D/c
/// (with background CPU interference folded into the effective ratio),
/// cost model, aggregate disk rates, and link parameters.
pub fn planner_shape(cluster: &ClusterConfig) -> ClusterShape {
    ClusterShape {
        hosts: cluster.hosts,
        asus: cluster.asus,
        cpu_ratio_c: cluster.effective_cpu_ratio(),
        cost: cluster.cost,
        asu_disk_rate: cluster.disk.rate_bytes_per_sec
            * (1.0 - cluster.background_asu_disk)
            * cluster.storage.disks as f64,
        host_disk_rate: cluster.disk.rate_bytes_per_sec,
        link_rate: cluster.link_bytes_per_sec,
        link_latency_ns: cluster.link_latency.as_nanos() as f64,
        asu_mem: cluster.asu_mem_bytes,
    }
}

/// Pass-1 planner spec with `k` block-sort replicas per subset and a
/// coded broadcast-group size `r` on the distribute edge. The
/// per-record work mirrors the functors' own `cost()` declarations
/// (distribute: `log α` compares plus 1 move; block sort: `log β`
/// compares plus 1 move), distribute and collect are pinned to the
/// data's ASUs, and the block-sort stage is free for the planner to place.
fn pass1_spec<R: Record>(dsm: &DsmConfig, d: usize, n: u64, k: usize, r: usize) -> PlanSpec {
    let bytes = n * R::SIZE as u64;
    let splitter_bytes = (dsm.alpha - 1) * std::mem::size_of::<R::Key>() + 64;
    PlanSpec {
        record_bytes: R::SIZE as u64,
        stages: vec![
            StageSpec::new(
                "distribute",
                d,
                FunctorKind::AsuEligible { max_state_bytes: splitter_bytes },
            )
            .with_work(Work::compares(log2_ceil(dsm.alpha as u64)) + Work::moves(1), n)
            .with_source(bytes)
            .with_packet_records(dsm.input_packet_records as u64)
            .pinned_per_asu(d),
            StageSpec::new(
                "block-sort",
                dsm.alpha * k,
                FunctorKind::VerifiedKernel { max_state_bytes: 2 * dsm.beta * R::SIZE },
            )
            .with_work(Work::compares(log2_ceil(dsm.beta as u64)) + Work::moves(1), n)
            .with_packet_records(dsm.input_packet_records as u64)
            .with_coded(r),
            StageSpec::new(
                "collect-runs",
                d,
                FunctorKind::AsuEligible { max_state_bytes: 0 },
            )
            .with_work(Work::ZERO, n)
            .with_sink_bytes(bytes)
            .with_packet_records(dsm.beta as u64)
            .pinned_per_asu(d),
        ],
        edges: vec![PlanEdge { from: 0, to: 1 }, PlanEdge { from: 1, to: 2 }],
    }
}

/// Candidate coded broadcast-group sizes for the r-sweep: an explicitly
/// configured `coded_r > 1` is forced; otherwise the powers of two
/// dividing α (so the α subset destinations partition into whole
/// groups).
fn coded_r_candidates(dsm: &DsmConfig) -> Vec<usize> {
    if dsm.coded_r > 1 {
        return vec![dsm.coded_r];
    }
    let mut out = Vec::new();
    let mut r = 1usize;
    while r <= dsm.alpha {
        if dsm.alpha.is_multiple_of(r) {
            out.push(r);
        }
        r *= 2;
    }
    out
}

/// Uncoded remote payload bytes of the planned pass-1 distribute edge
/// (each sender's record share times its off-node destination
/// fraction): the shuffle volume a coded edge divides by `r`.
fn pass1_uncoded_shuffle_bytes<R: Record>(n: u64, out: &PlanOutcome) -> f64 {
    let dist = &out.assignment[0];
    let sorters = &out.assignment[1];
    if dist.is_empty() || sorters.is_empty() {
        return 0.0;
    }
    let recs = n as f64 / dist.len() as f64;
    dist.iter()
        .map(|&u| {
            let remote = sorters.iter().filter(|&&s| s != u).count() as f64
                / sorters.len() as f64;
            recs * remote * R::SIZE as f64
        })
        .sum()
}

/// Joint sweep over block-sort replication `k` and coded group size `r`
/// (both enumerated ascending, r-major with `r = 1` first, so an
/// all-tie sweep resolves exactly as the historical k-only sweep did).
/// Mirrors `plan_best` semantics: lowest predicted makespan wins, ties
/// go to the earliest candidate (1 ns epsilon). The winner's report
/// carries the candidate counters and the predicted per-r tradeoff
/// curve.
fn sweep_pass1<R: Record>(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    n: u64,
    max_k: usize,
    rcands: &[usize],
    pin_static: bool,
) -> Result<(usize, usize, PlanOutcome), DsmError> {
    let shape = planner_shape(cluster);
    let mut winner: Option<(usize, usize, PlanOutcome)> = None;
    let mut considered = 0usize;
    let mut rejected = 0usize;
    let mut last_err = None;
    let mut curve: Vec<CodedPoint> = Vec::new();
    for &r in rcands {
        // Best of this r-column, for the tradeoff curve.
        let mut col: Option<(f64, f64)> = None;
        for k in 1..=max_k {
            considered += 1;
            let mut spec = pass1_spec::<R>(dsm, cluster.asus, n, k, r);
            if pin_static && k == 1 {
                // Score r on the exact static layout the measured runs
                // use (subset i's sorter on `static_host_of(i)`), so
                // planner-vs-measured comparisons share a topology.
                spec.stages[1].pinned = (0..dsm.alpha)
                    .map(|i| Some(NodeId::Host(static_host_of(i, dsm.alpha, cluster.hosts))))
                    .collect();
            }
            match plan(&spec, &shape) {
                Ok(outcome) => {
                    let mk = outcome.estimate.makespan_ns;
                    if col.map(|(m, _)| mk < m - 1.0).unwrap_or(true) {
                        col = Some((mk, pass1_uncoded_shuffle_bytes::<R>(n, &outcome)));
                    }
                    let better = winner
                        .as_ref()
                        .map(|(_, _, w)| mk < w.estimate.makespan_ns - 1.0)
                        .unwrap_or(true);
                    if better {
                        if winner.is_some() {
                            rejected += 1;
                        }
                        winner = Some((k, r, outcome));
                    } else {
                        rejected += 1;
                    }
                }
                Err(e) => {
                    rejected += 1;
                    last_err = Some(e);
                }
            }
        }
        if let Some((mk, uncoded)) = col {
            curve.push(CodedPoint {
                r,
                predicted_makespan_ns: mk as u64,
                predicted_nic_bytes: (uncoded / r as f64) as u64,
                extra_disk_bytes: (uncoded * (r - 1) as f64) as u64,
            });
        }
    }
    match winner {
        Some((k, r, mut outcome)) => {
            outcome.report.candidates_considered = considered;
            outcome.report.candidates_rejected = rejected;
            outcome.report.coded_curve = curve;
            Ok((k, r, outcome))
        }
        None => Err(DsmError::Plan(
            last_err.unwrap_or(lmas_plan::PlanError::EmptySpec),
        )),
    }
}

/// Plan pass 1: the joint sweep over replication degrees `k ∈ 1..=H`
/// (block-sort replicas per subset) and coded broadcast-group sizes,
/// scored by the analytic estimator; the lowest predicted makespan
/// wins. Returns `(k, r, plan)`.
fn plan_pass1<R: Record>(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    n: u64,
) -> Result<(usize, usize, PlanOutcome), DsmError> {
    sweep_pass1::<R>(cluster, dsm, n, cluster.hosts, &coded_r_candidates(dsm), false)
}

/// Plan pass 1 with the replication fixed at one sorter per subset
/// **pinned to the static layout**, sweeping only the coded
/// broadcast-group size over `r_candidates`. Returns the winning `r`
/// and its outcome (tradeoff curve attached) — the planner half of the
/// coded bench's "chosen r equals measured-best r" gate, scored on the
/// same topology `LoadMode::Static` runs measure.
pub fn plan_pass1_coded<R: Record>(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    n: u64,
    r_candidates: &[usize],
) -> Result<(usize, PlanOutcome), DsmError> {
    sweep_pass1::<R>(cluster, dsm, n, 1, r_candidates, true).map(|(_, r, out)| (r, out))
}

/// Pass-2 planner spec: γ₁-way ASU merges (source, pinned), the
/// host-only final merge (a flush-time barrier, free to place), and the
/// striped collector (sink, pinned).
fn pass2_spec<R: Record>(dsm: &DsmConfig, d: usize, n: u64) -> PlanSpec {
    let bytes = n * R::SIZE as u64;
    let per_subset = n / dsm.alpha.max(1) as u64;
    let merged_run = (dsm.beta * dsm.gamma1) as u64;
    PlanSpec {
        record_bytes: R::SIZE as u64,
        stages: vec![
            StageSpec::new(
                "asu-merge",
                d,
                FunctorKind::VerifiedKernel { max_state_bytes: usize::MAX },
            )
            // Every record is buffered once and merged once: ~2 moves
            // plus log γ₁ compares, amortized (SubsetMergeFunctor's
            // trigger-priced cost()).
            .with_work(Work::compares(log2_ceil(dsm.gamma1 as u64)) + Work::moves(2), n)
            .with_source(bytes)
            .with_packet_records(dsm.beta as u64)
            .pinned_per_asu(d),
            StageSpec::new("host-merge", dsm.alpha, FunctorKind::HostOnly)
                .with_work(Work::moves(1), n)
                .with_packet_records(merged_run.max(1))
                .with_coded(dsm.coded_r)
                .with_flush(
                    Work::compares(per_subset * log2_ceil(dsm.gamma2 as u64))
                        + Work::moves(per_subset),
                    true,
                ),
            StageSpec::new(
                "collect-sorted",
                d,
                FunctorKind::AsuEligible { max_state_bytes: 0 },
            )
            .with_work(Work::ZERO, n)
            .with_sink_bytes(bytes)
            .with_packet_records(dsm.stripe_records as u64)
            .pinned_per_asu(d),
        ],
        edges: vec![PlanEdge { from: 0, to: 1 }, PlanEdge { from: 1, to: 2 }],
    }
}

/// Plan pass 2 (the host-merge placement; replication is structural —
/// one final merge per subset).
fn plan_pass2<R: Record>(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    n: u64,
) -> Result<PlanOutcome, DsmError> {
    plan(&pass2_spec::<R>(dsm, cluster.asus, n), &planner_shape(cluster))
        .map_err(DsmError::Plan)
}

/// Run pass 1 (distribute on ASUs → block-sort on hosts → runs back to
/// ASUs). `data_per_asu[d]` is ASU `d`'s initially resident input.
pub fn run_pass1<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<Pass1Result<R>, DsmError> {
    run_pass1_with(cluster, &FaultSpec::none(), data_per_asu, splitters, dsm, mode)
}

/// [`run_pass1`] under a fault plan. With an inactive spec this is
/// exactly `run_pass1`; under faults the report's `down_nodes` and
/// `fault` fields say what was lost, and
/// [`run_dsm_sort_faulty`](crate::fault::run_dsm_sort_faulty) knows how
/// to repair it.
pub fn run_pass1_with<R: Record>(
    cluster: &ClusterConfig,
    spec: &FaultSpec,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<Pass1Result<R>, DsmError> {
    run_pass1_inner(cluster, spec, data_per_asu, splitters, dsm, mode, None)
}

/// Run pass 1 with an explicit block-sort placement: `sorter_nodes[b]`
/// hosts the (single) sorter of subset `b`, statically routed. This is
/// the manual-layout hook the placement sweep benchmarks against the
/// planner (e.g. all sorters on hosts, or all on ASUs).
pub fn run_pass1_placed<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    sorter_nodes: &[NodeId],
) -> Result<Pass1Result<R>, DsmError> {
    if sorter_nodes.len() != dsm.alpha {
        return Err(DsmError::InputShape(format!(
            "{} sorter nodes for α = {} subsets",
            sorter_nodes.len(),
            dsm.alpha
        )));
    }
    run_pass1_inner(
        cluster,
        &FaultSpec::none(),
        data_per_asu,
        splitters,
        dsm,
        LoadMode::Static,
        Some(sorter_nodes),
    )
}

/// A pass-1 job built but not run — the job-factory hook for the
/// multi-tenant scheduler in `lmas-sched`. [`run_pass1`] is exactly
/// "build, run, collect"; this exposes the build so several tenants'
/// jobs can be merged into one [`lmas_emulator::multi::run_jobs`] call.
pub struct Pass1Job<R: Record> {
    /// The runnable (graph, placement, inputs) triple.
    pub job: Job<R>,
    /// Stage id of the collect sinks (the report's `sink_outputs` keys
    /// on it; in a merged graph, offset by the job's stage base).
    pub collect: StageId,
    /// Broadcast-group size actually wired on the distribute edge.
    pub coded_r: usize,
    /// Planner account when [`LoadMode::Auto`] chose the layout.
    pub plan: Option<PlanOutcome>,
    /// The (possibly read-ahead-tuned) cluster the job was built for —
    /// a pure function of the input cluster for a given record type, so
    /// same-cluster jobs share one merged multi-tenant run.
    pub cluster: ClusterConfig,
}

/// Build a pass-1 job without running it (see [`Pass1Job`]). Identical
/// validation and graph construction to [`run_pass1`].
pub fn build_pass1_job<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<Pass1Job<R>, DsmError> {
    build_pass1_inner(cluster, data_per_asu, splitters, dsm, mode, None)
}

/// Build a pass-1 job with an explicit sorter layout without running it
/// (the placed counterpart of [`build_pass1_job`]; interface mirrors
/// [`run_pass1_placed`]).
pub fn build_pass1_job_placed<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    sorter_nodes: &[NodeId],
) -> Result<Pass1Job<R>, DsmError> {
    if sorter_nodes.len() != dsm.alpha {
        return Err(DsmError::InputShape(format!(
            "{} sorter nodes for α = {} subsets",
            sorter_nodes.len(),
            dsm.alpha
        )));
    }
    build_pass1_inner(
        cluster,
        data_per_asu,
        splitters,
        dsm,
        LoadMode::Static,
        Some(sorter_nodes),
    )
}

/// Plan a pass-1 sorter layout against the residual capacity of a
/// cluster that already has other tenants' jobs running (see
/// [`lmas_plan::plan_residual`]): one sorter per subset — the static
/// shape — scored on residual rates, so the sorters land on the nodes
/// the running jobs leave idle. The returned outcome's
/// `assignment[1]` is the sorter layout for
/// [`build_pass1_job_placed`]; its `estimate` carries the predicted
/// makespan and per-node busy times an admission gate turns into
/// occupancy shares. A [`ResidualCapacity::full`] view reproduces the
/// empty-cluster plan bit for bit.
pub fn plan_pass1_residual<R: Record>(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    n: u64,
    res: &ResidualCapacity,
) -> Result<PlanOutcome, DsmError> {
    let spec = pass1_spec::<R>(dsm, cluster.asus, n, 1, dsm.coded_r.max(1));
    plan_best_residual(&[spec], &planner_shape(cluster), res)
        .map(|(_, out)| out)
        .map_err(DsmError::Plan)
}

/// Score a pass-1 assignment against an *empty* cluster: the job's
/// standalone cost and per-node busy times at full rates. Residual
/// estimates inflate with the congestion they were planned under, so
/// an admission gate that accounted quota and load with them would
/// under-charge jobs planned on a busy cluster — footprints must come
/// from this solo view regardless of how the placement was chosen.
pub fn estimate_pass1_solo<R: Record>(
    cluster: &ClusterConfig,
    dsm: &DsmConfig,
    n: u64,
    assignment: &[Vec<NodeId>],
) -> Estimate {
    let spec = pass1_spec::<R>(dsm, cluster.asus, n, 1, dsm.coded_r.max(1));
    lmas_plan::estimate(&spec, &planner_shape(cluster), assignment, &[0, 1, 2])
}

fn run_pass1_inner<R: Record>(
    cluster: &ClusterConfig,
    spec: &FaultSpec,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    mode: LoadMode,
    sorter_nodes: Option<&[NodeId]>,
) -> Result<Pass1Result<R>, DsmError> {
    let d = cluster.asus;
    let built = build_pass1_inner(cluster, data_per_asu, splitters, dsm, mode, sorter_nodes)?;
    let report = run_job_with_faults(&built.cluster, spec, built.job)?;
    let runs_per_asu = (0..d)
        .map(|asu| {
            report
                .sink_outputs
                .get(&(built.collect.0, asu))
                .map(|v| v.iter().map(|(_, p)| p.clone()).collect())
                .unwrap_or_default()
        })
        .collect();
    Ok(Pass1Result {
        report,
        runs_per_asu,
        coded_r: built.coded_r,
        plan: built.plan,
    })
}

fn build_pass1_inner<R: Record>(
    cluster: &ClusterConfig,
    data_per_asu: Vec<Vec<R>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    mode: LoadMode,
    sorter_nodes: Option<&[NodeId]>,
) -> Result<Pass1Job<R>, DsmError> {
    // Pass 1 is γ-independent: validate parameter shape only. The
    // two-pass capacity rule (α·β·γ ≥ n) is enforced by run_dsm_sort.
    dsm.validate_for(1)?;
    if data_per_asu.len() != cluster.asus {
        return Err(DsmError::InputShape(format!(
            "data_per_asu has {} entries for {} ASUs",
            data_per_asu.len(),
            cluster.asus
        )));
    }
    if splitters.len() + 1 != dsm.alpha {
        return Err(DsmError::InputShape(format!(
            "{} splitters do not make α = {} subsets",
            splitters.len(),
            dsm.alpha
        )));
    }

    let d = cluster.asus;
    let h = cluster.hosts;
    let alpha = dsm.alpha;
    let beta = dsm.beta;
    // Source functors know their streaming depth: let the distribute
    // stage pick the ASU read-ahead window when auto-tuning is on.
    let cluster = tuned_cluster(
        cluster,
        DistributeFunctor::<R>::new(splitters.clone()).read_ahead_hint(),
    );

    // Auto mode asks the planner first: it sweeps replication degrees
    // and host/ASU assignments over the declared costs, and the rest of
    // this function builds the graph the winning candidate describes.
    let n: u64 = data_per_asu.iter().map(|v| v.len() as u64).sum();
    let auto_plan = match mode {
        LoadMode::Auto => Some(plan_pass1::<R>(&cluster, dsm, n)?),
        _ => None,
    };

    let mut g: FlowGraph<R> = FlowGraph::new();
    let sp = splitters.clone();
    let distribute = g.add_source_stage(d, move |_| {
        Box::new(DistributeFunctor::<R>::new(sp.clone())) as Box<dyn Functor<R>>
    });
    let (sort_repl, scope, routing) = match (mode, &auto_plan) {
        // Explicit layout: one sorter per subset on the given node.
        _ if sorter_nodes.is_some() => (alpha, RouteScope::Global, RoutingPolicy::Static),
        (LoadMode::Static, _) => (alpha, RouteScope::Global, RoutingPolicy::Static),
        (LoadMode::Managed(policy), _) => (
            alpha * h,
            RouteScope::PortGroups { group_size: h },
            policy,
        ),
        (LoadMode::Auto, Some((k, _, _))) if *k > 1 => (
            alpha * k,
            RouteScope::PortGroups { group_size: *k },
            RoutingPolicy::PowerOfTwoChoices,
        ),
        (LoadMode::Auto, _) => (alpha, RouteScope::Global, RoutingPolicy::Static),
    };
    // The effective broadcast-group size: the planner's pick under
    // Auto, the configured value otherwise.
    let coded_r = match (&mode, &auto_plan) {
        (_, Some((_, r, _))) => *r,
        _ => dsm.coded_r,
    };
    let block_sort = g.add_stage(sort_repl, move |_| {
        Box::new(BlockSortFunctor::<R>::new(beta)) as Box<dyn Functor<R>>
    });
    let collect = g.add_stage(d, |_| {
        Box::new(RelayFunctor::new("collect-runs")) as Box<dyn Functor<R>>
    });
    g.connect_coded(distribute, block_sort, routing, EdgeKind::Set, scope, coded_r)
        .map_err(JobError::Graph)?;
    // Striped writeback of runs across the ASUs.
    g.connect(block_sort, collect, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .map_err(JobError::Graph)?;

    let mut placement = Placement::new();
    placement.spread_over_asus(distribute, d, d);
    match (mode, &auto_plan) {
        _ if sorter_nodes.is_some() => {
            for (i, &node) in explicit_sorters(sorter_nodes)?.iter().enumerate() {
                placement.assign(block_sort, i, node);
            }
        }
        (LoadMode::Static, _) => {
            for i in 0..alpha {
                placement.assign(block_sort, i, NodeId::Host(static_host_of(i, alpha, h)));
            }
        }
        (LoadMode::Managed(_), _) => {
            // Instance b·H + j runs on host j: every subset has one
            // sorter per host.
            for i in 0..sort_repl {
                placement.assign(block_sort, i, NodeId::Host(i % h));
            }
        }
        (LoadMode::Auto, Some((_, _, out))) => {
            // The spec listed stages as [distribute, block-sort,
            // collect]; the block-sort assignment carries over verbatim
            // (instance b·k + j is sorter j of subset b).
            for (i, &node) in out.assignment[1].iter().enumerate() {
                placement.assign(block_sort, i, node);
            }
        }
        (LoadMode::Auto, None) => unreachable!("Auto always plans"),
    }
    placement.spread_over_asus(collect, d, d);

    let mut inputs = BTreeMap::new();
    for (asu, data) in data_per_asu.into_iter().enumerate() {
        inputs.insert(
            (distribute.0, asu),
            packetize(data, dsm.input_packet_records),
        );
    }

    Ok(Pass1Job {
        job: Job { graph: g, placement, inputs },
        collect,
        coded_r,
        plan: auto_plan.map(|(_, _, out)| out),
        cluster,
    })
}

/// Resolve an explicit sorter layout, or fail with the typed wire
/// error (instead of the panic this used to be) when the caller
/// selected an explicit layout without supplying the nodes.
fn explicit_sorters(sorter_nodes: Option<&[NodeId]>) -> Result<&[NodeId], PlanWireError> {
    sorter_nodes.ok_or(PlanWireError::MissingSorterNodes)
}

/// Run pass 2 (γ₁-way subset merges on ASUs → γ₂-way final merge per
/// subset on hosts → striped sorted output back to ASUs).
pub fn run_pass2<R: Record>(
    cluster: &ClusterConfig,
    runs_per_asu: Vec<Vec<Packet<R>>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
) -> Result<Pass2Result<R>, DsmError> {
    run_pass2_with(cluster, &FaultSpec::none(), runs_per_asu, splitters, dsm)
}

/// [`run_pass2`] under a fault plan (inactive spec ⇒ identical runs).
pub fn run_pass2_with<R: Record>(
    cluster: &ClusterConfig,
    spec: &FaultSpec,
    runs_per_asu: Vec<Vec<Packet<R>>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
) -> Result<Pass2Result<R>, DsmError> {
    run_pass2_inner(cluster, spec, runs_per_asu, splitters, dsm, None)
}

/// [`run_pass2`] with the host-merge placement chosen by the planner
/// from the declared merge costs — the `LoadMode::Auto` merge phase.
pub fn run_pass2_auto<R: Record>(
    cluster: &ClusterConfig,
    runs_per_asu: Vec<Vec<Packet<R>>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
) -> Result<Pass2Result<R>, DsmError> {
    let n: u64 = runs_per_asu
        .iter()
        .flatten()
        .map(|p| p.len() as u64)
        .sum();
    let outcome = plan_pass2::<R>(cluster, dsm, n)?;
    let hosts = outcome.assignment[1].clone();
    let mut res = run_pass2_inner(
        cluster,
        &FaultSpec::none(),
        runs_per_asu,
        splitters,
        dsm,
        Some(&hosts),
    )?;
    res.plan = Some(outcome);
    Ok(res)
}

fn run_pass2_inner<R: Record>(
    cluster: &ClusterConfig,
    spec: &FaultSpec,
    runs_per_asu: Vec<Vec<Packet<R>>>,
    splitters: Vec<R::Key>,
    dsm: &DsmConfig,
    host_merge_nodes: Option<&[NodeId]>,
) -> Result<Pass2Result<R>, DsmError> {
    if runs_per_asu.len() != cluster.asus {
        return Err(DsmError::InputShape(format!(
            "runs_per_asu has {} entries for {} ASUs",
            runs_per_asu.len(),
            cluster.asus
        )));
    }
    let d = cluster.asus;
    let h = cluster.hosts;
    let alpha = dsm.alpha;
    let (gamma1, gamma2) = (dsm.gamma1, dsm.gamma2);
    let stripe = dsm.stripe_records;
    let cluster = tuned_cluster(
        cluster,
        SubsetMergeFunctor::<R>::new(splitters.clone(), gamma1).read_ahead_hint(),
    );

    let mut g: FlowGraph<R> = FlowGraph::new();
    let sp = splitters.clone();
    let asu_merge = g.add_source_stage(d, move |_| {
        Box::new(SubsetMergeFunctor::<R>::new(sp.clone(), gamma1)) as Box<dyn Functor<R>>
    });
    let host_merge = g.add_stage(alpha, move |_| {
        Box::new(FullMergeFunctor::<R>::new(gamma2, stripe)) as Box<dyn Functor<R>>
    });
    let collect = g.add_stage(d, |_| {
        Box::new(RelayFunctor::new("collect-sorted")) as Box<dyn Functor<R>>
    });
    // Subset port b → host-merge instance b; coded when configured.
    g.connect_coded(
        asu_merge,
        host_merge,
        RoutingPolicy::Static,
        EdgeKind::Set,
        RouteScope::Global,
        dsm.coded_r,
    )
    .map_err(JobError::Graph)?;
    g.connect(host_merge, collect, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .map_err(JobError::Graph)?;

    let mut placement = Placement::new();
    placement.spread_over_asus(asu_merge, d, d);
    match host_merge_nodes {
        Some(nodes) => {
            for (i, &node) in nodes.iter().enumerate() {
                placement.assign(host_merge, i, node);
            }
        }
        None => {
            placement.spread_over_hosts(host_merge, alpha, h);
        }
    }
    placement.spread_over_asus(collect, d, d);

    let mut inputs = BTreeMap::new();
    for (asu, runs) in runs_per_asu.into_iter().enumerate() {
        inputs.insert((asu_merge.0, asu), runs);
    }

    let report = run_job_with_faults(&cluster, spec, Job { graph: g, placement, inputs })?;
    let output = report
        .sink_outputs
        .values()
        .flatten()
        .map(|(_, p)| p.clone())
        .collect();
    Ok(Pass2Result { report, output, plan: None })
}

/// Outcome of a multi-pass DSM-Sort (γ too small for two passes).
pub struct DsmMultiOutcome<R: Record> {
    /// Pass-1 (run formation) report.
    pub pass1: EmulationReport<R>,
    /// One report per intermediate ASU-local merge pass.
    pub intermediate: Vec<EmulationReport<R>>,
    /// The final (host-involving) merge pass report.
    pub final_merge: EmulationReport<R>,
    /// Total emulated time across all passes.
    pub total: SimDuration,
    /// Final sorted stripes.
    pub output: Vec<Packet<R>>,
    /// The splitters used.
    pub splitters: Vec<<R as Record>::Key>,
}

/// One intermediate merge pass: every ASU merges its *local* runs γ₁ at
/// a time, per subset, writing the longer runs back locally — no network
/// traffic, matching the paper's host↔ASU-only communication model.
pub fn run_intermediate_merge<R: Record>(
    cluster: &ClusterConfig,
    runs_per_asu: Vec<Vec<Packet<R>>>,
    splitters: Vec<R::Key>,
    gamma1: usize,
    packet_records: usize,
) -> Result<(EmulationReport<R>, RunsPerAsu<R>), DsmError> {
    let _ = packet_records;
    let d = cluster.asus;
    if runs_per_asu.len() != d {
        return Err(DsmError::InputShape(format!(
            "runs_per_asu has {} entries for {} ASUs",
            runs_per_asu.len(),
            d
        )));
    }
    let cluster = tuned_cluster(
        cluster,
        SubsetMergeFunctor::<R>::new(splitters.clone(), gamma1).read_ahead_hint(),
    );
    let mut g: FlowGraph<R> = FlowGraph::new();
    let sp = splitters.clone();
    // Source == sink: merged runs stay on their ASU.
    let merge = g.add_source_stage(d, move |_| {
        Box::new(SubsetMergeFunctor::<R>::new(sp.clone(), gamma1)) as Box<dyn Functor<R>>
    });
    let mut placement = Placement::new();
    placement.spread_over_asus(merge, d, d);
    let mut inputs = BTreeMap::new();
    for (asu, runs) in runs_per_asu.into_iter().enumerate() {
        inputs.insert((merge.0, asu), runs);
    }
    let report = run_job(&cluster, Job { graph: g, placement, inputs })?;
    let merged = (0..d)
        .map(|asu| {
            report
                .sink_outputs
                .get(&(merge.0, asu))
                .map(|v| v.iter().map(|(_, p)| p.clone()).collect())
                .unwrap_or_default()
        })
        .collect();
    Ok((report, merged))
}

/// Largest number of runs any single subset contributes to the final
/// host merge (after the pass-2 ASU-side γ₁ reduction).
fn max_host_fanin<R: Record>(
    runs_per_asu: &[Vec<Packet<R>>],
    splitters: &[R::Key],
    gamma1: usize,
) -> usize {
    let alpha = splitters.len() + 1;
    let mut per_subset = vec![0usize; alpha];
    for runs in runs_per_asu {
        let mut local = vec![0usize; alpha];
        for run in runs {
            if let Some(k) = run.min_key() {
                local[lmas_core::kernels::bucket_of(k, splitters)] += 1;
            }
        }
        for (s, &c) in local.iter().enumerate() {
            per_subset[s] += c.div_ceil(gamma1);
        }
    }
    per_subset.into_iter().max().unwrap_or(0)
}

/// Full DSM-Sort that inserts intermediate ASU-local merge passes while
/// the final host fan-in would exceed γ₂ — "more passes may
/// theoretically be required if γ is small, but two passes are
/// sufficient in practice" (Section 4.3). A safety valve errors out
/// rather than looping if γ₁ = 1 can make no progress.
pub fn run_dsm_sort_multipass<R: Record>(
    cluster: &ClusterConfig,
    data: Vec<R>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<DsmMultiOutcome<R>, DsmError> {
    // Multi-pass relaxes the two-pass capacity rule: validate parameter
    // shape only (nonzero knobs), not α·β·γ ≥ n.
    dsm.validate_for(1)?;
    if dsm.gamma1 < 2 {
        return Err(DsmError::InputShape(
            "multi-pass merging needs γ₁ ≥ 2 to make progress".into(),
        ));
    }
    let splitters = choose_splitters(&data, dsm.alpha);
    let per_asu = split_across_asus(&data, cluster.asus);
    drop(data);
    let p1 = run_pass1(cluster, per_asu, splitters.clone(), dsm, mode)?;
    let mut total = p1.report.makespan;
    let mut runs = p1.runs_per_asu;
    let mut intermediate = Vec::new();
    while max_host_fanin(&runs, &splitters, dsm.gamma1) > dsm.gamma2 {
        let (report, merged) = run_intermediate_merge(
            cluster,
            runs,
            splitters.clone(),
            dsm.gamma1,
            dsm.input_packet_records,
        )?;
        total += report.makespan;
        intermediate.push(report);
        runs = merged;
        if intermediate.len() > 64 {
            return Err(DsmError::InputShape(
                "merge did not converge in 64 passes".into(),
            ));
        }
    }
    let p2 = match mode {
        LoadMode::Auto => run_pass2_auto(cluster, runs, splitters.clone(), dsm)?,
        _ => run_pass2(cluster, runs, splitters.clone(), dsm)?,
    };
    total += p2.report.makespan;
    Ok(DsmMultiOutcome {
        pass1: p1.report,
        intermediate,
        final_merge: p2.report,
        total,
        output: p2.output,
        splitters,
    })
}

/// Sample-based splitter selection for an α-way distribute over `data`.
pub fn choose_splitters<R: Record>(data: &[R], alpha: usize) -> Vec<R::Key> {
    let sample_target = (alpha * 64).max(1024).min(data.len().max(1));
    let stride = (data.len() / sample_target).max(1);
    let sample: Vec<R> = data.iter().step_by(stride).cloned().collect();
    select_splitters(sample, alpha)
}

/// Split `data` into `d` near-equal contiguous chunks (the "input data
/// initially distributed across the ASUs" layout).
pub fn split_across_asus<R: Clone>(data: &[R], d: usize) -> Vec<Vec<R>> {
    assert!(d > 0, "need at least one ASU");
    let n = data.len();
    (0..d)
        .map(|i| {
            let lo = i * n / d;
            let hi = (i + 1) * n / d;
            data[lo..hi].to_vec()
        })
        .collect()
}

/// Run the full two-pass DSM-Sort on `data` (split contiguously across
/// the ASUs), with sampled splitters.
pub fn run_dsm_sort<R: Record>(
    cluster: &ClusterConfig,
    data: Vec<R>,
    dsm: &DsmConfig,
    mode: LoadMode,
) -> Result<DsmOutcome<R>, DsmError> {
    dsm.validate_for(data.len() as u64)?;
    let splitters = choose_splitters(&data, dsm.alpha);
    let per_asu = split_across_asus(&data, cluster.asus);
    drop(data);
    let p1 = run_pass1(cluster, per_asu, splitters.clone(), dsm, mode)?;
    let p2 = match mode {
        LoadMode::Auto => run_pass2_auto(cluster, p1.runs_per_asu, splitters.clone(), dsm)?,
        _ => run_pass2(cluster, p1.runs_per_asu, splitters.clone(), dsm)?,
    };
    let total = p1.report.makespan + p2.report.makespan;
    let plan = plan_info(dsm, p1.coded_r, p1.plan.as_ref(), p2.plan.as_ref());
    Ok(DsmOutcome {
        pass1: p1.report,
        pass2: p2.report,
        total,
        output: p2.output,
        splitters,
        plan,
    })
}

/// Fold the two pass plans into a [`DsmPlanInfo`] (both present only in
/// Auto mode).
fn plan_info(
    dsm: &DsmConfig,
    coded_r: usize,
    p1: Option<&PlanOutcome>,
    p2: Option<&PlanOutcome>,
) -> Option<DsmPlanInfo> {
    let (p1, p2) = (p1?, p2?);
    Some(DsmPlanInfo {
        sorters_per_subset: p1.assignment[1].len() / dsm.alpha.max(1),
        coded_r,
        pass1_predicted: SimDuration::from_nanos(p1.estimate.makespan_ns as u64),
        pass2_predicted: SimDuration::from_nanos(p2.estimate.makespan_ns as u64),
        pass1_report_json: p1.report.render_json(),
        pass2_report_json: p2.report.render_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_host_assignment_splits_contiguously() {
        // 4 subsets over 2 hosts: halves.
        assert_eq!(static_host_of(0, 4, 2), 0);
        assert_eq!(static_host_of(1, 4, 2), 0);
        assert_eq!(static_host_of(2, 4, 2), 1);
        assert_eq!(static_host_of(3, 4, 2), 1);
        // More hosts than subsets: spread, clamped.
        assert_eq!(static_host_of(0, 2, 4), 0);
        assert_eq!(static_host_of(1, 2, 4), 2);
        // α = 1 on any host count stays in range.
        assert_eq!(static_host_of(0, 1, 3), 0);
    }

    #[test]
    fn split_across_asus_covers_everything() {
        let data: Vec<u32> = (0..10).collect();
        let chunks = split_across_asus(&data, 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<u32> = chunks.concat();
        assert_eq!(flat, data);
        assert!(chunks.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn choose_splitters_has_alpha_minus_one_keys() {
        let data = lmas_core::generate_rec8(10_000, lmas_core::KeyDist::Uniform, 1);
        let sp = choose_splitters(&data, 16);
        assert_eq!(sp.len(), 15);
        assert!(sp.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn missing_sorter_layout_is_a_typed_error() {
        assert_eq!(
            explicit_sorters(None),
            Err(PlanWireError::MissingSorterNodes)
        );
        let nodes = [NodeId::Host(0), NodeId::Host(1)];
        assert_eq!(explicit_sorters(Some(&nodes)).unwrap(), &nodes);
        let err = DsmError::from(PlanWireError::MissingSorterNodes);
        assert!(err.to_string().contains("sorter"));
    }

    #[test]
    fn coded_r_candidates_are_divisor_powers_of_two() {
        let c = DsmConfig::new(8, 64, 2, 4);
        assert_eq!(coded_r_candidates(&c), vec![1, 2, 4, 8]);
        // Forced by an explicit configuration.
        assert_eq!(coded_r_candidates(&c.with_coded(4)), vec![4]);
        // α = 12: 8 does not divide it.
        let c = DsmConfig::new(12, 64, 2, 4);
        assert_eq!(coded_r_candidates(&c), vec![1, 2, 4]);
    }
}
