//! DSM-Sort's merge-phase functors.
//!
//! Pass 2 (Figure 7, "Second Pass") runs γ₁-way merges on the ASUs over
//! locally stored runs, then a γ₂-way merge per subset on the hosts, and
//! stripes the sorted output back across the ASUs.
//!
//! [`SubsetMergeFunctor`] is the ASU side: it keeps per-subset run
//! buffers, merges γ₁ runs of a subset as they stream off the disk, and
//! emits each merged run on the port of its subset — so static routing
//! carries subset `b` to host-merge instance `b`.
//!
//! [`FullMergeFunctor`] is the host side: it buffers every run of its
//! subset and performs one k-way merge at end of stream, emitting the
//! sorted subset in stripe-sized packets. `k` must respect the declared
//! γ₂ bound; the functor records the actual fan-in so configuration
//! errors are observable rather than silent.

use lmas_core::functor::{Emit, Functor, FunctorKind};
use lmas_core::kernels::{bucket_of, merge_runs};
use lmas_core::{log2_ceil, Packet, Record, Work};

/// Fused distribute+sort for the conventional-host baseline.
///
/// A real single-host external sort streams each record once per pass:
/// it pays `log α + log β` comparisons but only *one* per-record handling
/// charge, not the two a naive distribute→sort pipeline of separate
/// functors would incur. Figure 9's baseline ("all computation occurs on
/// the host") uses this functor so active-vs-passive comparisons are not
/// distorted by double-counted buffer traffic.
///
/// Emits β-record sorted runs on port = subset.
pub struct DistributeSortFunctor<R: Record> {
    splitters: Vec<R::Key>,
    beta: usize,
    buffers: Vec<Vec<R>>,
    buffered: usize,
    compares_done: u64,
}

impl<R: Record> DistributeSortFunctor<R> {
    /// Fused α-way distribute (by `splitters`) + β-block sort.
    pub fn new(splitters: Vec<R::Key>, beta: usize) -> Self {
        assert!(beta > 0, "β must be positive");
        assert!(
            splitters.windows(2).all(|w| w[0] <= w[1]),
            "splitters must be ascending"
        );
        let alpha = splitters.len() + 1;
        DistributeSortFunctor {
            splitters,
            beta,
            buffers: (0..alpha).map(|_| Vec::new()).collect(),
            buffered: 0,
            compares_done: 0,
        }
    }

    /// The distribute order α.
    pub fn alpha(&self) -> usize {
        self.buffers.len()
    }

    /// Comparisons actually performed by the sort kernel.
    pub fn compares_done(&self) -> u64 {
        self.compares_done
    }

    fn emit_run(&mut self, b: usize, out: &mut Emit<R>) {
        let take = self.beta.min(self.buffers[b].len());
        let mut run: Vec<R> = self.buffers[b].drain(..take).collect();
        self.buffered -= take;
        self.compares_done += lmas_core::kernels::block_sort(&mut run);
        out.push(b, Packet::new(run));
    }
}

impl<R: Record> Functor<R> for DistributeSortFunctor<R> {
    fn name(&self) -> String {
        format!("dist-sort(α={}, β={})", self.alpha(), self.beta)
    }
    fn out_ports(&self) -> usize {
        self.alpha()
    }
    fn kind(&self) -> FunctorKind {
        // The conventional baseline path: hosts only.
        FunctorKind::HostOnly
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        for r in input.into_records() {
            let b = bucket_of(r.key(), &self.splitters);
            self.buffers[b].push(r);
            self.buffered += 1;
            if self.buffers[b].len() >= self.beta {
                self.emit_run(b, out);
            }
        }
    }
    fn flush(&mut self, out: &mut Emit<R>) {
        for b in 0..self.buffers.len() {
            while !self.buffers[b].is_empty() {
                self.emit_run(b, out);
            }
        }
    }
    fn cost(&self, input: &Packet<R>) -> Work {
        let n = input.len() as u64;
        let alpha = self.alpha() as u64;
        Work::compares(n * (log2_ceil(alpha) + log2_ceil(self.beta as u64)))
            + Work::moves(n)
    }
    fn flush_cost(&self) -> Work {
        // Residual-block sorts were already priced per record in cost().
        Work::ZERO
    }
    fn state_bytes(&self) -> usize {
        self.buffered * R::SIZE
    }
}

/// ASU-side γ₁-way merge with per-subset run separation.
pub struct SubsetMergeFunctor<R: Record> {
    splitters: Vec<R::Key>,
    gamma1: usize,
    /// Per-subset buffered runs.
    buffers: Vec<Vec<Vec<R>>>,
    buffered_records: usize,
    compares_done: u64,
}

impl<R: Record> SubsetMergeFunctor<R> {
    /// A γ₁-way subset merge over `splitters.len() + 1` subsets.
    pub fn new(splitters: Vec<R::Key>, gamma1: usize) -> Self {
        assert!(gamma1 >= 1, "γ₁ must be positive");
        let alpha = splitters.len() + 1;
        SubsetMergeFunctor {
            splitters,
            gamma1,
            buffers: (0..alpha).map(|_| Vec::new()).collect(),
            buffered_records: 0,
            compares_done: 0,
        }
    }

    /// Number of subsets α.
    pub fn alpha(&self) -> usize {
        self.buffers.len()
    }

    /// Comparisons actually performed.
    pub fn compares_done(&self) -> u64 {
        self.compares_done
    }

    fn subset_of(&self, p: &Packet<R>) -> usize {
        let key = p.records()[0].key();
        let b = bucket_of(key, &self.splitters);
        debug_assert!(
            p.records().iter().all(|r| bucket_of(r.key(), &self.splitters) == b),
            "run spans subsets"
        );
        b
    }

    fn merge_subset(&mut self, b: usize, out: &mut Emit<R>) {
        let runs = std::mem::take(&mut self.buffers[b]);
        let m: usize = runs.iter().map(|r| r.len()).sum();
        self.buffered_records -= m;
        let (merged, compares) = merge_runs(runs);
        self.compares_done += compares;
        out.push(b, Packet::new(merged));
    }
}

impl<R: Record> Functor<R> for SubsetMergeFunctor<R> {
    fn name(&self) -> String {
        format!("asu-merge(γ1={}, α={})", self.gamma1, self.alpha())
    }
    fn out_ports(&self) -> usize {
        self.alpha()
    }
    fn kind(&self) -> FunctorKind {
        // Bounded by α·γ₁ run buffers; the live figure is checked
        // dynamically through state_bytes().
        FunctorKind::VerifiedKernel {
            max_state_bytes: usize::MAX,
        }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        if input.is_empty() {
            return;
        }
        debug_assert!(input.is_sorted(), "merge input must be a sorted run");
        let b = self.subset_of(&input);
        self.buffered_records += input.len();
        self.buffers[b].push(input.into_records());
        if self.buffers[b].len() == self.gamma1 {
            self.merge_subset(b, out);
        }
    }
    fn flush(&mut self, out: &mut Emit<R>) {
        for b in 0..self.buffers.len() {
            if !self.buffers[b].is_empty() {
                self.merge_subset(b, out);
            }
        }
    }
    fn cost(&self, input: &Packet<R>) -> Work {
        if input.is_empty() {
            return Work::ZERO;
        }
        let b = bucket_of(input.records()[0].key(), &self.splitters);
        if self.buffers[b].len() + 1 == self.gamma1 {
            let m: usize = self.buffers[b].iter().map(|r| r.len()).sum::<usize>() + input.len();
            Work::compares(m as u64 * log2_ceil(self.gamma1 as u64))
                + Work::moves(m as u64)
        } else {
            Work::moves(input.len() as u64)
        }
    }
    fn flush_cost(&self) -> Work {
        let mut w = Work::ZERO;
        for runs in &self.buffers {
            let m: usize = runs.iter().map(|r| r.len()).sum();
            w += Work::compares(m as u64 * log2_ceil(runs.len() as u64))
                + Work::moves(m as u64);
        }
        w
    }
    fn state_bytes(&self) -> usize {
        self.buffered_records * R::SIZE
    }
    fn read_ahead_hint(&self) -> usize {
        // A γ₁-way merge consumes one run from each of γ₁ streams per
        // output run: staging up to γ₁ input packets keeps the media
        // ahead of the merge loop (capped — deep windows waste frames).
        self.gamma1.clamp(1, 8)
    }
}

/// Host-side final merge: buffers all runs, k-way merges at flush, and
/// emits the sorted result in stripe-sized packets.
pub struct FullMergeFunctor<R: Record> {
    declared_gamma2: usize,
    stripe_records: usize,
    runs: Vec<Vec<R>>,
    buffered_records: usize,
    compares_done: u64,
    max_fanin: usize,
}

impl<R: Record> FullMergeFunctor<R> {
    /// A final merge declaring fan-in bound `gamma2`, striping output in
    /// `stripe_records`-record packets.
    pub fn new(gamma2: usize, stripe_records: usize) -> Self {
        assert!(gamma2 >= 1, "γ₂ must be positive");
        assert!(stripe_records >= 1, "stripe must be positive");
        FullMergeFunctor {
            declared_gamma2: gamma2,
            stripe_records,
            runs: Vec::new(),
            buffered_records: 0,
            compares_done: 0,
            max_fanin: 0,
        }
    }

    /// Largest fan-in actually merged (≤ γ₂ on a valid configuration).
    pub fn max_fanin(&self) -> usize {
        self.max_fanin
    }

    /// Comparisons actually performed.
    pub fn compares_done(&self) -> u64 {
        self.compares_done
    }
}

impl<R: Record> Functor<R> for FullMergeFunctor<R> {
    fn name(&self) -> String {
        format!("host-merge(γ2={})", self.declared_gamma2)
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::HostOnly
    }
    fn process(&mut self, input: Packet<R>, _out: &mut Emit<R>) {
        if input.is_empty() {
            return;
        }
        debug_assert!(input.is_sorted(), "merge input must be a sorted run");
        self.buffered_records += input.len();
        self.runs.push(input.into_records());
    }
    fn flush(&mut self, out: &mut Emit<R>) {
        if self.runs.is_empty() {
            return;
        }
        let k = self.runs.len();
        self.max_fanin = self.max_fanin.max(k);
        debug_assert!(
            k <= self.declared_gamma2,
            "fan-in {k} exceeds declared γ₂ = {}: configuration under-provisioned",
            self.declared_gamma2
        );
        let runs = std::mem::take(&mut self.runs);
        self.buffered_records = 0;
        let (merged, compares) = merge_runs(runs);
        self.compares_done += compares;
        let mut it = merged.into_iter();
        loop {
            let chunk: Vec<R> = it.by_ref().take(self.stripe_records).collect();
            if chunk.is_empty() {
                break;
            }
            out.push0(Packet::new(chunk));
        }
    }
    fn cost(&self, input: &Packet<R>) -> Work {
        Work::moves(input.len() as u64)
    }
    fn flush_cost(&self) -> Work {
        let m = self.buffered_records as u64;
        Work::compares(m * log2_ceil(self.runs.len() as u64)) + Work::moves(m)
    }
    fn state_bytes(&self) -> usize {
        self.buffered_records * R::SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::Rec8;

    fn run_pkt(keys: &[u32]) -> Packet<Rec8> {
        let mut v: Vec<Rec8> = keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect();
        v.sort_by_key(|r| r.key);
        Packet::new(v)
    }

    #[test]
    fn subset_merge_separates_subsets() {
        // Splitter 100: subset 0 < 100 <= subset 1.
        let mut f = SubsetMergeFunctor::<Rec8>::new(vec![100], 2);
        assert_eq!(f.alpha(), 2);
        assert_eq!(<SubsetMergeFunctor<Rec8> as Functor<Rec8>>::out_ports(&f), 2);
        let mut e = Emit::new(2);
        f.process(run_pkt(&[1, 5]), &mut e);
        f.process(run_pkt(&[200, 300]), &mut e);
        f.process(run_pkt(&[2, 7]), &mut e); // second run of subset 0 → merge
        let got = e.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0, "emitted on subset 0's port");
        assert_eq!(
            got[0].1.records().iter().map(|r| r.key).collect::<Vec<_>>(),
            [1, 2, 5, 7]
        );
        // Flush releases the lone run of subset 1.
        let mut e2 = Emit::new(2);
        f.flush(&mut e2);
        let got2 = e2.take();
        assert_eq!(got2.len(), 1);
        assert_eq!(got2[0].0, 1);
        assert_eq!(f.state_bytes(), 0);
    }

    #[test]
    fn subset_merge_cost_prices_triggering_run() {
        let mut f = SubsetMergeFunctor::<Rec8>::new(vec![100], 2);
        let r1 = run_pkt(&[1, 2]);
        assert_eq!(f.cost(&r1).compares, 0);
        let mut e = Emit::new(2);
        f.process(r1, &mut e);
        let r2 = run_pkt(&[3, 4]);
        assert_eq!(f.cost(&r2).compares, 4, "4 records × log2(γ1=2)");
    }

    #[test]
    fn full_merge_buffers_then_stripes() {
        let mut f = FullMergeFunctor::<Rec8>::new(8, 3);
        let mut e = Emit::new(1);
        f.process(run_pkt(&[1, 4, 7]), &mut e);
        f.process(run_pkt(&[2, 5, 8]), &mut e);
        f.process(run_pkt(&[0, 3, 6]), &mut e);
        assert!(e.is_empty(), "nothing until flush");
        assert_eq!(f.state_bytes(), 9 * 8);
        f.flush(&mut e);
        let got = e.take();
        assert_eq!(got.len(), 3, "9 records in stripes of 3");
        let all: Vec<u32> = got
            .iter()
            .flat_map(|(_, p)| p.records().iter().map(|r| r.key))
            .collect();
        assert_eq!(all, (0..9).collect::<Vec<u32>>());
        assert_eq!(f.max_fanin(), 3);
        assert!(f.compares_done() > 0);
    }

    #[test]
    fn full_merge_flush_on_empty_is_noop() {
        let mut f = FullMergeFunctor::<Rec8>::new(4, 10);
        let mut e = Emit::new(1);
        f.flush(&mut e);
        assert!(e.is_empty());
        assert_eq!(f.max_fanin(), 0);
    }

    #[test]
    fn subset_merge_flush_cost_covers_all_buffers() {
        let mut f = SubsetMergeFunctor::<Rec8>::new(vec![100], 4);
        let mut e = Emit::new(2);
        f.process(run_pkt(&[1, 2]), &mut e);
        f.process(run_pkt(&[200]), &mut e);
        f.process(run_pkt(&[3]), &mut e);
        let fc = f.flush_cost();
        // Subset 0: 3 records × log2(2 runs) = 3; subset 1: 1 × log2(1) = 0.
        assert_eq!(fc.compares, 3);
        assert_eq!(fc.record_moves, 4);
    }

    #[test]
    fn empty_packets_ignored() {
        let mut f = SubsetMergeFunctor::<Rec8>::new(vec![100], 2);
        let mut e = Emit::new(2);
        f.process(Packet::new(vec![]), &mut e);
        assert_eq!(f.cost(&Packet::new(vec![])), Work::ZERO);
        assert!(e.is_empty());
    }
}
