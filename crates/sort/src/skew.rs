//! Workload builders for the sorting experiments.
//!
//! Figure 10's input: "The first half of the input data is drawn from a
//! uniform distribution, while the second is from an exponential
//! distribution." Because each ASU streams its resident share
//! sequentially, the skewed records must form the second half of *every
//! ASU's* local data for the skew to arrive in the second half of the run
//! — [`fig10_data_per_asu`] builds exactly that layout.

use lmas_core::{generate_rec128, KeyDist, Rec128, Record};

/// Default exponential rate: concentrates ~63% of keys in the lowest
/// eighth of the key space.
pub const FIG10_EXP_RATE: f64 = 8.0;

/// Uniform records, tagged 0..n.
pub fn uniform_records(n: u64, seed: u64) -> Vec<Rec128> {
    generate_rec128(n, KeyDist::Uniform, seed)
}

/// Exponentially skewed records, tagged 0..n.
pub fn exponential_records(n: u64, seed: u64) -> Vec<Rec128> {
    generate_rec128(n, KeyDist::Exponential { rate: FIG10_EXP_RATE }, seed)
}

/// Figure 10's workload laid out per ASU: each ASU holds `n / d` records
/// whose first half is uniform and second half exponential, so the skew
/// hits all ASUs simultaneously midway through the run. Tags remain a
/// global permutation of `0..n'` (where `n' = (n/d/2)*2*d` after
/// rounding each half down to equal sizes).
pub fn fig10_data_per_asu(n: u64, d: usize, seed: u64) -> Vec<Vec<Rec128>> {
    assert!(d > 0, "need at least one ASU");
    let per_asu = n / d as u64;
    let half = per_asu / 2;
    let mut out = Vec::with_capacity(d);
    let mut next_tag = 0u64;
    for asu in 0..d {
        let mut chunk = Vec::with_capacity((2 * half) as usize);
        let mut uni = generate_rec128(half, KeyDist::Uniform, seed ^ (asu as u64) << 1);
        let mut exp = generate_rec128(
            half,
            KeyDist::Exponential { rate: FIG10_EXP_RATE },
            seed ^ ((asu as u64) << 1 | 1),
        );
        // Re-tag to keep the global permutation property.
        for r in uni.iter_mut().chain(exp.iter_mut()) {
            *r = Rec128::new(r.key(), next_tag);
            next_tag += 1;
        }
        chunk.append(&mut uni);
        chunk.append(&mut exp);
        out.push(chunk);
    }
    out
}

/// Equally spaced splitters assuming a uniform key distribution — the
/// calibration a system would have *before* seeing the skewed half,
/// which is what makes Figure 10's static assignment unbalanced.
pub fn uniform_assuming_splitters(alpha: usize) -> Vec<u32> {
    assert!(alpha >= 1, "α must be positive");
    (1..alpha)
        .map(|i| ((i as u64 * (u32::MAX as u64 + 1)) / alpha as u64) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::kernels::bucket_of;

    #[test]
    fn fig10_layout_puts_skew_in_second_half_of_each_asu() {
        let data = fig10_data_per_asu(8_000, 4, 7);
        assert_eq!(data.len(), 4);
        for chunk in &data {
            assert_eq!(chunk.len(), 2_000);
            let low = |r: &Rec128| (r.key() as f64) < u32::MAX as f64 / 8.0;
            let first_low = chunk[..1_000].iter().filter(|r| low(r)).count();
            let second_low = chunk[1_000..].iter().filter(|r| low(r)).count();
            assert!(first_low < 250, "uniform half: {first_low}");
            assert!(second_low > 500, "skewed half: {second_low}");
        }
    }

    #[test]
    fn fig10_tags_are_a_global_permutation() {
        let data = fig10_data_per_asu(4_000, 4, 3);
        let mut tags: Vec<u64> = data.iter().flatten().map(|r| r.tag()).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..4_000).collect::<Vec<u64>>());
    }

    #[test]
    fn uniform_splitters_balance_uniform_data() {
        let sp = uniform_assuming_splitters(4);
        assert_eq!(sp.len(), 3);
        let data = uniform_records(8_000, 5);
        let mut counts = [0usize; 4];
        for r in &data {
            counts[bucket_of(r.key(), &sp)] += 1;
        }
        for c in counts {
            assert!((1_700..2_300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn uniform_splitters_unbalance_exponential_data() {
        let sp = uniform_assuming_splitters(4);
        let data = exponential_records(8_000, 5);
        let mut counts = [0usize; 4];
        for r in &data {
            counts[bucket_of(r.key(), &sp)] += 1;
        }
        assert!(
            counts[0] > 5_000,
            "exponential keys should pile into bucket 0: {counts:?}"
        );
    }

    #[test]
    fn degenerate_alpha_one() {
        assert!(uniform_assuming_splitters(1).is_empty());
    }
}
