//! # lmas-sort — DSM-Sort on load-managed active storage
//!
//! The paper's Section 4.3 application: a hybrid distribute/sort/merge
//! external sort whose (α, β, γ₁, γ₂) knobs move comparison work between
//! ASUs and hosts, built from the `lmas-core` functor library and run on
//! the `lmas-emulator` cluster.
//!
//! - [`config`]: the knobs, their validation, and the load modes of
//!   Figure 10 (static subset assignment vs SR spreading);
//! - [`functors`]: the merge-phase kernels (ASU γ₁-merge, host γ₂-merge);
//! - [`dsm`]: two-pass orchestration ([`run_dsm_sort`], [`run_pass1`],
//!   [`run_pass2`]);
//! - [`baseline`]: the passive-storage comparison of Figure 9;
//! - [`adaptive`]: model-driven (α, γ₁, γ₂) selection;
//! - [`skew`]: workload layouts, incl. Figure 10's half-uniform/half-
//!   exponential input;
//! - [`fault`]: degraded-mode sorting under a fault plan, with
//!   tag-diff repair of lost records ([`run_dsm_sort_faulty`]);
//! - [`verify`]: output sortedness, permutation, and canonical
//!   byte-equality checks.

#![warn(missing_docs)]

pub mod adaptive;
pub mod baseline;
pub mod config;
pub mod dsm;
pub mod fault;
pub mod functors;
pub mod skew;
pub mod verify;

pub use adaptive::{adaptive_alpha, adaptive_config, ALPHA_CANDIDATES};
pub use baseline::{pass1_speedup, run_pass1_baseline};
pub use config::{DsmConfig, DsmConfigError, LoadMode};
pub use dsm::{
    build_pass1_job, build_pass1_job_placed, choose_splitters, estimate_pass1_solo,
    plan_pass1_coded, plan_pass1_residual, planner_shape, run_dsm_sort,
    run_dsm_sort_multipass, run_intermediate_merge, run_pass1, run_pass1_placed, run_pass1_with,
    run_pass2, run_pass2_auto, run_pass2_with, split_across_asus, DsmError, DsmMultiOutcome,
    DsmOutcome, DsmPlanInfo, Pass1Job, Pass1Result, Pass2Result, PlanWireError,
};
pub use fault::{run_dsm_sort_faulty, FaultyDsmOutcome};
pub use functors::{DistributeSortFunctor, FullMergeFunctor, SubsetMergeFunctor};
pub use verify::{
    canonical_equal, canonical_records, check_tag_permutation, reconstruct_sorted,
    verify_rec128_output, VerifyError,
};
