//! Shared helpers for the parallel-kernel differential tests
//! (`par_golden.rs`, `par_diff.rs`): deterministic report fingerprints
//! and the two-tier trace-equality contract.
//!
//! The contract (see DESIGN.md "Parallel kernel"):
//!
//! * **One partition** (any thread count on a one-host cluster): the
//!   run is bit-for-bit the sequential run — every observable,
//!   including the trace render, is byte-identical.
//! * **Equal partition counts**: two runs that resolve to the same
//!   partition count (e.g. `threads ∈ {2, 4}` on a two-host cluster)
//!   are byte-identical to each other.
//! * **Two or more partitions vs. sequential**: events scheduled
//!   concurrently on different partitions for the *same virtual
//!   instant* may be delivered in a different relative order than the
//!   sequential engine's global FIFO (reproducing that order would
//!   serialize the partitions). Such ties can legally permute packet
//!   *contents* flowing through an instant, so only conserved
//!   aggregates (dispatch counts, record conservation, per-stage work,
//!   fault accounting) and the final sorted output are asserted
//!   against the sequential run. Representative multi-host
//!   configurations are additionally pinned byte-exact in
//!   `par_golden.rs`.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use lmas_core::Record;
use lmas_emulator::EmulationReport;
use lmas_sort::{DsmOutcome, FaultyDsmOutcome};
use std::fmt::Write as _;

/// FNV-1a over a byte stream; stable and dependency-free.
pub fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Every *state* observable of a report — everything except `par` (the
/// one field the parallel kernel is allowed to differ on) and the trace
/// (compared separately under [`TraceEq`]) — rendered deterministically.
/// Two runs have identical state iff their fingerprints are equal.
pub fn fingerprint<R: Record>(r: &EmulationReport<R>) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "makespan={:?} dispatched={} records={} reweights={}",
        r.makespan, r.dispatched, r.records_processed, r.reweights
    );
    let _ = writeln!(
        s,
        "mem_violations={:?} down={:?} fault={:?}",
        r.mem_violations, r.down_nodes, r.fault
    );
    let _ = writeln!(s, "stage_work={:?}", r.stage_work);
    let _ = writeln!(s, "stage_records_in={:?}", r.stage_records_in);
    for n in &r.nodes {
        // Debug covers every field bit-exactly (f64 Debug is shortest
        // round-trip, so equal strings ⇔ equal bits).
        let _ = writeln!(s, "{n:?}");
    }
    for q in &r.queue_stats {
        let _ = writeln!(s, "{q:?}");
    }
    for ((stage, inst), ports) in &r.sink_outputs {
        for (port, p) in ports {
            let keys = fnv1a(p.records().iter().flat_map(|r| format!("{:?},", r.key()).into_bytes()));
            let _ = writeln!(s, "sink {stage}.{inst} port {port}: n={} keys={keys:#x}", p.len());
        }
    }
    let _ = writeln!(s, "trace n={} dropped={}", r.trace.len(), r.trace.dropped());
    s
}

/// The trace render with same-instant lines put into a canonical
/// (lexicographic) order. Invariant under the one permitted
/// multi-partition reordering, so canonical renders must be equal at
/// every partition count, sequential included.
pub fn canonical_trace<R: Record>(r: &EmulationReport<R>) -> String {
    let mut lines: Vec<(u64, String)> = r
        .trace
        .entries()
        .map(|e| {
            (
                e.at.as_nanos(),
                format!("{} [{}] {}", e.at, e.subject, e.detail),
            )
        })
        .collect();
    lines.sort();
    let mut s = String::new();
    for (_, l) in lines {
        let _ = writeln!(s, "{l}");
    }
    s
}

/// FNV over the canonically emitted key stream of a finished sort.
pub fn output_keys_fnv<R: Record>(out: &DsmOutcome<R>) -> u64 {
    keys_fnv(&out.output)
}

/// FNV over the key stream of a packet list, in emission order.
pub fn keys_fnv<R: Record>(packets: &[lmas_core::Packet<R>]) -> u64 {
    fnv1a(
        packets
            .iter()
            .flat_map(|p| p.records().iter())
            .flat_map(|r| format!("{:?},", r.key()).into_bytes()),
    )
}

/// How strictly two runs' traces must match; state must always be
/// byte-identical.
#[derive(Clone, Copy, PartialEq)]
pub enum TraceEq {
    /// Render byte-for-byte equal (sequential vs. one partition, or two
    /// runs of the same configuration).
    Exact,
    /// Equal under canonical within-instant ordering (sequential vs.
    /// two or more partitions).
    Canonical,
}

/// Assert two finished sorts are equivalent: state byte-identical,
/// traces equal at the given strictness.
pub fn assert_same_sort<R: Record>(a: &DsmOutcome<R>, b: &DsmOutcome<R>, eq: TraceEq) {
    assert_eq!(a.total, b.total);
    assert_eq!(output_keys_fnv(a), output_keys_fnv(b), "emitted key streams diverge");
    assert_same_report(&a.pass1, &b.pass1, eq, "pass1");
    assert_same_report(&a.pass2, &b.pass2, eq, "pass2");
}

/// Observables conserved at ANY partition count: dispatch and record
/// accounting, per-stage work, fault statistics. Excludes everything a
/// legal same-instant cross-partition reorder may perturb (per-node
/// gauges, queue statistics, intermediate packet contents, virtual
/// times — the pinned goldens cover those byte-exactly).
pub fn conserved_fingerprint<R: Record>(r: &EmulationReport<R>) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "dispatched={} records={} reweights={}",
        r.dispatched, r.records_processed, r.reweights
    );
    let _ = writeln!(s, "down={:?} fault={:?}", r.down_nodes, r.fault);
    let _ = writeln!(s, "stage_work={:?}", r.stage_work);
    let _ = writeln!(s, "stage_records_in={:?}", r.stage_records_in);
    s
}

/// Compare two reports of the same workload at whatever strictness
/// their partitioning admits: byte-exact (state + trace render) unless
/// either side ran with two or more partitions, in which case the
/// conserved aggregates must match.
pub fn assert_equiv_report<R: Record>(a: &EmulationReport<R>, b: &EmulationReport<R>, label: &str) {
    let multi = |r: &EmulationReport<R>| r.par.as_ref().is_some_and(|s| s.partitions > 1);
    if multi(a) || multi(b) {
        assert_eq!(
            conserved_fingerprint(a),
            conserved_fingerprint(b),
            "{label}: conserved observables diverge"
        );
    } else {
        assert_same_report(a, b, TraceEq::Exact, label);
    }
}

/// [`assert_same_sort`] for fault-plan runs (which also carry a repair
/// pass and recovery accounting). Every pass — the faulted first pass
/// included, now that fault plans run as static timelines in both
/// engines — is compared at the strictness its partitioning admits;
/// recovery accounting and the final output must match exactly
/// regardless.
pub fn assert_same_faulty_sort<R: Record>(a: &FaultyDsmOutcome<R>, b: &FaultyDsmOutcome<R>) {
    assert_eq!(keys_fnv(&a.output), keys_fnv(&b.output), "emitted key streams diverge");
    assert_eq!(a.recovered_records, b.recovered_records);
    assert_eq!(a.lost_asus, b.lost_asus);
    assert_equiv_report(&a.pass1, &b.pass1, "pass1");
    assert_equiv_report(&a.pass2, &b.pass2, "pass2");
    assert_eq!(a.repair.is_some(), b.repair.is_some(), "repair presence diverges");
    if let (Some(ra), Some(rb)) = (&a.repair, &b.repair) {
        assert_equiv_report(ra, rb, "repair");
    }
}

/// Byte-identity between two fault-plan runs that resolved to the same
/// partitioning (two thread counts bounded by the same host count, or
/// one configuration run twice): every pass's state *and* trace render
/// must be byte-for-byte equal.
pub fn assert_identical_faulty_sort<R: Record>(a: &FaultyDsmOutcome<R>, b: &FaultyDsmOutcome<R>) {
    assert_eq!(keys_fnv(&a.output), keys_fnv(&b.output), "emitted key streams diverge");
    assert_eq!(a.recovered_records, b.recovered_records);
    assert_eq!(a.lost_asus, b.lost_asus);
    assert_same_report(&a.pass1, &b.pass1, TraceEq::Exact, "pass1");
    assert_same_report(&a.pass2, &b.pass2, TraceEq::Exact, "pass2");
    assert_eq!(a.repair.is_some(), b.repair.is_some(), "repair presence diverges");
    if let (Some(ra), Some(rb)) = (&a.repair, &b.repair) {
        assert_same_report(ra, rb, TraceEq::Exact, "repair");
    }
}

fn assert_same_report<R: Record>(
    a: &EmulationReport<R>,
    b: &EmulationReport<R>,
    eq: TraceEq,
    pass: &str,
) {
    assert_eq!(fingerprint(a), fingerprint(b), "{pass} reports diverge");
    match eq {
        TraceEq::Exact => assert_eq!(
            a.trace.render(),
            b.trace.render(),
            "{pass} trace renders diverge"
        ),
        TraceEq::Canonical => assert_eq!(
            canonical_trace(a),
            canonical_trace(b),
            "{pass} traces diverge beyond same-instant order"
        ),
    }
}
