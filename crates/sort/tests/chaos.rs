//! Chaos testing: random fault plans against DSM-Sort, checked for
//! recovery correctness (output byte-identical to fault-free) and
//! bit-reproducibility (same seed twice → same everything).

use lmas_core::{generate_rec128, KeyDist};
use lmas_emulator::{asu_index, ClusterConfig, FaultSpec};
use lmas_sort::{
    canonical_equal, run_dsm_sort, run_dsm_sort_faulty, DsmConfig, LoadMode,
};
use lmas_core::RoutingPolicy;
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use proptest::prelude::*;

const HOSTS: usize = 2;
const ASUS: usize = 3;
const N: u64 = 2_000;

fn dsm() -> DsmConfig {
    DsmConfig::new(4, 256, 4, 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Crash a random ASU at a random point of pass 1 (optionally
    /// recovering later). As long as the surviving nodes can host the
    /// repair, the final output is byte-identical to the fault-free
    /// sort, and the whole faulted run is deterministic.
    #[test]
    fn crashed_sort_repairs_to_fault_free_output(
        victim in 0usize..ASUS,
        crash_frac in 0.15f64..0.85,
        recovers in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut cluster = ClusterConfig::era_2002(HOSTS, ASUS, 8.0);
        cluster.seed = seed;
        let dsm = dsm();
        let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);
        let data = generate_rec128(N, KeyDist::Uniform, seed);

        // Fault-free golden run fixes both the expected output and the
        // pass-1 makespan the crash time is scaled against.
        let golden = run_dsm_sort(&cluster, data.clone(), &dsm, mode).unwrap();
        let t_crash = SimTime((golden.pass1.makespan.as_secs_f64()
            * crash_frac
            * 1e9) as u64);

        let mut plan = FaultPlan::new().crash(asu_index(&cluster, victim), t_crash);
        if recovers {
            plan = plan.recover(
                asu_index(&cluster, victim),
                t_crash + SimDuration::from_millis(40),
            );
        }
        let spec = FaultSpec::with_plan(plan);

        let faulted =
            run_dsm_sort_faulty(&cluster, &spec, data.clone(), &dsm, mode).unwrap();
        // Recovery correctness: byte-identical canonical output.
        canonical_equal(&golden.output, &faulted.output).unwrap();
        // The fault actually bit (something bounced, was fenced, or was
        // repaired) unless the crash landed after pass-1 wound down.
        let stats = faulted.pass1.fault;
        prop_assert!(
            !stats.is_quiet() || faulted.recovered_records == 0,
            "active plan with no observable effect and no repair"
        );

        // Determinism: the same seeded chaos run, twice, is identical.
        let again =
            run_dsm_sort_faulty(&cluster, &spec, data, &dsm, mode).unwrap();
        prop_assert_eq!(faulted.pass1.makespan, again.pass1.makespan);
        prop_assert_eq!(faulted.pass1.dispatched, again.pass1.dispatched);
        prop_assert_eq!(faulted.pass1.fault, again.pass1.fault);
        prop_assert_eq!(faulted.recovered_records, again.recovered_records);
        prop_assert_eq!(faulted.total, again.total);
        canonical_equal(&faulted.output, &again.output).unwrap();
    }
}

/// The pinned acceptance scenario: 1 of 3 ASUs crashes mid-distribute
/// with replicated (Managed-mode) sorters; the sort completes, repair
/// re-dispatches the lost records, and the output is byte-identical to
/// the fault-free run.
#[test]
fn pinned_crash_mid_distribute_recovers_exactly() {
    let cluster = ClusterConfig::era_2002(HOSTS, ASUS, 8.0);
    let dsm = dsm();
    let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);
    let data = generate_rec128(N, KeyDist::Uniform, 7);

    let golden = run_dsm_sort(&cluster, data.clone(), &dsm, mode).unwrap();
    let t_crash = SimTime(golden.pass1.makespan.0 / 3);
    let spec = FaultSpec::with_plan(
        FaultPlan::new().crash(asu_index(&cluster, ASUS - 1), t_crash),
    );
    let faulted = run_dsm_sort_faulty(&cluster, &spec, data, &dsm, mode).unwrap();

    assert_eq!(faulted.lost_asus, vec![ASUS - 1]);
    assert!(
        faulted.recovered_records > 0,
        "a mid-distribute crash loses records that repair must recover"
    );
    assert!(faulted.repair.is_some());
    canonical_equal(&golden.output, &faulted.output).unwrap();
    assert!(
        faulted.total > golden.total,
        "recovery costs virtual time: {:?} vs {:?}",
        faulted.total,
        golden.total
    );
}
