//! `LoadMode::Auto`: DSM-Sort with planner-chosen replication and
//! placement, validated against the analytic predictions.

use lmas_core::{generate_rec128, KeyDist, Rec128};
use lmas_emulator::ClusterConfig;
use lmas_sort::{run_dsm_sort, verify_rec128_output, DsmConfig, DsmOutcome, LoadMode};

fn auto_sort(
    cluster: &ClusterConfig,
    n: u64,
    dsm: &DsmConfig,
    seed: u64,
) -> DsmOutcome<Rec128> {
    let data = generate_rec128(n, KeyDist::Uniform, seed);
    let out = run_dsm_sort(cluster, data, dsm, LoadMode::Auto).expect("auto sort runs");
    verify_rec128_output(&out.output, n).expect("output is a sorted permutation");
    out
}

#[test]
fn auto_mode_sorts_and_reports_plan() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let out = auto_sort(&cluster, 5_000, &dsm, 2);
    let plan = out.plan.expect("auto mode carries its plan");
    assert!(
        (1..=cluster.hosts).contains(&plan.sorters_per_subset),
        "replication degree {} out of range",
        plan.sorters_per_subset
    );
    assert!(plan.pass1_predicted.as_nanos() > 0);
    assert!(plan.pass2_predicted.as_nanos() > 0);
    // Machine-readable accounts of both decisions ride along.
    assert!(plan.pass1_report_json.contains("\"predicted_makespan_ns\""));
    assert!(plan.pass2_report_json.contains("\"predicted_makespan_ns\""));
}

/// The acceptance bar: on the default DSM-Sort cluster the planner's
/// analytic pass-1 makespan lands within 10% of what the emulator then
/// measures for the very placement it chose.
#[test]
fn auto_prediction_tracks_measured_pass1() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(8, 256, 4, 64);
    let n = 20_000;
    let out = auto_sort(&cluster, n, &dsm, 3);
    let plan = out.plan.expect("plan present");
    let measured = out.pass1.makespan.as_nanos() as f64;
    let predicted = plan.pass1_predicted.as_nanos() as f64;
    let err = (predicted - measured).abs() / measured;
    eprintln!(
        "pass1 predicted {predicted} measured {measured} err {:.2}% (k = {})",
        err * 100.0,
        plan.sorters_per_subset
    );
    let m2 = out.pass2.makespan.as_nanos() as f64;
    let p2 = plan.pass2_predicted.as_nanos() as f64;
    eprintln!("pass2 predicted {p2} measured {m2} err {:.2}%", (p2 - m2).abs() / m2 * 100.0);
    assert!(
        err <= 0.10,
        "pass-1 prediction off by {:.1}% (> 10%): predicted {predicted}, measured {measured}",
        err * 100.0
    );
}

/// The planner never loses to the uncontrolled static layout it was
/// built to replace (Figure 10's baseline) on the cluster it planned for.
#[test]
fn auto_plan_not_worse_than_static_layout() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(8, 256, 4, 64);
    let n = 20_000;
    let auto = auto_sort(&cluster, n, &dsm, 4);
    let data = generate_rec128(n, KeyDist::Uniform, 4);
    let stat = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("static sort");
    eprintln!(
        "pass1 auto {} static {}",
        auto.pass1.makespan.as_nanos(),
        stat.pass1.makespan.as_nanos()
    );
    assert!(
        auto.pass1.makespan <= stat.pass1.makespan,
        "planned pass 1 ({}) slower than the static baseline ({})",
        auto.pass1.makespan,
        stat.pass1.makespan
    );
}

#[test]
fn auto_mode_is_deterministic() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let run = || {
        let out = auto_sort(&cluster, 5_000, &dsm, 11);
        let plan = out.plan.unwrap();
        (
            out.pass1.makespan,
            out.pass2.makespan,
            plan.sorters_per_subset,
            plan.pass1_report_json,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn auto_mode_single_host_degenerates_to_static_shape() {
    // One host: the only feasible degree is k = 1, and the sort must
    // still be correct end to end.
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let out = auto_sort(&cluster, 5_000, &dsm, 1);
    assert_eq!(out.plan.unwrap().sorters_per_subset, 1);
}
