//! Differential property tests for the partitioned parallel kernel:
//! random cluster shapes × random fault plans, run at
//! `threads ∈ {1, 2, 4}`, must satisfy the determinism contract spelled
//! out in `tests/common` — bit-for-bit sequential equality at one
//! partition, byte-identity between equal partition counts, conserved
//! aggregates plus an exact final output across partition counts.
//! `scripts/check.sh` runs this suite as part of the parallel gate.

mod common;

use common::{
    assert_equiv_report, assert_same_faulty_sort, assert_same_sort, output_keys_fnv, TraceEq,
};
use lmas_core::{generate_rec128, KeyDist, RoutingPolicy};
use lmas_emulator::{asu_index, ClusterConfig, FaultSpec};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use lmas_sort::{run_dsm_sort, run_dsm_sort_faulty, DsmConfig, LoadMode};
use proptest::prelude::*;

fn dsm() -> DsmConfig {
    DsmConfig::new(4, 256, 4, 64)
}

fn mode_for(routing: usize) -> LoadMode {
    match routing {
        0 => LoadMode::Static,
        1 => LoadMode::Managed(RoutingPolicy::RoundRobin),
        _ => LoadMode::Managed(RoutingPolicy::SimpleRandomization),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any eligible cluster shape, at any thread count, reproduces the
    /// sequential run: bit-for-bit at one partition, conserved
    /// aggregates + exact final output at several, byte-identical
    /// whenever two thread counts resolve to the same partition count.
    #[test]
    fn random_shapes_match_sequential_at_every_thread_count(
        hosts in 1usize..4,
        extra_asus in 0usize..3,
        n in 1_000u64..3_000,
        seed in 0u64..1_000,
        routing in 0usize..3,
    ) {
        let asus = hosts + extra_asus;
        let mode = mode_for(routing);
        let mut base = ClusterConfig::era_2002(hosts, asus, 8.0).with_trace(4096);
        base.seed = seed;
        let data = generate_rec128(n, KeyDist::Uniform, seed);

        let seq = run_dsm_sort(&base, data.clone(), &dsm(), mode).unwrap();
        prop_assert!(seq.pass1.par.is_none(), "threads=1 stays sequential");

        let par2 = run_dsm_sort(&base.with_threads(2), data.clone(), &dsm(), mode).unwrap();
        let par4 = run_dsm_sort(&base.with_threads(4), data.clone(), &dsm(), mode).unwrap();
        for (threads, par) in [(2usize, &par2), (4, &par4)] {
            let stats = par.pass1.par.as_ref().expect("eligible run parallelizes");
            prop_assert_eq!(
                stats.partitions,
                threads.min(hosts),
                "partition count is bounded by hosts"
            );
            if stats.partitions <= 1 {
                assert_same_sort(&seq, par, TraceEq::Exact);
            } else {
                assert_equiv_report(&seq.pass1, &par.pass1, "pass1");
                assert_equiv_report(&seq.pass2, &par.pass2, "pass2");
                prop_assert_eq!(
                    output_keys_fnv(&seq),
                    output_keys_fnv(par),
                    "final sorted output diverges"
                );
            }
        }
        // threads=2 and threads=4 resolve to the same partitioning when
        // hosts <= 2, so those two runs must be byte-identical.
        if 2usize.min(hosts) == 4usize.min(hosts) {
            assert_same_sort(&par2, &par4, TraceEq::Exact);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A run with an active fault plan keeps its faulted pass on the
    /// sequential path at any thread count; recovery accounting and the
    /// repaired output never change under `with_threads`.
    #[test]
    fn fault_plans_keep_faulted_pass_sequential_and_output_stable(
        victim in 0usize..3,
        crash_frac in 0.2f64..0.8,
        recovers in any::<bool>(),
        seed in 0u64..500,
    ) {
        let mut base = ClusterConfig::era_2002(2, 3, 8.0).with_trace(2048);
        base.seed = seed;
        let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);
        let data = generate_rec128(2_000, KeyDist::Uniform, seed);

        // Fault-free run fixes the pass-1 makespan the crash is scaled by.
        let golden = run_dsm_sort(&base, data.clone(), &dsm(), mode).unwrap();
        let t_crash =
            SimTime((golden.pass1.makespan.as_secs_f64() * crash_frac * 1e9) as u64);
        let mut plan = FaultPlan::new().crash(asu_index(&base, victim), t_crash);
        if recovers {
            plan = plan.recover(
                asu_index(&base, victim),
                t_crash + SimDuration::from_millis(40),
            );
        }
        let spec = FaultSpec::with_plan(plan);

        let seq = run_dsm_sort_faulty(&base, &spec, data.clone(), &dsm(), mode).unwrap();
        prop_assert!(seq.pass1.par.is_none());
        for threads in [2usize, 4] {
            let fell_back = run_dsm_sort_faulty(
                &base.with_threads(threads),
                &spec,
                data.clone(),
                &dsm(),
                mode,
            )
            .unwrap();
            prop_assert!(
                fell_back.pass1.par.is_none(),
                "the faulted pass must not use the partitioned engine"
            );
            assert_same_faulty_sort(&seq, &fell_back);
        }
    }
}
