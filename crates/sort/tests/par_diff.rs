//! Differential property tests for the partitioned parallel kernel:
//! random cluster shapes × random fault plans × the snapshot balancer,
//! run at `threads ∈ {1, 2, 4, 8}`, must satisfy the determinism
//! contract spelled out in `tests/common` — bit-for-bit sequential
//! equality at one partition, byte-identity between equal partition
//! counts, conserved aggregates plus an exact final output across
//! partition counts. Fault plans and the (snapshot-mode) balancer no
//! longer force the sequential path: both run partitioned and are held
//! to the same contract. `scripts/check.sh` runs this suite as part of
//! the parallel gate.

mod common;

use common::{
    assert_equiv_report, assert_identical_faulty_sort, assert_same_faulty_sort, assert_same_sort,
    output_keys_fnv, TraceEq,
};
use lmas_core::{generate_rec128, KeyDist, RoutingPolicy};
use lmas_emulator::{asu_index, BalanceSpec, ClusterConfig, FaultSpec};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use lmas_sort::{run_dsm_sort, run_dsm_sort_faulty, DsmConfig, FaultyDsmOutcome, LoadMode};
use proptest::prelude::*;

fn dsm() -> DsmConfig {
    DsmConfig::new(4, 256, 4, 64)
}

fn mode_for(routing: usize) -> LoadMode {
    match routing {
        0 => LoadMode::Static,
        1 => LoadMode::Managed(RoutingPolicy::RoundRobin),
        _ => LoadMode::Managed(RoutingPolicy::SimpleRandomization),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any eligible cluster shape, at any thread count, reproduces the
    /// sequential run: bit-for-bit at one partition, conserved
    /// aggregates + exact final output at several, byte-identical
    /// whenever two thread counts resolve to the same partition count.
    #[test]
    fn random_shapes_match_sequential_at_every_thread_count(
        hosts in 1usize..4,
        extra_asus in 0usize..3,
        n in 1_000u64..3_000,
        seed in 0u64..1_000,
        routing in 0usize..3,
    ) {
        let asus = hosts + extra_asus;
        let mode = mode_for(routing);
        let mut base = ClusterConfig::era_2002(hosts, asus, 8.0).with_trace(4096);
        base.seed = seed;
        let data = generate_rec128(n, KeyDist::Uniform, seed);

        let seq = run_dsm_sort(&base, data.clone(), &dsm(), mode).unwrap();
        prop_assert!(seq.pass1.par.is_none(), "threads=1 stays sequential");

        let par2 = run_dsm_sort(&base.with_threads(2), data.clone(), &dsm(), mode).unwrap();
        let par4 = run_dsm_sort(&base.with_threads(4), data.clone(), &dsm(), mode).unwrap();
        let par8 = run_dsm_sort(&base.with_threads(8), data.clone(), &dsm(), mode).unwrap();
        for (threads, par) in [(2usize, &par2), (4, &par4), (8, &par8)] {
            let stats = par.pass1.par.as_ref().expect("eligible run parallelizes");
            prop_assert_eq!(
                stats.partitions,
                threads.min(hosts),
                "partition count is bounded by hosts"
            );
            if stats.partitions <= 1 {
                assert_same_sort(&seq, par, TraceEq::Exact);
            } else {
                assert_equiv_report(&seq.pass1, &par.pass1, "pass1");
                assert_equiv_report(&seq.pass2, &par.pass2, "pass2");
                prop_assert_eq!(
                    output_keys_fnv(&seq),
                    output_keys_fnv(par),
                    "final sorted output diverges"
                );
            }
        }
        // Thread counts that resolve to the same partitioning must be
        // byte-identical: hosts < 4 pins 4.min(hosts) == 8.min(hosts)
        // always, and 2.min(hosts) == 4.min(hosts) when hosts <= 2.
        assert_same_sort(&par4, &par8, TraceEq::Exact);
        if 2usize.min(hosts) == 4usize.min(hosts) {
            assert_same_sort(&par2, &par4, TraceEq::Exact);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random fault plans — optionally with the snapshot balancer live
    /// at the same time — run through the partitioned engine at every
    /// thread count and reproduce the sequential run: conserved
    /// aggregates (fault accounting included) per pass, exact recovery
    /// counts and final output, byte-identity between thread counts
    /// that resolve to the same partitioning.
    #[test]
    fn fault_plans_run_partitioned_and_match_sequential(
        victim in 0usize..3,
        crash_frac in 0.2f64..0.8,
        recovers in any::<bool>(),
        balanced in any::<bool>(),
        seed in 0u64..500,
    ) {
        let mut base = ClusterConfig::era_2002(2, 3, 8.0).with_trace(2048);
        base.seed = seed;
        if balanced {
            base = base.with_balancer(BalanceSpec::every(SimDuration::from_micros(500)));
        }
        let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);
        let data = generate_rec128(2_000, KeyDist::Uniform, seed);

        // Fault-free run fixes the pass-1 makespan the crash is scaled by.
        let golden = run_dsm_sort(&base, data.clone(), &dsm(), mode).unwrap();
        let t_crash =
            SimTime((golden.pass1.makespan.as_secs_f64() * crash_frac * 1e9) as u64);
        let mut plan = FaultPlan::new().crash(asu_index(&base, victim), t_crash);
        if recovers {
            plan = plan.recover(
                asu_index(&base, victim),
                t_crash + SimDuration::from_millis(40),
            );
        }
        let spec = FaultSpec::with_plan(plan);

        let seq = run_dsm_sort_faulty(&base, &spec, data.clone(), &dsm(), mode).unwrap();
        prop_assert!(seq.pass1.par.is_none(), "threads=1 stays sequential");
        let mut prev: Option<FaultyDsmOutcome<_>> = None;
        for threads in [2usize, 4, 8] {
            let par = run_dsm_sort_faulty(
                &base.with_threads(threads),
                &spec,
                data.clone(),
                &dsm(),
                mode,
            )
            .unwrap();
            let stats = par
                .pass1
                .par
                .as_ref()
                .expect("faulted runs use the partitioned engine");
            prop_assert_eq!(stats.partitions, 2, "two hosts bound the partition count");
            prop_assert!(par.pass1.par_fallback.is_none(), "no fallback reason recorded");
            assert_same_faulty_sort(&seq, &par);
            // Every thread count here resolves to two partitions, so
            // the runs must be byte-identical to each other.
            if let Some(p) = &prev {
                assert_identical_faulty_sort(p, &par);
            }
            prev = Some(par);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The snapshot balancer alone (no faults), over random shapes and
    /// sampling periods, runs partitioned at every thread count and
    /// reproduces the sequential engine's reweight count, dispatch
    /// accounting, and final output.
    #[test]
    fn balanced_runs_match_sequential_at_every_thread_count(
        hosts in 2usize..4,
        extra_asus in 0usize..3,
        n in 1_500u64..3_000,
        seed in 0u64..500,
        routing in 1usize..3,
        period_us in 200u64..900,
    ) {
        let asus = hosts + extra_asus;
        let mode = mode_for(routing);
        let mut base = ClusterConfig::era_2002(hosts, asus, 8.0)
            .with_trace(2048)
            .with_balancer(BalanceSpec::every(SimDuration::from_micros(period_us)));
        base.seed = seed;
        let data = generate_rec128(n, KeyDist::Uniform, seed);

        let seq = run_dsm_sort(&base, data.clone(), &dsm(), mode).unwrap();
        prop_assert!(seq.pass1.par.is_none(), "threads=1 stays sequential");
        for threads in [2usize, 4, 8] {
            let par = run_dsm_sort(&base.with_threads(threads), data.clone(), &dsm(), mode)
                .unwrap();
            let stats = par
                .pass1
                .par
                .as_ref()
                .expect("balanced runs use the partitioned engine");
            prop_assert_eq!(stats.partitions, threads.min(hosts));
            prop_assert!(par.pass1.par_fallback.is_none(), "no fallback reason recorded");
            if stats.partitions <= 1 {
                assert_same_sort(&seq, &par, TraceEq::Exact);
            } else {
                assert_equiv_report(&seq.pass1, &par.pass1, "pass1");
                assert_equiv_report(&seq.pass2, &par.pass2, "pass2");
                prop_assert_eq!(
                    output_keys_fnv(&seq),
                    output_keys_fnv(&par),
                    "final sorted output diverges"
                );
            }
        }
    }
}
