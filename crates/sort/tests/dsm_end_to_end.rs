//! End-to-end DSM-Sort tests on the emulated cluster.

use lmas_core::{generate_rec128, KeyDist, NodeId, Rec128, Record};
use lmas_emulator::ClusterConfig;
use lmas_sort::{
    adaptive_config, choose_splitters, run_dsm_sort, run_pass1, run_pass1_baseline,
    split_across_asus, verify_rec128_output, DsmConfig, DsmError, LoadMode,
};

fn sort_and_verify(
    cluster: &ClusterConfig,
    n: u64,
    dsm: &DsmConfig,
    mode: LoadMode,
    seed: u64,
) -> lmas_sort::DsmOutcome<Rec128> {
    let data = generate_rec128(n, KeyDist::Uniform, seed);
    let out = run_dsm_sort(cluster, data, dsm, mode).expect("sort runs");
    verify_rec128_output(&out.output, n).expect("output is a sorted permutation");
    out
}

#[test]
fn small_sort_static_mode() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let out = sort_and_verify(&cluster, 5_000, &dsm, LoadMode::Static, 1);
    assert!(out.total.as_nanos() > 0);
    assert!(out.pass1.makespan.as_nanos() > 0);
    assert!(out.pass2.makespan.as_nanos() > 0);
}

#[test]
fn small_sort_load_managed_sr() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    sort_and_verify(&cluster, 5_000, &dsm, LoadMode::managed_sr(), 2);
}

#[test]
fn sort_with_skewed_input() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(8, 256, 4, 64);
    let n = 8_000;
    let data = generate_rec128(n, KeyDist::Exponential { rate: 8.0 }, 3);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).expect("sort runs");
    verify_rec128_output(&out.output, n).expect("skewed input still sorts");
}

#[test]
fn sort_alpha_one_degenerates_gracefully() {
    // α = 1: no real distribute; everything lands in one subset.
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let dsm = DsmConfig::new(1, 512, 4, 64);
    sort_and_verify(&cluster, 4_000, &dsm, LoadMode::Static, 4);
}

#[test]
fn sort_many_asus_many_hosts() {
    let cluster = ClusterConfig::era_2002(4, 8, 4.0);
    let dsm = DsmConfig::new(16, 128, 4, 64);
    sort_and_verify(&cluster, 10_000, &dsm, LoadMode::managed_sr(), 5);
}

#[test]
fn adaptive_config_sorts_correctly() {
    let cluster = ClusterConfig::era_2002(1, 8, 8.0);
    let n = 20_000u64;
    let dsm = adaptive_config::<Rec128>(&cluster, n, 1024, 16);
    sort_and_verify(&cluster, n, &dsm, LoadMode::managed_sr(), 6);
}

#[test]
fn pass1_runs_are_sorted_and_complete() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 4_000u64;
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(n, KeyDist::Uniform, 7);
    let splitters = choose_splitters(&data, dsm.alpha);
    let per_asu = split_across_asus(&data, cluster.asus);
    let p1 = run_pass1(&cluster, per_asu, splitters.clone(), &dsm, LoadMode::Static)
        .expect("pass 1 runs");
    let mut total = 0usize;
    for runs in &p1.runs_per_asu {
        for run in runs {
            assert!(run.is_sorted(), "every stored run is sorted");
            assert!(run.len() <= dsm.beta, "runs are at most β records");
            // A run never spans subsets.
            let b0 = lmas_core::kernels::bucket_of(run.records()[0].key(), &splitters);
            assert!(run
                .records()
                .iter()
                .all(|r| lmas_core::kernels::bucket_of(r.key(), &splitters) == b0));
            total += run.len();
        }
    }
    assert_eq!(total as u64, n, "no records lost in run formation");
    // Runs are striped: both ASUs hold some.
    assert!(p1.runs_per_asu.iter().all(|r| !r.is_empty()));
}

#[test]
fn baseline_produces_identical_runs_semantics() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 4_000u64;
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(n, KeyDist::Uniform, 8);
    let splitters = choose_splitters(&data, dsm.alpha);
    let per_asu = split_across_asus(&data, cluster.asus);
    let base = run_pass1_baseline(&cluster, per_asu, splitters, &dsm).expect("baseline runs");
    let total: usize = base
        .runs_per_asu
        .iter()
        .flatten()
        .map(|p| p.len())
        .sum();
    assert_eq!(total as u64, n);
    // Passive storage: the ASUs burn no CPU.
    for node in &base.report.nodes {
        if let NodeId::Asu(_) = node.id {
            assert_eq!(
                node.cpu_busy.as_nanos(),
                0,
                "{} should be passive",
                node.id
            );
        }
    }
}

#[test]
fn active_asus_do_burn_cpu() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 4_000u64;
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(n, KeyDist::Uniform, 9);
    let splitters = choose_splitters(&data, dsm.alpha);
    let per_asu = split_across_asus(&data, cluster.asus);
    let active = run_pass1(&cluster, per_asu, splitters, &dsm, LoadMode::Static).unwrap();
    for node in &active.report.nodes {
        if let NodeId::Asu(_) = node.id {
            assert!(node.cpu_busy.as_nanos() > 0, "{} should compute", node.id);
        }
    }
}

#[test]
fn insufficient_capacity_rejected() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    // αβγ = 2·2·1 = 4 < 100.
    let dsm = DsmConfig::new(2, 2, 1, 1);
    let data = generate_rec128(100, KeyDist::Uniform, 1);
    match run_dsm_sort(&cluster, data, &dsm, LoadMode::Static) {
        Err(err) => assert!(matches!(err, DsmError::Config(_)), "{err}"),
        Ok(_) => panic!("under-provisioned config should be rejected"),
    }
}

#[test]
fn deterministic_across_reruns() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let run = || {
        let data = generate_rec128(5_000, KeyDist::Uniform, 11);
        let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::managed_sr()).unwrap();
        (out.pass1.makespan, out.pass2.makespan)
    };
    assert_eq!(run(), run());
}

#[test]
fn work_audit_tracks_paper_identity() {
    // Total declared compares across both passes ≈ n·log2(αβγ) when the
    // configuration is exactly two-pass-tight and uniform.
    let cluster = ClusterConfig::era_2002(1, 4, 8.0);
    let n = 1u64 << 14; // 16384
    let dsm = DsmConfig::new(4, 256, 4, 64); // αβγ = 4·256·256 ≫ n — merge shallower than bound
    let data = generate_rec128(n, KeyDist::Uniform, 12);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).unwrap();
    let compares: u64 = out
        .pass1
        .stage_work
        .iter()
        .chain(out.pass2.stage_work.iter())
        .map(|(_, w)| w.compares)
        .sum();
    // Lower bound: distribute (log α = 2) + block sort (log β = 8) per
    // record = 10 n; merge adds more.
    assert!(
        compares >= 10 * n,
        "declared compares {compares} below distribute+sort floor"
    );
    // Upper bound: the paper's identity with the declared parameters.
    let bound = dsm.work_bound_compares(n);
    assert!(
        compares <= bound,
        "declared compares {compares} exceed n·log(αβγ) = {bound}"
    );
}

#[test]
fn multipass_merge_sorts_when_gamma_is_tiny() {
    use lmas_sort::run_dsm_sort_multipass;
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 8_000u64;
    // β=64 → 125 runs; γ1=2, γ2=4: two-pass capacity αβγ = 2·64·8 = 1024 ≪ n,
    // so intermediate ASU-local merge passes are required.
    let dsm = DsmConfig::new(2, 64, 2, 4);
    let data = generate_rec128(n, KeyDist::Uniform, 31);
    let out = run_dsm_sort_multipass(&cluster, data, &dsm, LoadMode::Static).expect("sort");
    assert!(
        !out.intermediate.is_empty(),
        "tiny γ must force intermediate merge passes"
    );
    verify_rec128_output(&out.output, n).expect("sorted permutation");
    assert!(out.total >= out.pass1.makespan);
}

#[test]
fn multipass_with_ample_gamma_needs_no_extra_passes() {
    use lmas_sort::run_dsm_sort_multipass;
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 4_000u64;
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(n, KeyDist::Uniform, 32);
    let out = run_dsm_sort_multipass(&cluster, data, &dsm, LoadMode::Static).expect("sort");
    assert!(out.intermediate.is_empty(), "ample γ needs two passes only");
    verify_rec128_output(&out.output, n).expect("sorted permutation");
}

#[test]
fn multipass_rejects_gamma1_one() {
    use lmas_sort::run_dsm_sort_multipass;
    let cluster = ClusterConfig::era_2002(1, 2, 8.0);
    let dsm = DsmConfig::new(2, 64, 1, 4);
    let data = generate_rec128(100, KeyDist::Uniform, 1);
    assert!(run_dsm_sort_multipass(&cluster, data, &dsm, LoadMode::Static).is_err());
}
