//! Parallel-kernel golden tests: the partitioned engine
//! (`ClusterConfig::with_threads`) must reproduce the sequential
//! emulator's reports — same virtual times, same dispatch counts, same
//! per-node series, same queue statistics, same emitted records. The
//! only permitted delta is [`EmulationReport::par`], which records how
//! the run was parallelized.
//!
//! Trace equality is two-tier, matching the kernel's ordering contract
//! (see `DESIGN.md`):
//!
//! * **One partition** (any thread count on a one-host cluster): the
//!   dispatch order — and therefore the trace render — is **byte-exact**
//!   against the sequential engine. The first test re-asserts every
//!   frozen constant of `tests/golden.rs` at threads ∈ {2, 4}, so drift
//!   shows up as a hard diff against the pre-parallel pins.
//! * **Multiple partitions**: every state observable is still
//!   byte-exact, and the trace holds the same entries at the same
//!   virtual times; only the relative order of *same-instant* events
//!   that were scheduled concurrently on different partitions may
//!   differ from the sequential interleaving (reproducing it would
//!   serialize the partitions). Multi-partition tests therefore compare
//!   traces under a canonical within-instant ordering, and separately
//!   assert that a given configuration is self-deterministic run-to-run.

mod common;

use common::{assert_same_sort, fnv1a, TraceEq};
use lmas_core::{generate_rec128, KeyDist, Record, RoutingPolicy};
use lmas_emulator::ClusterConfig;
use lmas_sort::{run_dsm_sort, DsmConfig, DsmOutcome, LoadMode};

#[test]
fn pinned_golden_holds_at_every_thread_count() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    for threads in [2usize, 4] {
        let cluster = ClusterConfig::era_2002(1, 2, 8.0)
            .with_trace(4096)
            .with_threads(threads);
        let data = generate_rec128(5_000, KeyDist::Uniform, 1);
        let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("pinned sort runs");

        // The exact frozen constants of tests/golden.rs.
        assert_eq!(out.pass1.makespan.as_nanos(), 16_725_632);
        assert_eq!(out.pass2.makespan.as_nanos(), 23_332_828);
        assert_eq!(out.total.as_nanos(), 40_058_460);
        assert_eq!(out.pass1.dispatched, 138);
        assert_eq!(out.pass2.dispatched, 126);
        assert_eq!(out.pass1.records_processed, 15_000);
        assert_eq!(out.pass2.records_processed, 15_000);
        let key_fnv = fnv1a(
            out.output
                .iter()
                .flat_map(|p| p.records())
                .flat_map(|r| r.key().to_le_bytes()),
        );
        assert_eq!(key_fnv, 0x5ff3_a122_8ca4_5147);
        assert_eq!(out.pass1.trace.len(), 66);
        assert_eq!(fnv1a(out.pass1.trace.render().bytes()), 0x6805_ad8f_ff08_52f2);
        assert_eq!(out.pass2.trace.len(), 52);
        assert_eq!(fnv1a(out.pass2.trace.render().bytes()), 0x5b5f_3e97_4813_e521);

        // One host bounds the partition count at one, but the run still
        // goes through the partitioned engine (windows, outbox, merge).
        let par = out.pass1.par.expect("eligible run uses the partitioned engine");
        assert_eq!(par.partitions, 1);
        assert!(par.windows > 0);
        assert_eq!(par.remote_messages, 0, "single partition sends nothing remotely");
    }
}

#[test]
fn multi_host_parallel_run_matches_sequential() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(4_000, KeyDist::Uniform, 3);
    let base = ClusterConfig::era_2002(2, 4, 8.0).with_trace(2048);
    let seq = run_dsm_sort(&base, data.clone(), &dsm, LoadMode::Static).expect("runs");
    assert!(seq.pass1.par.is_none(), "threads=1 stays on the sequential path");

    let mut prev: Option<DsmOutcome<_>> = None;
    for threads in [2usize, 4] {
        let par = run_dsm_sort(
            &base.with_threads(threads),
            data.clone(),
            &dsm,
            LoadMode::Static,
        )
        .expect("runs");
        assert_same_sort(&seq, &par, TraceEq::Canonical);
        let stats = par.pass1.par.expect("multi-host eligible run parallelizes");
        assert_eq!(stats.partitions, 2, "two hosts bound the partition count");
        assert!(stats.remote_messages > 0, "host↔host traffic crosses partitions");
        assert!(
            stats.critical_dispatched <= par.pass1.dispatched,
            "critical path is a subset of all dispatches"
        );
        // threads=2 and threads=4 both resolve to two partitions here,
        // so their full outputs — trace order included — must agree.
        if let Some(p) = &prev {
            assert_same_sort(p, &par, TraceEq::Exact);
        }
        prev = Some(par);
    }
}

#[test]
fn parallel_run_is_deterministic_run_to_run() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(4_000, KeyDist::Uniform, 3);
    let cfg = ClusterConfig::era_2002(2, 4, 8.0).with_trace(2048).with_threads(4);
    let a = run_dsm_sort(&cfg, data.clone(), &dsm, LoadMode::Static).expect("runs");
    let b = run_dsm_sort(&cfg, data, &dsm, LoadMode::Static).expect("runs");
    assert_same_sort(&a, &b, TraceEq::Exact);
}

#[test]
fn randomized_routing_parallel_matches_sequential() {
    // SimpleRandomization draws from per-sender streams, which the
    // partitioned engine preserves; the draw sequence (and therefore
    // every downstream observable) must be identical.
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);
    let data = generate_rec128(3_000, KeyDist::Exponential { rate: 4.0 }, 11);
    let base = ClusterConfig::era_2002(2, 3, 8.0).with_trace(1024);
    let seq = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("runs");
    let par = run_dsm_sort(&base.with_threads(4), data, &dsm, mode).expect("runs");
    assert_same_sort(&seq, &par, TraceEq::Canonical);
    assert!(par.pass1.par.is_some());
}

#[test]
fn backlog_sensitive_routing_falls_back_to_sequential() {
    // LoadAware/PowerOfTwoChoices read live queue depths at pick time,
    // which partitions cannot reproduce exactly; such runs must silently
    // take the sequential path and stay byte-identical regardless of the
    // thread count.
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let mode = LoadMode::Managed(RoutingPolicy::PowerOfTwoChoices);
    let data = generate_rec128(2_000, KeyDist::Uniform, 5);
    let base = ClusterConfig::era_2002(2, 3, 8.0);
    let seq = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("runs");
    let par = run_dsm_sort(&base.with_threads(4), data, &dsm, mode).expect("runs");
    assert_same_sort(&seq, &par, TraceEq::Exact);
    assert!(
        par.pass1.par.is_none(),
        "backlog-sensitive routing must not use the partitioned engine"
    );
}
