//! Parallel-kernel golden tests: the partitioned engine
//! (`ClusterConfig::with_threads`) must reproduce the sequential
//! emulator's reports — same virtual times, same dispatch counts, same
//! per-node series, same queue statistics, same emitted records. The
//! only permitted delta is [`EmulationReport::par`], which records how
//! the run was parallelized.
//!
//! Trace equality is two-tier, matching the kernel's ordering contract
//! (see `DESIGN.md`):
//!
//! * **One partition** (any thread count on a one-host cluster): the
//!   dispatch order — and therefore the trace render — is **byte-exact**
//!   against the sequential engine. The first test re-asserts every
//!   frozen constant of `tests/golden.rs` at threads ∈ {2, 4}, so drift
//!   shows up as a hard diff against the pre-parallel pins.
//! * **Multiple partitions**: every state observable is still
//!   byte-exact, and the trace holds the same entries at the same
//!   virtual times; only the relative order of *same-instant* events
//!   that were scheduled concurrently on different partitions may
//!   differ from the sequential interleaving (reproducing it would
//!   serialize the partitions). Multi-partition tests therefore compare
//!   traces under a canonical within-instant ordering, and separately
//!   assert that a given configuration is self-deterministic run-to-run.

mod common;

use common::{
    assert_identical_faulty_sort, assert_same_faulty_sort, assert_same_sort, fnv1a, keys_fnv,
    TraceEq,
};
use lmas_core::{generate_rec128, KeyDist, Record, RoutingPolicy};
use lmas_emulator::{asu_index, BalanceSpec, ClusterConfig, FaultSpec};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use lmas_sort::{run_dsm_sort, run_dsm_sort_faulty, DsmConfig, DsmOutcome, LoadMode};

#[test]
fn pinned_golden_holds_at_every_thread_count() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    for threads in [2usize, 4] {
        let cluster = ClusterConfig::era_2002(1, 2, 8.0)
            .with_trace(4096)
            .with_threads(threads);
        let data = generate_rec128(5_000, KeyDist::Uniform, 1);
        let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("pinned sort runs");

        // The exact frozen constants of tests/golden.rs.
        assert_eq!(out.pass1.makespan.as_nanos(), 16_725_632);
        assert_eq!(out.pass2.makespan.as_nanos(), 23_332_828);
        assert_eq!(out.total.as_nanos(), 40_058_460);
        assert_eq!(out.pass1.dispatched, 138);
        assert_eq!(out.pass2.dispatched, 126);
        assert_eq!(out.pass1.records_processed, 15_000);
        assert_eq!(out.pass2.records_processed, 15_000);
        let key_fnv = fnv1a(
            out.output
                .iter()
                .flat_map(|p| p.records())
                .flat_map(|r| r.key().to_le_bytes()),
        );
        assert_eq!(key_fnv, 0x5ff3_a122_8ca4_5147);
        assert_eq!(out.pass1.trace.len(), 66);
        assert_eq!(
            fnv1a(out.pass1.trace.render().bytes()),
            0x6805_ad8f_ff08_52f2
        );
        assert_eq!(out.pass2.trace.len(), 52);
        assert_eq!(
            fnv1a(out.pass2.trace.render().bytes()),
            0x5b5f_3e97_4813_e521
        );

        // One host bounds the partition count at one, but the run still
        // goes through the partitioned engine (windows, outbox, merge).
        let par = out
            .pass1
            .par
            .expect("eligible run uses the partitioned engine");
        assert_eq!(par.partitions, 1);
        assert!(par.windows > 0);
        assert_eq!(
            par.remote_messages, 0,
            "single partition sends nothing remotely"
        );
    }
}

#[test]
fn multi_host_parallel_run_matches_sequential() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(4_000, KeyDist::Uniform, 3);
    let base = ClusterConfig::era_2002(2, 4, 8.0).with_trace(2048);
    let seq = run_dsm_sort(&base, data.clone(), &dsm, LoadMode::Static).expect("runs");
    assert!(
        seq.pass1.par.is_none(),
        "threads=1 stays on the sequential path"
    );

    let mut prev: Option<DsmOutcome<_>> = None;
    for threads in [2usize, 4] {
        let par = run_dsm_sort(
            &base.with_threads(threads),
            data.clone(),
            &dsm,
            LoadMode::Static,
        )
        .expect("runs");
        assert_same_sort(&seq, &par, TraceEq::Canonical);
        let stats = par.pass1.par.expect("multi-host eligible run parallelizes");
        assert_eq!(stats.partitions, 2, "two hosts bound the partition count");
        assert!(
            stats.remote_messages > 0,
            "host↔host traffic crosses partitions"
        );
        assert!(
            stats.critical_dispatched <= par.pass1.dispatched,
            "critical path is a subset of all dispatches"
        );
        // threads=2 and threads=4 both resolve to two partitions here,
        // so their full outputs — trace order included — must agree.
        if let Some(p) = &prev {
            assert_same_sort(p, &par, TraceEq::Exact);
        }
        prev = Some(par);
    }
}

#[test]
fn parallel_run_is_deterministic_run_to_run() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(4_000, KeyDist::Uniform, 3);
    let cfg = ClusterConfig::era_2002(2, 4, 8.0)
        .with_trace(2048)
        .with_threads(4);
    let a = run_dsm_sort(&cfg, data.clone(), &dsm, LoadMode::Static).expect("runs");
    let b = run_dsm_sort(&cfg, data, &dsm, LoadMode::Static).expect("runs");
    assert_same_sort(&a, &b, TraceEq::Exact);
}

#[test]
fn randomized_routing_parallel_matches_sequential() {
    // SimpleRandomization draws from per-sender streams, which the
    // partitioned engine preserves; the draw sequence (and therefore
    // every downstream observable) must be identical.
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);
    let data = generate_rec128(3_000, KeyDist::Exponential { rate: 4.0 }, 11);
    let base = ClusterConfig::era_2002(2, 3, 8.0).with_trace(1024);
    let seq = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("runs");
    let par = run_dsm_sort(&base.with_threads(4), data, &dsm, mode).expect("runs");
    assert_same_sort(&seq, &par, TraceEq::Canonical);
    assert!(par.pass1.par.is_some());
}

/// Faulted multi-host pinned golden: a fixed crash+recovery plan with
/// a lossy link, run partitioned at `threads ∈ {2, 4}` (both resolve
/// to two partitions on two hosts, so the runs must be byte-identical
/// to each other), frozen as exact constants and cross-checked against
/// the sequential engine under the conserved-equivalence contract.
#[test]
fn pinned_faulted_multi_host_golden() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let base = ClusterConfig::era_2002(2, 4, 8.0).with_trace(2048);
    let data = generate_rec128(4_000, KeyDist::Uniform, 3);
    let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);

    // The crash lands mid-pass-1 of the fault-free run; the recovery 40
    // virtual ms later exercises detection-cancel and revive fencing.
    let golden = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("fault-free golden runs");
    let t_crash = SimTime(golden.pass1.makespan.0 / 2);
    let plan = FaultPlan::new()
        .crash(asu_index(&base, 1), t_crash)
        .recover(asu_index(&base, 1), t_crash + SimDuration::from_millis(40))
        .link_loss(0, asu_index(&base, 0), SimTime::ZERO, 0.05);
    let spec = FaultSpec::with_plan(plan);

    let seq = run_dsm_sort_faulty(&base, &spec, data.clone(), &dsm, mode).expect("runs");
    assert!(seq.pass1.par.is_none(), "threads=1 stays sequential");

    let par2 =
        run_dsm_sort_faulty(&base.with_threads(2), &spec, data.clone(), &dsm, mode).expect("runs");
    let par4 = run_dsm_sort_faulty(&base.with_threads(4), &spec, data, &dsm, mode).expect("runs");
    let stats = par4
        .pass1
        .par
        .as_ref()
        .expect("faulted run uses the partitioned engine");
    assert_eq!(stats.partitions, 2, "two hosts bound the partition count");
    assert_eq!(par4.pass1.par_fallback, None);
    assert!(
        stats.remote_messages > 0,
        "fence/NACK traffic crosses partitions"
    );
    assert_identical_faulty_sort(&par2, &par4);
    assert_same_faulty_sort(&seq, &par4);

    // The frozen constants of the threads=4 faulted run.
    let s = par4.pass1.fault;
    let pinned = format!(
        "pass1_ns={} pass2_ns={} dispatched={} {}\n\
         fault retries={} nacks={} drops={} lost={} abandoned={} fenced={} detections={}\n\
         recovered={} lost_asus={} out_fnv={:#018x}\n\
         trace1={} {:#018x} trace2={} {:#018x}",
        par4.pass1.makespan.as_nanos(),
        par4.pass2.makespan.as_nanos(),
        par4.pass1.dispatched,
        par4.pass2.dispatched,
        s.retries,
        s.nacks,
        s.drops,
        s.lost_queued_records,
        s.abandoned_records,
        s.fenced_instances,
        s.detections,
        par4.recovered_records,
        par4.lost_asus.len(),
        keys_fnv(&par4.output),
        par4.pass1.trace.len(),
        fnv1a(par4.pass1.trace.render().bytes()),
        par4.pass2.trace.len(),
        fnv1a(par4.pass2.trace.render().bytes()),
    );
    assert_eq!(
        pinned,
        "pass1_ns=22063514 pass2_ns=14078252 dispatched=163 151\n\
         fault retries=3 nacks=2 drops=1 lost=1000 abandoned=0 fenced=2 detections=1\n\
         recovered=1000 lost_asus=0 out_fnv=0x5fe79c496c69d09c\n\
         trace1=58 0x4cc9cf9d8b2d0b80 trace2=59 0x95d28d5930442e8a",
        "faulted multi-host golden drifted"
    );
}

/// Snapshot-balancer multi-host pinned golden: the balancer armed at a
/// fixed period, run partitioned at threads=4 and frozen byte-exact;
/// the sequential run must agree on every conserved aggregate
/// (reweight count included) and the final output.
#[test]
fn pinned_balanced_multi_host_golden() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let base = ClusterConfig::era_2002(2, 4, 8.0)
        .with_trace(2048)
        .with_balancer(BalanceSpec::every(SimDuration::from_micros(500)).with_deadband(256));
    let data = generate_rec128(4_000, KeyDist::Exponential { rate: 4.0 }, 11);
    let mode = LoadMode::Managed(RoutingPolicy::SimpleRandomization);

    let seq = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("runs");
    assert!(seq.pass1.par.is_none(), "threads=1 stays sequential");
    let par = run_dsm_sort(&base.with_threads(4), data, &dsm, mode).expect("runs");
    let stats = par
        .pass1
        .par
        .as_ref()
        .expect("balanced run uses the partitioned engine");
    assert_eq!(stats.partitions, 2);
    assert_eq!(par.pass1.par_fallback, None);

    assert_eq!(
        (seq.pass1.reweights, seq.pass2.reweights),
        (par.pass1.reweights, par.pass2.reweights),
        "snapshot balancer reweights identically in both engines"
    );
    common::assert_equiv_report(&seq.pass1, &par.pass1, "pass1");
    common::assert_equiv_report(&seq.pass2, &par.pass2, "pass2");
    assert_eq!(common::output_keys_fnv(&seq), common::output_keys_fnv(&par));

    let pinned = format!(
        "pass1_ns={} pass2_ns={} total_ns={} dispatched={} {} reweights={} {} out_fnv={:#018x}",
        par.pass1.makespan.as_nanos(),
        par.pass2.makespan.as_nanos(),
        par.total.as_nanos(),
        par.pass1.dispatched,
        par.pass2.dispatched,
        par.pass1.reweights,
        par.pass2.reweights,
        common::output_keys_fnv(&par),
    );
    assert_eq!(
        pinned,
        "pass1_ns=10095572 pass2_ns=8869056 total_ns=18964628 dispatched=627 280 \
         reweights=3 0 out_fnv=0x4f6435715012d220",
        "balanced multi-host golden drifted"
    );
}

#[test]
fn backlog_sensitive_routing_falls_back_to_sequential() {
    // LoadAware/PowerOfTwoChoices read live queue depths at pick time,
    // which partitions cannot reproduce exactly; such runs must silently
    // take the sequential path and stay byte-identical regardless of the
    // thread count.
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let mode = LoadMode::Managed(RoutingPolicy::PowerOfTwoChoices);
    let data = generate_rec128(2_000, KeyDist::Uniform, 5);
    let base = ClusterConfig::era_2002(2, 3, 8.0);
    let seq = run_dsm_sort(&base, data.clone(), &dsm, mode).expect("runs");
    let par = run_dsm_sort(&base.with_threads(4), data, &dsm, mode).expect("runs");
    assert_same_sort(&seq, &par, TraceEq::Exact);
    assert!(
        par.pass1.par.is_none(),
        "backlog-sensitive routing must not use the partitioned engine"
    );
    assert_eq!(par.pass1.par_fallback, Some("backlog routing"));
    assert_eq!(
        seq.pass1.par_fallback, None,
        "threads=1 never records a reason"
    );
}
