//! Fixed-seed golden test: freezes every virtual-time observable of a
//! pinned DSM-Sort emulation so calendar/dispatch/accounting rewrites in
//! `lmas-sim` are provably behaviour-preserving. The constants below were
//! captured from the pre-rewrite simulator (tombstoned `BinaryHeap`
//! calendar, per-call resource accounting); the indexed-calendar rewrite
//! must reproduce them byte-for-byte.
//!
//! `crates/bench/src/bin/determinism.rs` prints the same figures for
//! run-to-run diffing within one build; this test pins them across
//! builds. If a change legitimately alters virtual time (a new cost
//! model, a protocol change), re-freeze by running that binary and
//! updating the constants — never to paper over an accidental drift.

use lmas_core::{generate_rec128, KeyDist, Record};
use lmas_emulator::{ClusterConfig, EmulationReport};
use lmas_sort::{run_dsm_sort, DsmConfig, LoadMode};

/// FNV-1a over a byte stream; stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn cpu_series_fnv<R: Record>(report: &EmulationReport<R>) -> u64 {
    fnv1a(
        report
            .nodes
            .iter()
            .flat_map(|nr| nr.cpu_series.iter())
            .flat_map(|u| u.to_bits().to_le_bytes()),
    )
}

#[test]
fn pinned_dsm_sort_reproduces_frozen_virtual_time() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0).with_trace(4096);
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(5_000, KeyDist::Uniform, 1);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("pinned sort runs");

    // Makespans and event counts.
    assert_eq!(out.pass1.makespan.as_nanos(), 16_725_632);
    assert_eq!(out.pass2.makespan.as_nanos(), 23_332_828);
    assert_eq!(out.total.as_nanos(), 40_058_460);
    assert_eq!(out.pass1.dispatched, 138);
    assert_eq!(out.pass2.dispatched, 126);
    assert_eq!(out.pass1.records_processed, 15_000);
    assert_eq!(out.pass2.records_processed, 15_000);

    // Output contents (key stream in emission order).
    let out_records: usize = out.output.iter().map(|p| p.len()).sum();
    assert_eq!(out_records, 5_000);
    let key_fnv = fnv1a(
        out.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    assert_eq!(key_fnv, 0x5ff3_a122_8ca4_5147);

    // Per-node CPU utilization series, bit-exact.
    assert_eq!(cpu_series_fnv(&out.pass1), 0x5050_9ea5_ec3c_258b);
    assert_eq!(cpu_series_fnv(&out.pass2), 0x554d_b312_2cc3_f175);

    // Trace renders (timestamps, subjects, details), byte-exact.
    assert_eq!(out.pass1.trace.len(), 66);
    assert_eq!(fnv1a(out.pass1.trace.render().bytes()), 0x6805_ad8f_ff08_52f2);
    assert_eq!(out.pass2.trace.len(), 52);
    assert_eq!(fnv1a(out.pass2.trace.render().bytes()), 0x5b5f_3e97_4813_e521);
}

#[test]
fn tracing_does_not_perturb_virtual_time() {
    let dsm = DsmConfig::new(4, 256, 4, 64);
    let data = generate_rec128(2_000, KeyDist::Uniform, 7);
    let quiet = ClusterConfig::era_2002(1, 2, 8.0);
    let traced = quiet.with_trace(1024);
    let a = run_dsm_sort(&quiet, data.clone(), &dsm, LoadMode::Static).expect("runs");
    let b = run_dsm_sort(&traced, data, &dsm, LoadMode::Static).expect("runs");
    assert_eq!(a.total, b.total);
    assert_eq!(a.pass1.dispatched, b.pass1.dispatched);
    assert_eq!(a.pass2.dispatched, b.pass2.dispatched);
    assert!(a.pass1.trace.is_empty(), "tracing off by default");
    assert!(!b.pass1.trace.is_empty(), "trace captured when asked");
}
