//! Differential tests for the coded-shuffle distribute mode: a coded
//! run (any legal r) must produce the *same sorted output* as the
//! uncoded engine — coding changes when bytes move, never which records
//! arrive — and r = 1 must *be* the uncoded engine, reproducing the
//! frozen golden constants bit for bit. Coded runs are also held to the
//! partitioned kernel's determinism contract at several thread counts
//! (no fallback reason, byte-identical virtual time).

use lmas_core::{generate_rec128, KeyDist, Record};
use lmas_emulator::ClusterConfig;
use lmas_sort::{canonical_equal, run_dsm_sort, DsmConfig, LoadMode};
use proptest::prelude::*;

/// FNV-1a over a byte stream; stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// α = 8 so every r ∈ {1, 2, 4} divides the subset count.
fn dsm(r: usize) -> DsmConfig {
    DsmConfig::new(8, 256, 4, 64).with_coded(r)
}

#[test]
fn coded_output_matches_uncoded_engine() {
    let cluster = ClusterConfig::era_2002(2, 4, 8.0);
    let data = generate_rec128(6_000, KeyDist::Uniform, 11);
    let plain = run_dsm_sort(&cluster, data.clone(), &dsm(1), LoadMode::Static).expect("runs");
    for r in [2usize, 4] {
        let coded = run_dsm_sort(&cluster, data.clone(), &dsm(r), LoadMode::Static).expect("runs");
        canonical_equal(&plain.output, &coded.output)
            .unwrap_or_else(|e| panic!("coded r={r} output diverges: {e}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random shapes × seeds × r ∈ {1, 2, 4}: the coded sort emits the
    /// exact record set of the uncoded sort, and the coded run itself is
    /// byte-identical between the sequential engine and the partitioned
    /// kernel at threads ∈ {1, 4} (no fallback reason).
    #[test]
    fn coded_sorts_canonically_equal_uncoded(
        hosts in 2usize..4,
        extra_asus in 0usize..3,
        n in 1_000u64..3_000,
        seed in 0u64..1_000,
        r_idx in 0usize..3,
    ) {
        let r = [1usize, 2, 4][r_idx];
        let asus = hosts + extra_asus;
        let mut cluster = ClusterConfig::era_2002(hosts, asus, 8.0);
        cluster.seed = seed;
        let data = generate_rec128(n, KeyDist::Uniform, seed);

        let plain = run_dsm_sort(&cluster, data.clone(), &dsm(1), LoadMode::Static).unwrap();
        let coded = run_dsm_sort(&cluster, data.clone(), &dsm(r), LoadMode::Static).unwrap();
        canonical_equal(&plain.output, &coded.output)
            .unwrap_or_else(|e| panic!("coded r={r} output diverges: {e}"));

        let par = run_dsm_sort(&cluster.with_threads(4), data, &dsm(r), LoadMode::Static).unwrap();
        let stats = par.pass1.par.as_ref().expect("coded run parallelizes");
        prop_assert_eq!(stats.partitions, 4usize.min(hosts));
        prop_assert!(par.pass1.par_fallback.is_none(), "no fallback reason on a coded run");
        prop_assert_eq!(coded.pass1.makespan, par.pass1.makespan);
        prop_assert_eq!(coded.pass2.makespan, par.pass2.makespan);
        prop_assert_eq!(coded.total, par.total);
        let a = fnv1a(coded.output.iter().flat_map(|p| p.records()).flat_map(|r| r.key().to_le_bytes()));
        let b = fnv1a(par.output.iter().flat_map(|p| p.records()).flat_map(|r| r.key().to_le_bytes()));
        prop_assert_eq!(a, b, "threaded coded output diverges");
    }
}

/// `with_coded(1)` is the uncoded engine, not a near miss: the pinned
/// golden emulation (same cluster, seed, and knobs as
/// `tests/golden.rs`) reproduces every frozen virtual-time observable.
#[test]
fn coded_r1_reproduces_frozen_goldens() {
    let cluster = ClusterConfig::era_2002(1, 2, 8.0).with_trace(4096);
    let dsm = DsmConfig::new(4, 256, 4, 64).with_coded(1);
    let data = generate_rec128(5_000, KeyDist::Uniform, 1);
    let out = run_dsm_sort(&cluster, data, &dsm, LoadMode::Static).expect("pinned sort runs");

    assert_eq!(out.pass1.makespan.as_nanos(), 16_725_632);
    assert_eq!(out.pass2.makespan.as_nanos(), 23_332_828);
    assert_eq!(out.total.as_nanos(), 40_058_460);
    assert_eq!(out.pass1.dispatched, 138);
    assert_eq!(out.pass2.dispatched, 126);

    let out_records: usize = out.output.iter().map(|p| p.len()).sum();
    assert_eq!(out_records, 5_000);
    let key_fnv = fnv1a(
        out.output
            .iter()
            .flat_map(|p| p.records())
            .flat_map(|r| r.key().to_le_bytes()),
    );
    assert_eq!(key_fnv, 0x5ff3_a122_8ca4_5147);

    assert_eq!(out.pass1.trace.len(), 66);
    assert_eq!(fnv1a(out.pass1.trace.render().bytes()), 0x6805_ad8f_ff08_52f2);
    assert_eq!(out.pass2.trace.len(), 52);
    assert_eq!(fnv1a(out.pass2.trace.render().bytes()), 0x5b5f_3e97_4813_e521);
}
