//! Sequential-disk timing model (Section 5 of the paper).
//!
//! > "The disk simulation uses a base aggregate transfer rate to calculate
//! > elapsed time under an I/O load, assuming read-ahead and write caching
//! > for sequential I/O: the disk initiates the next I/O automatically,
//! > and writes wait only for the previous write to complete."
//!
//! [`DiskParams`] carries the rate; [`DiskSim`] is the stateful timeline:
//!
//! - **Reads** are pipelined: the media begins the next sequential
//!   transfer as soon as the previous one finishes (bounded by a
//!   read-ahead window), so a requester consuming at media rate never
//!   stalls between blocks.
//! - **Writes** are write-behind: the caller resumes once the *previous*
//!   write has been absorbed by the media, not when its own write lands.
//!
//! Seek and rotational delays are deliberately not modelled, exactly as in
//! the paper ("our current experiments perform all I/O sequentially"); a
//! per-request overhead knob exists for sensitivity studies.

use crate::bte::BteStats;
use lmas_sim::{SimDuration, SimTime, UtilizationLedger};

/// Disk timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Base aggregate sequential transfer rate, bytes per second.
    pub rate_bytes_per_sec: f64,
    /// Fixed overhead charged per request (0 in the paper's model).
    pub per_request_overhead: SimDuration,
    /// How far (in bytes) the media may run ahead of the last read that
    /// was actually requested. Models the drive's read-ahead buffer.
    pub readahead_window: u64,
}

impl DiskParams {
    /// A 2002-era disk: ~25 MB/s sequential, no per-request overhead,
    /// 2 MiB of read-ahead.
    pub fn era_2002() -> Self {
        DiskParams {
            rate_bytes_per_sec: 25.0e6,
            per_request_overhead: SimDuration::ZERO,
            readahead_window: 2 << 20,
        }
    }

    /// A 2002-era ASU storage "brick": several spindles behind one
    /// network port (the paper motivates ASUs as enabling "aggregation
    /// of larger numbers of drives behind each network port"), giving
    /// ~100 MB/s aggregate sequential bandwidth.
    pub fn asu_brick_2002() -> Self {
        DiskParams {
            rate_bytes_per_sec: 100.0e6,
            per_request_overhead: SimDuration::ZERO,
            readahead_window: 8 << 20,
        }
    }

    /// Media time to transfer `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        assert!(
            self.rate_bytes_per_sec > 0.0,
            "disk rate must be positive"
        );
        self.per_request_overhead
            + SimDuration::from_secs_f64(bytes as f64 / self.rate_bytes_per_sec)
    }
}

/// Stateful per-disk timeline applying read-ahead and write-behind rules.
#[derive(Debug)]
pub struct DiskSim {
    params: DiskParams,
    /// When the media head frees from all work issued so far.
    media_free: SimTime,
    /// Bytes the media has transferred ahead of explicit read requests.
    prefetched_bytes: u64,
    /// Rate in force when the media last went idle (i.e. when
    /// `media_free` was last advanced). Idle-gap prefetch is priced at
    /// this snapshot, so a `set_rate` between requests never reprices
    /// media work that conceptually already happened.
    idle_rate: f64,
    ledger: UtilizationLedger,
    stats: BteStats,
}

impl DiskSim {
    /// New idle disk. `bin_width` sets utilization-series resolution.
    pub fn new(params: DiskParams, bin_width: SimDuration) -> Self {
        DiskSim {
            params,
            media_free: SimTime::ZERO,
            prefetched_bytes: 0,
            idle_rate: params.rate_bytes_per_sec,
            ledger: UtilizationLedger::new(bin_width),
            stats: BteStats::default(),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Change the media transfer rate mid-run (fault injection: degraded
    /// nodes keep serving I/O, just slower). Work already issued keeps its
    /// original timing — busy bins already in the ledger are never
    /// repriced, and prefetch accrued during an idle gap is priced at the
    /// rate that was in force when the gap began (snapshotted per
    /// request), not at the rate in force when the next request arrives.
    pub fn set_rate(&mut self, rate_bytes_per_sec: f64) {
        assert!(rate_bytes_per_sec > 0.0, "disk rate must be positive");
        self.params.rate_bytes_per_sec = rate_bytes_per_sec;
    }

    /// Sequential read of `bytes` requested at `now`; returns when the
    /// data is available to the requester.
    ///
    /// Thanks to read-ahead the media may already have transferred some or
    /// all of the data before the request arrives; the requester then
    /// proceeds immediately at `now`.
    pub fn read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.stats.reads += 1;
        self.stats.bytes_read += bytes;
        // While the requester was away, the media self-initiated reads of
        // the following sequential data, up to the read-ahead window.
        // That work happened *during the gap*, so it is priced at the rate
        // snapshotted when the gap began (`idle_rate`) — a `set_rate`
        // issued meanwhile must not retroactively reprice it.
        if now > self.media_free && self.prefetched_bytes < self.params.readahead_window {
            let idle = now.since(self.media_free);
            let idle_bytes = (idle.as_secs_f64() * self.idle_rate) as u64;
            let added =
                idle_bytes.min(self.params.readahead_window - self.prefetched_bytes);
            if added > 0 {
                // Prefetch pays raw media time, no per-request overhead.
                let t = SimDuration::from_secs_f64(added as f64 / self.idle_rate);
                let pstart = self.media_free;
                self.ledger.add_busy(pstart, pstart + t);
                self.advance_media(pstart + t);
                self.prefetched_bytes += added;
            }
        }
        // Buffered bytes satisfy the request without further media time.
        let from_buffer = bytes.min(self.prefetched_bytes);
        self.prefetched_bytes -= from_buffer;
        let remaining = bytes - from_buffer;
        if remaining == 0 {
            // Entirely satisfied from the read-ahead buffer.
            return now;
        }
        let service = self.params.transfer_time(remaining);
        let start = now.max(self.media_free);
        let end = start + service;
        self.ledger.add_busy(start, end);
        self.advance_media(end);
        end
    }

    /// Sequential write of `bytes` posted at `now`; returns when the
    /// caller may proceed (write-behind: once the previous write has been
    /// absorbed, not when this one lands).
    pub fn write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.stats.writes += 1;
        self.stats.bytes_written += bytes;
        // Wait for the media to absorb everything previously issued.
        let proceed = now.max(self.media_free);
        let service = self.params.transfer_time(bytes);
        let end = proceed + service;
        self.ledger.add_busy(proceed, end);
        self.advance_media(end);
        // A write disrupts the sequential read stream.
        self.prefetched_bytes = 0;
        proceed
    }

    /// Advance `media_free` and re-snapshot the rate that will govern any
    /// idle gap starting at that instant.
    fn advance_media(&mut self, free: SimTime) {
        self.media_free = free;
        self.idle_rate = self.params.rate_bytes_per_sec;
    }

    /// When all issued media work completes (for drain/makespan).
    pub fn quiesce_time(&self) -> SimTime {
        self.media_free
    }

    /// Lifetime transfer counters (the BTE counter type — one source of
    /// truth shared with the engines and the emulator reports).
    pub fn stats(&self) -> BteStats {
        self.stats
    }

    /// Lifetime counters: (reads, writes, bytes_read, bytes_written).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        self.stats.as_tuple()
    }

    /// Media utilization series over `[0, horizon]`.
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<f64> {
        self.ledger.series(horizon)
    }

    /// Total media busy time.
    pub fn total_busy(&self) -> SimDuration {
        self.ledger.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rate: f64) -> DiskParams {
        DiskParams {
            rate_bytes_per_sec: rate,
            per_request_overhead: SimDuration::ZERO,
            readahead_window: 1 << 20,
        }
    }

    const BIN: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn transfer_time_is_bytes_over_rate() {
        let p = params(1e6); // 1 MB/s
        assert_eq!(p.transfer_time(1_000_000), SimDuration::from_secs(1));
        assert_eq!(p.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_reads_stream_at_media_rate() {
        // 1 MB/s; 10 reads of 100kB = 1s total, no gaps.
        let mut d = DiskSim::new(params(1e6), BIN);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = d.read(now, 100_000);
        }
        assert_eq!(now, SimTime::ZERO + SimDuration::from_secs(1));
    }

    #[test]
    fn slow_consumer_hides_read_latency_via_readahead() {
        // Media needs 100ms per read; consumer takes 200ms between reads.
        // After the first read, subsequent data is prefetched: ready==now.
        let mut d = DiskSim::new(params(1e6), BIN);
        let t1 = d.read(SimTime::ZERO, 100_000);
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_millis(100));
        let consumer_back = t1 + SimDuration::from_millis(200);
        let t2 = d.read(consumer_back, 100_000);
        assert_eq!(t2, consumer_back, "prefetched data is ready immediately");
    }

    #[test]
    fn readahead_window_bounds_prefetch() {
        let mut p = params(1e6);
        p.readahead_window = 50_000; // only half a request can prefetch
        let mut d = DiskSim::new(p, BIN);
        let t1 = d.read(SimTime::ZERO, 100_000);
        let consumer_back = t1 + SimDuration::from_secs(10); // ages of idle
        let t2 = d.read(consumer_back, 100_000);
        // 50kB buffered, 50kB still to transfer = 50ms.
        assert_eq!(t2, consumer_back + SimDuration::from_millis(50));
    }

    #[test]
    fn write_behind_returns_before_media_finishes() {
        let mut d = DiskSim::new(params(1e6), BIN);
        let p1 = d.write(SimTime::ZERO, 100_000);
        assert_eq!(p1, SimTime::ZERO, "first write proceeds immediately");
        // Second write 10ms later must wait for the first to finish (100ms).
        let p2 = d.write(SimTime(10_000_000), 100_000);
        assert_eq!(p2, SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(
            d.quiesce_time(),
            SimTime::ZERO + SimDuration::from_millis(200)
        );
    }

    #[test]
    fn write_resets_read_prefetch() {
        let mut d = DiskSim::new(params(1e6), BIN);
        let t1 = d.read(SimTime::ZERO, 100_000);
        let idle = t1 + SimDuration::from_secs(1);
        let _ = d.write(idle, 10_000);
        // Prefetch was discarded: the next read pays full media time.
        let t2 = d.read(d.quiesce_time(), 100_000);
        assert_eq!(t2, d.quiesce_time());
        let (r, w, br, bw) = d.counters();
        assert_eq!((r, w), (2, 1));
        assert_eq!((br, bw), (200_000, 10_000));
    }

    #[test]
    fn per_request_overhead_charged() {
        let mut p = params(1e6);
        p.per_request_overhead = SimDuration::from_millis(5);
        assert_eq!(
            p.transfer_time(100_000),
            SimDuration::from_millis(105)
        );
    }

    #[test]
    fn set_rate_does_not_reprice_idle_prefetch() {
        // Media idles 100ms at 1 MB/s, then the rate is raised to 10 MB/s
        // (a Degrade fault clearing, say). The idle gap must accrue
        // prefetch at the OLD rate — 100 kB, not 1 MB.
        let mut d = DiskSim::new(params(1e6), BIN);
        let t1 = d.read(SimTime::ZERO, 100_000);
        d.set_rate(10.0e6);
        let back = t1 + SimDuration::from_millis(100);
        let t2 = d.read(back, 200_000);
        // 100 kB prefetched at the old rate; the remaining 100 kB
        // transfers at the new rate = 10ms.
        assert_eq!(t2, back + SimDuration::from_millis(10));
    }

    #[test]
    fn set_rate_degrade_does_not_inflate_prior_busy() {
        // Symmetric case: degrading mid-idle must not make the past idle
        // gap accrue *less* prefetch than the old rate delivered.
        let mut d = DiskSim::new(params(1e6), BIN);
        let t1 = d.read(SimTime::ZERO, 100_000);
        d.set_rate(0.5e6);
        let back = t1 + SimDuration::from_millis(100);
        let t2 = d.read(back, 100_000);
        // The full 100 kB was prefetched during the gap at the old 1 MB/s.
        assert_eq!(t2, back, "prefetch accrued at the pre-degrade rate");
    }

    #[test]
    fn stats_match_counters_tuple() {
        let mut d = DiskSim::new(params(1e6), BIN);
        let _ = d.read(SimTime::ZERO, 1_000);
        let _ = d.write(SimTime::ZERO, 2_000);
        let s = d.stats();
        assert_eq!(d.counters(), s.as_tuple());
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!((s.bytes_read, s.bytes_written), (1_000, 2_000));
    }

    #[test]
    fn utilization_reflects_media_busy() {
        let mut d = DiskSim::new(params(1e6), BIN);
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now = d.read(now, 100_000);
        }
        // 500ms busy out of 500ms elapsed: fully utilized.
        assert!((d.total_busy().as_secs_f64() - 0.5).abs() < 1e-9);
    }
}
