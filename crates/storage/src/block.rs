//! Blocks and extents: the unit of transfer in the I/O complexity model.
//!
//! The paper's Figure 1 defines complexity in terms of logical block
//! transfers of size `B`. A [`Block`] is a fixed-capacity byte buffer; a
//! [`BlockId`] names a stored block within a block transfer engine; an
//! [`Extent`] is a contiguous run of block ids used for sequential layout.


/// Names a stored block within one [`crate::bte::BlockTransferEngine`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The id `offset` blocks after this one.
    #[inline]
    pub fn offset(self, n: u64) -> BlockId {
        BlockId(self.0 + n)
    }
}

/// A fixed-capacity data block. The buffer always holds exactly
/// `capacity` bytes; writers fill a prefix and record the valid length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    data: Vec<u8>,
    valid: usize,
    capacity: usize,
}

impl Block {
    /// A zeroed block of the given capacity.
    pub fn zeroed(capacity: usize) -> Block {
        assert!(capacity > 0, "block capacity must be positive");
        Block {
            data: vec![0u8; capacity],
            valid: 0,
            capacity,
        }
    }

    /// Wrap existing bytes as a fully valid block.
    pub fn from_bytes(bytes: &[u8]) -> Block {
        assert!(!bytes.is_empty(), "block capacity must be positive");
        Block {
            data: bytes.to_vec(),
            valid: bytes.len(),
            capacity: bytes.len(),
        }
    }

    /// Block capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid (written) bytes.
    #[inline]
    pub fn valid_len(&self) -> usize {
        self.valid
    }

    /// Set the number of valid bytes. Panics beyond capacity.
    pub fn set_valid_len(&mut self, n: usize) {
        assert!(n <= self.capacity, "valid length exceeds capacity");
        self.valid = n;
    }

    /// The valid prefix.
    #[inline]
    pub fn valid_bytes(&self) -> &[u8] {
        &self.data[..self.valid]
    }

    /// The whole buffer, mutable.
    #[inline]
    pub fn buffer_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// The whole buffer.
    #[inline]
    pub fn buffer(&self) -> &[u8] {
        &self.data
    }

    /// Freeze into an owned byte vector of the valid prefix.
    pub fn freeze_valid(self) -> Vec<u8> {
        let mut data = self.data;
        data.truncate(self.valid);
        data
    }
}

/// A contiguous run of blocks `[first, first + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First block id of the run.
    pub first: BlockId,
    /// Number of blocks.
    pub len: u64,
}

impl Extent {
    /// Empty extent check.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the block ids of the extent.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.len).map(move |i| self.first.offset(i))
    }

    /// Whether `id` falls within the extent.
    pub fn contains(&self, id: BlockId) -> bool {
        id.0 >= self.first.0 && id.0 < self.first.0 + self.len
    }
}

/// Hands out fresh block ids / extents; a trivial allocator for engines
/// that never reuse ids (frees are tracked only for accounting).
#[derive(Debug, Default, Clone)]
pub struct ExtentAllocator {
    next: u64,
    allocated: u64,
    freed: u64,
}

impl ExtentAllocator {
    /// Fresh allocator starting at block 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a contiguous extent of `len` blocks.
    pub fn allocate(&mut self, len: u64) -> Extent {
        let first = BlockId(self.next);
        self.next += len;
        self.allocated += len;
        Extent { first, len }
    }

    /// Record that an extent was released.
    pub fn free(&mut self, extent: Extent) {
        self.freed += extent.len;
    }

    /// Blocks currently live (allocated − freed).
    pub fn live(&self) -> u64 {
        self.allocated - self.freed
    }

    /// Total blocks ever allocated.
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_valid_prefix_tracking() {
        let mut b = Block::zeroed(16);
        assert_eq!(b.capacity(), 16);
        assert_eq!(b.valid_len(), 0);
        b.buffer_mut()[..4].copy_from_slice(&[1, 2, 3, 4]);
        b.set_valid_len(4);
        assert_eq!(b.valid_bytes(), &[1, 2, 3, 4]);
        assert_eq!(b.freeze_valid(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn valid_len_bounded_by_capacity() {
        Block::zeroed(4).set_valid_len(5);
    }

    #[test]
    fn block_from_bytes_is_fully_valid() {
        let b = Block::from_bytes(&[9, 8, 7]);
        assert_eq!(b.valid_len(), 3);
        assert_eq!(b.capacity(), 3);
        assert_eq!(b.valid_bytes(), &[9, 8, 7]);
    }

    #[test]
    fn extent_iteration_and_membership() {
        let e = Extent { first: BlockId(10), len: 3 };
        let ids: Vec<u64> = e.blocks().map(|b| b.0).collect();
        assert_eq!(ids, [10, 11, 12]);
        assert!(e.contains(BlockId(11)));
        assert!(!e.contains(BlockId(13)));
        assert!(!e.is_empty());
    }

    #[test]
    fn allocator_hands_out_disjoint_extents() {
        let mut a = ExtentAllocator::new();
        let e1 = a.allocate(4);
        let e2 = a.allocate(2);
        assert!(e1.blocks().all(|b| !e2.contains(b)));
        assert_eq!(a.live(), 6);
        a.free(e1);
        assert_eq!(a.live(), 2);
        assert_eq!(a.total_allocated(), 6);
    }
}
