//! Packing fixed-size records into blocks.
//!
//! Containers store records; engines store blocks. [`RecordCodec`] is the
//! bridge: it lays `record_size`-byte records densely into a block and
//! recovers them, tracking how many fit per block.

use crate::block::Block;

/// Dense fixed-size record layout within fixed-size blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordCodec {
    record_size: usize,
    block_size: usize,
}

impl RecordCodec {
    /// A codec for `record_size`-byte records in `block_size`-byte blocks.
    /// Panics unless at least one record fits.
    pub fn new(record_size: usize, block_size: usize) -> Self {
        assert!(record_size > 0, "record size must be positive");
        assert!(
            block_size >= record_size,
            "block size {block_size} cannot hold a {record_size}-byte record"
        );
        RecordCodec {
            record_size,
            block_size,
        }
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Records that fit in one block.
    pub fn records_per_block(&self) -> usize {
        self.block_size / self.record_size
    }

    /// Blocks needed to store `n` records.
    pub fn blocks_for(&self, n: u64) -> u64 {
        n.div_ceil(self.records_per_block() as u64)
    }

    /// Records in the trailing block when storing `n` records: 0 if the
    /// count divides evenly (the last block is full), otherwise the
    /// partial block's record count.
    pub fn tail_records(&self, n: u64) -> usize {
        (n % self.records_per_block() as u64) as usize
    }

    /// Valid payload bytes actually transferred for `n` records. Full
    /// blocks transfer `records_per_block × record_size` each; a partial
    /// trailing block transfers only its valid records — the slack up to
    /// the block boundary is *not* charged.
    pub fn transfer_bytes(&self, n: u64) -> u64 {
        n * self.record_size as u64
    }

    /// Valid payload bytes of block `i` (0-based) when storing `n`
    /// records: the full block payload except for a partial trailing
    /// block, which carries only its tail records.
    pub fn block_payload_bytes(&self, i: u64, n: u64) -> u64 {
        let blocks = self.blocks_for(n);
        assert!(i < blocks, "block {i} out of range for {n} records");
        let tail = self.tail_records(n);
        if i + 1 == blocks && tail != 0 {
            (tail * self.record_size) as u64
        } else {
            (self.records_per_block() * self.record_size) as u64
        }
    }

    /// Pack an arbitrary run of records (concatenated in `payload`) into
    /// as many blocks as needed; the trailing block may be partial (its
    /// valid prefix covers only the remaining records).
    pub fn pack_all(&self, payload: &[u8]) -> Vec<Block> {
        assert!(
            payload.len().is_multiple_of(self.record_size),
            "payload is not a whole number of records"
        );
        payload
            .chunks(self.records_per_block() * self.record_size)
            .map(|chunk| self.pack(chunk).0)
            .collect()
    }

    /// Pack up to `records_per_block` records (each exactly `record_size`
    /// bytes, concatenated in `payload`) into a block. Returns the block
    /// and the number of records packed.
    pub fn pack(&self, payload: &[u8]) -> (Block, usize) {
        assert!(
            payload.len().is_multiple_of(self.record_size),
            "payload is not a whole number of records"
        );
        let n = (payload.len() / self.record_size).min(self.records_per_block());
        let bytes = n * self.record_size;
        let mut b = Block::zeroed(self.block_size);
        b.buffer_mut()[..bytes].copy_from_slice(&payload[..bytes]);
        b.set_valid_len(bytes);
        (b, n)
    }

    /// Number of records in a block's valid prefix.
    pub fn unpack_count(&self, block: &Block) -> usize {
        assert!(
            block.valid_len().is_multiple_of(self.record_size),
            "block holds a partial record"
        );
        block.valid_len() / self.record_size
    }

    /// Iterate the records stored in a block.
    pub fn unpack<'a>(&self, block: &'a Block) -> impl Iterator<Item = &'a [u8]> + 'a {
        let rs = self.record_size;
        let n = self.unpack_count(block);
        block.valid_bytes()[..n * rs].chunks_exact(rs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = RecordCodec::new(128, 4096);
        assert_eq!(c.records_per_block(), 32);
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(32), 1);
        assert_eq!(c.blocks_for(33), 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = RecordCodec::new(4, 16);
        let payload: Vec<u8> = (0..12).collect(); // 3 records
        let (b, n) = c.pack(&payload);
        assert_eq!(n, 3);
        assert_eq!(c.unpack_count(&b), 3);
        let recs: Vec<Vec<u8>> = c.unpack(&b).map(|r| r.to_vec()).collect();
        assert_eq!(recs, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11]]);
    }

    #[test]
    fn pack_caps_at_block_capacity() {
        let c = RecordCodec::new(4, 8); // 2 records per block
        let payload: Vec<u8> = (0..16).collect(); // 4 records offered
        let (b, n) = c.pack(&payload);
        assert_eq!(n, 2);
        assert_eq!(c.unpack_count(&b), 2);
    }

    #[test]
    fn partial_trailing_block_transfers_only_valid_bytes() {
        // 32 records per block; 70 records = 2 full blocks + 6 in a
        // partial tail. The tail's slack (26 records' worth of zeroes)
        // must not count toward the transfer.
        let c = RecordCodec::new(128, 4096);
        assert_eq!(c.blocks_for(70), 3);
        assert_eq!(c.tail_records(70), 6);
        assert_eq!(c.transfer_bytes(70), 70 * 128);
        assert!(c.transfer_bytes(70) < c.blocks_for(70) * 4096);
        assert_eq!(c.block_payload_bytes(0, 70), 4096);
        assert_eq!(c.block_payload_bytes(1, 70), 4096);
        assert_eq!(c.block_payload_bytes(2, 70), 6 * 128);
        // An exact multiple has no tail and every block is full.
        assert_eq!(c.tail_records(64), 0);
        assert_eq!(c.block_payload_bytes(1, 64), 4096);
        assert_eq!(c.transfer_bytes(64), c.blocks_for(64) * 4096);
    }

    #[test]
    fn pack_all_roundtrips_with_partial_tail() {
        let c = RecordCodec::new(4, 8); // 2 records per block
        let payload: Vec<u8> = (0..20).collect(); // 5 records
        let blocks = c.pack_all(&payload);
        assert_eq!(blocks.len(), 3);
        assert_eq!(c.unpack_count(&blocks[0]), 2);
        assert_eq!(c.unpack_count(&blocks[1]), 2);
        assert_eq!(c.unpack_count(&blocks[2]), 1, "partial tail");
        assert_eq!(blocks[2].valid_len(), 4);
        let recovered: Vec<u8> = blocks
            .iter()
            .flat_map(|b| c.unpack(b).flatten().copied().collect::<Vec<u8>>())
            .collect();
        assert_eq!(recovered, payload);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_payload_bytes_rejects_out_of_range() {
        RecordCodec::new(128, 4096).block_payload_bytes(3, 70);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_payload_rejected() {
        RecordCodec::new(4, 8).pack(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn block_must_fit_one_record() {
        RecordCodec::new(64, 32);
    }
}
