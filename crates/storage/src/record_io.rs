//! Packing fixed-size records into blocks.
//!
//! Containers store records; engines store blocks. [`RecordCodec`] is the
//! bridge: it lays `record_size`-byte records densely into a block and
//! recovers them, tracking how many fit per block.

use crate::block::Block;

/// Dense fixed-size record layout within fixed-size blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordCodec {
    record_size: usize,
    block_size: usize,
}

impl RecordCodec {
    /// A codec for `record_size`-byte records in `block_size`-byte blocks.
    /// Panics unless at least one record fits.
    pub fn new(record_size: usize, block_size: usize) -> Self {
        assert!(record_size > 0, "record size must be positive");
        assert!(
            block_size >= record_size,
            "block size {block_size} cannot hold a {record_size}-byte record"
        );
        RecordCodec {
            record_size,
            block_size,
        }
    }

    /// Record size in bytes.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Records that fit in one block.
    pub fn records_per_block(&self) -> usize {
        self.block_size / self.record_size
    }

    /// Blocks needed to store `n` records.
    pub fn blocks_for(&self, n: u64) -> u64 {
        n.div_ceil(self.records_per_block() as u64)
    }

    /// Pack up to `records_per_block` records (each exactly `record_size`
    /// bytes, concatenated in `payload`) into a block. Returns the block
    /// and the number of records packed.
    pub fn pack(&self, payload: &[u8]) -> (Block, usize) {
        assert!(
            payload.len().is_multiple_of(self.record_size),
            "payload is not a whole number of records"
        );
        let n = (payload.len() / self.record_size).min(self.records_per_block());
        let bytes = n * self.record_size;
        let mut b = Block::zeroed(self.block_size);
        b.buffer_mut()[..bytes].copy_from_slice(&payload[..bytes]);
        b.set_valid_len(bytes);
        (b, n)
    }

    /// Number of records in a block's valid prefix.
    pub fn unpack_count(&self, block: &Block) -> usize {
        assert!(
            block.valid_len().is_multiple_of(self.record_size),
            "block holds a partial record"
        );
        block.valid_len() / self.record_size
    }

    /// Iterate the records stored in a block.
    pub fn unpack<'a>(&self, block: &'a Block) -> impl Iterator<Item = &'a [u8]> + 'a {
        let rs = self.record_size;
        let n = self.unpack_count(block);
        block.valid_bytes()[..n * rs].chunks_exact(rs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = RecordCodec::new(128, 4096);
        assert_eq!(c.records_per_block(), 32);
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(32), 1);
        assert_eq!(c.blocks_for(33), 2);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = RecordCodec::new(4, 16);
        let payload: Vec<u8> = (0..12).collect(); // 3 records
        let (b, n) = c.pack(&payload);
        assert_eq!(n, 3);
        assert_eq!(c.unpack_count(&b), 3);
        let recs: Vec<Vec<u8>> = c.unpack(&b).map(|r| r.to_vec()).collect();
        assert_eq!(recs, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11]]);
    }

    #[test]
    fn pack_caps_at_block_capacity() {
        let c = RecordCodec::new(4, 8); // 2 records per block
        let payload: Vec<u8> = (0..16).collect(); // 4 records offered
        let (b, n) = c.pack(&payload);
        assert_eq!(n, 2);
        assert_eq!(c.unpack_count(&b), 2);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_payload_rejected() {
        RecordCodec::new(4, 8).pack(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn block_must_fit_one_record() {
        RecordCodec::new(64, 32);
    }
}
