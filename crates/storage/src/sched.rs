//! Queue-aware disk scheduler: elevator within a bounded window, FCFS
//! across windows.
//!
//! Sink functors on one ASU interleave their output streams; issued
//! verbatim, adjacent blocks of one stream are separated by blocks of the
//! others and every media charge is small. The scheduler buffers up to
//! `window` requests, and on drain sorts the window by `(tag, kind,
//! block, seq)` — `tag` identifies the issuing functor instance — and
//! merges contiguous same-tag same-kind runs into single sequential
//! charges.
//!
//! Determinism argument: drain points depend only on the *count* of
//! submitted requests (the window fills) or on explicit drain calls, and
//! the sort key is pure request content with the arrival sequence number
//! as the final tie-break. Nothing depends on wall-clock, hashing order,
//! or thread interleaving, so identical runs produce identical issue
//! orders. Across windows the scheduler is FCFS — a request can be
//! reordered only within the window it arrived in, which bounds both
//! starvation and the reasoning needed to replay a trace.

use lmas_sim::SimTime;

/// One buffered request: `blocks` blocks starting at `first_block`,
/// `bytes` of valid payload in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoReq {
    /// Issuing stream identity (functor instance); runs never merge
    /// across tags.
    pub tag: u64,
    /// First block of the request.
    pub first_block: u64,
    /// Length in blocks.
    pub blocks: u64,
    /// Valid payload bytes across the run (the tail block may be
    /// partial).
    pub bytes: u64,
    /// True for writes, false for reads.
    pub write: bool,
    /// Arrival sequence number (assigned by the scheduler).
    pub seq: u64,
}

/// The bounded-window scheduler.
#[derive(Debug)]
pub struct DiskScheduler {
    window: usize,
    buf: Vec<IoReq>,
    next_seq: u64,
}

impl DiskScheduler {
    /// New scheduler reordering within windows of `window` requests.
    /// `window == 1` degenerates to pure FCFS.
    pub fn new(window: usize) -> DiskScheduler {
        assert!(window >= 1, "window must hold at least one request");
        DiskScheduler {
            window,
            buf: Vec::with_capacity(window),
            next_seq: 0,
        }
    }

    /// Buffer a request; returns its arrival sequence number. Callers
    /// check [`is_full`](Self::is_full) afterwards and drain when the
    /// window closes.
    pub fn submit(
        &mut self,
        tag: u64,
        first_block: u64,
        blocks: u64,
        bytes: u64,
        write: bool,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push(IoReq {
            tag,
            first_block,
            blocks,
            bytes,
            write,
            seq,
        });
        seq
    }

    /// Whether the current window is full (time to drain).
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.window
    }

    /// Buffered requests awaiting drain.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Close the window: sort it by `(tag, kind, block, seq)`, merge
    /// contiguous same-tag same-kind runs, and hand each merged request
    /// to `charge` (which applies it to the media and returns its
    /// completion). Returns `(seq, completion)` for every buffered
    /// request, in arrival order.
    pub fn drain_with(
        &mut self,
        mut charge: impl FnMut(&IoReq) -> SimTime,
    ) -> Vec<(u64, SimTime)> {
        let mut window = std::mem::take(&mut self.buf);
        window.sort_by_key(|r| (r.tag, r.write, r.first_block, r.seq));
        let mut done: Vec<(u64, SimTime)> = Vec::with_capacity(window.len());
        let mut i = 0;
        while i < window.len() {
            let mut merged = window[i];
            let mut j = i + 1;
            while j < window.len()
                && window[j].tag == merged.tag
                && window[j].write == merged.write
                && window[j].first_block == merged.first_block + merged.blocks
            {
                merged.blocks += window[j].blocks;
                merged.bytes += window[j].bytes;
                j += 1;
            }
            let t = charge(&merged);
            for r in &window[i..j] {
                done.push((r.seq, t));
            }
            i = j;
        }
        done.sort_by_key(|&(seq, _)| seq);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain recording merged requests; completion = request count.
    fn drain_recording(s: &mut DiskScheduler) -> (Vec<IoReq>, Vec<(u64, SimTime)>) {
        let mut issued = Vec::new();
        let done = s.drain_with(|r| {
            issued.push(*r);
            SimTime(issued.len() as u64)
        });
        (issued, done)
    }

    #[test]
    fn window_fills_then_reports_full() {
        let mut s = DiskScheduler::new(3);
        assert!(!s.is_full());
        s.submit(0, 0, 1, 100, true);
        s.submit(0, 1, 1, 100, true);
        assert!(!s.is_full());
        s.submit(0, 2, 1, 100, true);
        assert!(s.is_full());
        assert_eq!(s.pending(), 3);
    }

    #[test]
    fn contiguous_same_tag_runs_merge() {
        let mut s = DiskScheduler::new(8);
        // Two interleaved streams, each sequential on its own extent.
        s.submit(1, 10, 1, 100, true);
        s.submit(2, 50, 1, 100, true);
        s.submit(1, 11, 1, 100, true);
        s.submit(2, 51, 1, 100, true);
        s.submit(1, 12, 1, 100, true);
        let (issued, done) = drain_recording(&mut s);
        // One merged request per stream.
        assert_eq!(issued.len(), 2);
        assert_eq!((issued[0].tag, issued[0].first_block, issued[0].blocks), (1, 10, 3));
        assert_eq!((issued[1].tag, issued[1].first_block, issued[1].blocks), (2, 50, 2));
        assert_eq!(issued[0].bytes, 300);
        // Every submitted request got a completion, in arrival order.
        assert_eq!(done.iter().map(|&(s, _)| s).collect::<Vec<_>>(), [0, 1, 2, 3, 4]);
    }

    #[test]
    fn different_tags_never_merge() {
        let mut s = DiskScheduler::new(4);
        s.submit(1, 10, 1, 100, true);
        s.submit(2, 11, 1, 100, true);
        let (issued, _) = drain_recording(&mut s);
        assert_eq!(issued.len(), 2, "adjacent blocks of different streams stay separate");
    }

    #[test]
    fn reads_and_writes_never_merge() {
        let mut s = DiskScheduler::new(4);
        s.submit(1, 10, 1, 100, false);
        s.submit(1, 11, 1, 100, true);
        let (issued, _) = drain_recording(&mut s);
        assert_eq!(issued.len(), 2);
    }

    #[test]
    fn drain_is_deterministic_for_identical_submissions() {
        let submit_all = |s: &mut DiskScheduler| {
            for (tag, b) in [(3u64, 7u64), (1, 4), (3, 8), (1, 3), (2, 0)] {
                s.submit(tag, b, 1, 10, true);
            }
        };
        let mut a = DiskScheduler::new(8);
        let mut b = DiskScheduler::new(8);
        submit_all(&mut a);
        submit_all(&mut b);
        let (ia, da) = drain_recording(&mut a);
        let (ib, db) = drain_recording(&mut b);
        assert_eq!(ia, ib);
        assert_eq!(da, db);
    }

    #[test]
    fn fcfs_across_windows() {
        // Window of 2: blocks 5,9 drain before the later-but-lower 1.
        let mut s = DiskScheduler::new(2);
        s.submit(0, 5, 1, 10, true);
        s.submit(0, 9, 1, 10, true);
        let (first, _) = drain_recording(&mut s);
        s.submit(0, 1, 1, 10, true);
        let (second, _) = drain_recording(&mut s);
        assert_eq!(first.iter().map(|r| r.first_block).collect::<Vec<_>>(), [5, 9]);
        assert_eq!(second.iter().map(|r| r.first_block).collect::<Vec<_>>(), [1]);
    }
}
