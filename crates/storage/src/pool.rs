//! Sharded buffer pool with clock-LRU eviction and write-behind
//! coalescing.
//!
//! TPIE's BTE keeps a cache of blocks between the application and the
//! media; this module is that cache for the emulated substrate. Frames
//! live in shards so contiguous block runs share a shard (the shard key
//! is `block / SHARD_SPAN`), which lets eviction coalesce *adjacent*
//! dirty blocks — found by walking the shard's block map left and right
//! from the victim — into one sequential disk charge.
//!
//! Timing rules, all in virtual time:
//!
//! - **Read hit**: the requester proceeds at `now`; no media charge.
//! - **Read miss**: a frame is claimed (evicting via the clock hand if
//!   needed) and the block is charged as a media read; the requester
//!   proceeds when the media delivers.
//! - **Write**: always write-behind — the frame is marked dirty and the
//!   requester proceeds at `now`. Media charges happen later, coalesced,
//!   when the frame is evicted or the pool is flushed.
//! - **Pinned** frames are never evicted; if every frame of a shard is
//!   pinned, the access bypasses the pool and is charged directly.
//!
//! Everything is deterministic: the clock hand advances by frame index,
//! shards are scanned in order, and flush writes dirty blocks in sorted
//! block order — two identical runs evict in identical order (see the
//! fixed-seed proptest in `tests/pool_properties.rs`).

use crate::stripe::StripedDisk;
use lmas_sim::SimTime;
use std::collections::HashMap;

/// Blocks spanned by one shard stride: adjacent blocks map to the same
/// shard so eviction-time coalescing can see whole runs. This bounds the
/// coalescing window to 64 blocks.
pub const SHARD_SPAN: u64 = 64;

/// Buffer pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct PoolParams {
    /// Total frames across all shards (0 disables pooling — callers gate
    /// on this before constructing a pool).
    pub frames: usize,
    /// Number of shards; clamped to `[1, frames]`.
    pub shards: usize,
}

/// Pool activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses (reads and writes) satisfied by a resident frame.
    pub hits: u64,
    /// Accesses that had to claim a frame.
    pub misses: u64,
    /// Valid frames evicted to make room.
    pub evictions: u64,
    /// Coalesced write-back events (one sequential media charge each).
    pub writebacks: u64,
    /// Dirty blocks written back by eviction-time coalescing.
    pub writeback_blocks: u64,
    /// Dirty blocks written out by [`BufferPool::flush`].
    pub flushed_blocks: u64,
    /// Accesses that bypassed the pool because every candidate frame was
    /// pinned.
    pub bypasses: u64,
}

impl PoolStats {
    /// Hit rate over all pooled accesses, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An eviction-order event, recorded only when logging is enabled
/// (determinism and never-drop-dirty tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// A valid frame holding `block` was evicted.
    Evict {
        /// The block that lost its frame.
        block: u64,
    },
    /// Eviction coalesced the dirty run `[first, first + blocks)` into
    /// one media write.
    Writeback {
        /// First block of the run.
        first: u64,
        /// Run length in blocks.
        blocks: u64,
    },
    /// Flush wrote the dirty run `[first, first + blocks)`.
    Flush {
        /// First block of the run.
        first: u64,
        /// Run length in blocks.
        blocks: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    block: u64,
    bytes: u64,
    dirty: bool,
    referenced: bool,
    pins: u32,
    valid: bool,
}

const EMPTY_FRAME: Frame = Frame {
    block: 0,
    bytes: 0,
    dirty: false,
    referenced: false,
    pins: 0,
    valid: false,
};

#[derive(Debug)]
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
}

/// The sharded clock-LRU buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    shards: Vec<Shard>,
    stats: PoolStats,
    log: Option<Vec<PoolEvent>>,
}

impl BufferPool {
    /// New pool with `params.frames` frames spread over `params.shards`
    /// shards (earlier shards take the remainder).
    pub fn new(params: PoolParams) -> BufferPool {
        assert!(params.frames > 0, "a pool needs at least one frame");
        let nshards = params.shards.clamp(1, params.frames);
        let base = params.frames / nshards;
        let rem = params.frames % nshards;
        let shards = (0..nshards)
            .map(|i| Shard {
                frames: vec![EMPTY_FRAME; base + usize::from(i < rem)],
                map: HashMap::new(),
                hand: 0,
            })
            .collect();
        BufferPool {
            shards,
            stats: PoolStats::default(),
            log: None,
        }
    }

    /// Enable event logging (tests); returns `self` for chaining.
    pub fn with_logging(mut self) -> BufferPool {
        self.log = Some(Vec::new());
        self
    }

    /// Drain the recorded event log (empty unless logging is enabled).
    pub fn take_log(&mut self) -> Vec<PoolEvent> {
        self.log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Activity counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: u64) -> bool {
        self.shards[self.shard_of(block)].map.contains_key(&block)
    }

    /// Resident blocks in sorted order (test introspection).
    pub fn resident_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.map.keys().copied())
            .collect();
        v.sort_unstable();
        v
    }

    /// Resident *dirty* blocks in sorted order (test introspection).
    pub fn dirty_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.frames
                    .iter()
                    .filter(|f| f.valid && f.dirty)
                    .map(|f| f.block)
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Read `block` (`bytes` of valid payload) at `now` through the pool;
    /// returns `(ready, hit)`.
    pub fn read(
        &mut self,
        now: SimTime,
        block: u64,
        bytes: u64,
        disk: &mut StripedDisk,
    ) -> (SimTime, bool) {
        let si = self.shard_of(block);
        if let Some(&i) = self.shards[si].map.get(&block) {
            self.stats.hits += 1;
            self.shards[si].frames[i].referenced = true;
            return (now, true);
        }
        self.stats.misses += 1;
        match self.claim_frame(si, now, disk) {
            Some(i) => {
                let shard = &mut self.shards[si];
                shard.frames[i] = Frame {
                    block,
                    bytes,
                    dirty: false,
                    referenced: true,
                    pins: 0,
                    valid: true,
                };
                shard.map.insert(block, i);
                (disk.read_blocks(now, &[(block, bytes)]), false)
            }
            // Every frame pinned: charge the media directly.
            None => {
                self.stats.bypasses += 1;
                (disk.read_blocks(now, &[(block, bytes)]), false)
            }
        }
    }

    /// Write `block` (`bytes` of valid payload) at `now` through the pool
    /// (write-behind); returns when the caller may proceed.
    pub fn write(
        &mut self,
        now: SimTime,
        block: u64,
        bytes: u64,
        disk: &mut StripedDisk,
    ) -> SimTime {
        let si = self.shard_of(block);
        if let Some(&i) = self.shards[si].map.get(&block) {
            self.stats.hits += 1;
            let f = &mut self.shards[si].frames[i];
            f.bytes = bytes;
            f.dirty = true;
            f.referenced = true;
            return now;
        }
        self.stats.misses += 1;
        match self.claim_frame(si, now, disk) {
            Some(i) => {
                let shard = &mut self.shards[si];
                shard.frames[i] = Frame {
                    block,
                    bytes,
                    dirty: true,
                    referenced: true,
                    pins: 0,
                    valid: true,
                };
                shard.map.insert(block, i);
                now
            }
            None => {
                self.stats.bypasses += 1;
                disk.write_blocks(now, &[(block, bytes)]);
                now
            }
        }
    }

    /// Pin `block` against eviction; returns false if it is not resident.
    pub fn pin(&mut self, block: u64) -> bool {
        let si = self.shard_of(block);
        if let Some(&i) = self.shards[si].map.get(&block) {
            self.shards[si].frames[i].pins += 1;
            true
        } else {
            false
        }
    }

    /// Drop one pin from `block` (no-op if absent or unpinned).
    pub fn unpin(&mut self, block: u64) {
        let si = self.shard_of(block);
        if let Some(&i) = self.shards[si].map.get(&block) {
            let f = &mut self.shards[si].frames[i];
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Write out every dirty block (coalescing contiguous runs into one
    /// sequential charge each) and return when the media quiesces. Frames
    /// stay resident and become clean.
    pub fn flush(&mut self, now: SimTime, disk: &mut StripedDisk) -> SimTime {
        let dirty = self.dirty_blocks();
        let mut i = 0;
        while i < dirty.len() {
            // Maximal contiguous run starting at dirty[i].
            let mut j = i + 1;
            while j < dirty.len() && dirty[j] == dirty[j - 1] + 1 {
                j += 1;
            }
            let run: Vec<(u64, u64)> = dirty[i..j]
                .iter()
                .map(|&b| (b, self.frame_bytes(b)))
                .collect();
            disk.write_blocks(now, &run);
            for &b in &dirty[i..j] {
                self.mark_clean(b);
            }
            self.stats.flushed_blocks += (j - i) as u64;
            if let Some(log) = &mut self.log {
                log.push(PoolEvent::Flush {
                    first: dirty[i],
                    blocks: (j - i) as u64,
                });
            }
            i = j;
        }
        disk.quiesce_time()
    }

    fn shard_of(&self, block: u64) -> usize {
        ((block / SHARD_SPAN) % self.shards.len() as u64) as usize
    }

    fn frame_bytes(&self, block: u64) -> u64 {
        let si = self.shard_of(block);
        self.shards[si].frames[self.shards[si].map[&block]].bytes
    }

    fn mark_clean(&mut self, block: u64) {
        let si = self.shard_of(block);
        if let Some(&i) = self.shards[si].map.get(&block) {
            self.shards[si].frames[i].dirty = false;
        }
    }

    /// Claim a frame in shard `si` via the clock hand, writing back the
    /// victim's dirty run if needed. `None` if every frame is pinned.
    fn claim_frame(&mut self, si: usize, now: SimTime, disk: &mut StripedDisk) -> Option<usize> {
        let i = {
            let shard = &mut self.shards[si];
            let n = shard.frames.len();
            let mut found = None;
            // Two sweeps: the first clears reference bits, the second must
            // then find an unreferenced unpinned frame (unless all pinned).
            for _ in 0..2 * n {
                let i = shard.hand;
                shard.hand = (shard.hand + 1) % n;
                let f = &mut shard.frames[i];
                if !f.valid {
                    found = Some(i);
                    break;
                }
                if f.pins > 0 {
                    continue;
                }
                if f.referenced {
                    f.referenced = false;
                    continue;
                }
                found = Some(i);
                break;
            }
            found?
        };
        let victim = self.shards[si].frames[i];
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.writeback_run(si, victim.block, now, disk);
            }
            if let Some(log) = &mut self.log {
                log.push(PoolEvent::Evict {
                    block: victim.block,
                });
            }
            self.shards[si].map.remove(&victim.block);
        }
        Some(i)
    }

    /// Coalesce the maximal run of resident dirty unpinned blocks around
    /// `center` (walking the shard map left and right) into one
    /// sequential media charge; all blocks in the run become clean.
    fn writeback_run(&mut self, si: usize, center: u64, now: SimTime, disk: &mut StripedDisk) {
        let coalescible = |shard: &Shard, b: u64| {
            shard
                .map
                .get(&b)
                .is_some_and(|&i| shard.frames[i].dirty && shard.frames[i].pins == 0)
        };
        let shard = &self.shards[si];
        let mut lo = center;
        while lo > 0 && coalescible(shard, lo - 1) {
            lo -= 1;
        }
        let mut hi = center;
        while hi < u64::MAX && coalescible(shard, hi + 1) {
            hi += 1;
        }
        let run: Vec<(u64, u64)> = (lo..=hi).map(|b| (b, self.frame_bytes(b))).collect();
        disk.write_blocks(now, &run);
        for b in lo..=hi {
            self.mark_clean(b);
        }
        self.stats.writebacks += 1;
        self.stats.writeback_blocks += hi - lo + 1;
        if let Some(log) = &mut self.log {
            log.push(PoolEvent::Writeback {
                first: lo,
                blocks: hi - lo + 1,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk_model::DiskParams;
    use lmas_sim::SimDuration;

    fn disk() -> StripedDisk {
        StripedDisk::new(
            DiskParams {
                rate_bytes_per_sec: 1e6,
                per_request_overhead: SimDuration::ZERO,
                readahead_window: 0,
            },
            1,
            16,
            1_000,
            SimDuration::from_millis(1),
        )
    }

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(PoolParams { frames, shards: 1 })
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn read_hit_is_free_and_instant() {
        let mut d = disk();
        let mut p = pool(4);
        let (t1, hit1) = p.read(T0, 7, 1_000, &mut d);
        assert!(!hit1);
        assert!(t1 > T0, "miss pays media time");
        let (t2, hit2) = p.read(t1, 7, 1_000, &mut d);
        assert!(hit2);
        assert_eq!(t2, t1, "hit is instant");
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn write_behind_defers_and_coalesces_on_flush() {
        let mut d = disk();
        let mut p = pool(8);
        for b in 0..4u64 {
            assert_eq!(p.write(T0, b, 1_000, &mut d), T0, "write-behind");
        }
        assert_eq!(d.stats().writes, 0, "no media charge yet");
        p.flush(T0, &mut d);
        // One coalesced sequential write of 4 contiguous blocks.
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes_written, 4_000);
        assert_eq!(p.stats().flushed_blocks, 4);
        assert!(p.dirty_blocks().is_empty());
    }

    #[test]
    fn eviction_coalesces_adjacent_dirty_blocks() {
        let mut d = disk();
        let mut p = pool(4).with_logging();
        for b in 0..4u64 {
            p.write(T0, b, 1_000, &mut d);
        }
        // Fifth write forces an eviction; the victim's whole dirty
        // neighbourhood (blocks 0..4) goes out as one charge.
        p.write(T0, 100, 1_000, &mut d);
        assert_eq!(p.stats().writebacks, 1);
        assert_eq!(p.stats().writeback_blocks, 4);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().bytes_written, 4_000);
        assert!(p
            .take_log()
            .contains(&PoolEvent::Writeback { first: 0, blocks: 4 }));
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let mut d = disk();
        let mut p = pool(2);
        p.write(T0, 1, 1_000, &mut d);
        assert!(p.pin(1));
        // Storm of other blocks: block 1 must stay resident.
        for b in 10..30u64 {
            p.read(T0, b, 1_000, &mut d);
        }
        assert!(p.contains(1));
        assert!(p.dirty_blocks().contains(&1));
        p.unpin(1);
        for b in 30..40u64 {
            p.read(T0, b, 1_000, &mut d);
        }
        assert!(!p.contains(1), "unpinned frame becomes evictable");
        // Its dirty payload was written back, not dropped.
        assert_eq!(d.stats().bytes_written, 1_000);
    }

    #[test]
    fn all_pinned_shard_bypasses_pool() {
        let mut d = disk();
        let mut p = pool(2);
        p.read(T0, 1, 1_000, &mut d);
        p.read(T0, 2, 1_000, &mut d);
        assert!(p.pin(1));
        assert!(p.pin(2));
        let (_, hit) = p.read(T0, 3, 1_000, &mut d);
        assert!(!hit);
        assert!(!p.contains(3), "bypass does not install a frame");
        assert_eq!(p.stats().bypasses, 1);
    }

    #[test]
    fn hit_rate_is_hits_over_accesses() {
        let mut d = disk();
        let mut p = pool(4);
        p.read(T0, 0, 1_000, &mut d);
        p.read(T0, 0, 1_000, &mut d);
        p.read(T0, 0, 1_000, &mut d);
        p.read(T0, 1, 1_000, &mut d);
        assert!((p.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
