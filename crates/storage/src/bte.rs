//! The Block Transfer Engine (BTE) abstraction.
//!
//! TPIE — the external-memory toolkit the paper extends — abstracts the
//! underlying storage system behind a pluggable BTE. We keep the same
//! seam: containers and the emulator speak [`BlockTransferEngine`], and an
//! engine may live in memory (tests, emulation) or on the filesystem
//! (examples exercising real I/O).

use crate::block::{Block, BlockId, Extent};
use std::io;

/// Transfer counters — the single counter type shared by the block
/// engines, [`DiskSim`](crate::DiskSim), the striped array, and the
/// emulator's per-node reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BteStats {
    /// Read requests (blocks for a block engine, media requests for a
    /// timing model).
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Bytes read (valid payload).
    pub bytes_read: u64,
    /// Bytes written (valid payload).
    pub bytes_written: u64,
}

impl BteStats {
    /// The counters as a `(reads, writes, bytes_read, bytes_written)`
    /// tuple (legacy report shape).
    pub fn as_tuple(&self) -> (u64, u64, u64, u64) {
        (self.reads, self.writes, self.bytes_read, self.bytes_written)
    }

    /// Sum of two counter sets (aggregating a disk array).
    pub fn merged(self, other: BteStats) -> BteStats {
        BteStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }
}

impl std::ops::AddAssign for BteStats {
    fn add_assign(&mut self, other: BteStats) {
        *self = self.merged(other);
    }
}

/// A pluggable block store: fixed block size, id-addressed reads/writes.
pub trait BlockTransferEngine {
    /// The engine's block size in bytes.
    fn block_size(&self) -> usize;

    /// Allocate a contiguous extent of `len` blocks.
    fn allocate(&mut self, len: u64) -> Extent;

    /// Release an extent. Reading a freed block is an error.
    fn free(&mut self, extent: Extent) -> io::Result<()>;

    /// Write `block` at `id`. The block's capacity must equal the engine
    /// block size; only the valid prefix is meaningful.
    fn write_block(&mut self, id: BlockId, block: &Block) -> io::Result<()>;

    /// Read the block at `id`.
    fn read_block(&mut self, id: BlockId) -> io::Result<Block>;

    /// Transfer counters.
    fn stats(&self) -> BteStats;
}

/// Validate a block against an engine's block size; shared by engines.
pub(crate) fn check_block_size(engine_bs: usize, block: &Block) -> io::Result<()> {
    if block.capacity() != engine_bs {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "block capacity {} does not match engine block size {}",
                block.capacity(),
                engine_bs
            ),
        ));
    }
    Ok(())
}
