//! In-memory block transfer engine.
//!
//! The default engine for emulation and tests: block contents live in a
//! hash map, I/O *timing* is supplied separately by the emulator's disk
//! model, so storing data in host memory does not distort measurements.

use crate::block::{Block, BlockId, Extent, ExtentAllocator};
use crate::bte::{check_block_size, BlockTransferEngine, BteStats};
use std::collections::HashMap;
use std::io;

/// A heap-backed BTE.
#[derive(Debug)]
pub struct MemoryBte {
    block_size: usize,
    blocks: HashMap<BlockId, Vec<u8>>, // stored as (valid_len prefix) full buffers
    valid: HashMap<BlockId, usize>,
    allocator: ExtentAllocator,
    stats: BteStats,
}

impl MemoryBte {
    /// New engine with the given block size (bytes).
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        MemoryBte {
            block_size,
            blocks: HashMap::new(),
            valid: HashMap::new(),
            allocator: ExtentAllocator::new(),
            stats: BteStats::default(),
        }
    }

    /// Number of blocks currently stored.
    pub fn stored_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks live per the allocator (allocated − freed).
    pub fn live_blocks(&self) -> u64 {
        self.allocator.live()
    }
}

impl BlockTransferEngine for MemoryBte {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn allocate(&mut self, len: u64) -> Extent {
        self.allocator.allocate(len)
    }

    fn free(&mut self, extent: Extent) -> io::Result<()> {
        for id in extent.blocks() {
            self.blocks.remove(&id);
            self.valid.remove(&id);
        }
        self.allocator.free(extent);
        Ok(())
    }

    fn write_block(&mut self, id: BlockId, block: &Block) -> io::Result<()> {
        check_block_size(self.block_size, block)?;
        self.blocks.insert(id, block.buffer().to_vec());
        self.valid.insert(id, block.valid_len());
        self.stats.writes += 1;
        self.stats.bytes_written += block.valid_len() as u64;
        Ok(())
    }

    fn read_block(&mut self, id: BlockId) -> io::Result<Block> {
        let data = self.blocks.get(&id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("block {id:?} was never written or has been freed"),
            )
        })?;
        let mut b = Block::zeroed(self.block_size);
        b.buffer_mut().copy_from_slice(data);
        b.set_valid_len(self.valid[&id]);
        self.stats.reads += 1;
        self.stats.bytes_read += b.valid_len() as u64;
        Ok(b)
    }

    fn stats(&self) -> BteStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_block(bs: usize, byte: u8, valid: usize) -> Block {
        let mut b = Block::zeroed(bs);
        for x in &mut b.buffer_mut()[..valid] {
            *x = byte;
        }
        b.set_valid_len(valid);
        b
    }

    #[test]
    fn write_read_roundtrip() {
        let mut bte = MemoryBte::new(64);
        let e = bte.allocate(2);
        let b = filled_block(64, 0xAB, 10);
        bte.write_block(e.first, &b).unwrap();
        let back = bte.read_block(e.first).unwrap();
        assert_eq!(back.valid_bytes(), b.valid_bytes());
        assert_eq!(back.valid_len(), 10);
    }

    #[test]
    fn reading_unwritten_block_errors() {
        let mut bte = MemoryBte::new(64);
        let e = bte.allocate(1);
        let err = bte.read_block(e.first).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn free_releases_contents() {
        let mut bte = MemoryBte::new(32);
        let e = bte.allocate(1);
        bte.write_block(e.first, &filled_block(32, 1, 32)).unwrap();
        assert_eq!(bte.stored_blocks(), 1);
        bte.free(e).unwrap();
        assert_eq!(bte.stored_blocks(), 0);
        assert_eq!(bte.live_blocks(), 0);
        assert!(bte.read_block(e.first).is_err());
    }

    #[test]
    fn wrong_block_size_rejected() {
        let mut bte = MemoryBte::new(64);
        let e = bte.allocate(1);
        let err = bte.write_block(e.first, &filled_block(32, 0, 0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn stats_count_payload_bytes() {
        let mut bte = MemoryBte::new(64);
        let e = bte.allocate(2);
        bte.write_block(e.first, &filled_block(64, 1, 40)).unwrap();
        bte.write_block(e.first.offset(1), &filled_block(64, 2, 64)).unwrap();
        bte.read_block(e.first).unwrap();
        let s = bte.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 104);
        assert_eq!(s.bytes_read, 40);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut bte = MemoryBte::new(16);
        let e = bte.allocate(1);
        bte.write_block(e.first, &filled_block(16, 1, 16)).unwrap();
        bte.write_block(e.first, &filled_block(16, 2, 8)).unwrap();
        let back = bte.read_block(e.first).unwrap();
        assert_eq!(back.valid_len(), 8);
        assert!(back.valid_bytes().iter().all(|&b| b == 2));
    }
}
