//! # lmas-storage — block transfer engines and disk timing models
//!
//! The storage substrate beneath the LMAS programming model, mirroring the
//! pluggable Block Transfer Engine (BTE) seam of TPIE, the external-memory
//! toolkit the paper extends:
//!
//! - [`block`]: blocks, ids, extents, a bump allocator;
//! - [`bte`]: the [`BlockTransferEngine`] trait and transfer counters;
//! - [`memory`]: heap-backed engine (default under emulation);
//! - [`file`]: flat-file engine for examples that exercise real I/O;
//! - [`disk_model`]: the paper's sequential-rate disk timing model with
//!   read-ahead and write-behind;
//! - [`record_io`]: packing fixed-size records into blocks;
//! - [`stripe`]: striped multi-disk extents (`d` spindles per ASU,
//!   deterministic block→disk placement, parallel virtual-time charges);
//! - [`pool`]: sharded clock-LRU buffer pool with pin/unpin, dirty
//!   tracking, and write-behind coalescing;
//! - [`sched`]: bounded-window elevator scheduler (FCFS across windows).
//!
//! Timing and contents are deliberately separated: any engine can hold the
//! bytes while [`DiskSim`] decides what the I/O *costs* in virtual time.

#![warn(missing_docs)]

pub mod block;
pub mod bte;
pub mod disk_model;
pub mod file;
pub mod memory;
pub mod pool;
pub mod record_io;
pub mod sched;
pub mod stripe;

pub use block::{Block, BlockId, Extent, ExtentAllocator};
pub use bte::{BlockTransferEngine, BteStats};
pub use disk_model::{DiskParams, DiskSim};
pub use file::FileBte;
pub use memory::MemoryBte;
pub use pool::{BufferPool, PoolEvent, PoolParams, PoolStats};
pub use record_io::RecordCodec;
pub use sched::{DiskScheduler, IoReq};
pub use stripe::StripedDisk;

/// Per-node storage substrate configuration: how many spindles, how they
/// are striped, and whether the buffer pool / scheduler / read-ahead
/// pipeline are engaged. The default (`d = 1`, pool off, window 1) is the
/// plain single-disk model and is byte-identical to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageSpec {
    /// Spindles per ASU brick (hosts always keep one).
    pub disks: usize,
    /// Stripe unit in blocks (round-robin granularity across spindles).
    pub blocks_per_stripe: u64,
    /// Block size in bytes for striping, pooling, and scheduling.
    pub block_bytes: u64,
    /// Buffer-pool frames per node; 0 disables the pool (and with it the
    /// staged read-ahead pipeline).
    pub pool_frames: usize,
    /// Buffer-pool shards.
    pub pool_shards: usize,
    /// Source read-ahead depth in packets: how many packets beyond the
    /// one being processed may be staged in pool frames. 0 = demand
    /// paging (only meaningful when the pool is on).
    pub read_ahead: usize,
    /// Let DSM-Sort functors pick `read_ahead` via their prefetch hints.
    pub auto_read_ahead: bool,
    /// Scheduler window in requests; 1 = pure FCFS (no scheduler).
    pub sched_window: usize,
}

impl Default for StorageSpec {
    fn default() -> StorageSpec {
        StorageSpec {
            disks: 1,
            blocks_per_stripe: 16,
            block_bytes: 64 << 10,
            pool_frames: 0,
            pool_shards: 4,
            read_ahead: 0,
            auto_read_ahead: false,
            sched_window: 1,
        }
    }
}

impl StorageSpec {
    /// The default spec with `d` spindles per ASU.
    pub fn striped(d: usize) -> StorageSpec {
        assert!(d > 0, "need at least one disk");
        StorageSpec {
            disks: d,
            ..StorageSpec::default()
        }
    }

    /// This spec with a buffer pool of `frames` frames.
    pub fn with_pool(mut self, frames: usize) -> StorageSpec {
        self.pool_frames = frames;
        self
    }

    /// This spec with a fixed source read-ahead depth of `k` packets.
    pub fn with_read_ahead(mut self, k: usize) -> StorageSpec {
        self.read_ahead = k;
        self
    }

    /// This spec with functor-driven read-ahead tuning.
    pub fn with_auto_read_ahead(mut self) -> StorageSpec {
        self.auto_read_ahead = true;
        self
    }

    /// This spec with a scheduler window of `w` requests.
    pub fn with_sched_window(mut self, w: usize) -> StorageSpec {
        assert!(w >= 1, "window must hold at least one request");
        self.sched_window = w;
        self
    }

    /// This spec with `b`-byte blocks.
    pub fn with_block_bytes(mut self, b: u64) -> StorageSpec {
        assert!(b > 0, "block size must be positive");
        self.block_bytes = b;
        self
    }

    /// Whether this spec is the plain legacy model (single spindle, no
    /// pool, no scheduler): nodes then charge the disk directly and the
    /// run is byte-identical to the pre-substrate emulator.
    pub fn is_plain(&self) -> bool {
        self.disks == 1 && self.pool_frames == 0 && self.sched_window <= 1
    }
}
