//! # lmas-storage — block transfer engines and disk timing models
//!
//! The storage substrate beneath the LMAS programming model, mirroring the
//! pluggable Block Transfer Engine (BTE) seam of TPIE, the external-memory
//! toolkit the paper extends:
//!
//! - [`block`]: blocks, ids, extents, a bump allocator;
//! - [`bte`]: the [`BlockTransferEngine`] trait and transfer counters;
//! - [`memory`]: heap-backed engine (default under emulation);
//! - [`file`]: flat-file engine for examples that exercise real I/O;
//! - [`disk_model`]: the paper's sequential-rate disk timing model with
//!   read-ahead and write-behind;
//! - [`record_io`]: packing fixed-size records into blocks.
//!
//! Timing and contents are deliberately separated: any engine can hold the
//! bytes while [`DiskSim`] decides what the I/O *costs* in virtual time.

#![warn(missing_docs)]

pub mod block;
pub mod bte;
pub mod disk_model;
pub mod file;
pub mod memory;
pub mod record_io;

pub use block::{Block, BlockId, Extent, ExtentAllocator};
pub use bte::{BlockTransferEngine, BteStats};
pub use disk_model::{DiskParams, DiskSim};
pub use file::FileBte;
pub use memory::MemoryBte;
pub use record_io::RecordCodec;
