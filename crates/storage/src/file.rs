//! File-backed block transfer engine.
//!
//! Stores blocks in a single flat file, one slot per block id (a slot is
//! `4 + block_size` bytes: a little-endian valid-length header followed by
//! the buffer). Used by examples and tests that want data to actually hit
//! the filesystem; the emulator's timing model is independent of which
//! engine holds the bytes.

use crate::block::{Block, BlockId, Extent, ExtentAllocator};
use crate::bte::{check_block_size, BlockTransferEngine, BteStats};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A flat-file BTE.
#[derive(Debug)]
pub struct FileBte {
    file: File,
    block_size: usize,
    allocator: ExtentAllocator,
    written: HashSet<BlockId>,
    stats: BteStats,
}

impl FileBte {
    /// Create (truncating) a backing file at `path`.
    pub fn create(path: &Path, block_size: usize) -> io::Result<Self> {
        assert!(block_size > 0, "block size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBte {
            file,
            block_size,
            allocator: ExtentAllocator::new(),
            written: HashSet::new(),
            stats: BteStats::default(),
        })
    }

    fn slot_size(&self) -> u64 {
        4 + self.block_size as u64
    }

    fn offset_of(&self, id: BlockId) -> u64 {
        id.0 * self.slot_size()
    }
}

impl BlockTransferEngine for FileBte {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn allocate(&mut self, len: u64) -> Extent {
        self.allocator.allocate(len)
    }

    fn free(&mut self, extent: Extent) -> io::Result<()> {
        for id in extent.blocks() {
            self.written.remove(&id);
        }
        self.allocator.free(extent);
        Ok(())
    }

    fn write_block(&mut self, id: BlockId, block: &Block) -> io::Result<()> {
        check_block_size(self.block_size, block)?;
        self.file.seek(SeekFrom::Start(self.offset_of(id)))?;
        self.file.write_all(&(block.valid_len() as u32).to_le_bytes())?;
        self.file.write_all(block.buffer())?;
        self.written.insert(id);
        self.stats.writes += 1;
        self.stats.bytes_written += block.valid_len() as u64;
        Ok(())
    }

    fn read_block(&mut self, id: BlockId) -> io::Result<Block> {
        if !self.written.contains(&id) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("block {id:?} was never written or has been freed"),
            ));
        }
        self.file.seek(SeekFrom::Start(self.offset_of(id)))?;
        let mut hdr = [0u8; 4];
        self.file.read_exact(&mut hdr)?;
        let valid = u32::from_le_bytes(hdr) as usize;
        if valid > self.block_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "corrupt slot header: valid length exceeds block size",
            ));
        }
        let mut b = Block::zeroed(self.block_size);
        self.file.read_exact(b.buffer_mut())?;
        b.set_valid_len(valid);
        self.stats.reads += 1;
        self.stats.bytes_read += valid as u64;
        Ok(b)
    }

    fn stats(&self) -> BteStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lmas-filebte-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_through_the_filesystem() {
        let path = tmp("roundtrip");
        let mut bte = FileBte::create(&path, 32).unwrap();
        let e = bte.allocate(3);
        for (i, id) in e.blocks().enumerate() {
            let mut b = Block::zeroed(32);
            b.buffer_mut()[0] = i as u8;
            b.set_valid_len(1 + i);
            bte.write_block(id, &b).unwrap();
        }
        for (i, id) in e.blocks().enumerate() {
            let b = bte.read_block(id).unwrap();
            assert_eq!(b.valid_len(), 1 + i);
            assert_eq!(b.valid_bytes()[0], i as u8);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn unwritten_read_is_not_found() {
        let path = tmp("notfound");
        let mut bte = FileBte::create(&path, 32).unwrap();
        let e = bte.allocate(1);
        assert_eq!(
            bte.read_block(e.first).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn freed_block_unreadable() {
        let path = tmp("freed");
        let mut bte = FileBte::create(&path, 16).unwrap();
        let e = bte.allocate(1);
        let mut b = Block::zeroed(16);
        b.set_valid_len(16);
        bte.write_block(e.first, &b).unwrap();
        bte.free(e).unwrap();
        assert!(bte.read_block(e.first).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn stats_match_memory_engine_semantics() {
        let path = tmp("stats");
        let mut bte = FileBte::create(&path, 64).unwrap();
        let e = bte.allocate(1);
        let mut b = Block::zeroed(64);
        b.set_valid_len(48);
        bte.write_block(e.first, &b).unwrap();
        bte.read_block(e.first).unwrap();
        let s = bte.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!((s.bytes_read, s.bytes_written), (48, 48));
        std::fs::remove_file(path).unwrap();
    }
}
