//! Striped multi-disk extents: one ASU, `d` spindles.
//!
//! The paper motivates ASUs as "aggregation of larger numbers of drives
//! behind each network port" and Section 6 scales per-node bandwidth with
//! the number of disks `D`. [`StripedDisk`] models that: it owns `d`
//! independent [`DiskSim`] timelines and maps blocks to disks
//! deterministically, so independent stripes are charged in *parallel*
//! virtual time and aggregate sequential bandwidth scales with `d`.
//!
//! Placement is round-robin over stripe *units* of several blocks
//! (`disk_of(b) = (b / blocks_per_stripe) % d`), not over single blocks:
//! adjacent blocks inside a unit share a spindle, so the buffer pool's
//! write-behind coalescing (merging adjacent dirty blocks into one
//! sequential charge) still finds contiguous runs on one disk, while
//! successive units fan out across all spindles.
//!
//! With `d == 1` every call delegates verbatim to the single underlying
//! [`DiskSim`], keeping the default configuration byte-identical to the
//! unstriped model.

use crate::bte::BteStats;
use crate::disk_model::{DiskParams, DiskSim};
use lmas_sim::{SimDuration, SimTime};

/// An array of `d` disk timelines with deterministic block→disk striping.
#[derive(Debug)]
pub struct StripedDisk {
    disks: Vec<DiskSim>,
    blocks_per_stripe: u64,
    stripe_bytes: u64,
}

impl StripedDisk {
    /// New array of `disks` identical spindles. `blocks_per_stripe` sets
    /// the stripe unit (in blocks of `block_bytes`); `bin_width` sets the
    /// per-disk utilization-series resolution.
    pub fn new(
        params: DiskParams,
        disks: usize,
        blocks_per_stripe: u64,
        block_bytes: u64,
        bin_width: SimDuration,
    ) -> StripedDisk {
        assert!(disks > 0, "need at least one disk");
        assert!(blocks_per_stripe > 0, "stripe unit must be at least one block");
        assert!(block_bytes > 0, "block size must be positive");
        StripedDisk {
            disks: (0..disks).map(|_| DiskSim::new(params, bin_width)).collect(),
            blocks_per_stripe,
            stripe_bytes: blocks_per_stripe * block_bytes,
        }
    }

    /// Number of spindles.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Deterministic block→disk placement: round-robin over stripe units.
    pub fn disk_of(&self, block: u64) -> usize {
        ((block / self.blocks_per_stripe) % self.disks.len() as u64) as usize
    }

    /// Sequential byte-stream read of `bytes` posted at `now`; the stream
    /// is striped across all spindles in stripe-unit segments charged in
    /// parallel, and the caller resumes when the slowest spindle delivers.
    pub fn read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        if self.disks.len() == 1 {
            return self.disks[0].read(now, bytes);
        }
        let mut ready = now;
        for (i, chunk) in self.split_stream(bytes).into_iter().enumerate() {
            if chunk > 0 {
                ready = ready.max(self.disks[i].read(now, chunk));
            }
        }
        ready
    }

    /// Sequential byte-stream write of `bytes` posted at `now`
    /// (write-behind per spindle); returns when the caller may proceed,
    /// i.e. when the slowest spindle has absorbed its previous work.
    pub fn write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        if self.disks.len() == 1 {
            return self.disks[0].write(now, bytes);
        }
        let mut proceed = now;
        for (i, chunk) in self.split_stream(bytes).into_iter().enumerate() {
            if chunk > 0 {
                proceed = proceed.max(self.disks[i].write(now, chunk));
            }
        }
        proceed
    }

    /// Read the given `(block, bytes)` run at `now`. Consecutive entries
    /// on the same spindle are charged as one sequential request; groups
    /// on different spindles are charged in parallel. Returns when every
    /// group has been delivered.
    pub fn read_blocks(&mut self, now: SimTime, run: &[(u64, u64)]) -> SimTime {
        let mut ready = now;
        self.for_each_group(run, |disks, disk, bytes| {
            ready = ready.max(disks[disk].read(now, bytes));
        });
        ready
    }

    /// Write the given `(block, bytes)` run at `now` (write-behind), with
    /// the same per-spindle grouping as [`read_blocks`](Self::read_blocks).
    /// Returns when the caller may proceed.
    pub fn write_blocks(&mut self, now: SimTime, run: &[(u64, u64)]) -> SimTime {
        let mut proceed = now;
        self.for_each_group(run, |disks, disk, bytes| {
            proceed = proceed.max(disks[disk].write(now, bytes));
        });
        proceed
    }

    /// Change every spindle's media rate (fault injection degrades the
    /// whole brick uniformly).
    pub fn set_rate(&mut self, rate_bytes_per_sec: f64) {
        for d in &mut self.disks {
            d.set_rate(rate_bytes_per_sec);
        }
    }

    /// When all issued media work on every spindle completes.
    pub fn quiesce_time(&self) -> SimTime {
        self.disks
            .iter()
            .map(|d| d.quiesce_time())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregate transfer counters across all spindles.
    pub fn stats(&self) -> BteStats {
        self.disks
            .iter()
            .fold(BteStats::default(), |acc, d| acc.merged(d.stats()))
    }

    /// Aggregate counters as the legacy report tuple.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        self.stats().as_tuple()
    }

    /// Per-spindle transfer counters, in disk order.
    pub fn per_disk_stats(&self) -> Vec<BteStats> {
        self.disks.iter().map(|d| d.stats()).collect()
    }

    /// Per-spindle media busy time, in disk order.
    pub fn per_disk_busy(&self) -> Vec<SimDuration> {
        self.disks.iter().map(|d| d.total_busy()).collect()
    }

    /// Total media busy time summed over spindles.
    pub fn total_busy(&self) -> SimDuration {
        self.disks
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + d.total_busy())
    }

    /// Mean media utilization series over `[0, horizon]`, averaged across
    /// spindles (an idle spindle drags the array's utilization down, which
    /// is exactly what a load report should show).
    pub fn utilization_series(&self, horizon: SimTime) -> Vec<f64> {
        let per: Vec<Vec<f64>> = self
            .disks
            .iter()
            .map(|d| d.utilization_series(horizon))
            .collect();
        let bins = per.iter().map(|s| s.len()).max().unwrap_or(0);
        let n = self.disks.len() as f64;
        (0..bins)
            .map(|b| per.iter().map(|s| s.get(b).copied().unwrap_or(0.0)).sum::<f64>() / n)
            .collect()
    }

    /// Split a sequential byte stream into per-disk totals: stripe units
    /// round-robin across spindles, the tail unit may be partial.
    fn split_stream(&self, bytes: u64) -> Vec<u64> {
        let d = self.disks.len() as u64;
        let mut per = vec![0u64; self.disks.len()];
        if bytes == 0 {
            return per;
        }
        let units = bytes.div_ceil(self.stripe_bytes);
        let full_cycles = units / d;
        let rem_units = units % d;
        for (i, p) in per.iter_mut().enumerate() {
            *p = full_cycles * self.stripe_bytes
                + if (i as u64) < rem_units { self.stripe_bytes } else { 0 };
        }
        // The last unit is partial unless bytes is a multiple of the unit.
        let slack = units * self.stripe_bytes - bytes;
        per[((units - 1) % d) as usize] -= slack;
        per
    }

    /// Group consecutive `run` entries by spindle and hand each maximal
    /// group (one sequential request on that spindle) to `f`.
    fn for_each_group(&mut self, run: &[(u64, u64)], mut f: impl FnMut(&mut [DiskSim], usize, u64)) {
        let mut i = 0;
        while i < run.len() {
            let disk = self.disk_of(run[i].0);
            let mut bytes = run[i].1;
            let mut j = i + 1;
            while j < run.len() && self.disk_of(run[j].0) == disk {
                bytes += run[j].1;
                j += 1;
            }
            f(&mut self.disks, disk, bytes);
            i = j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rate: f64) -> DiskParams {
        DiskParams {
            rate_bytes_per_sec: rate,
            per_request_overhead: SimDuration::ZERO,
            readahead_window: 0,
        }
    }

    const BIN: SimDuration = SimDuration::from_millis(1);
    const BB: u64 = 1_000; // 1 kB blocks for round numbers

    #[test]
    fn single_disk_delegates_exactly() {
        let mut s = StripedDisk::new(params(1e6), 1, 4, BB, BIN);
        let mut d = DiskSim::new(params(1e6), BIN);
        for step in 0..5 {
            let now = SimTime(step * 1_000_000);
            assert_eq!(s.read(now, 100_000), d.read(now, 100_000));
            assert_eq!(s.write(now, 50_000), d.write(now, 50_000));
        }
        assert_eq!(s.counters(), d.counters());
        assert_eq!(s.quiesce_time(), d.quiesce_time());
    }

    #[test]
    fn placement_round_robins_stripe_units() {
        let s = StripedDisk::new(params(1e6), 4, 4, BB, BIN);
        // Blocks 0..4 on disk 0, 4..8 on disk 1, …, 16..20 wrap to disk 0.
        assert_eq!(s.disk_of(0), 0);
        assert_eq!(s.disk_of(3), 0);
        assert_eq!(s.disk_of(4), 1);
        assert_eq!(s.disk_of(15), 3);
        assert_eq!(s.disk_of(16), 0);
    }

    #[test]
    fn stream_bandwidth_scales_with_disks() {
        // 1 MB at 1 MB/s: one disk takes 1s; four disks take 0.25s.
        // (Stripe unit of one 1 kB block: 1000 units split 250/disk.)
        let mut s1 = StripedDisk::new(params(1e6), 1, 1, BB, BIN);
        let mut s4 = StripedDisk::new(params(1e6), 4, 1, BB, BIN);
        let t1 = s1.read(SimTime::ZERO, 1_000_000);
        let t4 = s4.read(SimTime::ZERO, 1_000_000);
        assert_eq!(t1, SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(t4, SimTime::ZERO + SimDuration::from_millis(250));
    }

    #[test]
    fn stream_split_conserves_bytes() {
        let s = StripedDisk::new(params(1e6), 3, 4, BB, BIN);
        for bytes in [0u64, 1, 3_999, 4_000, 4_001, 12_000, 123_457] {
            let per = s.split_stream(bytes);
            assert_eq!(per.iter().sum::<u64>(), bytes, "bytes={bytes}");
        }
    }

    #[test]
    fn block_runs_group_per_spindle() {
        // Stripe unit 2, 2 disks: blocks 0,1→d0; 2,3→d1; 4,5→d0.
        let mut s = StripedDisk::new(params(1e6), 2, 2, BB, BIN);
        let run: Vec<(u64, u64)> = (0..6).map(|b| (b, BB)).collect();
        let ready = s.write_blocks(SimTime::ZERO, &run);
        // Write-behind: the first group per spindle proceeds immediately,
        // but d0's second group (blocks 4-5) waits for its first (2 kB at
        // 1 MB/s = 2ms) to be absorbed.
        assert_eq!(ready, SimTime::ZERO + SimDuration::from_millis(2));
        let per = s.per_disk_stats();
        // d0 got two groups (blocks 0-1 and 4-5), d1 one group (2-3).
        assert_eq!(per[0].writes, 2);
        assert_eq!(per[1].writes, 1);
        assert_eq!(per[0].bytes_written, 4 * BB);
        assert_eq!(per[1].bytes_written, 2 * BB);
        // Spindles drained in parallel: 4 kB and 2 kB at 1 MB/s.
        assert_eq!(
            s.quiesce_time(),
            SimTime::ZERO + SimDuration::from_millis(4)
        );
    }

    #[test]
    fn set_rate_applies_to_every_spindle() {
        let mut s = StripedDisk::new(params(1e6), 2, 4, BB, BIN);
        s.set_rate(2e6);
        let t = s.read(SimTime::ZERO, 8_000);
        // 4 kB per spindle at 2 MB/s = 2ms, in parallel.
        assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(2));
    }
}
