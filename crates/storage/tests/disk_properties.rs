//! Property tests for the sequential-disk timing model.

use lmas_sim::{SimDuration, SimTime};
use lmas_storage::{DiskParams, DiskSim};
use proptest::prelude::*;

fn params(rate: f64, window: u64) -> DiskParams {
    DiskParams {
        rate_bytes_per_sec: rate,
        per_request_overhead: SimDuration::ZERO,
        readahead_window: window,
    }
}

proptest! {
    /// Ready times are monotone for monotone request times, and a read
    /// never completes before its request.
    #[test]
    fn reads_are_monotone_and_causal(
        gaps in prop::collection::vec(0u64..1_000_000, 1..50),
        sizes in prop::collection::vec(1u64..1_000_000, 1..50),
    ) {
        let mut d = DiskSim::new(params(50.0e6, 1 << 20), SimDuration::from_millis(10));
        let mut now = SimTime::ZERO;
        let mut prev_ready = SimTime::ZERO;
        for (g, s) in gaps.iter().zip(&sizes) {
            now += SimDuration(*g);
            let ready = d.read(now, *s);
            prop_assert!(ready >= now, "data before request");
            prop_assert!(ready >= prev_ready, "ready times must be monotone");
            prev_ready = ready;
            now = ready;
        }
    }

    /// Throughput never exceeds the media rate: streaming B bytes takes
    /// at least B/rate regardless of request slicing.
    #[test]
    fn rate_is_an_upper_bound(
        sizes in prop::collection::vec(1u64..500_000, 1..40),
        window in 1u64..(4u64 << 20),
    ) {
        let rate = 40.0e6;
        let mut d = DiskSim::new(params(rate, window), SimDuration::from_millis(10));
        let mut now = SimTime::ZERO;
        for s in &sizes {
            now = d.read(now, *s);
        }
        let total: u64 = sizes.iter().sum();
        let floor = total as f64 / rate;
        prop_assert!(
            now.as_secs_f64() >= floor * (1.0 - 1e-9),
            "streamed {total} bytes in {} < {floor}",
            now.as_secs_f64()
        );
    }

    /// Write-behind: the caller's proceed time never precedes the
    /// previous write's completion, and the media quiesces after the sum
    /// of service times.
    #[test]
    fn writes_conserve_media_time(sizes in prop::collection::vec(1u64..500_000, 1..40)) {
        let rate = 25.0e6;
        let mut d = DiskSim::new(params(rate, 1 << 20), SimDuration::from_millis(10));
        let mut now = SimTime::ZERO;
        for s in &sizes {
            let proceed = d.write(now, *s);
            prop_assert!(proceed >= now);
            now = proceed;
        }
        let total: u64 = sizes.iter().sum();
        let floor = total as f64 / rate;
        prop_assert!(d.quiesce_time().as_secs_f64() >= floor * (1.0 - 1e-9));
        let (_, w, _, bw) = d.counters();
        prop_assert_eq!(w as usize, sizes.len());
        prop_assert_eq!(bw, total);
    }

    /// Read-ahead never lets a later consumer do better than media rate
    /// from a cold start plus the window.
    #[test]
    fn readahead_bounded_by_window(idle_ms in 1u64..10_000, window in 1u64..(1u64 << 20)) {
        let rate = 10.0e6;
        let mut d = DiskSim::new(params(rate, window), SimDuration::from_millis(10));
        let first = d.read(SimTime::ZERO, 100_000);
        let back = first + SimDuration::from_millis(idle_ms);
        let big = 4u64 << 20; // far beyond any window
        let ready = d.read(back, big);
        // At least (big - window)/rate of media time remains.
        let floor = (big.saturating_sub(window)) as f64 / rate;
        prop_assert!(
            ready.since(back).as_secs_f64() >= floor * (1.0 - 1e-9),
            "window {window} cannot hide {big} bytes"
        );
    }
}
