//! Property tests for the sharded buffer pool: durability of dirty
//! data under eviction pressure, honest hit accounting, and
//! deterministic eviction order.

use lmas_sim::{SimDuration, SimTime};
use lmas_storage::{BufferPool, DiskParams, PoolEvent, PoolParams, StripedDisk};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn disk() -> StripedDisk {
    StripedDisk::new(
        DiskParams {
            rate_bytes_per_sec: 10.0e6,
            per_request_overhead: SimDuration::ZERO,
            readahead_window: 0,
        },
        1,
        16,
        1_000,
        SimDuration::from_millis(1),
    )
}

/// One pooled access, drawn from a small deterministic alphabet.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    Write(u64),
    Pin(u64),
    Unpin(u64),
    Flush,
}

/// Weighted op mix: 4/12 reads, 4/12 writes, 1/12 pins, 2/12 unpins,
/// 1/12 flushes.
fn op_strategy(blocks: u64) -> impl Strategy<Value = Op> {
    (0u8..12, 0..blocks).prop_map(|(kind, b)| match kind {
        0..=3 => Op::Read(b),
        4..=7 => Op::Write(b),
        8 => Op::Pin(b),
        9..=10 => Op::Unpin(b),
        _ => Op::Flush,
    })
}

/// Feed `ops` to a fresh pool, tracking which blocks the reference model
/// says hold unwritten data. Returns (pool, disk) for post-hoc checks.
fn run_ops(
    ops: &[Op],
    frames: usize,
    shards: usize,
) -> (BufferPool, StripedDisk, BTreeSet<u64>, BTreeSet<u64>) {
    let mut p = BufferPool::new(PoolParams { frames, shards }).with_logging();
    let mut d = disk();
    let now = SimTime::ZERO;
    // Reference model: blocks with data not yet on media / already on it.
    let mut ref_dirty: BTreeSet<u64> = BTreeSet::new();
    let mut on_media: BTreeSet<u64> = BTreeSet::new();
    // Live pin ledger so the sequence can never pin a whole shard
    // (bypass writes are not logged; they are tested separately).
    let mut pins = 0usize;
    for &op in ops {
        match op {
            Op::Read(b) => {
                p.read(now, b, 1_000, &mut d);
            }
            Op::Write(b) => {
                let bypasses = p.stats().bypasses;
                p.write(now, b, 1_000, &mut d);
                if p.stats().bypasses > bypasses {
                    // All-pinned shard: the write went straight to media.
                    on_media.insert(b);
                } else {
                    ref_dirty.insert(b);
                }
            }
            Op::Pin(b) => {
                if pins + 1 < frames && p.pin(b) {
                    pins += 1;
                }
            }
            Op::Unpin(b) => {
                if p.contains(b) && pins > 0 {
                    p.unpin(b);
                    pins -= 1;
                }
            }
            Op::Flush => {
                p.flush(now, &mut d);
            }
        }
        for ev in p.take_log() {
            if let PoolEvent::Writeback { first, blocks } | PoolEvent::Flush { first, blocks } = ev
            {
                for b in first..first + blocks {
                    on_media.insert(b);
                    ref_dirty.remove(&b);
                }
            }
        }
    }
    (p, d, ref_dirty, on_media)
}

proptest! {
    /// No sequence of reads, writes, pins, and evictions loses a dirty
    /// block: data the reference model still considers unwritten must be
    /// resident and dirty, and a final flush pushes all of it to media.
    #[test]
    fn eviction_never_drops_dirty_data(
        ops in prop::collection::vec(op_strategy(48), 1..200),
        frames in 2usize..12,
    ) {
        let (mut p, mut d, ref_dirty, mut on_media) = run_ops(&ops, frames, 2);
        let resident_dirty: BTreeSet<u64> = p.dirty_blocks().into_iter().collect();
        for &b in &ref_dirty {
            prop_assert!(
                resident_dirty.contains(&b),
                "block {b} has unwritten data but is neither on media nor dirty-resident"
            );
        }
        p.flush(SimTime::ZERO, &mut d);
        for ev in p.take_log() {
            if let PoolEvent::Flush { first, blocks } = ev {
                for b in first..first + blocks {
                    on_media.insert(b);
                }
            }
        }
        for &b in &ref_dirty {
            prop_assert!(on_media.contains(&b), "flush failed to write dirty block {b}");
        }
        prop_assert!(p.dirty_blocks().is_empty());
    }

    /// Hit accounting is honest: an access counts as a hit exactly when
    /// the block was observably resident just before it, matching a
    /// reference residency check on every access.
    #[test]
    fn hit_accounting_matches_reference_residency(
        ops in prop::collection::vec(op_strategy(48), 1..200),
        frames in 2usize..12,
        shards in 1usize..4,
    ) {
        let mut p = BufferPool::new(PoolParams { frames, shards });
        let mut d = disk();
        let now = SimTime::ZERO;
        let (mut ref_hits, mut ref_misses) = (0u64, 0u64);
        for &op in &ops {
            match op {
                Op::Read(b) | Op::Write(b) => {
                    let resident = p.contains(b);
                    if resident {
                        ref_hits += 1;
                    } else {
                        ref_misses += 1;
                    }
                    match op {
                        Op::Read(_) => {
                            let (_, hit) = p.read(now, b, 1_000, &mut d);
                            prop_assert_eq!(hit, resident, "hit flag disagrees with residency");
                        }
                        _ => {
                            p.write(now, b, 1_000, &mut d);
                        }
                    }
                }
                Op::Pin(_) | Op::Unpin(_) | Op::Flush => {}
            }
        }
        prop_assert_eq!(p.stats().hits, ref_hits);
        prop_assert_eq!(p.stats().misses, ref_misses);
    }

    /// Determinism: the same access sequence against two fresh pools
    /// produces identical eviction/writeback event orders and stats.
    #[test]
    fn identical_runs_evict_in_identical_order(
        ops in prop::collection::vec(op_strategy(64), 1..200),
        frames in 2usize..10,
        shards in 1usize..4,
    ) {
        let run = |ops: &[Op]| {
            let mut p = BufferPool::new(PoolParams { frames, shards }).with_logging();
            let mut d = disk();
            let mut now = SimTime::ZERO;
            for &op in ops {
                match op {
                    Op::Read(b) => now = p.read(now, b, 1_000, &mut d).0,
                    Op::Write(b) => now = p.write(now, b, 1_000, &mut d),
                    Op::Pin(b) => {
                        p.pin(b);
                    }
                    Op::Unpin(b) => p.unpin(b),
                    Op::Flush => now = p.flush(now, &mut d),
                }
            }
            (p.take_log(), p.stats(), now)
        };
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a.0, b.0, "eviction orders diverged");
        prop_assert_eq!(a.1, b.1, "stats diverged");
        prop_assert_eq!(a.2, b.2, "virtual clocks diverged");
    }
}
