//! # lmas-core — the load-managed active storage programming model
//!
//! The paper's primary contribution (HPDC 2002, Wickremesinghe–Chase–
//! Vitter): applications are specified as networks of bounded-cost
//! **functors** over containers of fixed-size records, exposing
//! parallelism, ordering constraints, and computation costs so the
//! *system* can map work onto hosts and Active Storage Units (ASUs) and
//! balance load dynamically.
//!
//! - [`record`]: fixed-size records ([`Rec128`]: the paper's 128-byte /
//!   4-byte-key experimental record) and workload key distributions;
//! - [`container`]: sets (unordered, system-routable), streams (ordered),
//!   arrays (random access), packets (indivisible groups);
//! - [`functor`]: the [`Functor`] contract and the standard library
//!   (map, filter, tally, distribute, block-sort, merge);
//! - [`kernels`]: verified in-memory kernels with comparison audits;
//! - [`graph`]: dataflow graphs of replicated stages;
//! - [`routing`]: static / round-robin / simple-randomization /
//!   load-aware routing across replicated instances;
//! - [`placement`]: the functor-instance → node assignment, validated
//!   against ASU memory bounds and functor eligibility;
//! - [`cost`]: work vectors and the calibrated cost model;
//! - [`adapt`]: the analytic pipeline model that picks α and the γ split
//!   to balance phases (the "adaptive" series of Figure 9).
//!
//! Execution lives in `lmas-emulator`, which compiles a
//! ([`FlowGraph`], [`Placement`]) pair onto an emulated cluster.

#![warn(missing_docs)]

pub mod adapt;
pub mod container;
pub mod cost;
pub mod functor;
pub mod graph;
pub mod kernels;
pub mod placement;
pub mod record;
pub mod routing;

pub use adapt::PipelineModel;
pub use container::{packetize, ArrayC, Packet, PacketTicket, SetC, StreamC};
pub use cost::{log2_ceil, CostModel, Work};
pub use functor::{Emit, Functor, FunctorKind};
pub use graph::{Edge, EdgeKind, FlowGraph, GraphError, RouteScope, Stage, StageFactory};
pub use placement::{NodeId, Placement, PlacementError, StageId};
pub use record::{generate_rec128, generate_rec8, KeyDist, Rec128, Rec8, Record};
pub use routing::{Router, RoutingPolicy, UpMask};
