//! Work accounting and the cost model.
//!
//! "Known bounds on functor computation cost per unit of I/O facilitates
//! these resource scheduling decisions" (Section 3.3). Every functor
//! declares its cost for a given input as a [`Work`] vector (comparisons,
//! record moves, bytes touched); a [`CostModel`] converts work into
//! virtual CPU time on a node of a given relative speed.
//!
//! The paper's emulator measures actual cycles with the processor cycle
//! counter and scales by the emulated CPU speed. Our default model is
//! *analytic* — deterministic and CI-friendly — calibrated so a host
//! behaves like the paper's 750 MHz Pentium III (see `DESIGN.md`,
//! substitution 1). The relative load placed on hosts vs ASUs, which is
//! what the experiments measure, depends only on the work *ratios* the
//! analytic model captures exactly (`log α` vs `log β` vs `log γ`
//! compares per record).

use lmas_sim::SimDuration;
use std::ops::{Add, AddAssign};

/// A vector of abstract work units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work {
    /// Key comparisons (the unit the paper counts: "log(parameter) is the
    /// number of compares per key").
    pub compares: u64,
    /// Whole-record copies/moves between buffers.
    pub record_moves: u64,
    /// Bytes touched by streaming transforms (checksums, reformatting).
    pub bytes: u64,
}

impl Work {
    /// No work.
    pub const ZERO: Work = Work {
        compares: 0,
        record_moves: 0,
        bytes: 0,
    };

    /// Work of `n` comparisons.
    pub fn compares(n: u64) -> Work {
        Work {
            compares: n,
            ..Work::ZERO
        }
    }

    /// Work of `n` record moves.
    pub fn moves(n: u64) -> Work {
        Work {
            record_moves: n,
            ..Work::ZERO
        }
    }

    /// Work of touching `n` bytes.
    pub fn bytes(n: u64) -> Work {
        Work {
            bytes: n,
            ..Work::ZERO
        }
    }

    /// True when all components are zero.
    pub fn is_zero(&self) -> bool {
        *self == Work::ZERO
    }
}

impl Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work {
            compares: self.compares + rhs.compares,
            record_moves: self.record_moves + rhs.record_moves,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for Work {
    fn add_assign(&mut self, rhs: Work) {
        *self = *self + rhs;
    }
}

/// Converts [`Work`] into virtual CPU time.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Nanoseconds per comparison on a speed-1.0 (host) CPU.
    pub ns_per_compare: f64,
    /// Nanoseconds per record move on a speed-1.0 CPU.
    pub ns_per_record_move: f64,
    /// Nanoseconds per byte touched on a speed-1.0 CPU.
    pub ns_per_byte: f64,
}

impl CostModel {
    /// Calibration for the paper's emulation host, a 750 MHz Pentium III.
    ///
    /// A compare in a streaming-toolkit sort inner loop — including the
    /// branch misses, key extraction, and its amortized share of memory
    /// traffic — costs on the order of a hundred cycles at 750 MHz:
    /// ~150 ns. Moving a 128-byte record between stream buffers costs
    /// ~300 ns; byte-streaming transforms ~0.1 ns/byte on top. The
    /// calibration puts per-record CPU time per pass at ≈1–2.5 µs —
    /// consistent with TPIE-era end-to-end sorting rates on this class
    /// of machine — which keeps the experiments CPU-bound over an ASU
    /// "brick"'s aggregate disk rate, the regime Figure 9 occupies.
    /// Absolute values shift makespans, never the host-vs-ASU balance,
    /// which depends on work ratios and the speed ratio `c` alone.
    pub fn p3_750mhz() -> CostModel {
        CostModel {
            ns_per_compare: 150.0,
            ns_per_record_move: 300.0,
            ns_per_byte: 0.1,
        }
    }

    /// Virtual CPU time for `work` on a CPU of relative speed `speed`
    /// (1.0 = host; an ASU with ratio `c` has speed `1/c`).
    pub fn charge(&self, work: Work, speed: f64) -> SimDuration {
        assert!(speed > 0.0, "CPU speed must be positive");
        let ns = work.compares as f64 * self.ns_per_compare
            + work.record_moves as f64 * self.ns_per_record_move
            + work.bytes as f64 * self.ns_per_byte;
        SimDuration::from_secs_f64(ns / speed / 1e9)
    }
}

/// `ceil(log2 k)` — compares per record for a `k`-way distribute or merge
/// using binary search / a loser tree. Zero for `k <= 1`.
pub fn log2_ceil(k: u64) -> u64 {
    if k <= 1 {
        0
    } else {
        64 - (k - 1).leading_zeros() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_algebra() {
        let w = Work::compares(3) + Work::moves(2) + Work::bytes(10);
        assert_eq!(
            w,
            Work {
                compares: 3,
                record_moves: 2,
                bytes: 10
            }
        );
        let mut acc = Work::ZERO;
        acc += w;
        acc += w;
        assert_eq!(acc.compares, 6);
        assert!(Work::ZERO.is_zero());
        assert!(!w.is_zero());
    }

    #[test]
    fn charge_scales_inverse_with_speed() {
        let m = CostModel {
            ns_per_compare: 10.0,
            ns_per_record_move: 0.0,
            ns_per_byte: 0.0,
        };
        let host = m.charge(Work::compares(100), 1.0);
        let asu8 = m.charge(Work::compares(100), 1.0 / 8.0);
        assert_eq!(host, SimDuration::from_nanos(1000));
        assert_eq!(asu8, SimDuration::from_nanos(8000));
    }

    #[test]
    fn charge_mixes_components() {
        let m = CostModel {
            ns_per_compare: 1.0,
            ns_per_record_move: 10.0,
            ns_per_byte: 0.5,
        };
        let d = m.charge(
            Work {
                compares: 4,
                record_moves: 2,
                bytes: 8,
            },
            1.0,
        );
        assert_eq!(d, SimDuration::from_nanos(4 + 20 + 4));
    }

    #[test]
    fn log2_ceil_table() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(256), 8);
        assert_eq!(log2_ceil(257), 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        CostModel::p3_750mhz().charge(Work::compares(1), 0.0);
    }
}
