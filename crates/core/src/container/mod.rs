//! Data containers of the LMAS model: streams, sets, arrays, packets.
//!
//! Figure 3 of the paper: *sets* have no defined order (the system may
//! deliver any pending record group, enabling load-balanced routing);
//! *streams* deliver records strictly in sequence; *arrays* allow
//! random access. *Packets* group records that must travel together.
//!
//! Sets and streams are processed in their entirety per scan, with
//! pending/completed marking; destructive scans release completed storage
//! (Section 3.2).

pub mod array;
pub mod packet;
pub mod set;
pub mod stream;

pub use array::ArrayC;
pub use packet::{packetize, Packet};
pub use set::{PacketTicket, SetC};
pub use stream::StreamC;
