//! Streams: ordered record collections with sequential scans.
//!
//! Section 3.2: "a read on stream always delivers the next unconsumed
//! record in a defined sequence, even if this is less efficient." Records
//! in a scan are *pending* until consumed and *completed* afterwards;
//! a **destructive** scan releases storage for completed records so only
//! pending records remain — the right mode for intermediate data consumed
//! exactly once by the next phase.

use crate::record::Record;

/// An ordered collection scanned front to back.
#[derive(Debug, Clone)]
pub struct StreamC<R> {
    records: Vec<R>,
    cursor: usize,
    destructive: bool,
    /// Offset of `records[0]` in the logical sequence (nonzero after a
    /// destructive scan has released a prefix).
    base: usize,
}

impl<R: Record> StreamC<R> {
    /// A stream over `records` in their given order.
    pub fn new(records: Vec<R>) -> StreamC<R> {
        StreamC {
            records,
            cursor: 0,
            destructive: false,
            base: 0,
        }
    }

    /// Make subsequent scans destructive: consumed records are released.
    pub fn destructive(mut self) -> StreamC<R> {
        self.destructive = true;
        self
    }

    /// Total records still stored (pending + retained completed).
    pub fn stored_len(&self) -> usize {
        self.records.len()
    }

    /// Records not yet consumed in the current scan.
    pub fn pending_len(&self) -> usize {
        self.records.len() - self.cursor
    }

    /// True when the current scan has consumed everything.
    pub fn scan_done(&self) -> bool {
        self.pending_len() == 0
    }

    /// Read the next unconsumed record, in sequence order.
    pub fn read(&mut self) -> Option<R> {
        if self.cursor >= self.records.len() {
            return None;
        }
        let r = self.records[self.cursor].clone();
        self.cursor += 1;
        self.maybe_release();
        Some(r)
    }

    /// Read up to `max` records as one batch, preserving order.
    pub fn read_batch(&mut self, max: usize) -> Vec<R> {
        let take = max.min(self.pending_len());
        let out: Vec<R> = self.records[self.cursor..self.cursor + take].to_vec();
        self.cursor += take;
        self.maybe_release();
        out
    }

    fn maybe_release(&mut self) {
        // Release in chunks to keep drain cost amortized.
        if self.destructive && self.cursor >= 1024 {
            self.records.drain(..self.cursor);
            self.base += self.cursor;
            self.cursor = 0;
        }
    }

    /// Append a record at the tail (streams are append-only producers).
    pub fn append(&mut self, r: R) {
        self.records.push(r);
    }

    /// Append many records.
    pub fn append_all(&mut self, rs: impl IntoIterator<Item = R>) {
        self.records.extend(rs);
    }

    /// Restart the scan from the beginning. Panics on destructive streams
    /// whose prefix has been released (the data is gone).
    pub fn rewind(&mut self) {
        assert!(
            self.base == 0,
            "cannot rewind a destructive stream after release"
        );
        self.cursor = 0;
    }

    /// Position of the next read in the logical sequence.
    pub fn position(&self) -> usize {
        self.base + self.cursor
    }

    /// Whether records are in non-decreasing key order (whole stored part).
    pub fn is_sorted(&self) -> bool {
        self.records.windows(2).all(|w| w[0].key() <= w[1].key())
    }
}

impl<R: Record> FromIterator<R> for StreamC<R> {
    fn from_iter<I: IntoIterator<Item = R>>(iter: I) -> Self {
        StreamC::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rec8;

    fn recs(n: u32) -> Vec<Rec8> {
        (0..n).map(|k| Rec8 { key: k, tag: k }).collect()
    }

    #[test]
    fn reads_deliver_in_sequence() {
        let mut s = StreamC::new(recs(5));
        let keys: Vec<u32> = std::iter::from_fn(|| s.read()).map(|r| r.key).collect();
        assert_eq!(keys, [0, 1, 2, 3, 4]);
        assert!(s.scan_done());
        assert_eq!(s.read(), None);
    }

    #[test]
    fn batch_reads_preserve_order_and_bound() {
        let mut s = StreamC::new(recs(10));
        let b1 = s.read_batch(4);
        let b2 = s.read_batch(100);
        assert_eq!(b1.iter().map(|r| r.key).collect::<Vec<_>>(), [0, 1, 2, 3]);
        assert_eq!(b2.len(), 6);
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn rewind_restarts_nondestructive_scan() {
        let mut s = StreamC::new(recs(3));
        s.read_batch(3);
        s.rewind();
        assert_eq!(s.pending_len(), 3);
        assert_eq!(s.read().unwrap().key, 0);
    }

    #[test]
    fn destructive_scan_releases_storage() {
        let mut s = StreamC::new(recs(5000)).destructive();
        s.read_batch(2000);
        assert!(
            s.stored_len() < 5000,
            "released prefix should shrink storage: {}",
            s.stored_len()
        );
        assert_eq!(s.pending_len(), 3000);
        // Sequence is unbroken.
        assert_eq!(s.read().unwrap().key, 2000);
        assert_eq!(s.position(), 2001);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn destructive_rewind_after_release_panics() {
        let mut s = StreamC::new(recs(5000)).destructive();
        s.read_batch(4096);
        s.rewind();
    }

    #[test]
    fn append_grows_the_tail() {
        let mut s: StreamC<Rec8> = StreamC::new(vec![]);
        s.append(Rec8 { key: 1, tag: 0 });
        s.append_all(recs(2));
        assert_eq!(s.stored_len(), 3);
        assert_eq!(s.read().unwrap().key, 1);
    }

    #[test]
    fn sortedness_check() {
        let s: StreamC<Rec8> = recs(4).into_iter().collect();
        assert!(s.is_sorted());
        let mut v = recs(4);
        v.swap(0, 3);
        assert!(!StreamC::new(v).is_sorted());
    }
}
