//! Arrays: random-access record collections.
//!
//! Section 3.2: "Arrays allow arbitrary accesses to structured collections
//! of records. This model is useful for supporting external indexes over
//! collections of records, such as the spatial indexes outlined in
//! Section 4.1." Accesses are application-ordered and opaque to the
//! system, so an array exposes indexed reads/writes plus access counters
//! the emulator charges I/O for.

use crate::record::Record;

/// A random-access record container.
#[derive(Debug, Clone)]
pub struct ArrayC<R> {
    records: Vec<R>,
    reads: u64,
    writes: u64,
}

impl<R: Record> ArrayC<R> {
    /// An array over `records`.
    pub fn new(records: Vec<R>) -> ArrayC<R> {
        ArrayC {
            records,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Read the record at `idx`.
    pub fn get(&mut self, idx: usize) -> Option<R> {
        let r = self.records.get(idx).cloned();
        if r.is_some() {
            self.reads += 1;
        }
        r
    }

    /// Overwrite the record at `idx`. Returns false when out of range.
    pub fn put(&mut self, idx: usize, r: R) -> bool {
        if let Some(slot) = self.records.get_mut(idx) {
            *slot = r;
            self.writes += 1;
            true
        } else {
            false
        }
    }

    /// Binary-search a sorted array for the first record with key >= `key`.
    /// Behaviour on unsorted arrays is unspecified (like `slice::partition_point`).
    pub fn lower_bound(&mut self, key: R::Key) -> usize {
        self.reads += (self.records.len().max(1)).ilog2() as u64 + 1;
        self.records.partition_point(|r| r.key() < key)
    }

    /// Access counters `(reads, writes)` for I/O charging.
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Immutable view of all records (no read charge; for audits).
    pub fn as_slice(&self) -> &[R] {
        &self.records
    }
}

impl<R: Record> FromIterator<R> for ArrayC<R> {
    fn from_iter<I: IntoIterator<Item = R>>(iter: I) -> Self {
        ArrayC::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rec8;

    fn arr(keys: &[u32]) -> ArrayC<Rec8> {
        keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect()
    }

    #[test]
    fn get_put_roundtrip() {
        let mut a = arr(&[1, 2, 3]);
        assert_eq!(a.get(1).unwrap().key, 2);
        assert!(a.put(1, Rec8 { key: 9, tag: 9 }));
        assert_eq!(a.get(1).unwrap().key, 9);
        assert_eq!(a.access_counts(), (2, 1));
    }

    #[test]
    fn out_of_range_access() {
        let mut a = arr(&[1]);
        assert!(a.get(5).is_none());
        assert!(!a.put(5, Rec8 { key: 0, tag: 0 }));
        assert_eq!(a.access_counts(), (0, 0), "failed accesses uncharged");
    }

    #[test]
    fn lower_bound_on_sorted_data() {
        let mut a = arr(&[10, 20, 20, 30]);
        assert_eq!(a.lower_bound(20), 1);
        assert_eq!(a.lower_bound(25), 3);
        assert_eq!(a.lower_bound(99), 4);
        assert_eq!(a.lower_bound(0), 0);
        let (reads, _) = a.access_counts();
        assert!(reads > 0, "index probes are charged");
    }

    #[test]
    fn len_and_empty() {
        assert!(ArrayC::<Rec8>::new(vec![]).is_empty());
        assert_eq!(arr(&[1, 2]).len(), 2);
    }
}
