//! Packets: groups of records that are always processed as a whole.
//!
//! Section 3.2: "a mechanism to group related records within a data
//! collection into units called Packets … They impose a partial order on
//! the records in a set, and constrain the distribution of records across
//! functor instances." A sorted run produced by a pre-sort functor is the
//! canonical packet: keeping it whole preserves its internal order through
//! later phases (Figure 4).
//!
//! # Zero-copy sharing
//!
//! A packet is a shared, immutable record buffer (`Arc<Vec<R>>`).
//! `Clone` is O(1) — it bumps a reference count, never copies records —
//! so routing fan-out, NIC transfer, metrics capture, and sink capture
//! all view one buffer. Mutation goes through [`Packet::records_mut`],
//! which is copy-on-write: it detaches (deep-copies) only when the buffer
//! is actually shared, so in-place kernels on uniquely-owned packets stay
//! zero-copy. [`Packet::shares_buffer`] observes sharing for tests.

use crate::record::Record;
use std::sync::Arc;

/// An indivisible group of records backed by a shared buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct Packet<R> {
    records: Arc<Vec<R>>,
}

impl<R> Clone for Packet<R> {
    /// O(1): clones share the record buffer (no records are copied).
    fn clone(&self) -> Packet<R> {
        Packet {
            records: Arc::clone(&self.records),
        }
    }
}

impl<R: Record> Packet<R> {
    /// A packet owning `records`. Empty packets are allowed (e.g. an
    /// empty bucket after a distribute).
    pub fn new(records: Vec<R>) -> Packet<R> {
        Packet {
            records: Arc::new(records),
        }
    }

    /// A packet holding one record.
    pub fn singleton(record: R) -> Packet<R> {
        Packet::new(vec![record])
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the packet holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.records.len() * R::SIZE
    }

    /// The records, immutably.
    pub fn records(&self) -> &[R] {
        &self.records
    }

    /// The records, mutably (e.g. for an in-place sort kernel).
    ///
    /// Copy-on-write: detaches from clones sharing this buffer, copying
    /// the records only if such clones exist.
    pub fn records_mut(&mut self) -> &mut Vec<R> {
        Arc::make_mut(&mut self.records)
    }

    /// Consume into the record vector. Zero-copy when this packet is the
    /// buffer's sole owner; otherwise the records are copied out and the
    /// other owners keep the shared buffer.
    pub fn into_records(self) -> Vec<R> {
        Arc::try_unwrap(self.records).unwrap_or_else(|shared| (*shared).clone())
    }

    /// True when `self` and `other` view the same underlying buffer
    /// (i.e. one is an O(1) clone of the other and neither has detached).
    pub fn shares_buffer(&self, other: &Packet<R>) -> bool {
        Arc::ptr_eq(&self.records, &other.records)
    }

    /// Whether records are in non-decreasing key order.
    pub fn is_sorted(&self) -> bool {
        self.records.windows(2).all(|w| w[0].key() <= w[1].key())
    }

    /// Key of the first record, if any.
    pub fn min_key(&self) -> Option<R::Key> {
        self.records.iter().map(|r| r.key()).min()
    }

    /// Key of the last record, if any.
    pub fn max_key(&self) -> Option<R::Key> {
        self.records.iter().map(|r| r.key()).max()
    }
}

impl<R: Record> FromIterator<R> for Packet<R> {
    fn from_iter<I: IntoIterator<Item = R>>(iter: I) -> Self {
        Packet::new(iter.into_iter().collect())
    }
}

/// Split a record vector into packets of at most `packet_records` each
/// (the last packet may be short). Packet size is typically bounded by an
/// ASU memory limit (Section 3.2).
pub fn packetize<R: Record>(records: Vec<R>, packet_records: usize) -> Vec<Packet<R>> {
    assert!(packet_records > 0, "packet size must be positive");
    let mut out = Vec::with_capacity(records.len().div_ceil(packet_records));
    let mut it = records.into_iter();
    loop {
        let chunk: Vec<R> = it.by_ref().take(packet_records).collect();
        if chunk.is_empty() {
            break;
        }
        out.push(Packet::new(chunk));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rec8;

    fn r(k: u32) -> Rec8 {
        Rec8 { key: k, tag: 0 }
    }

    #[test]
    fn packet_basics() {
        let p = Packet::new(vec![r(3), r(1), r(2)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.bytes(), 24);
        assert!(!p.is_sorted());
        assert_eq!(p.min_key(), Some(1));
        assert_eq!(p.max_key(), Some(3));
    }

    #[test]
    fn sorted_detection() {
        let p: Packet<Rec8> = [r(1), r(2), r(2), r(9)].into_iter().collect();
        assert!(p.is_sorted());
        assert!(Packet::<Rec8>::new(vec![]).is_sorted());
    }

    #[test]
    fn singleton_and_empty() {
        let s = Packet::singleton(r(5));
        assert_eq!(s.len(), 1);
        let e = Packet::<Rec8>::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.min_key(), None);
    }

    #[test]
    fn clone_shares_buffer() {
        let p = Packet::new(vec![r(1), r(2)]);
        let q = p.clone();
        assert!(p.shares_buffer(&q));
        assert_eq!(p, q);
    }

    #[test]
    fn records_mut_detaches_shared_buffer() {
        let mut p = Packet::new(vec![r(1), r(2)]);
        let q = p.clone();
        p.records_mut()[0] = r(9);
        assert!(!p.shares_buffer(&q), "COW must detach on write");
        assert_eq!(p.records()[0].key, 9);
        assert_eq!(q.records()[0].key, 1, "clone must keep original data");
    }

    #[test]
    fn records_mut_in_place_when_unique() {
        let mut p = Packet::new(vec![r(2), r(1)]);
        let before = p.records().as_ptr();
        p.records_mut().sort_by_key(|x| x.key);
        assert_eq!(p.records().as_ptr(), before, "sole owner mutates in place");
        assert!(p.is_sorted());
    }

    #[test]
    fn into_records_zero_copy_when_unique() {
        let p = Packet::new(vec![r(1), r(2), r(3)]);
        let before = p.records().as_ptr();
        let v = p.into_records();
        assert_eq!(v.as_ptr(), before, "unique owner unwraps without copying");
    }

    #[test]
    fn into_records_leaves_clones_intact() {
        let p = Packet::new(vec![r(1), r(2)]);
        let q = p.clone();
        let v = p.into_records();
        assert_eq!(v, vec![r(1), r(2)]);
        assert_eq!(q.records(), &[r(1), r(2)]);
    }

    #[test]
    fn packetize_splits_evenly_with_short_tail() {
        let recs: Vec<Rec8> = (0..10).map(r).collect();
        let ps = packetize(recs, 4);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].len(), 4);
        assert_eq!(ps[1].len(), 4);
        assert_eq!(ps[2].len(), 2);
        let total: usize = ps.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn packetize_empty_input() {
        let ps = packetize(Vec::<Rec8>::new(), 4);
        assert!(ps.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn packetize_zero_size_panics() {
        packetize(vec![r(1)], 0);
    }
}
