//! Sets: unordered collections the system may deliver in any order.
//!
//! Section 3.2: "Sets are data containers that do not define the order of
//! records returned in satisfying read operations. This allows the system
//! to provide records in any order that is convenient, and spread them
//! arbitrarily across replicated functors." A set holds *packets* (loose
//! records are singleton-packet equivalents via [`SetC::insert_records`]);
//! packets impose the only ordering constraint: their records stay
//! together.
//!
//! Each scan marks packets pending → completed; destructive scans release
//! completed packets' storage.

use crate::container::packet::Packet;
use crate::record::Record;

/// Handle to a packet within a set scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketTicket(usize);

/// An unordered packet container with pending/completed scan state.
#[derive(Debug, Clone)]
pub struct SetC<R> {
    packets: Vec<Option<Packet<R>>>, // None = released (destructive)
    state: Vec<ScanState>,
    destructive: bool,
    pending: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanState {
    Pending,
    Completed,
}

impl<R: Record> Default for SetC<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Record> SetC<R> {
    /// An empty set.
    pub fn new() -> SetC<R> {
        SetC {
            packets: Vec::new(),
            state: Vec::new(),
            destructive: false,
            pending: 0,
        }
    }

    /// Make completed packets release their storage.
    pub fn destructive(mut self) -> SetC<R> {
        self.destructive = true;
        self
    }

    /// Insert a packet (initially pending).
    pub fn insert(&mut self, p: Packet<R>) -> PacketTicket {
        let t = PacketTicket(self.packets.len());
        self.packets.push(Some(p));
        self.state.push(ScanState::Pending);
        self.pending += 1;
        t
    }

    /// Insert loose records as one packet each would be wasteful; they
    /// arrive as one unordered packet, which places no constraint beyond
    /// staying whole. For per-record freedom use several small packets.
    pub fn insert_records(&mut self, records: Vec<R>) -> PacketTicket {
        self.insert(Packet::new(records))
    }

    /// Number of pending packets in the current scan.
    pub fn pending_len(&self) -> usize {
        self.pending
    }

    /// Total packets ever inserted (including released).
    pub fn total_packets(&self) -> usize {
        self.packets.len()
    }

    /// Total records currently stored.
    pub fn stored_records(&self) -> usize {
        self.packets
            .iter()
            .flatten()
            .map(|p| p.len())
            .sum()
    }

    /// True when no packets are pending.
    pub fn scan_done(&self) -> bool {
        self.pending == 0
    }

    /// Take *some* pending packet, at the system's convenience. `hint`
    /// biases the choice (e.g. a router's pick); any pending packet may be
    /// returned. Marks it completed.
    pub fn take_any(&mut self, hint: usize) -> Option<(PacketTicket, Packet<R>)> {
        if self.pending == 0 {
            return None;
        }
        let n = self.packets.len();
        let start = hint % n;
        for off in 0..n {
            let i = (start + off) % n;
            if self.state[i] == ScanState::Pending {
                return Some(self.complete(i));
            }
        }
        unreachable!("pending count positive but no pending packet found");
    }

    /// Take the specific packet named by `ticket` if still pending.
    pub fn take(&mut self, ticket: PacketTicket) -> Option<Packet<R>> {
        let i = ticket.0;
        if self.state.get(i) != Some(&ScanState::Pending) {
            return None;
        }
        Some(self.complete(i).1)
    }

    fn complete(&mut self, i: usize) -> (PacketTicket, Packet<R>) {
        self.state[i] = ScanState::Completed;
        self.pending -= 1;
        let p = if self.destructive {
            self.packets[i].take().expect("pending packet present")
        } else {
            self.packets[i].clone().expect("pending packet present")
        };
        (PacketTicket(i), p)
    }

    /// Restart the scan: all retained packets become pending again.
    /// Panics if a destructive scan already released packets.
    pub fn rescan(&mut self) {
        assert!(
            !self.destructive || self.packets.iter().all(|p| p.is_some()),
            "cannot rescan a destructive set after release"
        );
        self.pending = 0;
        for (i, s) in self.state.iter_mut().enumerate() {
            if self.packets[i].is_some() {
                *s = ScanState::Pending;
                self.pending += 1;
            }
        }
    }

    /// Iterate all stored packets (pending and completed), for audits.
    pub fn iter_stored(&self) -> impl Iterator<Item = &Packet<R>> {
        self.packets.iter().flatten()
    }
}

impl<R: Record> FromIterator<Packet<R>> for SetC<R> {
    fn from_iter<I: IntoIterator<Item = Packet<R>>>(iter: I) -> Self {
        let mut s = SetC::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rec8;

    fn pkt(keys: &[u32]) -> Packet<Rec8> {
        Packet::new(keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect())
    }

    #[test]
    fn take_any_drains_all_packets_exactly_once() {
        let mut s: SetC<Rec8> = [pkt(&[1]), pkt(&[2]), pkt(&[3])].into_iter().collect();
        let mut got = vec![];
        let mut hint = 7;
        while let Some((_, p)) = s.take_any(hint) {
            got.push(p.records()[0].key);
            hint += 13;
        }
        got.sort_unstable();
        assert_eq!(got, [1, 2, 3]);
        assert!(s.scan_done());
    }

    #[test]
    fn hint_biases_but_never_blocks() {
        let mut s: SetC<Rec8> = [pkt(&[10]), pkt(&[20])].into_iter().collect();
        // Hint far out of range still works (mod).
        let (_, p) = s.take_any(usize::MAX - 3).unwrap();
        assert!(p.records()[0].key == 10 || p.records()[0].key == 20);
    }

    #[test]
    fn take_specific_ticket() {
        let mut s = SetC::new();
        let t1 = s.insert(pkt(&[1]));
        let t2 = s.insert(pkt(&[2]));
        assert_eq!(s.take(t2).unwrap().records()[0].key, 2);
        assert!(s.take(t2).is_none(), "double take returns None");
        assert_eq!(s.take(t1).unwrap().records()[0].key, 1);
    }

    #[test]
    fn destructive_scan_releases_storage() {
        let mut s: SetC<Rec8> =
            SetC::from_iter([pkt(&[1, 2]), pkt(&[3, 4])]).destructive();
        assert_eq!(s.stored_records(), 4);
        s.take_any(0);
        assert_eq!(s.stored_records(), 2);
        s.take_any(0);
        assert_eq!(s.stored_records(), 0);
        assert_eq!(s.total_packets(), 2);
    }

    #[test]
    fn rescan_restores_pending_for_nondestructive() {
        let mut s: SetC<Rec8> = [pkt(&[1]), pkt(&[2])].into_iter().collect();
        while s.take_any(0).is_some() {}
        assert!(s.scan_done());
        s.rescan();
        assert_eq!(s.pending_len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot rescan")]
    fn rescan_after_destructive_release_panics() {
        let mut s: SetC<Rec8> = SetC::from_iter([pkt(&[1])]).destructive();
        s.take_any(0);
        s.rescan();
    }

    #[test]
    fn multiset_of_records_is_preserved_across_scan() {
        let mut s: SetC<Rec8> =
            [pkt(&[5, 1]), pkt(&[2]), pkt(&[9, 9, 3])].into_iter().collect();
        let mut keys = vec![];
        while let Some((_, p)) = s.take_any(3) {
            keys.extend(p.records().iter().map(|r| r.key));
        }
        keys.sort_unstable();
        assert_eq!(keys, [1, 2, 3, 5, 9, 9]);
    }
}
