//! Fixed-size records, the atoms of the streaming model.
//!
//! The paper's model (and all of TPIE) processes *fixed-size records*;
//! the experiments in Section 6 use 128-byte records with 4-byte keys,
//! provided here as [`Rec128`]. Key distributions used by the workloads —
//! uniform and exponential, plus the half/half mix of Figure 10 — live in
//! [`KeyDist`].

use lmas_sim::DetRng;

/// A fixed-size record with an ordered key.
///
/// `SIZE` is the on-storage footprint; `to_bytes`/`from_bytes` must
/// round-trip exactly `SIZE` bytes.
///
/// `Sync` is required because packets share one record buffer across
/// clones (`Packet` is `Arc`-backed), and emulation sweeps fan whole runs
/// out across threads.
pub trait Record: Clone + Send + Sync + 'static {
    /// On-storage size in bytes.
    const SIZE: usize;
    /// The sort/partition key.
    type Key: Ord + Copy + Send + Sync + std::fmt::Debug;

    /// This record's key.
    fn key(&self) -> Self::Key;
    /// Serialize into exactly `SIZE` bytes.
    fn to_bytes(&self, out: &mut [u8]);
    /// Deserialize from exactly `SIZE` bytes.
    fn from_bytes(bytes: &[u8]) -> Self;

    /// When true, [`radix_key`](Record::radix_key) is a faithful `u32`
    /// image of [`key`](Record::key) — `a.key() <= b.key()` iff
    /// `a.radix_key() <= b.radix_key()` — and `block_sort` may dispatch
    /// to a stable LSB radix sort instead of a comparison sort. The
    /// default keeps comparison sorting.
    const RADIX32: bool = false;

    /// The `u32` radix image of the key; meaningful only when
    /// [`RADIX32`](Record::RADIX32) is true.
    #[inline]
    fn radix_key(&self) -> u32 {
        0
    }

    /// A stable per-record identity tag, when the record type carries
    /// one. Fault recovery uses tags to compute exactly which records
    /// were lost with a crashed node (set difference against surviving
    /// partial output) so a repair pass can re-dispatch them. Returns
    /// `u64::MAX` ("no identity") by default; record types with
    /// provenance tags override.
    #[inline]
    fn tag64(&self) -> u64 {
        u64::MAX
    }
}

/// The paper's experimental record: 128 bytes, 4-byte key.
#[derive(Clone, PartialEq, Eq)]
pub struct Rec128 {
    key: u32,
    payload: [u8; 124],
}

impl std::fmt::Debug for Rec128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rec128(key={}, payload[0..4]={:?})", self.key, &self.payload[..4])
    }
}

impl Rec128 {
    /// A record with the given key; the payload encodes a provenance tag
    /// so that permutation checks can detect corrupted payloads.
    pub fn new(key: u32, tag: u64) -> Rec128 {
        let mut payload = [0u8; 124];
        payload[..8].copy_from_slice(&tag.to_le_bytes());
        Rec128 { key, payload }
    }

    /// The provenance tag stored in the payload.
    pub fn tag(&self) -> u64 {
        u64::from_le_bytes(self.payload[..8].try_into().expect("8 bytes"))
    }

    /// Overwrite the key (used by tests and generators).
    pub fn set_key(&mut self, key: u32) {
        self.key = key;
    }
}

impl Record for Rec128 {
    const SIZE: usize = 128;
    type Key = u32;
    const RADIX32: bool = true;

    #[inline]
    fn key(&self) -> u32 {
        self.key
    }

    #[inline]
    fn radix_key(&self) -> u32 {
        self.key
    }

    #[inline]
    fn tag64(&self) -> u64 {
        self.tag()
    }

    fn to_bytes(&self, out: &mut [u8]) {
        assert!(out.len() >= 128, "need 128 bytes");
        out[..4].copy_from_slice(&self.key.to_le_bytes());
        out[4..128].copy_from_slice(&self.payload);
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= 128, "need 128 bytes");
        let key = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        let mut payload = [0u8; 124];
        payload.copy_from_slice(&bytes[4..128]);
        Rec128 { key, payload }
    }
}

/// A tiny record for tests where payload is irrelevant: 8 bytes, u32 key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rec8 {
    /// The key.
    pub key: u32,
    /// A provenance tag.
    pub tag: u32,
}

impl Record for Rec8 {
    const SIZE: usize = 8;
    type Key = u32;
    const RADIX32: bool = true;

    #[inline]
    fn key(&self) -> u32 {
        self.key
    }

    #[inline]
    fn radix_key(&self) -> u32 {
        self.key
    }

    #[inline]
    fn tag64(&self) -> u64 {
        self.tag as u64
    }

    fn to_bytes(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.key.to_le_bytes());
        out[4..8].copy_from_slice(&self.tag.to_le_bytes());
    }

    fn from_bytes(bytes: &[u8]) -> Self {
        Rec8 {
            key: u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")),
            tag: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
        }
    }
}

/// Key distributions for workload generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the full `u32` range.
    Uniform,
    /// Exponential with the given rate, scaled into `u32` range (heavily
    /// skewed toward small keys).
    Exponential {
        /// Rate parameter; larger = more skew toward zero.
        rate: f64,
    },
    /// Figure 10's workload: the first half of the data is uniform, the
    /// second half exponential.
    HalfUniformHalfExp {
        /// Rate of the exponential second half.
        rate: f64,
    },
}

impl KeyDist {
    /// Draw the key of record `i` of `n` from this distribution.
    pub fn draw(&self, i: u64, n: u64, rng: &mut DetRng) -> u32 {
        match *self {
            KeyDist::Uniform => rng.next_u32(),
            KeyDist::Exponential { rate } => exp_key(rate, rng),
            KeyDist::HalfUniformHalfExp { rate } => {
                if i < n / 2 {
                    rng.next_u32()
                } else {
                    exp_key(rate, rng)
                }
            }
        }
    }
}

fn exp_key(rate: f64, rng: &mut DetRng) -> u32 {
    // Exponential sample with mean 1/rate, clamped into [0,1) of the key
    // space; rate >= ~8 keeps clamping negligible.
    let x = rng.gen_exp(rate).min(0.999_999_9);
    (x * u32::MAX as f64) as u32
}

/// Generate `n` records with keys drawn from `dist`; tags run 0..n so a
/// permutation check can verify no record was lost or duplicated.
pub fn generate_rec128(n: u64, dist: KeyDist, seed: u64) -> Vec<Rec128> {
    let mut rng = DetRng::stream(seed, 0xDA7A);
    (0..n)
        .map(|i| Rec128::new(dist.draw(i, n, &mut rng), i))
        .collect()
}

/// Generate `n` small test records.
pub fn generate_rec8(n: u64, dist: KeyDist, seed: u64) -> Vec<Rec8> {
    let mut rng = DetRng::stream(seed, 0xDA7A);
    (0..n)
        .map(|i| Rec8 {
            key: dist.draw(i, n, &mut rng),
            tag: i as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rec128_roundtrip() {
        let r = Rec128::new(0xDEADBEEF, 42);
        let mut buf = [0u8; 128];
        r.to_bytes(&mut buf);
        let back = Rec128::from_bytes(&buf);
        assert_eq!(back, r);
        assert_eq!(back.key(), 0xDEADBEEF);
        assert_eq!(back.tag(), 42);
    }

    #[test]
    fn rec8_roundtrip() {
        let r = Rec8 { key: 7, tag: 9 };
        let mut buf = [0u8; 8];
        r.to_bytes(&mut buf);
        assert_eq!(Rec8::from_bytes(&buf), r);
    }

    #[test]
    fn uniform_keys_cover_the_range() {
        let recs = generate_rec128(10_000, KeyDist::Uniform, 1);
        let lo = recs.iter().filter(|r| r.key() < u32::MAX / 2).count();
        // Roughly half below the midpoint.
        assert!((4_000..6_000).contains(&lo), "lo={lo}");
    }

    #[test]
    fn exponential_keys_skew_low() {
        let recs = generate_rec128(10_000, KeyDist::Exponential { rate: 8.0 }, 1);
        let lo = recs
            .iter()
            .filter(|r| (r.key() as f64) < u32::MAX as f64 / 8.0)
            .count();
        // P(X < 1/8) with rate 8 = 1 - e^-1 ≈ 0.63.
        assert!(lo > 5_500, "lo={lo}: exponential should pile up low");
    }

    #[test]
    fn half_half_switches_distribution_midway() {
        let recs = generate_rec128(10_000, KeyDist::HalfUniformHalfExp { rate: 8.0 }, 1);
        let first_lo = recs[..5_000]
            .iter()
            .filter(|r| (r.key() as f64) < u32::MAX as f64 / 8.0)
            .count();
        let second_lo = recs[5_000..]
            .iter()
            .filter(|r| (r.key() as f64) < u32::MAX as f64 / 8.0)
            .count();
        assert!(first_lo < 1_000, "first half should be uniform: {first_lo}");
        assert!(second_lo > 2_750, "second half should be skewed: {second_lo}");
    }

    #[test]
    fn tags_are_a_permutation_of_indices() {
        let recs = generate_rec128(1_000, KeyDist::Uniform, 5);
        let mut tags: Vec<u64> = recs.iter().map(|r| r.tag()).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..1_000).collect::<Vec<u64>>());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_rec8(100, KeyDist::Uniform, 3);
        let b = generate_rec8(100, KeyDist::Uniform, 3);
        let c = generate_rec8(100, KeyDist::Uniform, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
