//! Routing policies: how records flow across replicated functor instances.
//!
//! Section 3.3: "sets and replicated functors allow ASUs and host nodes to
//! perform dataflow routing between functors intelligently. The routing of
//! records across functor instances may be responsive to dynamic load
//! conditions visible to the system. In some cases, randomized routing
//! techniques like simple randomization (SR) may reduce data dependencies
//! and interference…"
//!
//! - [`RoutingPolicy::Static`] pins each source port (e.g. each distribute
//!   subset) to a fixed instance — the *no load control* baseline of
//!   Figure 10.
//! - [`RoutingPolicy::RoundRobin`] cycles instances.
//! - [`RoutingPolicy::SimpleRandomization`] picks uniformly at random —
//!   the SR policy of Vitter–Hutchinson the paper cites, and the
//!   *load-managed* configuration of Figure 10.
//! - [`RoutingPolicy::LoadAware`] picks the least-loaded instance by
//!   observed backlog, breaking ties by static capacity weight.

use lmas_sim::DetRng;

/// Which routing rule an edge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Port `p` always goes to instance `p mod n`.
    Static,
    /// Cycle through instances.
    RoundRobin,
    /// Uniformly random instance (SR).
    SimpleRandomization,
    /// Least backlog wins; ties to the higher-capacity, then lower index.
    LoadAware,
}

/// Stateful router for one edge.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    rr_next: usize,
    rng: DetRng,
}

impl Router {
    /// A router applying `policy`, with a deterministic RNG stream for
    /// randomized policies. Round-robin starts at an offset derived from
    /// `stream` so that many single-emission senders sharing an edge
    /// (e.g. one run per block-sort instance) stripe across destinations
    /// instead of all hitting instance 0.
    pub fn new(policy: RoutingPolicy, seed: u64, stream: u64) -> Router {
        Router {
            policy,
            rr_next: stream as usize,
            rng: DetRng::stream(seed, stream),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Choose a destination among `n` instances.
    ///
    /// * `port` — the source port the packet left on (static hint);
    /// * `backlog` — per-instance observed load (e.g. queued work in ns);
    ///   empty when unknown;
    /// * `capacity` — per-instance static capacity weights; empty when
    ///   homogeneous.
    pub fn pick(&mut self, n: usize, port: usize, backlog: &[u64], capacity: &[f64]) -> usize {
        assert!(n > 0, "cannot route to zero instances");
        match self.policy {
            RoutingPolicy::Static => port % n,
            RoutingPolicy::RoundRobin => {
                let i = self.rr_next % n;
                self.rr_next = self.rr_next.wrapping_add(1);
                i
            }
            RoutingPolicy::SimpleRandomization => self.rng.gen_index(n),
            RoutingPolicy::LoadAware => {
                let cap = |i: usize| capacity.get(i).copied().unwrap_or(1.0);
                let load = |i: usize| backlog.get(i).copied().unwrap_or(0);
                // Least backlog normalized by capacity; ties to larger
                // capacity, then lower index for determinism.
                (0..n)
                    .min_by(|&a, &b| {
                        let la = load(a) as f64 / cap(a);
                        let lb = load(b) as f64 / cap(b);
                        la.partial_cmp(&lb)
                            .expect("finite loads")
                            .then(
                                cap(b)
                                    .partial_cmp(&cap(a))
                                    .expect("finite capacities"),
                            )
                            .then(a.cmp(&b))
                    })
                    .expect("n > 0")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pins_port_to_instance() {
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick(2, 0, &[], &[]), 0);
        assert_eq!(r.pick(2, 1, &[], &[]), 1);
        assert_eq!(r.pick(2, 5, &[], &[]), 1);
        // Repeated picks are stable.
        assert_eq!(r.pick(2, 5, &[], &[]), 1);
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        let picks: Vec<usize> = (0..6).map(|_| r.pick(3, 0, &[], &[])).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn sr_is_uniformish_and_deterministic() {
        let mut r1 = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let mut r2 = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let picks1: Vec<usize> = (0..3000).map(|_| r1.pick(3, 0, &[], &[])).collect();
        let picks2: Vec<usize> = (0..3000).map(|_| r2.pick(3, 0, &[], &[])).collect();
        assert_eq!(picks1, picks2, "same seed, same stream");
        let mut counts = [0usize; 3];
        for p in picks1 {
            counts[p] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed SR: {counts:?}");
        }
    }

    #[test]
    fn load_aware_prefers_least_backlog() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        assert_eq!(r.pick(3, 0, &[50, 10, 90], &[]), 1);
        // Tie on backlog → lower index.
        assert_eq!(r.pick(3, 0, &[10, 10, 90], &[]), 0);
        // Missing backlog info defaults to 0 → picks index 0.
        assert_eq!(r.pick(3, 0, &[], &[]), 0);
    }

    #[test]
    fn load_aware_normalizes_by_capacity() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        // Instance 1 is 4× faster; backlog 30 on it is "shorter" than 10
        // on the slow one.
        assert_eq!(r.pick(2, 0, &[10, 30], &[1.0, 4.0]), 1);
        // Equal normalized load → higher capacity wins.
        assert_eq!(r.pick(2, 0, &[10, 40], &[1.0, 4.0]), 1);
    }

    #[test]
    #[should_panic(expected = "zero instances")]
    fn zero_instances_rejected() {
        Router::new(RoutingPolicy::Static, 0, 0).pick(0, 0, &[], &[]);
    }
}
