//! Routing policies: how records flow across replicated functor instances.
//!
//! Section 3.3: "sets and replicated functors allow ASUs and host nodes to
//! perform dataflow routing between functors intelligently. The routing of
//! records across functor instances may be responsive to dynamic load
//! conditions visible to the system. In some cases, randomized routing
//! techniques like simple randomization (SR) may reduce data dependencies
//! and interference…"
//!
//! - [`RoutingPolicy::Static`] pins each source port (e.g. each distribute
//!   subset) to a fixed instance — the *no load control* baseline of
//!   Figure 10.
//! - [`RoutingPolicy::RoundRobin`] cycles instances.
//! - [`RoutingPolicy::SimpleRandomization`] picks uniformly at random —
//!   the SR policy of Vitter–Hutchinson the paper cites, and the
//!   *load-managed* configuration of Figure 10.
//! - [`RoutingPolicy::LoadAware`] picks the least-loaded instance by
//!   observed backlog, breaking ties by static capacity weight.
//! - [`RoutingPolicy::PowerOfTwoChoices`] samples two candidates at
//!   random and keeps the one with less backlog — the classic
//!   load-balancing compromise between SR's obliviousness and
//!   LoadAware's full scan.
//!
//! The runtime load balancer (emulator `balance` module) feeds per-edge
//! *weights* through [`Router::pick_routed`]: a weight scales an
//! instance's attractiveness, and weight `0.0` excludes the instance
//! outright — even when every other replica is masked down, a
//! zero-weight replica is never chosen (the router returns `None`
//! instead of silently falling back).

use lmas_sim::DetRng;

/// Per-instance liveness, as seen by a router (a *detected* view: a
/// failure detector may lag reality).
///
/// [`UpMask::All`] is the fault-free fast path — every policy makes
/// exactly the same decisions (and RNG draws) through
/// [`Router::pick_available`] with `All` as through [`Router::pick`],
/// so enabling the fault layer with no faults perturbs nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpMask {
    /// Every instance is live.
    All,
    /// Explicit liveness bitset; bit `i` of word `i / 64` is instance `i`.
    /// Indices beyond the stored words read as down.
    Bits(Vec<u64>),
}

impl UpMask {
    /// The fault-free mask.
    pub fn all() -> UpMask {
        UpMask::All
    }

    /// Build an explicit mask over `n` instances from a predicate.
    pub fn from_fn(n: usize, f: impl Fn(usize) -> bool) -> UpMask {
        let mut words = vec![0u64; n.div_ceil(64)];
        for (i, word) in words.iter_mut().enumerate() {
            for b in 0..64 {
                let idx = i * 64 + b;
                if idx < n && f(idx) {
                    *word |= 1u64 << b;
                }
            }
        }
        UpMask::Bits(words)
    }

    /// Is instance `i` live?
    pub fn is_up(&self, i: usize) -> bool {
        match self {
            UpMask::All => true,
            UpMask::Bits(words) => {
                words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
            }
        }
    }

    /// How many of the first `n` instances are live.
    pub fn count_up(&self, n: usize) -> usize {
        match self {
            UpMask::All => n,
            UpMask::Bits(_) => (0..n).filter(|&i| self.is_up(i)).count(),
        }
    }
}

/// Which routing rule an edge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Port `p` always goes to instance `p mod n`.
    Static,
    /// Cycle through instances.
    RoundRobin,
    /// Uniformly random instance (SR).
    SimpleRandomization,
    /// Least backlog wins; ties to the higher-capacity, then lower index.
    LoadAware,
    /// Sample two instances uniformly at random, keep the one with less
    /// normalized backlog (ties to the lower index).
    PowerOfTwoChoices,
}

/// Stateful router for one edge.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    rr_next: usize,
    rng: DetRng,
}

impl Router {
    /// A router applying `policy`, with a deterministic RNG stream for
    /// randomized policies. Round-robin starts at an offset derived from
    /// `stream` so that many single-emission senders sharing an edge
    /// (e.g. one run per block-sort instance) stripe across destinations
    /// instead of all hitting instance 0.
    pub fn new(policy: RoutingPolicy, seed: u64, stream: u64) -> Router {
        Router {
            policy,
            rr_next: stream as usize,
            rng: DetRng::stream(seed, stream),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Choose a destination among `n` instances, all assumed live.
    ///
    /// * `port` — the source port the packet left on (static hint);
    /// * `backlog` — per-instance observed load (e.g. queued work in ns);
    ///   empty when unknown;
    /// * `capacity` — per-instance static capacity weights; empty when
    ///   homogeneous.
    ///
    /// Returns `None` when `n == 0` — a typed "nowhere to route" the
    /// caller must surface (e.g. as `JobError::AllReplicasDown`) rather
    /// than a process abort.
    pub fn pick(
        &mut self,
        n: usize,
        port: usize,
        backlog: &[u64],
        capacity: &[f64],
    ) -> Option<usize> {
        self.pick_available(n, port, backlog, capacity, &UpMask::All)
    }

    /// Choose a destination among the instances `up` marks live.
    ///
    /// Failover semantics per policy:
    ///
    /// * **Static** — the pinned instance `port % n`, or the next live
    ///   index (wrapping linear probe) when it is down;
    /// * **RoundRobin** — advances the cursor past down instances;
    /// * **SimpleRandomization** — uniform over the live instances only
    ///   (with [`UpMask::All`] this makes the identical RNG draw as the
    ///   unmasked path, preserving fault-free determinism);
    /// * **LoadAware** — a down instance is treated as infinite backlog:
    ///   it can never win the minimum while any live instance exists;
    /// * **PowerOfTwoChoices** — both samples are drawn among the live
    ///   instances only.
    ///
    /// Returns `None` when no instance is live.
    pub fn pick_available(
        &mut self,
        n: usize,
        port: usize,
        backlog: &[u64],
        capacity: &[f64],
        up: &UpMask,
    ) -> Option<usize> {
        if n == 0 {
            return None;
        }
        match self.policy {
            RoutingPolicy::Static => {
                let pinned = port % n;
                (0..n).map(|d| (pinned + d) % n).find(|&i| up.is_up(i))
            }
            RoutingPolicy::RoundRobin => {
                for _ in 0..n {
                    let i = self.rr_next % n;
                    self.rr_next = self.rr_next.wrapping_add(1);
                    if up.is_up(i) {
                        return Some(i);
                    }
                }
                None
            }
            RoutingPolicy::SimpleRandomization => match up {
                // Fast path: same draw as the unmasked router.
                UpMask::All => Some(self.rng.gen_index(n)),
                UpMask::Bits(_) => {
                    let live = up.count_up(n);
                    if live == 0 {
                        return None;
                    }
                    let k = self.rng.gen_index(live);
                    (0..n).filter(|&i| up.is_up(i)).nth(k)
                }
            },
            RoutingPolicy::LoadAware => {
                let score = |i: usize| {
                    normalized_load(i, backlog, capacity, &[])
                };
                let capw = |i: usize| {
                    capacity.get(i).copied().unwrap_or(1.0)
                };
                // Least backlog normalized by capacity among live
                // instances; ties to larger capacity, then lower index
                // for determinism. Down == infinite backlog == filtered.
                (0..n).filter(|&i| up.is_up(i)).min_by(|&a, &b| {
                    score(a)
                        .total_cmp(&score(b))
                        .then(capw(b).total_cmp(&capw(a)))
                        .then(a.cmp(&b))
                })
            }
            RoutingPolicy::PowerOfTwoChoices => {
                let live: Vec<usize> =
                    (0..n).filter(|&i| up.is_up(i)).collect();
                self.two_choices(&live, backlog, capacity, &[])
            }
        }
    }

    /// Choose a destination with per-instance routing *weights*, as set
    /// by the runtime load balancer.
    ///
    /// * An empty `weights` slice means "unweighted": the call is
    ///   byte-identical (same RNG draws, same picks) to
    ///   [`Router::pick_available`], so a balancer that never re-weights
    ///   perturbs nothing.
    /// * Weight `0.0` (or negative) makes an instance ineligible — it is
    ///   never picked, even when every other replica is masked down; the
    ///   router returns `None` rather than silently falling back.
    /// * Instances beyond the slice default to weight `1.0`.
    ///
    /// Weighted semantics per policy: Static and RoundRobin treat
    /// weights as eligibility only (probe / cursor skip ineligible);
    /// SimpleRandomization draws proportionally to weight; LoadAware and
    /// PowerOfTwoChoices divide backlog by `capacity × weight`, so a
    /// heavier weight absorbs proportionally more traffic.
    pub fn pick_routed(
        &mut self,
        n: usize,
        port: usize,
        backlog: &[u64],
        capacity: &[f64],
        weights: &[f64],
        up: &UpMask,
    ) -> Option<usize> {
        if weights.is_empty() {
            return self.pick_available(n, port, backlog, capacity, up);
        }
        if n == 0 {
            return None;
        }
        let w = |i: usize| weights.get(i).copied().unwrap_or(1.0);
        let eligible = |i: usize| up.is_up(i) && w(i) > 0.0;
        match self.policy {
            RoutingPolicy::Static => {
                let pinned = port % n;
                (0..n).map(|d| (pinned + d) % n).find(|&i| eligible(i))
            }
            RoutingPolicy::RoundRobin => {
                for _ in 0..n {
                    let i = self.rr_next % n;
                    self.rr_next = self.rr_next.wrapping_add(1);
                    if eligible(i) {
                        return Some(i);
                    }
                }
                None
            }
            RoutingPolicy::SimpleRandomization => {
                let total: f64 =
                    (0..n).filter(|&i| eligible(i)).map(w).sum();
                if total <= 0.0 || !total.is_finite() {
                    return None;
                }
                let mut x = self.rng.gen_f64() * total;
                let mut last = None;
                for i in (0..n).filter(|&i| eligible(i)) {
                    last = Some(i);
                    x -= w(i);
                    if x < 0.0 {
                        break;
                    }
                }
                last
            }
            RoutingPolicy::LoadAware => {
                let score = |i: usize| {
                    normalized_load(i, backlog, capacity, weights)
                };
                let capw = |i: usize| {
                    capacity.get(i).copied().unwrap_or(1.0) * w(i)
                };
                (0..n).filter(|&i| eligible(i)).min_by(|&a, &b| {
                    score(a)
                        .total_cmp(&score(b))
                        .then(capw(b).total_cmp(&capw(a)))
                        .then(a.cmp(&b))
                })
            }
            RoutingPolicy::PowerOfTwoChoices => {
                let live: Vec<usize> =
                    (0..n).filter(|&i| eligible(i)).collect();
                self.two_choices(&live, backlog, capacity, weights)
            }
        }
    }

    /// Two uniform samples among `live`, lower normalized backlog wins
    /// (ties to the lower instance index). Always burns exactly two RNG
    /// draws when any instance is live, so the stream stays aligned
    /// regardless of how many candidates remain.
    fn two_choices(
        &mut self,
        live: &[usize],
        backlog: &[u64],
        capacity: &[f64],
        weights: &[f64],
    ) -> Option<usize> {
        if live.is_empty() {
            return None;
        }
        let a = live[self.rng.gen_index(live.len())];
        let b = live[self.rng.gen_index(live.len())];
        let la = normalized_load(a, backlog, capacity, weights);
        let lb = normalized_load(b, backlog, capacity, weights);
        match la.total_cmp(&lb) {
            std::cmp::Ordering::Greater => Some(b),
            std::cmp::Ordering::Less => Some(a),
            std::cmp::Ordering::Equal => Some(a.min(b)),
        }
    }
}

/// Backlog of instance `i` normalized by `capacity × weight`; a
/// non-positive or non-finite divisor reads as infinite load so the
/// instance can never win a comparison (and 0-backlog/0-capacity can
/// never produce a NaN that would poison the ordering).
fn normalized_load(
    i: usize,
    backlog: &[u64],
    capacity: &[f64],
    weights: &[f64],
) -> f64 {
    let cap = capacity.get(i).copied().unwrap_or(1.0);
    let w = weights.get(i).copied().unwrap_or(1.0);
    let div = cap * w;
    if div > 0.0 && div.is_finite() {
        backlog.get(i).copied().unwrap_or(0) as f64 / div
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pins_port_to_instance() {
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick(2, 0, &[], &[]), Some(0));
        assert_eq!(r.pick(2, 1, &[], &[]), Some(1));
        assert_eq!(r.pick(2, 5, &[], &[]), Some(1));
        // Repeated picks are stable.
        assert_eq!(r.pick(2, 5, &[], &[]), Some(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        let picks: Vec<Option<usize>> = (0..6).map(|_| r.pick(3, 0, &[], &[])).collect();
        let want: Vec<Option<usize>> = [0, 1, 2, 0, 1, 2].into_iter().map(Some).collect();
        assert_eq!(picks, want);
    }

    #[test]
    fn sr_is_uniformish_and_deterministic() {
        let mut r1 = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let mut r2 = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let picks1: Vec<usize> =
            (0..3000).map(|_| r1.pick(3, 0, &[], &[]).unwrap()).collect();
        let picks2: Vec<usize> =
            (0..3000).map(|_| r2.pick(3, 0, &[], &[]).unwrap()).collect();
        assert_eq!(picks1, picks2, "same seed, same stream");
        let mut counts = [0usize; 3];
        for p in picks1 {
            counts[p] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed SR: {counts:?}");
        }
    }

    #[test]
    fn load_aware_prefers_least_backlog() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        assert_eq!(r.pick(3, 0, &[50, 10, 90], &[]), Some(1));
        // Tie on backlog → lower index.
        assert_eq!(r.pick(3, 0, &[10, 10, 90], &[]), Some(0));
        // Missing backlog info defaults to 0 → picks index 0.
        assert_eq!(r.pick(3, 0, &[], &[]), Some(0));
    }

    #[test]
    fn load_aware_normalizes_by_capacity() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        // Instance 1 is 4× faster; backlog 30 on it is "shorter" than 10
        // on the slow one.
        assert_eq!(r.pick(2, 0, &[10, 30], &[1.0, 4.0]), Some(1));
        // Equal normalized load → higher capacity wins.
        assert_eq!(r.pick(2, 0, &[10, 40], &[1.0, 4.0]), Some(1));
    }

    #[test]
    fn zero_instances_yields_none_not_panic() {
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick(0, 0, &[], &[]), None);
        assert_eq!(r.pick_available(0, 0, &[], &[], &UpMask::All), None);
    }

    #[test]
    fn up_mask_bit_accounting() {
        let m = UpMask::from_fn(70, |i| i % 3 != 0);
        for i in 0..70 {
            assert_eq!(m.is_up(i), i % 3 != 0, "bit {i}");
        }
        assert_eq!(m.count_up(70), 46);
        // Indices past the stored words read as down.
        assert!(!m.is_up(128));
        assert_eq!(UpMask::All.count_up(5), 5);
        assert!(UpMask::All.is_up(12345));
    }

    /// Every policy, three masks: all up / one down / all down.
    #[test]
    fn failover_semantics_per_policy() {
        let all = UpMask::all();
        let one_down = UpMask::from_fn(3, |i| i != 1); // instance 1 dead
        let all_down = UpMask::from_fn(3, |_| false);

        // Static: pinned while up; wrapping probe to next live when down.
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick_available(3, 1, &[], &[], &all), Some(1));
        assert_eq!(r.pick_available(3, 1, &[], &[], &one_down), Some(2));
        assert_eq!(r.pick_available(3, 4, &[], &[], &one_down), Some(2));
        assert_eq!(r.pick_available(3, 2, &[], &[], &one_down), Some(2));
        assert_eq!(r.pick_available(3, 1, &[], &[], &all_down), None);

        // RoundRobin: cursor skips the dead instance but keeps cycling.
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        let picks: Vec<Option<usize>> = (0..4)
            .map(|_| r.pick_available(3, 0, &[], &[], &one_down))
            .collect();
        assert_eq!(picks, [Some(0), Some(2), Some(0), Some(2)]);
        assert_eq!(r.pick_available(3, 0, &[], &[], &all_down), None);
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        assert_eq!(r.pick_available(3, 0, &[], &[], &all), Some(0));

        // SR: never picks a dead instance; All-mask draw matches pick().
        let mut masked = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let mut plain = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        for _ in 0..500 {
            assert_eq!(
                masked.pick_available(3, 0, &[], &[], &all),
                plain.pick(3, 0, &[], &[]),
                "All-mask SR must draw identically to unmasked SR"
            );
        }
        let mut hit = [0usize; 3];
        for _ in 0..600 {
            let p = masked
                .pick_available(3, 0, &[], &[], &one_down)
                .expect("live instances exist");
            hit[p] += 1;
        }
        assert_eq!(hit[1], 0, "dead instance picked");
        assert!(hit[0] > 100 && hit[2] > 100, "skewed failover SR: {hit:?}");
        assert_eq!(masked.pick_available(3, 0, &[], &[], &all_down), None);

        // LoadAware: a dead instance loses even with zero backlog.
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        assert_eq!(r.pick_available(3, 0, &[50, 0, 90], &[], &all), Some(1));
        assert_eq!(
            r.pick_available(3, 0, &[50, 0, 90], &[], &one_down),
            Some(0)
        );
        assert_eq!(r.pick_available(3, 0, &[50, 0, 90], &[], &all_down), None);

        // PowerOfTwoChoices: never samples a dead instance.
        let mut r = Router::new(RoutingPolicy::PowerOfTwoChoices, 9, 1);
        for _ in 0..300 {
            let p = r
                .pick_available(3, 0, &[5, 5, 5], &[], &one_down)
                .expect("live instances exist");
            assert_ne!(p, 1, "dead instance sampled");
        }
        assert_eq!(r.pick_available(3, 0, &[], &[], &all_down), None);
    }

    #[test]
    fn load_aware_survives_zero_and_nan_capacity() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        // Zero capacity with zero backlog used to compute 0/0 = NaN and
        // abort inside the comparator; it must instead read as infinitely
        // loaded and lose to any sane instance.
        assert_eq!(r.pick(2, 0, &[0, 10], &[0.0, 1.0]), Some(1));
        assert_eq!(r.pick(2, 0, &[0, 0], &[f64::NAN, 1.0]), Some(1));
        // All instances broken: a deterministic answer, not a panic.
        assert_eq!(r.pick(2, 0, &[0, 0], &[0.0, 0.0]), Some(0));
    }

    #[test]
    fn two_choices_prefers_less_loaded_and_is_deterministic() {
        let mut r1 = Router::new(RoutingPolicy::PowerOfTwoChoices, 7, 2);
        let mut r2 = Router::new(RoutingPolicy::PowerOfTwoChoices, 7, 2);
        let p1: Vec<_> =
            (0..500).map(|_| r1.pick(4, 0, &[0, 100, 100, 100], &[])).collect();
        let p2: Vec<_> =
            (0..500).map(|_| r2.pick(4, 0, &[0, 100, 100, 100], &[])).collect();
        assert_eq!(p1, p2, "same seed, same stream");
        // Instance 0 is idle: it wins every duel it is sampled into, so
        // it must collect well over its uniform 1/4 share.
        let zero_share =
            p1.iter().filter(|&&p| p == Some(0)).count();
        assert!(zero_share > 200, "idle instance underused: {zero_share}");
        // Single instance still resolves.
        let mut r = Router::new(RoutingPolicy::PowerOfTwoChoices, 7, 2);
        assert_eq!(r.pick(1, 0, &[], &[]), Some(0));
    }

    /// Empty weights must be byte-identical to the unweighted router —
    /// same picks *and* same RNG stream positions — for every policy.
    #[test]
    fn empty_weights_match_pick_available_exactly() {
        let policies = [
            RoutingPolicy::Static,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::SimpleRandomization,
            RoutingPolicy::LoadAware,
            RoutingPolicy::PowerOfTwoChoices,
        ];
        let masks =
            [UpMask::all(), UpMask::from_fn(4, |i| i != 2)];
        for policy in policies {
            for mask in &masks {
                let mut weighted = Router::new(policy, 11, 3);
                let mut plain = Router::new(policy, 11, 3);
                for port in 0..200 {
                    let backlog = [port as u64 % 7, 3, 0, 5];
                    assert_eq!(
                        weighted.pick_routed(4, port, &backlog, &[], &[], mask),
                        plain.pick_available(4, port, &backlog, &[], mask),
                        "{policy:?} diverged with empty weights"
                    );
                }
            }
        }
    }

    /// Zero-weight replicas are never picked, even when every positive-
    /// weight replica is masked down — `None`, not a silent fallback.
    #[test]
    fn zero_weight_never_picked_across_policies() {
        let policies = [
            RoutingPolicy::Static,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::SimpleRandomization,
            RoutingPolicy::LoadAware,
            RoutingPolicy::PowerOfTwoChoices,
        ];
        // Weight 0 on instance 1; mask kills instances 0 and 2.
        let weights = [1.0, 0.0, 1.0];
        let others_down = UpMask::from_fn(3, |i| i == 1);
        let all_zero = [0.0, 0.0, 0.0];
        for policy in policies {
            let mut r = Router::new(policy, 5, 0);
            for port in 0..20 {
                assert_eq!(
                    r.pick_routed(3, port, &[], &[], &weights, &others_down),
                    None,
                    "{policy:?} fell back to a zero-weight replica"
                );
                assert_eq!(
                    r.pick_routed(3, port, &[], &[], &all_zero, &UpMask::all()),
                    None,
                    "{policy:?} picked from an all-zero weighting"
                );
            }
            // The zero-weight instance is skipped while healthy peers
            // exist…
            let mut r = Router::new(policy, 5, 0);
            for port in 0..200 {
                let p = r
                    .pick_routed(3, port, &[1, 1, 1], &[], &weights, &UpMask::all())
                    .expect("positive-weight replicas exist");
                assert_ne!(p, 1, "{policy:?} picked the zero-weight replica");
            }
            // …and weights compose with the mask: weight selects among
            // the live instances only.
            let mut r = Router::new(policy, 5, 0);
            let up0_only = UpMask::from_fn(3, |i| i == 0);
            for port in 0..20 {
                assert_eq!(
                    r.pick_routed(3, port, &[], &[], &weights, &up0_only),
                    Some(0),
                    "{policy:?} ignored the mask under weights"
                );
            }
        }
    }

    #[test]
    fn weighted_sr_skews_toward_heavy_weight() {
        let mut r =
            Router::new(RoutingPolicy::SimpleRandomization, 13, 4);
        let weights = [1.0, 3.0];
        let mut hit = [0usize; 2];
        for _ in 0..4000 {
            let p = r
                .pick_routed(2, 0, &[], &[], &weights, &UpMask::all())
                .unwrap();
            hit[p] += 1;
        }
        // Expected 1000 / 3000 split; allow generous slack.
        assert!(hit[1] > 2 * hit[0], "weighted SR not skewed: {hit:?}");
        assert!(hit[0] > 500, "light replica starved: {hit:?}");
    }

    #[test]
    fn weighted_load_aware_divides_backlog_by_weight() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        // Backlog 30 at weight 4 (norm 7.5) beats backlog 10 at
        // weight 1 (norm 10).
        assert_eq!(
            r.pick_routed(2, 0, &[10, 30], &[], &[1.0, 4.0], &UpMask::all()),
            Some(1)
        );
        // Short weight slices default the tail to 1.0.
        assert_eq!(
            r.pick_routed(2, 0, &[10, 2], &[], &[1.0], &UpMask::all()),
            Some(1)
        );
    }
}
