//! Routing policies: how records flow across replicated functor instances.
//!
//! Section 3.3: "sets and replicated functors allow ASUs and host nodes to
//! perform dataflow routing between functors intelligently. The routing of
//! records across functor instances may be responsive to dynamic load
//! conditions visible to the system. In some cases, randomized routing
//! techniques like simple randomization (SR) may reduce data dependencies
//! and interference…"
//!
//! - [`RoutingPolicy::Static`] pins each source port (e.g. each distribute
//!   subset) to a fixed instance — the *no load control* baseline of
//!   Figure 10.
//! - [`RoutingPolicy::RoundRobin`] cycles instances.
//! - [`RoutingPolicy::SimpleRandomization`] picks uniformly at random —
//!   the SR policy of Vitter–Hutchinson the paper cites, and the
//!   *load-managed* configuration of Figure 10.
//! - [`RoutingPolicy::LoadAware`] picks the least-loaded instance by
//!   observed backlog, breaking ties by static capacity weight.

use lmas_sim::DetRng;

/// Per-instance liveness, as seen by a router (a *detected* view: a
/// failure detector may lag reality).
///
/// [`UpMask::All`] is the fault-free fast path — every policy makes
/// exactly the same decisions (and RNG draws) through
/// [`Router::pick_available`] with `All` as through [`Router::pick`],
/// so enabling the fault layer with no faults perturbs nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpMask {
    /// Every instance is live.
    All,
    /// Explicit liveness bitset; bit `i` of word `i / 64` is instance `i`.
    /// Indices beyond the stored words read as down.
    Bits(Vec<u64>),
}

impl UpMask {
    /// The fault-free mask.
    pub fn all() -> UpMask {
        UpMask::All
    }

    /// Build an explicit mask over `n` instances from a predicate.
    pub fn from_fn(n: usize, f: impl Fn(usize) -> bool) -> UpMask {
        let mut words = vec![0u64; n.div_ceil(64)];
        for (i, word) in words.iter_mut().enumerate() {
            for b in 0..64 {
                let idx = i * 64 + b;
                if idx < n && f(idx) {
                    *word |= 1u64 << b;
                }
            }
        }
        UpMask::Bits(words)
    }

    /// Is instance `i` live?
    pub fn is_up(&self, i: usize) -> bool {
        match self {
            UpMask::All => true,
            UpMask::Bits(words) => {
                words.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
            }
        }
    }

    /// How many of the first `n` instances are live.
    pub fn count_up(&self, n: usize) -> usize {
        match self {
            UpMask::All => n,
            UpMask::Bits(_) => (0..n).filter(|&i| self.is_up(i)).count(),
        }
    }
}

/// Which routing rule an edge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Port `p` always goes to instance `p mod n`.
    Static,
    /// Cycle through instances.
    RoundRobin,
    /// Uniformly random instance (SR).
    SimpleRandomization,
    /// Least backlog wins; ties to the higher-capacity, then lower index.
    LoadAware,
}

/// Stateful router for one edge.
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    rr_next: usize,
    rng: DetRng,
}

impl Router {
    /// A router applying `policy`, with a deterministic RNG stream for
    /// randomized policies. Round-robin starts at an offset derived from
    /// `stream` so that many single-emission senders sharing an edge
    /// (e.g. one run per block-sort instance) stripe across destinations
    /// instead of all hitting instance 0.
    pub fn new(policy: RoutingPolicy, seed: u64, stream: u64) -> Router {
        Router {
            policy,
            rr_next: stream as usize,
            rng: DetRng::stream(seed, stream),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Choose a destination among `n` instances, all assumed live.
    ///
    /// * `port` — the source port the packet left on (static hint);
    /// * `backlog` — per-instance observed load (e.g. queued work in ns);
    ///   empty when unknown;
    /// * `capacity` — per-instance static capacity weights; empty when
    ///   homogeneous.
    ///
    /// Returns `None` when `n == 0` — a typed "nowhere to route" the
    /// caller must surface (e.g. as `JobError::AllReplicasDown`) rather
    /// than a process abort.
    pub fn pick(
        &mut self,
        n: usize,
        port: usize,
        backlog: &[u64],
        capacity: &[f64],
    ) -> Option<usize> {
        self.pick_available(n, port, backlog, capacity, &UpMask::All)
    }

    /// Choose a destination among the instances `up` marks live.
    ///
    /// Failover semantics per policy:
    ///
    /// * **Static** — the pinned instance `port % n`, or the next live
    ///   index (wrapping linear probe) when it is down;
    /// * **RoundRobin** — advances the cursor past down instances;
    /// * **SimpleRandomization** — uniform over the live instances only
    ///   (with [`UpMask::All`] this makes the identical RNG draw as the
    ///   unmasked path, preserving fault-free determinism);
    /// * **LoadAware** — a down instance is treated as infinite backlog:
    ///   it can never win the minimum while any live instance exists.
    ///
    /// Returns `None` when no instance is live.
    pub fn pick_available(
        &mut self,
        n: usize,
        port: usize,
        backlog: &[u64],
        capacity: &[f64],
        up: &UpMask,
    ) -> Option<usize> {
        if n == 0 {
            return None;
        }
        match self.policy {
            RoutingPolicy::Static => {
                let pinned = port % n;
                (0..n).map(|d| (pinned + d) % n).find(|&i| up.is_up(i))
            }
            RoutingPolicy::RoundRobin => {
                for _ in 0..n {
                    let i = self.rr_next % n;
                    self.rr_next = self.rr_next.wrapping_add(1);
                    if up.is_up(i) {
                        return Some(i);
                    }
                }
                None
            }
            RoutingPolicy::SimpleRandomization => match up {
                // Fast path: same draw as the unmasked router.
                UpMask::All => Some(self.rng.gen_index(n)),
                UpMask::Bits(_) => {
                    let live = up.count_up(n);
                    if live == 0 {
                        return None;
                    }
                    let k = self.rng.gen_index(live);
                    (0..n).filter(|&i| up.is_up(i)).nth(k)
                }
            },
            RoutingPolicy::LoadAware => {
                let cap = |i: usize| capacity.get(i).copied().unwrap_or(1.0);
                let load = |i: usize| backlog.get(i).copied().unwrap_or(0);
                // Least backlog normalized by capacity among live
                // instances; ties to larger capacity, then lower index
                // for determinism. Down == infinite backlog == filtered.
                (0..n)
                    .filter(|&i| up.is_up(i))
                    .min_by(|&a, &b| {
                        let la = load(a) as f64 / cap(a);
                        let lb = load(b) as f64 / cap(b);
                        la.partial_cmp(&lb)
                            .expect("finite loads")
                            .then(
                                cap(b)
                                    .partial_cmp(&cap(a))
                                    .expect("finite capacities"),
                            )
                            .then(a.cmp(&b))
                    })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_pins_port_to_instance() {
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick(2, 0, &[], &[]), Some(0));
        assert_eq!(r.pick(2, 1, &[], &[]), Some(1));
        assert_eq!(r.pick(2, 5, &[], &[]), Some(1));
        // Repeated picks are stable.
        assert_eq!(r.pick(2, 5, &[], &[]), Some(1));
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        let picks: Vec<Option<usize>> = (0..6).map(|_| r.pick(3, 0, &[], &[])).collect();
        let want: Vec<Option<usize>> = [0, 1, 2, 0, 1, 2].into_iter().map(Some).collect();
        assert_eq!(picks, want);
    }

    #[test]
    fn sr_is_uniformish_and_deterministic() {
        let mut r1 = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let mut r2 = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let picks1: Vec<usize> =
            (0..3000).map(|_| r1.pick(3, 0, &[], &[]).unwrap()).collect();
        let picks2: Vec<usize> =
            (0..3000).map(|_| r2.pick(3, 0, &[], &[]).unwrap()).collect();
        assert_eq!(picks1, picks2, "same seed, same stream");
        let mut counts = [0usize; 3];
        for p in picks1 {
            counts[p] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed SR: {counts:?}");
        }
    }

    #[test]
    fn load_aware_prefers_least_backlog() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        assert_eq!(r.pick(3, 0, &[50, 10, 90], &[]), Some(1));
        // Tie on backlog → lower index.
        assert_eq!(r.pick(3, 0, &[10, 10, 90], &[]), Some(0));
        // Missing backlog info defaults to 0 → picks index 0.
        assert_eq!(r.pick(3, 0, &[], &[]), Some(0));
    }

    #[test]
    fn load_aware_normalizes_by_capacity() {
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        // Instance 1 is 4× faster; backlog 30 on it is "shorter" than 10
        // on the slow one.
        assert_eq!(r.pick(2, 0, &[10, 30], &[1.0, 4.0]), Some(1));
        // Equal normalized load → higher capacity wins.
        assert_eq!(r.pick(2, 0, &[10, 40], &[1.0, 4.0]), Some(1));
    }

    #[test]
    fn zero_instances_yields_none_not_panic() {
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick(0, 0, &[], &[]), None);
        assert_eq!(r.pick_available(0, 0, &[], &[], &UpMask::All), None);
    }

    #[test]
    fn up_mask_bit_accounting() {
        let m = UpMask::from_fn(70, |i| i % 3 != 0);
        for i in 0..70 {
            assert_eq!(m.is_up(i), i % 3 != 0, "bit {i}");
        }
        assert_eq!(m.count_up(70), 46);
        // Indices past the stored words read as down.
        assert!(!m.is_up(128));
        assert_eq!(UpMask::All.count_up(5), 5);
        assert!(UpMask::All.is_up(12345));
    }

    /// Every policy, three masks: all up / one down / all down.
    #[test]
    fn failover_semantics_per_policy() {
        let all = UpMask::all();
        let one_down = UpMask::from_fn(3, |i| i != 1); // instance 1 dead
        let all_down = UpMask::from_fn(3, |_| false);

        // Static: pinned while up; wrapping probe to next live when down.
        let mut r = Router::new(RoutingPolicy::Static, 0, 0);
        assert_eq!(r.pick_available(3, 1, &[], &[], &all), Some(1));
        assert_eq!(r.pick_available(3, 1, &[], &[], &one_down), Some(2));
        assert_eq!(r.pick_available(3, 4, &[], &[], &one_down), Some(2));
        assert_eq!(r.pick_available(3, 2, &[], &[], &one_down), Some(2));
        assert_eq!(r.pick_available(3, 1, &[], &[], &all_down), None);

        // RoundRobin: cursor skips the dead instance but keeps cycling.
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        let picks: Vec<Option<usize>> = (0..4)
            .map(|_| r.pick_available(3, 0, &[], &[], &one_down))
            .collect();
        assert_eq!(picks, [Some(0), Some(2), Some(0), Some(2)]);
        assert_eq!(r.pick_available(3, 0, &[], &[], &all_down), None);
        let mut r = Router::new(RoutingPolicy::RoundRobin, 0, 0);
        assert_eq!(r.pick_available(3, 0, &[], &[], &all), Some(0));

        // SR: never picks a dead instance; All-mask draw matches pick().
        let mut masked = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        let mut plain = Router::new(RoutingPolicy::SimpleRandomization, 9, 1);
        for _ in 0..500 {
            assert_eq!(
                masked.pick_available(3, 0, &[], &[], &all),
                plain.pick(3, 0, &[], &[]),
                "All-mask SR must draw identically to unmasked SR"
            );
        }
        let mut hit = [0usize; 3];
        for _ in 0..600 {
            let p = masked
                .pick_available(3, 0, &[], &[], &one_down)
                .expect("live instances exist");
            hit[p] += 1;
        }
        assert_eq!(hit[1], 0, "dead instance picked");
        assert!(hit[0] > 100 && hit[2] > 100, "skewed failover SR: {hit:?}");
        assert_eq!(masked.pick_available(3, 0, &[], &[], &all_down), None);

        // LoadAware: a dead instance loses even with zero backlog.
        let mut r = Router::new(RoutingPolicy::LoadAware, 0, 0);
        assert_eq!(r.pick_available(3, 0, &[50, 0, 90], &[], &all), Some(1));
        assert_eq!(
            r.pick_available(3, 0, &[50, 0, 90], &[], &one_down),
            Some(0)
        );
        assert_eq!(r.pick_available(3, 0, &[50, 0, 90], &[], &all_down), None);
    }
}
