//! Dataflow graphs: functor stages wired by routed edges.
//!
//! Programs in the model are "composed … to build complete programs that
//! process data as it moves from stored input to output, possibly in
//! multiple passes" (Section 3.1). A [`FlowGraph`] is one pass: a DAG of
//! stages, each replicated into some number of functor instances, joined
//! by edges that name a routing policy and an ordering contract
//! ([`EdgeKind::Set`] lets the system reorder and rebalance;
//! [`EdgeKind::Stream`] preserves sequence).
//!
//! The graph is *structure only* — the emulator compiles it against a
//! [`Placement`](crate::placement::Placement) to run.

use crate::functor::{Functor, FunctorKind};
use crate::placement::StageId;
use crate::record::Record;
use crate::routing::RoutingPolicy;
use std::fmt;
use std::sync::Arc;

/// A shared handle to a stage's functor factory.
///
/// The factory is reference-counted so the emulator can keep a handle per
/// instance actor and rebuild a functor from scratch after a crash
/// (volatile functor state is lost with the node; a recovered instance
/// restarts from the factory's initial state).
pub type StageFactory<R> = Arc<dyn Fn(usize) -> Box<dyn Functor<R>> + Send + Sync>;

/// Ordering contract of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Unordered: packets may be delivered to any instance in any order —
    /// the system load-balances freely.
    Set,
    /// Ordered: packets are delivered in emission order; routing must be
    /// static to preserve per-port sequence.
    Stream,
}

/// How an edge's destination instances are scoped.
///
/// `PortGroups` realizes the paper's load-managed distribution (Figure
/// 10): "each of the α subsets is spread across both hosts". The
/// destination stage's instances are partitioned into contiguous groups
/// of `group_size`; a packet leaving port `p` is confined to group
/// `p mod (replication / group_size)`, and the routing policy picks
/// *within* that group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteScope {
    /// The policy picks among all destination instances.
    Global,
    /// The policy picks within the port's instance group.
    PortGroups {
        /// Instances per group; must divide the destination replication.
        group_size: usize,
    },
}

/// A connection from every output port of `from` to the instances of `to`.
/// The source port number is passed to the router as its static hint, so
/// `Static` routing pins port `p` to instance `p mod replication(to)`.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Producing stage.
    pub from: StageId,
    /// Consuming stage.
    pub to: StageId,
    /// How packets choose a destination instance.
    pub routing: RoutingPolicy,
    /// Ordering contract.
    pub kind: EdgeKind,
    /// Destination scoping (global or per-port groups).
    pub scope: RouteScope,
    /// Coded-shuffle broadcast-group size `r`. Destination instances are
    /// partitioned into contiguous groups of `r`; the emulator coalesces
    /// every `r` remote packets bound for one group into a single coded
    /// frame (one NIC send, per-member receives), with each sender paying
    /// an `(r-1)`-way replicated disk write for the side information.
    /// `1` means uncoded point-to-point delivery.
    pub coded_group: usize,
}

/// A stage: `replication` instances of one functor.
pub struct Stage<R: Record> {
    /// Stage name (from the probe functor).
    pub name: String,
    /// Number of parallel instances.
    pub replication: usize,
    /// Output ports per instance.
    pub out_ports: usize,
    /// Execution contract (from the probe functor).
    pub kind: FunctorKind,
    /// Whether external input is injected into this stage.
    pub is_source: bool,
    factory: StageFactory<R>,
}

impl<R: Record> Stage<R> {
    /// Build the functor for instance `i`.
    pub fn instantiate(&self, i: usize) -> Box<dyn Functor<R>> {
        (self.factory)(i)
    }

    /// A shared handle to this stage's factory (for crash-restart:
    /// rebuilding an instance's functor resets it to initial state).
    pub fn factory_handle(&self) -> StageFactory<R> {
        Arc::clone(&self.factory)
    }
}

impl<R: Record> fmt::Debug for Stage<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage")
            .field("name", &self.name)
            .field("replication", &self.replication)
            .field("out_ports", &self.out_ports)
            .field("is_source", &self.is_source)
            .finish()
    }
}

/// Graph construction/validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no stages.
    Empty,
    /// No stage is marked as a source.
    NoSource,
    /// A stage already has an outgoing edge.
    MultipleOutEdges(StageId),
    /// An edge references a stage that does not exist.
    DanglingEdge(StageId),
    /// The edges form a cycle.
    Cycle,
    /// Stream edges require static routing to preserve order.
    StreamNeedsStaticRouting(StageId),
    /// A stage would have zero instances.
    ZeroReplication(StageId),
    /// A port-group size does not divide the destination replication.
    BadGroupSize {
        /// The destination stage.
        to: StageId,
        /// The offending group size.
        group_size: usize,
    },
    /// A coded broadcast-group size is zero or exceeds the destination
    /// replication (a group wider than the stage can never fill).
    BadCodedGroup {
        /// The destination stage.
        to: StageId,
        /// The offending coded-group size.
        coded_group: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no stages"),
            GraphError::NoSource => write!(f, "no source stage"),
            GraphError::MultipleOutEdges(s) => {
                write!(f, "stage {s:?} has multiple outgoing edges")
            }
            GraphError::DanglingEdge(s) => write!(f, "edge references unknown stage {s:?}"),
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::StreamNeedsStaticRouting(s) => write!(
                f,
                "stream edge out of {s:?} must use static routing to preserve order"
            ),
            GraphError::ZeroReplication(s) => write!(f, "stage {s:?} has zero instances"),
            GraphError::BadGroupSize { to, group_size } => write!(
                f,
                "group size {group_size} does not divide the replication of stage {to:?}"
            ),
            GraphError::BadCodedGroup { to, coded_group } => write!(
                f,
                "coded group size {coded_group} invalid for the replication of stage {to:?}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A dataflow program: stages plus routed edges.
pub struct FlowGraph<R: Record> {
    stages: Vec<Stage<R>>,
    edges: Vec<Edge>,
}

impl<R: Record> Default for FlowGraph<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Record> FlowGraph<R> {
    /// An empty graph.
    pub fn new() -> FlowGraph<R> {
        FlowGraph {
            stages: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a stage of `replication` instances built by `factory`.
    /// A probe instance is constructed to capture name/ports/kind.
    pub fn add_stage<F>(&mut self, replication: usize, factory: F) -> StageId
    where
        F: Fn(usize) -> Box<dyn Functor<R>> + Send + Sync + 'static,
    {
        self.add_stage_inner(replication, factory, false)
    }

    /// Add a stage that receives external input (container scans feed it).
    pub fn add_source_stage<F>(&mut self, replication: usize, factory: F) -> StageId
    where
        F: Fn(usize) -> Box<dyn Functor<R>> + Send + Sync + 'static,
    {
        self.add_stage_inner(replication, factory, true)
    }

    fn add_stage_inner<F>(&mut self, replication: usize, factory: F, is_source: bool) -> StageId
    where
        F: Fn(usize) -> Box<dyn Functor<R>> + Send + Sync + 'static,
    {
        let probe = factory(0);
        let id = StageId(self.stages.len());
        self.stages.push(Stage {
            name: probe.name(),
            replication,
            out_ports: probe.out_ports(),
            kind: probe.kind(),
            is_source,
            factory: Arc::new(factory),
        });
        id
    }

    /// Connect all output ports of `from` to the instances of `to`.
    pub fn connect(
        &mut self,
        from: StageId,
        to: StageId,
        routing: RoutingPolicy,
        kind: EdgeKind,
    ) -> Result<(), GraphError> {
        self.connect_scoped(from, to, routing, kind, RouteScope::Global)
    }

    /// [`FlowGraph::connect`] with explicit destination scoping.
    pub fn connect_scoped(
        &mut self,
        from: StageId,
        to: StageId,
        routing: RoutingPolicy,
        kind: EdgeKind,
        scope: RouteScope,
    ) -> Result<(), GraphError> {
        self.connect_coded(from, to, routing, kind, scope, 1)
    }

    /// [`FlowGraph::connect_scoped`] with a coded broadcast-group size.
    /// `coded_group = 1` is plain point-to-point delivery; `r > 1` groups
    /// the destination instances into contiguous broadcast groups of `r`
    /// and lets the emulator coalesce their shuffle traffic into coded
    /// frames (one NIC send per `r` remote packets).
    pub fn connect_coded(
        &mut self,
        from: StageId,
        to: StageId,
        routing: RoutingPolicy,
        kind: EdgeKind,
        scope: RouteScope,
        coded_group: usize,
    ) -> Result<(), GraphError> {
        for s in [from, to] {
            if s.0 >= self.stages.len() {
                return Err(GraphError::DanglingEdge(s));
            }
        }
        if self.edges.iter().any(|e| e.from == from) {
            return Err(GraphError::MultipleOutEdges(from));
        }
        if kind == EdgeKind::Stream && routing != RoutingPolicy::Static {
            return Err(GraphError::StreamNeedsStaticRouting(from));
        }
        if let RouteScope::PortGroups { group_size } = scope {
            let repl = self.stages[to.0].replication;
            if group_size == 0 || !repl.is_multiple_of(group_size) {
                return Err(GraphError::BadGroupSize { to, group_size });
            }
        }
        if coded_group == 0 || coded_group > self.stages[to.0].replication {
            return Err(GraphError::BadCodedGroup { to, coded_group });
        }
        self.edges.push(Edge {
            from,
            to,
            routing,
            kind,
            scope,
            coded_group,
        });
        Ok(())
    }

    /// The stages, indexed by [`StageId`].
    pub fn stages(&self) -> &[Stage<R>] {
        &self.stages
    }

    /// A stage by id.
    pub fn stage(&self, id: StageId) -> &Stage<R> {
        &self.stages[id.0]
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The single outgoing edge of `stage`, if any (sinks have none).
    pub fn out_edge(&self, stage: StageId) -> Option<&Edge> {
        self.edges.iter().find(|e| e.from == stage)
    }

    /// Number of incoming edges of `stage`.
    pub fn in_degree(&self, stage: StageId) -> usize {
        self.edges.iter().filter(|e| e.to == stage).count()
    }

    /// `(stage, replication, kind)` rows for placement validation.
    pub fn placement_rows(&self) -> Vec<(StageId, usize, FunctorKind)> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| (StageId(i), s.replication, s.kind))
            .collect()
    }

    /// Validate the graph and return a topological order of stages.
    pub fn validate(&self) -> Result<Vec<StageId>, GraphError> {
        if self.stages.is_empty() {
            return Err(GraphError::Empty);
        }
        if !self.stages.iter().any(|s| s.is_source) {
            return Err(GraphError::NoSource);
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.replication == 0 {
                return Err(GraphError::ZeroReplication(StageId(i)));
            }
        }
        // Kahn's algorithm.
        let n = self.stages.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.0] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(StageId(i));
            for e in &self.edges {
                if e.from.0 == i {
                    indeg[e.to.0] -= 1;
                    if indeg[e.to.0] == 0 {
                        ready.push(e.to.0);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::Cycle);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Work;
    use crate::functor::lib::MapFunctor;
    use crate::record::Rec8;

    fn ident(replication: usize, g: &mut FlowGraph<Rec8>, source: bool) -> StageId {
        let f = |_: usize| -> Box<dyn Functor<Rec8>> {
            Box::new(MapFunctor::new("id", Work::ZERO, |r: Rec8| r))
        };
        if source {
            g.add_source_stage(replication, f)
        } else {
            g.add_stage(replication, f)
        }
    }

    #[test]
    fn linear_pipeline_validates_in_order() {
        let mut g = FlowGraph::new();
        let a = ident(2, &mut g, true);
        let b = ident(3, &mut g, false);
        let c = ident(1, &mut g, false);
        g.connect(a, b, RoutingPolicy::RoundRobin, EdgeKind::Set).unwrap();
        g.connect(b, c, RoutingPolicy::Static, EdgeKind::Stream).unwrap();
        let order = g.validate().unwrap();
        assert_eq!(order, vec![a, b, c]);
        assert_eq!(g.out_edge(a).unwrap().to, b);
        assert!(g.out_edge(c).is_none());
        assert_eq!(g.in_degree(c), 1);
        assert_eq!(g.in_degree(a), 0);
    }

    #[test]
    fn stage_metadata_captured_from_probe() {
        let mut g = FlowGraph::new();
        let a = ident(4, &mut g, true);
        assert_eq!(g.stage(a).name, "id");
        assert_eq!(g.stage(a).replication, 4);
        assert_eq!(g.stage(a).out_ports, 1);
        assert!(g.stage(a).is_source);
        let rows = g.placement_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 4);
    }

    #[test]
    fn empty_and_sourceless_graphs_rejected() {
        let g: FlowGraph<Rec8> = FlowGraph::new();
        assert_eq!(g.validate().unwrap_err(), GraphError::Empty);
        let mut g2 = FlowGraph::new();
        ident(1, &mut g2, false);
        assert_eq!(g2.validate().unwrap_err(), GraphError::NoSource);
    }

    #[test]
    fn cycle_detected() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        let b = ident(1, &mut g, false);
        g.connect(a, b, RoutingPolicy::Static, EdgeKind::Set).unwrap();
        g.connect(b, a, RoutingPolicy::Static, EdgeKind::Set).unwrap();
        assert_eq!(g.validate().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn duplicate_out_edges_rejected() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        let b = ident(1, &mut g, false);
        let c = ident(1, &mut g, false);
        g.connect(a, b, RoutingPolicy::Static, EdgeKind::Set).unwrap();
        assert_eq!(
            g.connect(a, c, RoutingPolicy::Static, EdgeKind::Set),
            Err(GraphError::MultipleOutEdges(a))
        );
    }

    #[test]
    fn stream_edges_require_static_routing() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        let b = ident(1, &mut g, false);
        assert_eq!(
            g.connect(a, b, RoutingPolicy::SimpleRandomization, EdgeKind::Stream),
            Err(GraphError::StreamNeedsStaticRouting(a))
        );
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        assert_eq!(
            g.connect(a, StageId(9), RoutingPolicy::Static, EdgeKind::Set),
            Err(GraphError::DanglingEdge(StageId(9)))
        );
    }

    #[test]
    fn scoped_edge_validates_group_size() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        let b = ident(6, &mut g, false);
        assert_eq!(
            g.connect_scoped(
                a,
                b,
                RoutingPolicy::SimpleRandomization,
                EdgeKind::Set,
                RouteScope::PortGroups { group_size: 4 },
            ),
            Err(GraphError::BadGroupSize { to: b, group_size: 4 })
        );
        g.connect_scoped(
            a,
            b,
            RoutingPolicy::SimpleRandomization,
            EdgeKind::Set,
            RouteScope::PortGroups { group_size: 3 },
        )
        .unwrap();
        assert_eq!(
            g.out_edge(a).unwrap().scope,
            RouteScope::PortGroups { group_size: 3 }
        );
    }

    #[test]
    fn zero_group_size_rejected() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        let b = ident(2, &mut g, false);
        assert!(matches!(
            g.connect_scoped(
                a,
                b,
                RoutingPolicy::Static,
                EdgeKind::Set,
                RouteScope::PortGroups { group_size: 0 },
            ),
            Err(GraphError::BadGroupSize { .. })
        ));
    }

    #[test]
    fn coded_group_bounds_enforced() {
        let mut g = FlowGraph::new();
        let a = ident(1, &mut g, true);
        let b = ident(4, &mut g, false);
        assert_eq!(
            g.connect_coded(a, b, RoutingPolicy::Static, EdgeKind::Set, RouteScope::Global, 0),
            Err(GraphError::BadCodedGroup { to: b, coded_group: 0 })
        );
        assert_eq!(
            g.connect_coded(a, b, RoutingPolicy::Static, EdgeKind::Set, RouteScope::Global, 5),
            Err(GraphError::BadCodedGroup { to: b, coded_group: 5 })
        );
        g.connect_coded(a, b, RoutingPolicy::Static, EdgeKind::Set, RouteScope::Global, 2)
            .unwrap();
        assert_eq!(g.out_edge(a).unwrap().coded_group, 2);
        // Plain connect defaults to uncoded.
        let mut g2 = FlowGraph::new();
        let x = ident(1, &mut g2, true);
        let y = ident(2, &mut g2, false);
        g2.connect(x, y, RoutingPolicy::Static, EdgeKind::Set).unwrap();
        assert_eq!(g2.out_edge(x).unwrap().coded_group, 1);
    }

    #[test]
    fn zero_replication_rejected() {
        let mut g = FlowGraph::new();
        ident(0, &mut g, true);
        assert_eq!(
            g.validate().unwrap_err(),
            GraphError::ZeroReplication(StageId(0))
        );
    }
}
