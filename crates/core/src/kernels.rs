//! Verified in-memory kernels: block sort and k-way merge.
//!
//! The paper permits "more complex read/modify/write operations … in
//! common, verified computation kernels, e.g., for useful primitives such
//! as sorting" (Section 3.1). These are those kernels. Each reports the
//! comparison count it actually performed so the work identity
//! `Total Work = n·log(αβγ)` (Section 4.3) can be audited, not assumed.

use crate::record::Record;

/// Below this length the comparison sort's constant factors win; the
/// threshold only affects wall-clock, never output (both paths are
/// stable) or charging.
const RADIX_MIN_LEN: usize = 64;

/// Sort `records` by key in place; returns the number of comparisons a
/// binary-insertion-counted mergesort would charge, `n·ceil(log2 n)`,
/// which is the paper's accounting unit for a β-record block sort.
///
/// Records that expose a faithful `u32` key image
/// ([`Record::RADIX32`]) are sorted by a stable LSB radix sort;
/// everything else falls back to `sort_by_key`. Both paths are stable,
/// so the permutation produced is identical either way, and the charge
/// is the paper's unit regardless of the kernel actually used — the
/// work identity `T1 = n·log(αβγ)` is a property of the accounting, not
/// of the machine instructions.
pub fn block_sort<R: Record>(records: &mut [R]) -> u64 {
    let n = records.len() as u64;
    if R::RADIX32 && records.len() >= RADIX_MIN_LEN {
        radix_sort_u32(records);
    } else {
        records.sort_by_key(|r| r.key());
    }
    n * crate::cost::log2_ceil(n)
}

/// Stable LSB radix sort for records with a `u32` key image
/// ([`Record::RADIX32`] must be true).
///
/// Sorts `(key, index)` pairs through four 8-bit counting passes —
/// moving 8-byte pairs instead of whole records — then gathers the
/// records into place with a single permutation pass. Passes whose byte
/// is constant across the block (common under skewed or small-range
/// keys) are skipped. Output order equals a stable `sort_by_key`.
pub fn radix_sort_u32<R: Record>(records: &mut [R]) {
    debug_assert!(R::RADIX32, "record type did not opt into radix sorting");
    let n = records.len();
    if n < 2 {
        return;
    }
    debug_assert!(n <= u32::MAX as usize, "block exceeds u32 indexing");
    let mut pairs: Vec<(u32, u32)> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.radix_key(), i as u32))
        .collect();
    let mut scratch: Vec<(u32, u32)> = vec![(0, 0); n];
    for shift in [0u32, 8, 16, 24] {
        let mut counts = [0usize; 256];
        for &(k, _) in &pairs {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        if counts.contains(&n) {
            continue; // this byte is constant: the pass is the identity
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        for &(k, i) in &pairs {
            let b = ((k >> shift) & 0xFF) as usize;
            scratch[offsets[b]] = (k, i);
            offsets[b] += 1;
        }
        std::mem::swap(&mut pairs, &mut scratch);
    }
    // One gather pass puts each record in place (records move once, not
    // once per radix pass).
    let gathered: Vec<R> = pairs
        .iter()
        .map(|&(_, i)| records[i as usize].clone())
        .collect();
    for (dst, src) in records.iter_mut().zip(gathered) {
        *dst = src;
    }
}

/// Does run `a`'s head strictly beat run `b`'s in the tournament?
///
/// Exhausted runs (`None`) lose to everything; equal keys break toward
/// the lower run index, reproducing the `(key, run)` order of the merge
/// this replaced, so the merge stays stable across runs.
fn beats<R: Record>(heads: &[Option<R>], a: usize, b: usize, compares: &mut u64) -> bool {
    match (&heads[a], &heads[b]) {
        (Some(x), Some(y)) => {
            *compares += 1;
            (x.key(), a) < (y.key(), b)
        }
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

/// Merge `runs` (each sorted by key) into one sorted vector using a
/// loser tree; returns `(merged, compares)` where `compares` counts the
/// comparisons actually performed (~`m·ceil(log2 k)` for `m` records
/// over `k` live runs — sentinel matches are free).
///
/// The tree is two flat arrays: `losers[1..m]` holds the run index
/// parked at each internal node, `heads[r]` holds run `r`'s current
/// front record, **moved** out of the run (records are drained, never
/// cloned). Emitting the winner costs one root-to-leaf replay; no
/// per-step heap state is rebuilt or copied.
pub fn merge_runs<R: Record>(runs: Vec<Vec<R>>) -> (Vec<R>, u64) {
    let mut runs: Vec<Vec<R>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let k = runs.len();
    if k == 0 {
        return (Vec::new(), 0);
    }
    if k == 1 {
        return (runs.pop().expect("k==1"), 0);
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out: Vec<R> = Vec::with_capacity(total);
    let mut compares = 0u64;

    // m leaves (next power of two ≥ k); leaves k..m are permanent
    // sentinels. Leaf r is tree node m + r; internal nodes are 1..m.
    let m = k.next_power_of_two();
    let mut tails: Vec<std::vec::IntoIter<R>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<R>> = Vec::with_capacity(m);
    for t in &mut tails {
        heads.push(t.next());
    }
    heads.resize_with(m, || None);

    // Build: play each match bottom-up, parking losers, bubbling winners.
    let mut losers = vec![0usize; m];
    let mut winner_at = vec![0usize; 2 * m];
    for (r, w) in winner_at[m..].iter_mut().enumerate() {
        *w = r;
    }
    for node in (1..m).rev() {
        let a = winner_at[2 * node];
        let b = winner_at[2 * node + 1];
        let (w, l) = if beats(&heads, a, b, &mut compares) {
            (a, b)
        } else {
            (b, a)
        };
        winner_at[node] = w;
        losers[node] = l;
    }
    let mut winner = winner_at[1];

    while let Some(rec) = heads[winner].take() {
        out.push(rec);
        heads[winner] = tails[winner].next();
        // Replay from the winner's leaf to the root.
        let mut node = (m + winner) / 2;
        let mut w = winner;
        while node >= 1 {
            if beats(&heads, losers[node], w, &mut compares) {
                std::mem::swap(&mut losers[node], &mut w);
            }
            node /= 2;
        }
        winner = w;
    }
    debug_assert_eq!(out.len(), total);
    (out, compares)
}

/// Check that `records` is sorted by key (non-decreasing).
pub fn is_sorted_by_key<R: Record>(records: &[R]) -> bool {
    records.windows(2).all(|w| w[0].key() <= w[1].key())
}

/// Choose `k - 1` splitter keys that partition `sample` into `k` roughly
/// equal buckets (the classic sampled-quantile splitter selection used by
/// distribution sorts). `sample` need not be sorted; it is sorted here.
/// Returns an ascending splitter vector of length `k - 1` (may contain
/// duplicates when the sample is highly skewed).
pub fn select_splitters<R: Record>(mut sample: Vec<R>, k: usize) -> Vec<R::Key> {
    assert!(k >= 1, "need at least one bucket");
    if k == 1 || sample.is_empty() {
        return Vec::new();
    }
    sample.sort_by_key(|r| r.key());
    let n = sample.len();
    (1..k)
        .map(|i| sample[(i * n / k).min(n - 1)].key())
        .collect()
}

/// Bucket index of `key` given ascending `splitters` (`len = k-1`):
/// bucket `i` holds keys in `[splitters[i-1], splitters[i])`.
pub fn bucket_of<K: Ord + Copy>(key: K, splitters: &[K]) -> usize {
    splitters.partition_point(|&s| s <= key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{generate_rec8, KeyDist, Rec8};

    fn recs(keys: &[u32]) -> Vec<Rec8> {
        keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect()
    }

    #[test]
    fn block_sort_sorts_and_charges() {
        let mut v = recs(&[5, 3, 9, 1]);
        let compares = block_sort(&mut v);
        assert!(is_sorted_by_key(&v));
        assert_eq!(compares, 4 * 2); // n·ceil(log2 4)
    }

    #[test]
    fn block_sort_charge_is_size_only() {
        // The charge is the paper's accounting unit, independent of
        // whether the radix or comparison kernel ran.
        let mut small = recs(&[2, 1]);
        assert_eq!(block_sort(&mut small), 2);
        let mut big = generate_rec8(1 << 10, KeyDist::Uniform, 9);
        assert_eq!(block_sort(&mut big), (1 << 10) * 10);
        assert!(is_sorted_by_key(&big));
    }

    #[test]
    fn radix_matches_stable_sort() {
        // Modulo 0 means full-range keys; small moduli force duplicates,
        // stressing stability (equal keys must keep input order).
        for (n, modulus) in [(3u64, 0u32), (1000, 0), (1000, 97), (4096, 5)] {
            let data = generate_rec8(n, KeyDist::Uniform, n);
            let mut a: Vec<Rec8> = data
                .iter()
                .map(|r| Rec8 {
                    key: if modulus == 0 { r.key } else { r.key % modulus },
                    tag: r.tag,
                })
                .collect();
            let mut b = a.clone();
            radix_sort_u32(&mut a);
            b.sort_by_key(|r| r.key);
            assert_eq!(
                a.iter().map(|r| (r.key, r.tag)).collect::<Vec<_>>(),
                b.iter().map(|r| (r.key, r.tag)).collect::<Vec<_>>(),
                "radix must equal a stable comparison sort (n={n}, mod={modulus})"
            );
        }
    }

    #[test]
    fn radix_skips_constant_bytes() {
        // All keys share the upper three bytes: three passes are skipped,
        // but the result must still be fully sorted.
        let mut v: Vec<Rec8> = (0..300u32)
            .rev()
            .map(|i| Rec8 { key: 0xABCD_0000 | (i % 256), tag: i })
            .collect();
        let mut expect = v.clone();
        radix_sort_u32(&mut v);
        expect.sort_by_key(|r| r.key);
        assert_eq!(v, expect);
    }

    #[test]
    fn radix_trivial_sizes() {
        let mut empty: Vec<Rec8> = vec![];
        radix_sort_u32(&mut empty);
        let mut one = recs(&[5]);
        radix_sort_u32(&mut one);
        assert_eq!(one[0].key, 5);
    }

    #[test]
    fn merge_runs_produces_global_order() {
        let runs = vec![
            recs(&[1, 4, 7]),
            recs(&[2, 5, 8]),
            recs(&[0, 3, 6, 9]),
        ];
        let (merged, compares) = merge_runs(runs);
        assert_eq!(
            merged.iter().map(|r| r.key).collect::<Vec<_>>(),
            (0..10).collect::<Vec<u32>>()
        );
        assert!(compares > 0);
    }

    #[test]
    fn merge_handles_empty_and_single() {
        let (m, c) = merge_runs::<Rec8>(vec![]);
        assert!(m.is_empty());
        assert_eq!(c, 0);
        let (m, c) = merge_runs(vec![recs(&[1, 2])]);
        assert_eq!(m.len(), 2);
        assert_eq!(c, 0, "single run needs no compares");
        let (m, _) = merge_runs(vec![recs(&[]), recs(&[1])]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn merge_preserves_duplicates() {
        let (m, _) = merge_runs(vec![recs(&[2, 2]), recs(&[2, 2, 2])]);
        assert_eq!(m.len(), 5);
        assert!(m.iter().all(|r| r.key == 2));
    }

    #[test]
    fn merge_is_stable_across_equal_keys() {
        // Equal keys must come out in run order (run 0 before run 1
        // before run 2), and in input order within a run.
        let tagged = |keys: &[(u32, u32)]| -> Vec<Rec8> {
            keys.iter().map(|&(k, t)| Rec8 { key: k, tag: t }).collect()
        };
        let runs = vec![
            tagged(&[(1, 10), (5, 11), (5, 12)]),
            tagged(&[(1, 20), (5, 21), (9, 22)]),
            tagged(&[(1, 30), (1, 31), (5, 32)]),
        ];
        let (m, _) = merge_runs(runs);
        let got: Vec<(u32, u32)> = m.iter().map(|r| (r.key, r.tag)).collect();
        assert_eq!(
            got,
            [
                (1, 10), (1, 20), (1, 30), (1, 31),
                (5, 11), (5, 12), (5, 21), (5, 32),
                (9, 22),
            ]
        );
    }

    #[test]
    fn merge_compare_count_is_m_log_k_scale() {
        // 8 runs of 512 records: a loser tree does exactly log2(k) real
        // comparisons per emitted record once sentinels are free.
        let data = generate_rec8(4096, KeyDist::Uniform, 41);
        let mut runs: Vec<Vec<Rec8>> = data.chunks(512).map(|c| c.to_vec()).collect();
        for r in &mut runs {
            r.sort_by_key(|x| x.key);
        }
        let (merged, compares) = merge_runs(runs);
        assert!(is_sorted_by_key(&merged));
        let m = merged.len() as u64;
        assert!(
            compares <= m * 3 + 64,
            "compares={compares} should be ~m·log2(8)={}",
            m * 3
        );
        assert!(compares >= m * 2, "compares={compares} suspiciously low");
    }

    #[test]
    fn merge_many_runs_randomized() {
        let data = generate_rec8(5_000, KeyDist::Uniform, 77);
        let mut runs: Vec<Vec<Rec8>> = data.chunks(250).map(|c| c.to_vec()).collect();
        for r in &mut runs {
            r.sort_by_key(|x| x.key);
        }
        let (merged, _) = merge_runs(runs);
        assert_eq!(merged.len(), 5_000);
        assert!(is_sorted_by_key(&merged));
        // Permutation check via tags.
        let mut tags: Vec<u32> = merged.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..5_000).collect::<Vec<u32>>());
    }

    #[test]
    fn splitters_balance_uniform_data() {
        let data = generate_rec8(10_000, KeyDist::Uniform, 3);
        let splitters = select_splitters(data.clone(), 8);
        assert_eq!(splitters.len(), 7);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        let mut counts = [0usize; 8];
        for r in &data {
            counts[bucket_of(r.key, &splitters)] += 1;
        }
        for c in counts {
            assert!((900..1600).contains(&c), "bucket sizes {counts:?}");
        }
    }

    #[test]
    fn bucket_of_edges() {
        let sp = vec![10u32, 20, 30];
        assert_eq!(bucket_of(5, &sp), 0);
        assert_eq!(bucket_of(10, &sp), 1, "splitter key goes right");
        assert_eq!(bucket_of(19, &sp), 1);
        assert_eq!(bucket_of(30, &sp), 3);
        assert_eq!(bucket_of(99, &sp), 3);
        assert_eq!(bucket_of(5u32, &[]), 0, "k=1 has a single bucket");
    }

    #[test]
    fn splitters_degenerate_cases() {
        assert!(select_splitters::<Rec8>(vec![], 4).is_empty());
        assert!(select_splitters(recs(&[1, 2, 3]), 1).is_empty());
        // Constant data: all splitters equal; everything lands rightmost.
        let sp = select_splitters(recs(&[7, 7, 7, 7]), 4);
        assert!(sp.iter().all(|&s| s == 7));
        assert_eq!(bucket_of(7, &sp), 3);
    }
}
