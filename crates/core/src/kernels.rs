//! Verified in-memory kernels: block sort and k-way merge.
//!
//! The paper permits "more complex read/modify/write operations … in
//! common, verified computation kernels, e.g., for useful primitives such
//! as sorting" (Section 3.1). These are those kernels. Each reports the
//! comparison count it actually performed so the work identity
//! `Total Work = n·log(αβγ)` (Section 4.3) can be audited, not assumed.

use crate::record::Record;

/// Sort `records` by key in place; returns the number of comparisons a
/// binary-insertion-counted mergesort would charge, `n·ceil(log2 n)`,
/// which is the paper's accounting unit for a β-record block sort.
pub fn block_sort<R: Record>(records: &mut [R]) -> u64 {
    let n = records.len() as u64;
    records.sort_by_key(|r| r.key());
    n * crate::cost::log2_ceil(n)
}

/// One entry in the loser-tree: which run, and the next element index.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    run: usize,
    idx: usize,
}

/// Merge `runs` (each sorted by key) into one sorted vector using a
/// tournament (loser) tree; returns `(merged, compares)` where `compares`
/// counts actual tree comparisons (~`m·ceil(log2 k)`).
pub fn merge_runs<R: Record>(runs: Vec<Vec<R>>) -> (Vec<R>, u64) {
    let runs: Vec<Vec<R>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    let k = runs.len();
    if k == 0 {
        return (Vec::new(), 0);
    }
    if k == 1 {
        return (runs.into_iter().next().expect("k==1"), 0);
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut compares = 0u64;

    // Simple binary-heap tournament keyed on (key, run) for stability
    // across runs; each pop/push costs ~log2 k compares.
    let mut heap: Vec<Cursor> = (0..k).map(|run| Cursor { run, idx: 0 }).collect();
    let key_of = |runs: &Vec<Vec<R>>, c: Cursor| runs[c.run][c.idx].key();
    // Build heap (sift-down from the middle).
    let mut build = heap.clone();
    let less = |a: Cursor, b: Cursor, runs: &Vec<Vec<R>>| {
        (key_of(runs, a), a.run) < (key_of(runs, b), b.run)
    };
    for i in (0..k / 2).rev() {
        // sift down i
        let mut j = i;
        loop {
            let l = 2 * j + 1;
            let r = 2 * j + 2;
            let mut m = j;
            if l < k && less(build[l], build[m], &runs) {
                m = l;
            }
            if r < k && less(build[r], build[m], &runs) {
                m = r;
            }
            compares += 2;
            if m == j {
                break;
            }
            build.swap(j, m);
            j = m;
        }
    }
    heap = build;
    let mut live = k;
    while live > 0 {
        let top = heap[0];
        out.push(runs[top.run][top.idx].clone());
        let next = Cursor {
            run: top.run,
            idx: top.idx + 1,
        };
        if next.idx < runs[next.run].len() {
            heap[0] = next;
        } else {
            live -= 1;
            heap[0] = heap[live];
        }
        // Sift down the root over the live prefix.
        let mut j = 0;
        loop {
            let l = 2 * j + 1;
            let r = 2 * j + 2;
            let mut m = j;
            if l < live && less(heap[l], heap[m], &runs) {
                m = l;
            }
            if r < live && less(heap[r], heap[m], &runs) {
                m = r;
            }
            compares += 2;
            if m == j {
                break;
            }
            heap.swap(j, m);
            j = m;
        }
    }
    (out, compares)
}

/// Check that `records` is sorted by key (non-decreasing).
pub fn is_sorted_by_key<R: Record>(records: &[R]) -> bool {
    records.windows(2).all(|w| w[0].key() <= w[1].key())
}

/// Choose `k - 1` splitter keys that partition `sample` into `k` roughly
/// equal buckets (the classic sampled-quantile splitter selection used by
/// distribution sorts). `sample` need not be sorted; it is sorted here.
/// Returns an ascending splitter vector of length `k - 1` (may contain
/// duplicates when the sample is highly skewed).
pub fn select_splitters<R: Record>(mut sample: Vec<R>, k: usize) -> Vec<R::Key> {
    assert!(k >= 1, "need at least one bucket");
    if k == 1 || sample.is_empty() {
        return Vec::new();
    }
    sample.sort_by_key(|r| r.key());
    let n = sample.len();
    (1..k)
        .map(|i| sample[(i * n / k).min(n - 1)].key())
        .collect()
}

/// Bucket index of `key` given ascending `splitters` (`len = k-1`):
/// bucket `i` holds keys in `[splitters[i-1], splitters[i])`.
pub fn bucket_of<K: Ord + Copy>(key: K, splitters: &[K]) -> usize {
    splitters.partition_point(|&s| s <= key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{generate_rec8, KeyDist, Rec8};

    fn recs(keys: &[u32]) -> Vec<Rec8> {
        keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect()
    }

    #[test]
    fn block_sort_sorts_and_charges() {
        let mut v = recs(&[5, 3, 9, 1]);
        let compares = block_sort(&mut v);
        assert!(is_sorted_by_key(&v));
        assert_eq!(compares, 4 * 2); // n·ceil(log2 4)
    }

    #[test]
    fn merge_runs_produces_global_order() {
        let runs = vec![
            recs(&[1, 4, 7]),
            recs(&[2, 5, 8]),
            recs(&[0, 3, 6, 9]),
        ];
        let (merged, compares) = merge_runs(runs);
        assert_eq!(
            merged.iter().map(|r| r.key).collect::<Vec<_>>(),
            (0..10).collect::<Vec<u32>>()
        );
        assert!(compares > 0);
    }

    #[test]
    fn merge_handles_empty_and_single() {
        let (m, c) = merge_runs::<Rec8>(vec![]);
        assert!(m.is_empty());
        assert_eq!(c, 0);
        let (m, c) = merge_runs(vec![recs(&[1, 2])]);
        assert_eq!(m.len(), 2);
        assert_eq!(c, 0, "single run needs no compares");
        let (m, _) = merge_runs(vec![recs(&[]), recs(&[1])]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn merge_preserves_duplicates() {
        let (m, _) = merge_runs(vec![recs(&[2, 2]), recs(&[2, 2, 2])]);
        assert_eq!(m.len(), 5);
        assert!(m.iter().all(|r| r.key == 2));
    }

    #[test]
    fn merge_many_runs_randomized() {
        let data = generate_rec8(5_000, KeyDist::Uniform, 77);
        let mut runs: Vec<Vec<Rec8>> = data.chunks(250).map(|c| c.to_vec()).collect();
        for r in &mut runs {
            r.sort_by_key(|x| x.key);
        }
        let (merged, _) = merge_runs(runs);
        assert_eq!(merged.len(), 5_000);
        assert!(is_sorted_by_key(&merged));
        // Permutation check via tags.
        let mut tags: Vec<u32> = merged.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..5_000).collect::<Vec<u32>>());
    }

    #[test]
    fn splitters_balance_uniform_data() {
        let data = generate_rec8(10_000, KeyDist::Uniform, 3);
        let splitters = select_splitters(data.clone(), 8);
        assert_eq!(splitters.len(), 7);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        let mut counts = [0usize; 8];
        for r in &data {
            counts[bucket_of(r.key, &splitters)] += 1;
        }
        for c in counts {
            assert!((900..1600).contains(&c), "bucket sizes {counts:?}");
        }
    }

    #[test]
    fn bucket_of_edges() {
        let sp = vec![10u32, 20, 30];
        assert_eq!(bucket_of(5, &sp), 0);
        assert_eq!(bucket_of(10, &sp), 1, "splitter key goes right");
        assert_eq!(bucket_of(19, &sp), 1);
        assert_eq!(bucket_of(30, &sp), 3);
        assert_eq!(bucket_of(99, &sp), 3);
        assert_eq!(bucket_of(5u32, &[]), 0, "k=1 has a single bucket");
    }

    #[test]
    fn splitters_degenerate_cases() {
        assert!(select_splitters::<Rec8>(vec![], 4).is_empty());
        assert!(select_splitters(recs(&[1, 2, 3]), 1).is_empty());
        // Constant data: all splitters equal; everything lands rightmost.
        let sp = select_splitters(recs(&[7, 7, 7, 7]), 4);
        assert!(sp.iter().all(|&s| s == 7));
        assert_eq!(bucket_of(7, &sp), 3);
    }
}
