//! The functor library: map, filter, tally, distribute, block-sort, merge.
//!
//! Distribute / block-sort / merge are the three operations DSM-Sort
//! composes (Section 4.3); map/filter/tally are the scan-style primitives
//! active-storage work classically offloads (searching, filtering,
//! aggregation — Section 2).
//!
//! Cost contracts: `cost(input)` must be evaluated against the functor's
//! state *immediately before* `process(input)` is called with the same
//! packet — stateful functors (block-sort, merge) price the work the
//! packet will actually trigger.

use crate::container::Packet;
use crate::cost::{log2_ceil, Work};
use crate::functor::{Emit, Functor, FunctorKind};
use crate::kernels::{block_sort, bucket_of, merge_runs};
use crate::record::Record;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Forwards packets unchanged at zero CPU cost: a *passive* stage.
///
/// Used for conventional (non-active) storage sources — the disk streams
/// blocks without computing on them — and for ASU collectors whose only
/// job is the disk write the runtime charges at the sink.
pub struct RelayFunctor {
    name: String,
}

impl RelayFunctor {
    /// A relay with the given display name.
    pub fn new(name: impl Into<String>) -> RelayFunctor {
        RelayFunctor { name: name.into() }
    }
}

impl<R: Record> Functor<R> for RelayFunctor {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 0 }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        out.push0(input);
    }
    fn flush(&mut self, _out: &mut Emit<R>) {}
    fn cost(&self, _input: &Packet<R>) -> Work {
        Work::ZERO
    }
}

/// Applies a pure per-record transform.
pub struct MapFunctor<R, F> {
    name: String,
    f: F,
    /// Declared compares-equivalent per record.
    unit_cost: Work,
    _marker: std::marker::PhantomData<fn(R) -> R>,
}

impl<R: Record, F: FnMut(R) -> R + Send> MapFunctor<R, F> {
    /// A map with a declared per-record cost.
    pub fn new(name: impl Into<String>, unit_cost: Work, f: F) -> Self {
        MapFunctor {
            name: name.into(),
            f,
            unit_cost,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: Record, F: FnMut(R) -> R + Send> Functor<R> for MapFunctor<R, F> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 0 }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        let mapped: Packet<R> = input.into_records().into_iter().map(&mut self.f).collect();
        out.push0(mapped);
    }
    fn flush(&mut self, _out: &mut Emit<R>) {}
    fn cost(&self, input: &Packet<R>) -> Work {
        let n = input.len() as u64;
        Work {
            compares: self.unit_cost.compares * n,
            record_moves: self.unit_cost.record_moves * n + n,
            bytes: self.unit_cost.bytes * n,
        }
    }
}

/// Drops records failing a predicate — the canonical ASU offload
/// (filtering at the storage reduces interconnect traffic, Section 2).
pub struct FilterFunctor<R, P> {
    name: String,
    pred: P,
    kept: u64,
    dropped: u64,
    _marker: std::marker::PhantomData<fn(&R) -> bool>,
}

impl<R: Record, P: FnMut(&R) -> bool + Send> FilterFunctor<R, P> {
    /// A filter keeping records satisfying `pred`.
    pub fn new(name: impl Into<String>, pred: P) -> Self {
        FilterFunctor {
            name: name.into(),
            pred,
            kept: 0,
            dropped: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// `(kept, dropped)` counters.
    pub fn counts(&self) -> (u64, u64) {
        (self.kept, self.dropped)
    }
}

impl<R: Record, P: FnMut(&R) -> bool + Send> Functor<R> for FilterFunctor<R, P> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 16 }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        let before = input.len() as u64;
        let kept: Packet<R> = input
            .into_records()
            .into_iter()
            .filter(|r| (self.pred)(r))
            .collect();
        self.kept += kept.len() as u64;
        self.dropped += before - kept.len() as u64;
        out.push0(kept);
    }
    fn flush(&mut self, _out: &mut Emit<R>) {}
    fn cost(&self, input: &Packet<R>) -> Work {
        Work::compares(input.len() as u64) + Work::moves(input.len() as u64)
    }
}

/// Counts records and sums keys; emits nothing (a pure aggregation sink
/// whose result is read through shared counters).
pub struct TallyFunctor<R> {
    name: String,
    count: Arc<AtomicU64>,
    key_sum: Arc<AtomicU64>,
    _marker: std::marker::PhantomData<fn(R)>,
}

impl<R> TallyFunctor<R>
where
    R: Record,
    u64: From<R::Key>,
{
    /// A tally; read results from the returned handles.
    pub fn new(name: impl Into<String>) -> (Self, Arc<AtomicU64>, Arc<AtomicU64>) {
        let count = Arc::new(AtomicU64::new(0));
        let key_sum = Arc::new(AtomicU64::new(0));
        let f = Self::with_counters(name, count.clone(), key_sum.clone());
        (f, count, key_sum)
    }

    /// A tally feeding externally owned counters — lets replicated
    /// instances (and the graph's probe instance) accumulate into one
    /// shared pair.
    pub fn with_counters(
        name: impl Into<String>,
        count: Arc<AtomicU64>,
        key_sum: Arc<AtomicU64>,
    ) -> Self {
        TallyFunctor {
            name: name.into(),
            count,
            key_sum,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R> Functor<R> for TallyFunctor<R>
where
    R: Record,
    u64: From<R::Key>,
{
    fn name(&self) -> String {
        self.name.clone()
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 16 }
    }
    fn process(&mut self, input: Packet<R>, _out: &mut Emit<R>) {
        self.count.fetch_add(input.len() as u64, Ordering::Relaxed);
        let s: u64 = input.records().iter().map(|r| u64::from(r.key())).sum();
        self.key_sum.fetch_add(s, Ordering::Relaxed);
    }
    fn flush(&mut self, _out: &mut Emit<R>) {}
    fn cost(&self, input: &Packet<R>) -> Work {
        Work::bytes(input.bytes() as u64)
    }
}

/// α-way distribute by splitter keys: record with key in bucket `i` goes
/// out on port `i`. `ceil(log2 α)` compares per record (binary search).
pub struct DistributeFunctor<R: Record> {
    splitters: Vec<R::Key>,
}

impl<R: Record> DistributeFunctor<R> {
    /// A distribute over `splitters.len() + 1` buckets; splitters must be
    /// ascending.
    pub fn new(splitters: Vec<R::Key>) -> Self {
        assert!(
            splitters.windows(2).all(|w| w[0] <= w[1]),
            "splitters must be ascending"
        );
        DistributeFunctor { splitters }
    }

    /// The fan-out α.
    pub fn alpha(&self) -> usize {
        self.splitters.len() + 1
    }
}

impl<R: Record> Functor<R> for DistributeFunctor<R> {
    fn name(&self) -> String {
        format!("distribute(α={})", self.alpha())
    }
    fn out_ports(&self) -> usize {
        self.alpha()
    }
    fn kind(&self) -> FunctorKind {
        // State: the splitter table only.
        FunctorKind::AsuEligible {
            max_state_bytes: self.splitters.len() * std::mem::size_of::<R::Key>() + 64,
        }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        let mut buckets: Vec<Vec<R>> = (0..self.alpha()).map(|_| Vec::new()).collect();
        for r in input.into_records() {
            buckets[bucket_of(r.key(), &self.splitters)].push(r);
        }
        for (port, b) in buckets.into_iter().enumerate() {
            out.push(port, Packet::new(b));
        }
    }
    fn flush(&mut self, _out: &mut Emit<R>) {}
    fn cost(&self, input: &Packet<R>) -> Work {
        let n = input.len() as u64;
        Work::compares(n * log2_ceil(self.alpha() as u64)) + Work::moves(n)
    }
    fn state_bytes(&self) -> usize {
        self.splitters.len() * std::mem::size_of::<R::Key>()
    }
    fn read_ahead_hint(&self) -> usize {
        // Distribute is pure streaming — CPU per packet is small, so a
        // couple of staged packets keep the media ahead of the processor.
        2
    }
}

/// Buffers records to blocks of β, sorts each block, emits sorted-run
/// packets (Figure 4's pre-sort functor). A verified kernel with state
/// bounded by β records.
pub struct BlockSortFunctor<R> {
    beta: usize,
    buffer: Vec<R>,
    compares_done: u64,
}

impl<R: Record> BlockSortFunctor<R> {
    /// Sort blocks of `beta` records. Panics on zero β.
    pub fn new(beta: usize) -> Self {
        assert!(beta > 0, "β must be positive");
        BlockSortFunctor {
            beta,
            buffer: Vec::new(),
            compares_done: 0,
        }
    }

    /// Comparisons actually performed so far (for the work audit).
    pub fn compares_done(&self) -> u64 {
        self.compares_done
    }

    fn emit_full_blocks(&mut self, out: &mut Emit<R>) {
        while self.buffer.len() >= self.beta {
            let mut block: Vec<R> = self.buffer.drain(..self.beta).collect();
            self.compares_done += block_sort(&mut block);
            out.push0(Packet::new(block));
        }
    }
}

impl<R: Record> Functor<R> for BlockSortFunctor<R> {
    fn name(&self) -> String {
        format!("block-sort(β={})", self.beta)
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::VerifiedKernel {
            max_state_bytes: 2 * self.beta * R::SIZE,
        }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        self.buffer.extend(input.into_records());
        self.emit_full_blocks(out);
    }
    fn flush(&mut self, out: &mut Emit<R>) {
        self.emit_full_blocks(out);
        if !self.buffer.is_empty() {
            let mut tail = std::mem::take(&mut self.buffer);
            self.compares_done += block_sort(&mut tail);
            out.push0(Packet::new(tail));
        }
    }
    fn cost(&self, input: &Packet<R>) -> Work {
        // Buffering pays one move per record; the β·log β sort is charged
        // when blocks actually complete (here for full blocks, at flush
        // for the tail) so no record is ever double-counted.
        let n = input.len() as u64;
        let total = self.buffer.len() + input.len();
        let full_blocks = (total / self.beta) as u64;
        Work::compares(full_blocks * self.beta as u64 * log2_ceil(self.beta as u64))
            + Work::moves(n)
    }
    fn flush_cost(&self) -> Work {
        let n = self.buffer.len() as u64;
        Work::compares(n * log2_ceil(self.beta as u64)) + Work::moves(n)
    }
    fn state_bytes(&self) -> usize {
        self.buffer.len() * R::SIZE
    }
}

/// γ-way merge kernel: buffers sorted-run packets; when γ runs are
/// buffered, merges and emits one combined run; `flush` merges the rest.
/// State is bounded by γ runs (enforced by the ASU buffer limit on γ,
/// Section 4.3).
pub struct MergeFunctor<R> {
    gamma: usize,
    runs: Vec<Vec<R>>,
    buffered_records: usize,
    compares_done: u64,
}

impl<R: Record> MergeFunctor<R> {
    /// A γ-way merge. Panics unless γ >= 2.
    pub fn new(gamma: usize) -> Self {
        assert!(gamma >= 2, "merge fan-in must be at least 2");
        MergeFunctor {
            gamma,
            runs: Vec::new(),
            buffered_records: 0,
            compares_done: 0,
        }
    }

    /// Comparisons actually performed so far.
    pub fn compares_done(&self) -> u64 {
        self.compares_done
    }

    fn merge_buffered(&mut self, out: &mut Emit<R>) {
        let runs = std::mem::take(&mut self.runs);
        self.buffered_records = 0;
        let (merged, compares) = merge_runs(runs);
        self.compares_done += compares;
        out.push0(Packet::new(merged));
    }
}

impl<R: Record> Functor<R> for MergeFunctor<R> {
    fn name(&self) -> String {
        format!("merge(γ={})", self.gamma)
    }
    fn kind(&self) -> FunctorKind {
        FunctorKind::VerifiedKernel {
            // Bound assumes runs of packet scale; the emulator checks the
            // live figure via state_bytes().
            max_state_bytes: usize::MAX,
        }
    }
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>) {
        debug_assert!(input.is_sorted(), "merge input must be a sorted run");
        self.buffered_records += input.len();
        self.runs.push(input.into_records());
        if self.runs.len() == self.gamma {
            self.merge_buffered(out);
        }
    }
    fn flush(&mut self, out: &mut Emit<R>) {
        if !self.runs.is_empty() {
            self.merge_buffered(out);
        }
    }
    fn cost(&self, input: &Packet<R>) -> Work {
        if self.runs.len() + 1 == self.gamma {
            let m = (self.buffered_records + input.len()) as u64;
            Work::compares(m * log2_ceil(self.gamma as u64)) + Work::moves(m)
        } else {
            Work::moves(input.len() as u64)
        }
    }
    fn flush_cost(&self) -> Work {
        let m = self.buffered_records as u64;
        let k = self.runs.len() as u64;
        Work::compares(m * log2_ceil(k)) + Work::moves(m)
    }
    fn state_bytes(&self) -> usize {
        self.buffered_records * R::SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{generate_rec8, KeyDist, Rec8};

    fn pkt(keys: &[u32]) -> Packet<Rec8> {
        Packet::new(keys.iter().map(|&k| Rec8 { key: k, tag: k }).collect())
    }

    fn run<F: Functor<Rec8>>(f: &mut F, inputs: Vec<Packet<Rec8>>) -> Vec<(usize, Packet<Rec8>)> {
        let mut out = Emit::new(f.out_ports());
        for p in inputs {
            f.process(p, &mut out);
        }
        f.flush(&mut out);
        out.take()
    }

    #[test]
    fn map_transforms_records() {
        let mut m = MapFunctor::new("inc", Work::compares(1), |mut r: Rec8| {
            r.key += 1;
            r
        });
        let got = run(&mut m, vec![pkt(&[1, 2])]);
        assert_eq!(got[0].1.records().iter().map(|r| r.key).collect::<Vec<_>>(), [2, 3]);
        assert_eq!(m.cost(&pkt(&[1, 2])).compares, 2);
    }

    #[test]
    fn filter_keeps_and_counts() {
        let mut f = FilterFunctor::new("evens", |r: &Rec8| r.key.is_multiple_of(2));
        let got = run(&mut f, vec![pkt(&[1, 2, 3, 4])]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.records().iter().map(|r| r.key).collect::<Vec<_>>(), [2, 4]);
        assert_eq!(f.counts(), (2, 2));
    }

    #[test]
    fn filter_emits_nothing_when_all_dropped() {
        let mut f = FilterFunctor::new("none", |_: &Rec8| false);
        let got = run(&mut f, vec![pkt(&[1, 2])]);
        assert!(got.is_empty(), "empty packets are swallowed");
        assert_eq!(f.counts(), (0, 2));
    }

    #[test]
    fn tally_accumulates_without_emitting() {
        let (mut t, count, sum) = TallyFunctor::<Rec8>::new("tally");
        let got = run(&mut t, vec![pkt(&[1, 2]), pkt(&[3])]);
        assert!(got.is_empty());
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn distribute_routes_by_bucket() {
        let mut d = DistributeFunctor::new(vec![10u32, 20]);
        assert_eq!(d.alpha(), 3);
        assert_eq!(d.out_ports(), 3);
        let got = run(&mut d, vec![pkt(&[5, 15, 25, 10])]);
        let by_port: Vec<(usize, Vec<u32>)> = got
            .into_iter()
            .map(|(p, pk)| (p, pk.records().iter().map(|r| r.key).collect()))
            .collect();
        assert_eq!(by_port[0], (0, vec![5]));
        assert_eq!(by_port[1], (1, vec![15, 10]));
        assert_eq!(by_port[2], (2, vec![25]));
    }

    #[test]
    fn distribute_cost_is_log_alpha_per_record() {
        let d = DistributeFunctor::<Rec8>::new((1..16u32).collect()); // α=16
        let w = d.cost(&pkt(&[1, 2, 3]));
        assert_eq!(w.compares, 3 * 4);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn distribute_rejects_unsorted_splitters() {
        DistributeFunctor::<Rec8>::new(vec![20u32, 10]);
    }

    #[test]
    fn block_sort_emits_full_blocks_then_tail() {
        let mut b = BlockSortFunctor::new(4);
        let got = run(&mut b, vec![pkt(&[9, 1, 8, 2, 7, 3])]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.len(), 4);
        assert!(got[0].1.is_sorted());
        assert_eq!(got[1].1.len(), 2);
        assert!(got[1].1.is_sorted());
        assert!(b.compares_done() > 0);
        assert_eq!(b.state_bytes(), 0, "flushed");
    }

    #[test]
    fn block_sort_state_bounded_by_beta() {
        let mut b = BlockSortFunctor::<Rec8>::new(100);
        let mut e = Emit::new(1);
        b.process(pkt(&[1, 2, 3]), &mut e);
        assert_eq!(b.state_bytes(), 3 * 8);
        match b.kind() {
            FunctorKind::VerifiedKernel { max_state_bytes } => {
                assert!(max_state_bytes >= 100 * 8)
            }
            _ => panic!("block sort is a verified kernel"),
        }
    }

    #[test]
    fn merge_collects_gamma_runs_then_merges() {
        let mut m = MergeFunctor::new(2);
        let got = run(&mut m, vec![pkt(&[1, 5]), pkt(&[2, 6]), pkt(&[0, 9])]);
        // Two runs trigger a merge; third is flushed alone.
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0].1.records().iter().map(|r| r.key).collect::<Vec<_>>(),
            [1, 2, 5, 6]
        );
        assert_eq!(
            got[1].1.records().iter().map(|r| r.key).collect::<Vec<_>>(),
            [0, 9]
        );
    }

    #[test]
    fn merge_cost_prices_the_triggering_packet() {
        let mut m = MergeFunctor::<Rec8>::new(2);
        let p1 = pkt(&[1, 2]);
        assert_eq!(m.cost(&p1).compares, 0, "first run only buffers");
        let mut e = Emit::new(1);
        m.process(p1, &mut e);
        let p2 = pkt(&[3, 4]);
        assert_eq!(m.cost(&p2).compares, 4, "4 records × log2(2)");
    }

    #[test]
    fn pipeline_distribute_sort_merge_sorts_everything() {
        // End-to-end through the three DSM stages, single instance each.
        let data = generate_rec8(1_000, KeyDist::Uniform, 5);
        let splitters =
            crate::kernels::select_splitters(data.clone(), 4);
        let mut dist = DistributeFunctor::new(splitters);
        let mut out = Emit::new(dist.out_ports());
        for chunk in data.chunks(100) {
            dist.process(Packet::new(chunk.to_vec()), &mut out);
        }
        dist.flush(&mut out);
        // Per-bucket: block-sort then merge.
        let mut buckets: Vec<Vec<Packet<Rec8>>> = (0..4).map(|_| vec![]).collect();
        for (port, p) in out.take() {
            buckets[port].push(p);
        }
        let mut global = Vec::new();
        for bucket in buckets {
            let mut bs = BlockSortFunctor::new(64);
            let runs = run(&mut bs, bucket);
            let mut mg = MergeFunctor::new(16);
            let merged = run(&mut mg, runs.into_iter().map(|(_, p)| p).collect());
            for (_, p) in merged {
                global.extend(p.into_records());
            }
        }
        assert_eq!(global.len(), 1_000);
        assert!(crate::kernels::is_sorted_by_key(&global));
    }
}
