//! Functors: the primitive computation units of the model.
//!
//! Section 3.1: programs are composed of functors, "primitive processing
//! steps … which apply specific functions to streams of records passing
//! through them." A subset executes directly on ASUs as a side effect of
//! I/O; those must perform **bounded per-record processing with bounded
//! internal state**, or be prepackaged, verified computation kernels
//! (e.g. sort, merge). The [`FunctorKind`] of each functor encodes which
//! contract it satisfies, and [`Functor::cost`] exposes the declared
//! per-input cost bound that load management relies on.

pub mod lib;

use crate::container::Packet;
use crate::cost::Work;
use crate::record::Record;

/// Which execution contract a functor satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctorKind {
    /// Short, statically analyzable per-record code with bounded state:
    /// may be stacked on ASU-resident containers.
    AsuEligible {
        /// Upper bound on internal state, enforced against ASU memory.
        max_state_bytes: usize,
    },
    /// A prepackaged, pre-validated kernel primitive (sort, merge):
    /// ASU-eligible despite read/modify/write behaviour.
    VerifiedKernel {
        /// Upper bound on internal state, enforced against ASU memory.
        max_state_bytes: usize,
    },
    /// Unbounded computation: hosts only.
    HostOnly,
}

impl FunctorKind {
    /// Whether this functor may be placed on an ASU with `mem` bytes.
    ///
    /// `AsuEligible` code is "statically determinable": its declared
    /// bound is checked against the ASU memory up front. A
    /// `VerifiedKernel` is prepackaged and pre-validated — placement
    /// trusts it, and the runtime monitors its live `state_bytes()`
    /// against the node budget instead (violations are reported).
    pub fn asu_placeable(&self, mem: usize) -> bool {
        match *self {
            FunctorKind::AsuEligible { max_state_bytes } => max_state_bytes <= mem,
            FunctorKind::VerifiedKernel { .. } => true,
            FunctorKind::HostOnly => false,
        }
    }
}

/// Collects a functor's outputs during one `process`/`flush` call.
/// Outputs are addressed by port: a distribute functor with fan-out α has
/// α ports, one per subset.
#[derive(Debug)]
pub struct Emit<R> {
    outputs: Vec<(usize, Packet<R>)>,
    ports: usize,
}

impl<R: Record> Emit<R> {
    /// An emitter for a functor with `ports` output ports.
    pub fn new(ports: usize) -> Emit<R> {
        assert!(ports > 0, "functors have at least one output port");
        Emit {
            outputs: Vec::new(),
            ports,
        }
    }

    /// Emit `packet` on `port`. Empty packets are dropped silently.
    pub fn push(&mut self, port: usize, packet: Packet<R>) {
        assert!(
            port < self.ports,
            "port {port} out of range ({})",
            self.ports
        );
        if !packet.is_empty() {
            self.outputs.push((port, packet));
        }
    }

    /// Emit on port 0 (the common single-output case).
    pub fn push0(&mut self, packet: Packet<R>) {
        self.push(0, packet);
    }

    /// Drain the collected outputs.
    pub fn take(&mut self) -> Vec<(usize, Packet<R>)> {
        std::mem::take(&mut self.outputs)
    }

    /// Outputs collected so far.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

/// A primitive streaming computation over packets of records.
pub trait Functor<R: Record>: Send {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Number of output ports (1 unless distributing).
    fn out_ports(&self) -> usize {
        1
    }

    /// Which execution contract this functor satisfies.
    fn kind(&self) -> FunctorKind;

    /// Process one input packet, emitting zero or more outputs.
    fn process(&mut self, input: Packet<R>, out: &mut Emit<R>);

    /// End of input: flush any buffered state.
    fn flush(&mut self, out: &mut Emit<R>);

    /// Declared cost bound for processing `input` (drives load management
    /// and emulated CPU charging).
    fn cost(&self, input: &Packet<R>) -> Work;

    /// Declared cost bound for `flush`.
    fn flush_cost(&self) -> Work {
        Work::ZERO
    }

    /// Current internal state footprint in bytes (must respect the bound
    /// declared in [`Functor::kind`]).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Prefetch hint: how many input packets beyond the one being
    /// processed this functor benefits from having staged (drives source
    /// read-ahead depth when the storage buffer pool is enabled). 0 means
    /// demand paging is fine.
    fn read_ahead_hint(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Rec8;

    struct Echo;
    impl Functor<Rec8> for Echo {
        fn name(&self) -> String {
            "echo".into()
        }
        fn kind(&self) -> FunctorKind {
            FunctorKind::AsuEligible { max_state_bytes: 0 }
        }
        fn process(&mut self, input: Packet<Rec8>, out: &mut Emit<Rec8>) {
            out.push0(input);
        }
        fn flush(&mut self, _out: &mut Emit<Rec8>) {}
        fn cost(&self, input: &Packet<Rec8>) -> Work {
            Work::moves(input.len() as u64)
        }
    }

    fn pkt(keys: &[u32]) -> Packet<Rec8> {
        Packet::new(keys.iter().map(|&k| Rec8 { key: k, tag: 0 }).collect())
    }

    #[test]
    fn emit_routes_by_port_and_drops_empties() {
        let mut e: Emit<Rec8> = Emit::new(2);
        e.push(0, pkt(&[1]));
        e.push(1, pkt(&[2]));
        e.push(1, Packet::new(vec![]));
        assert_eq!(e.len(), 2);
        let got = e.take();
        assert_eq!(got[0].0, 0);
        assert_eq!(got[1].0, 1);
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn emit_rejects_bad_port() {
        let mut e: Emit<Rec8> = Emit::new(1);
        e.push(1, pkt(&[1]));
    }

    #[test]
    fn echo_functor_contract() {
        let mut f = Echo;
        let mut e = Emit::new(f.out_ports());
        let p = pkt(&[3, 1]);
        assert_eq!(f.cost(&p), Work::moves(2));
        f.process(p.clone(), &mut e);
        let got = e.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, p);
        assert_eq!(f.state_bytes(), 0);
    }

    #[test]
    fn kind_placement_rules() {
        let small = FunctorKind::AsuEligible {
            max_state_bytes: 1024,
        };
        let kernel = FunctorKind::VerifiedKernel {
            max_state_bytes: 4096,
        };
        let host = FunctorKind::HostOnly;
        assert!(small.asu_placeable(2048));
        assert!(!small.asu_placeable(512));
        assert!(kernel.asu_placeable(4096));
        assert!(
            kernel.asu_placeable(16),
            "verified kernels are trusted statically, monitored dynamically"
        );
        assert!(!host.asu_placeable(usize::MAX));
    }
}
