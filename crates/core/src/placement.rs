//! Placement: which node runs each functor instance.
//!
//! The mapping of functors to hosts and ASUs is "configurable and
//! potentially dynamic" (Section 8); a [`Placement`] is one concrete
//! assignment, validated against node memory limits and each functor's
//! [`FunctorKind`](crate::functor::FunctorKind) contract.

use crate::functor::FunctorKind;
use std::collections::HashMap;
use std::fmt;

/// A node of the emulated system: a powerful host or an ASU.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub enum NodeId {
    /// Dedicated application host `i` (large memory, full-speed CPU).
    Host(usize),
    /// Active storage unit `i` (co-located disk, slower CPU, bounded
    /// memory, possibly shared).
    Asu(usize),
}

impl NodeId {
    /// True for ASUs.
    pub fn is_asu(&self) -> bool {
        matches!(self, NodeId::Asu(_))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(i) => write!(f, "host{i}"),
            NodeId::Asu(i) => write!(f, "asu{i}"),
        }
    }
}

/// Identifies a stage within a [`crate::graph::FlowGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
)]
pub struct StageId(pub usize);

/// Assignment of every `(stage, instance)` to a node.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    map: HashMap<(StageId, usize), NodeId>,
}

/// Placement validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// An instance has no assigned node.
    Unassigned {
        /// The stage missing an assignment.
        stage: StageId,
        /// The instance index.
        instance: usize,
    },
    /// A host-only or over-budget functor was placed on an ASU.
    NotAsuEligible {
        /// The offending stage.
        stage: StageId,
        /// The instance index.
        instance: usize,
        /// The ASU it was placed on.
        node: NodeId,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Unassigned { stage, instance } => {
                write!(f, "stage {stage:?} instance {instance} has no node")
            }
            PlacementError::NotAsuEligible {
                stage,
                instance,
                node,
            } => write!(
                f,
                "stage {stage:?} instance {instance} cannot run on {node}: \
                 functor is not ASU-eligible within the ASU memory bound"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

impl Placement {
    /// An empty placement.
    pub fn new() -> Placement {
        Placement::default()
    }

    /// Assign instance `instance` of `stage` to `node`.
    pub fn assign(&mut self, stage: StageId, instance: usize, node: NodeId) -> &mut Self {
        self.map.insert((stage, instance), node);
        self
    }

    /// Assign all `n` instances of `stage` to `node`.
    pub fn assign_all(&mut self, stage: StageId, n: usize, node: NodeId) -> &mut Self {
        for i in 0..n {
            self.assign(stage, i, node);
        }
        self
    }

    /// Assign instance `i` of `stage` to `Host(i % hosts)`.
    pub fn spread_over_hosts(&mut self, stage: StageId, n: usize, hosts: usize) -> &mut Self {
        assert!(hosts > 0, "need at least one host");
        for i in 0..n {
            self.assign(stage, i, NodeId::Host(i % hosts));
        }
        self
    }

    /// Assign instance `i` of `stage` to `Asu(i % asus)` (one instance per
    /// ASU when `n == asus`).
    pub fn spread_over_asus(&mut self, stage: StageId, n: usize, asus: usize) -> &mut Self {
        assert!(asus > 0, "need at least one ASU");
        for i in 0..n {
            self.assign(stage, i, NodeId::Asu(i % asus));
        }
        self
    }

    /// The node of `(stage, instance)`, if assigned.
    pub fn node_of(&self, stage: StageId, instance: usize) -> Option<NodeId> {
        self.map.get(&(stage, instance)).copied()
    }

    /// All instances of `stage` placed on ASUs.
    pub fn asu_instances(&self, stage: StageId) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .map
            .iter()
            .filter(|((s, _), n)| *s == stage && n.is_asu())
            .map(|((_, i), _)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    /// Validate instance coverage and ASU-eligibility.
    ///
    /// * `stages` — `(stage, replication, kind)` for every stage;
    /// * `asu_mem` — per-ASU memory available for functor state.
    pub fn validate(
        &self,
        stages: &[(StageId, usize, FunctorKind)],
        asu_mem: usize,
    ) -> Result<(), PlacementError> {
        for &(stage, replication, kind) in stages {
            for instance in 0..replication {
                match self.node_of(stage, instance) {
                    None => return Err(PlacementError::Unassigned { stage, instance }),
                    Some(node @ NodeId::Asu(_)) => {
                        if !kind.asu_placeable(asu_mem) {
                            return Err(PlacementError::NotAsuEligible {
                                stage,
                                instance,
                                node,
                            });
                        }
                    }
                    Some(NodeId::Host(_)) => {}
                }
            }
        }
        Ok(())
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no assignments exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S0: StageId = StageId(0);
    const S1: StageId = StageId(1);

    #[test]
    fn assign_and_lookup() {
        let mut p = Placement::new();
        p.assign(S0, 0, NodeId::Asu(3));
        assert_eq!(p.node_of(S0, 0), Some(NodeId::Asu(3)));
        assert_eq!(p.node_of(S0, 1), None);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn spread_helpers_round_robin() {
        let mut p = Placement::new();
        p.spread_over_hosts(S0, 5, 2);
        assert_eq!(p.node_of(S0, 0), Some(NodeId::Host(0)));
        assert_eq!(p.node_of(S0, 1), Some(NodeId::Host(1)));
        assert_eq!(p.node_of(S0, 4), Some(NodeId::Host(0)));
        p.spread_over_asus(S1, 4, 4);
        assert_eq!(p.asu_instances(S1), vec![0, 1, 2, 3]);
    }

    #[test]
    fn validate_catches_unassigned() {
        let p = Placement::new();
        let stages = [(S0, 1, FunctorKind::HostOnly)];
        assert_eq!(
            p.validate(&stages, 1024),
            Err(PlacementError::Unassigned {
                stage: S0,
                instance: 0
            })
        );
    }

    #[test]
    fn validate_rejects_host_only_on_asu() {
        let mut p = Placement::new();
        p.assign(S0, 0, NodeId::Asu(0));
        let stages = [(S0, 1, FunctorKind::HostOnly)];
        assert!(matches!(
            p.validate(&stages, usize::MAX),
            Err(PlacementError::NotAsuEligible { .. })
        ));
    }

    #[test]
    fn validate_enforces_asu_memory_bound() {
        let mut p = Placement::new();
        p.assign(S0, 0, NodeId::Asu(0));
        let big = [(
            S0,
            1,
            FunctorKind::AsuEligible {
                max_state_bytes: 1 << 20,
            },
        )];
        assert!(p.validate(&big, 1 << 10).is_err());
        assert!(p.validate(&big, 1 << 20).is_ok());
        // Hosts are unconstrained.
        let mut p2 = Placement::new();
        p2.assign(S0, 0, NodeId::Host(0));
        assert!(p2.validate(&big, 0).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeId::Host(2).to_string(), "host2");
        assert_eq!(NodeId::Asu(7).to_string(), "asu7");
        assert!(NodeId::Asu(0).is_asu());
        assert!(!NodeId::Host(0).is_asu());
    }
}
