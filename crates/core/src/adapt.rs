//! Model-driven adaptation: choosing functor parameters to balance load.
//!
//! Section 3.3: "it is often possible to configure functors to adjust the
//! balance of computation load across the phases of an application …
//! the fan-in of merge functors and the fan-out of distribution functors
//! may vary to adjust the balance of load between sort pipeline phases
//! executing on ASUs and hosts." This module is that configurator: an
//! analytic pipeline-rate model over the cluster parameters (H, D, c,
//! disk and link rates) that predicts phase throughputs and picks the
//! distribute order α (and the merge split γ₁·γ₂) that maximizes them.
//!
//! The *adaptive* series in Figure 9 is exactly `pick_alpha` evaluated at
//! each cluster size.

use crate::cost::{log2_ceil, CostModel, Work};

/// Cluster-rate model for pipeline-phase prediction.
#[derive(Debug, Clone, Copy)]
pub struct PipelineModel {
    /// Cost model converting work to time.
    pub cost: CostModel,
    /// Number of hosts, H.
    pub hosts: usize,
    /// Number of ASUs, D.
    pub asus: usize,
    /// Host-to-ASU CPU ratio, c (ASU speed = 1/c).
    pub cpu_ratio_c: f64,
    /// Per-ASU disk rate, bytes/sec.
    pub disk_rate: f64,
    /// Per-link (host↔ASU) bandwidth, bytes/sec.
    pub link_rate: f64,
    /// Record size in bytes.
    pub record_size: usize,
}

impl PipelineModel {
    fn cpu_rate(&self, per_record: Work, aggregate_speed: f64) -> f64 {
        // Records/sec a CPU pool of total relative speed `aggregate_speed`
        // sustains for `per_record` work each.
        let t = self.cost.charge(per_record, 1.0).as_secs_f64();
        if t == 0.0 {
            f64::INFINITY
        } else {
            aggregate_speed / t
        }
    }

    fn asu_speed(&self) -> f64 {
        self.asus as f64 / self.cpu_ratio_c
    }

    fn disk_records_rate(&self) -> f64 {
        self.asus as f64 * self.disk_rate / self.record_size as f64
    }

    fn per_record(&self, compares_per_record: u64) -> Work {
        // Every record passing a functor pays its compares plus fixed
        // handling: one buffer move and a touch of all its bytes.
        Work::compares(compares_per_record)
            + Work::moves(1)
            + Work::bytes(self.record_size as u64)
    }

    /// Records/sec of DSM-Sort pass 1 (run formation) with the distribute
    /// functor on the ASUs and block sort on the hosts: the minimum of the
    /// ASU read rate, ASU distribute rate, host sort rate, link rate, and
    /// ASU write-back rate.
    pub fn pass1_rate_active(&self, alpha: u64, beta: u64) -> f64 {
        let read = self.disk_records_rate();
        let write = self.disk_records_rate();
        let distribute = self.cpu_rate(self.per_record(log2_ceil(alpha)), self.asu_speed());
        let sort = self.cpu_rate(self.per_record(log2_ceil(beta)), self.hosts as f64);
        // Every record crosses host links twice (to the host and back);
        // hosts each have one link.
        let link = self.hosts as f64 * self.link_rate / (2.0 * self.record_size as f64);
        read.min(write).min(distribute).min(sort).min(link)
    }

    /// Records/sec of pass 1 on conventional (passive) storage: the ASUs
    /// only stream raw blocks; the hosts run a *fused* distribute+sort
    /// (one streaming pass paying `log α + log β` compares but a single
    /// per-record handling charge, as a real single-host sort would).
    pub fn pass1_rate_baseline(&self, alpha: u64, beta: u64) -> f64 {
        let read = self.disk_records_rate();
        let write = self.disk_records_rate();
        let host_work = self.per_record(log2_ceil(alpha) + log2_ceil(beta));
        let host = self.cpu_rate(host_work, self.hosts as f64);
        let link = self.hosts as f64 * self.link_rate / (2.0 * self.record_size as f64);
        read.min(write).min(host).min(link)
    }

    /// Predicted pass-1 speedup of the active configuration over the
    /// passive baseline at the same (α, β).
    pub fn predicted_speedup(&self, alpha: u64, beta: u64) -> f64 {
        self.pass1_rate_active(alpha, beta) / self.pass1_rate_baseline(alpha, beta)
    }

    /// Choose α among `candidates` maximizing predicted active pass-1
    /// throughput. Ties go to the **larger** α: once surplus ASU capacity
    /// absorbs the distribute for free, a higher distribute order shrinks
    /// the bucket sizes and with them the downstream merge fan-in
    /// (`αβγ = n`), reducing second-pass work at no first-pass cost.
    pub fn pick_alpha(&self, candidates: &[u64], beta: u64) -> u64 {
        assert!(!candidates.is_empty(), "need candidate α values");
        let mut best = candidates[0];
        let mut best_rate = f64::NEG_INFINITY;
        for &a in candidates {
            let r = self.pass1_rate_active(a, beta);
            let better = r > best_rate * (1.0 + 1e-9);
            let tied = !better && r > best_rate * (1.0 - 1e-9);
            if better || (tied && a > best) {
                best = a;
                best_rate = best_rate.max(r);
            }
        }
        best
    }

    /// Choose α minimizing the predicted *total* two-pass sort time for
    /// `n` records: pass 1 at `pass1_rate_active`, pass 2 at the best
    /// γ-split merge rate for `γ = ⌈n / (α·β)⌉`.
    pub fn pick_alpha_two_pass(&self, candidates: &[u64], beta: u64, n: u64) -> u64 {
        assert!(!candidates.is_empty(), "need candidate α values");
        let mut best = candidates[0];
        let mut best_time = f64::INFINITY;
        for &a in candidates {
            let gamma = n.div_ceil(a * beta).max(1);
            let (g1, g2) = self.pick_gamma_split(gamma);
            let t = n as f64 / self.pass1_rate_active(a, beta)
                + n as f64 / self.merge_rate(g1, g2);
            if t < best_time - 1e-9 {
                best = a;
                best_time = t;
            }
        }
        best
    }

    /// Records/sec of the merge pass with γ₁-way merges on ASUs feeding a
    /// γ₂-way merge on hosts.
    pub fn merge_rate(&self, gamma1: u64, gamma2: u64) -> f64 {
        let read = self.disk_records_rate();
        let asu = self.cpu_rate(self.per_record(log2_ceil(gamma1)), self.asu_speed());
        let host = self.cpu_rate(self.per_record(log2_ceil(gamma2)), self.hosts as f64);
        let link = self.hosts as f64 * self.link_rate / (2.0 * self.record_size as f64);
        read.min(asu).min(host).min(link)
    }

    /// Choose the merge split (γ₁, γ₂) with γ₁·γ₂ ≥ γ maximizing merge
    /// throughput, subject to `max_gamma1`: "the ASU buffer space
    /// restricts γ" (Section 4.3) — an ASU can hold at most `max_gamma1`
    /// run buffers. γ₁ candidates are powers of two.
    pub fn pick_gamma_split_bounded(&self, gamma: u64, max_gamma1: u64) -> (u64, u64) {
        assert!(gamma >= 1, "γ must be at least 1");
        assert!(max_gamma1 >= 1, "ASU must buffer at least one run");
        if gamma == 1 {
            return (1, 1);
        }
        let mut best = (1u64, gamma);
        let mut best_rate = f64::NEG_INFINITY;
        let mut g1 = 1u64;
        while g1 <= gamma.min(max_gamma1) {
            let g2 = gamma.div_ceil(g1);
            let r = self.merge_rate(g1, g2);
            if r > best_rate + 1e-9 {
                best = (g1, g2);
                best_rate = r;
            }
            g1 *= 2;
        }
        best
    }

    /// [`PipelineModel::pick_gamma_split_bounded`] with a generous default
    /// ASU buffer of 64 runs.
    pub fn pick_gamma_split(&self, gamma: u64) -> (u64, u64) {
        self.pick_gamma_split_bounded(gamma, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(hosts: usize, asus: usize, c: f64) -> PipelineModel {
        PipelineModel {
            cost: CostModel::p3_750mhz(),
            hosts,
            asus,
            cpu_ratio_c: c,
            disk_rate: 25.0e6,
            link_rate: 1.0e9,
            record_size: 128,
        }
    }

    #[test]
    fn few_asus_prefer_small_alpha() {
        // With 2 ASUs at 1/8 speed the distribute binds for large α:
        // adaptation must back off from the big orders (it may keep a
        // moderate α that the ASUs absorb behind the disk rate for free).
        let m = model(1, 2, 8.0);
        let a = m.pick_alpha(&[1, 4, 16, 64, 256], 1 << 13);
        assert!(a < 64, "picked α={a}");
        // And the rate at the pick is no worse than at α=1.
        let r_pick = m.pass1_rate_active(a, 1 << 13);
        let r_one = m.pass1_rate_active(1, 1 << 13);
        assert!(r_pick >= r_one * (1.0 - 1e-9));
    }

    #[test]
    fn many_asus_prefer_large_alpha() {
        // With 64 ASUs the host sort saturates first; shifting work into
        // the distribute (large α) costs the ASUs nothing they notice.
        let m = model(1, 64, 8.0);
        let a = m.pick_alpha(&[1, 4, 16, 64, 256], 1 << 13);
        assert_eq!(a, 256);
    }

    #[test]
    fn speedup_below_one_when_asus_bottleneck() {
        let m = model(1, 2, 8.0);
        assert!(m.predicted_speedup(256, 1 << 13) < 1.0);
    }

    #[test]
    fn speedup_above_one_with_many_asus() {
        let m = model(1, 64, 8.0);
        let s = m.predicted_speedup(256, 1 << 13);
        assert!(s > 1.3, "predicted speedup {s}");
    }

    #[test]
    fn speedup_monotone_in_asus_for_fixed_alpha() {
        let beta = 1 << 13;
        let mut prev = 0.0;
        for d in [2, 4, 8, 16, 32, 64] {
            let s = model(1, d, 8.0).predicted_speedup(64, beta);
            assert!(s >= prev - 1e-9, "speedup should not decline with D");
            prev = s;
        }
    }

    #[test]
    fn c4_beats_c8_at_same_geometry() {
        // Pick a point where the ASU distribute binds (few ASUs, big α):
        // halving c doubles the distribute rate and the speedup.
        let beta = 1 << 13;
        let s4 = model(1, 2, 4.0).predicted_speedup(256, beta);
        let s8 = model(1, 2, 8.0).predicted_speedup(256, beta);
        assert!(s4 > s8, "faster ASUs must help: c4={s4} c8={s8}");
    }

    #[test]
    fn gamma_split_respects_asu_buffer_bound() {
        let m = model(1, 16, 8.0);
        let (g1, g2) = m.pick_gamma_split_bounded(64, 8);
        assert!(g1 * g2 >= 64);
        assert!(g1 <= 8, "ASU buffer bound violated: γ1={g1}");
    }

    #[test]
    fn gamma_split_beats_host_only_merge() {
        // Splitting the merge across ASUs and host should never be slower
        // than doing all fan-in on the host.
        let m = model(1, 16, 8.0);
        let (g1, g2) = m.pick_gamma_split_bounded(64, 8);
        assert!(m.merge_rate(g1, g2) >= m.merge_rate(1, 64) * (1.0 - 1e-9));
    }

    #[test]
    fn gamma_split_degenerate() {
        let m = model(1, 4, 8.0);
        assert_eq!(m.pick_gamma_split(1), (1, 1));
        let (g1, g2) = m.pick_gamma_split(2);
        assert!(g1 * g2 >= 2);
    }

    #[test]
    fn two_pass_alpha_accounts_for_merge() {
        // For a large n, α=1 forces a huge merge fan-in; the two-pass
        // chooser should prefer a larger α than 1.
        let m = model(1, 16, 8.0);
        let beta = 1 << 13;
        let n = 1u64 << 24;
        let a = m.pick_alpha_two_pass(&[1, 4, 16, 64, 256], beta, n);
        assert!(a > 1, "two-pass pick was α={a}");
    }

    #[test]
    fn baseline_unaffected_by_asu_count_once_host_bound() {
        let beta = 1 << 13;
        let r16 = model(1, 16, 8.0).pass1_rate_baseline(64, beta);
        let r64 = model(1, 64, 8.0).pass1_rate_baseline(64, beta);
        assert!((r16 - r64).abs() < 1e-6, "host-bound baseline rate");
    }
}
