//! Property tests for the functor library's behavioural contracts.

use lmas_core::functor::lib::{BlockSortFunctor, DistributeFunctor, FilterFunctor, MergeFunctor};
use lmas_core::functor::{Emit, Functor};
use lmas_core::kernels::{bucket_of, select_splitters};
use lmas_core::{Packet, Rec8};
use proptest::prelude::*;

fn recs(keys: &[u32]) -> Vec<Rec8> {
    keys.iter()
        .enumerate()
        .map(|(i, &key)| Rec8 { key, tag: i as u32 })
        .collect()
}

fn drive<F: Functor<Rec8>>(
    f: &mut F,
    inputs: Vec<Packet<Rec8>>,
) -> Vec<(usize, Packet<Rec8>)> {
    let mut e = Emit::new(f.out_ports());
    for p in inputs {
        // Contract: cost is evaluated against pre-process state.
        let _ = f.cost(&p);
        f.process(p, &mut e);
    }
    f.flush(&mut e);
    e.take()
}

proptest! {
    /// Distribute: every record lands on the port of its bucket, and the
    /// multiset of tags is preserved.
    #[test]
    fn distribute_routes_and_preserves(
        keys in prop::collection::vec(any::<u32>(), 0..400),
        k in 1usize..32,
        chunk in 1usize..64,
    ) {
        let data = recs(&keys);
        let splitters = select_splitters(data.clone(), k);
        let mut f = DistributeFunctor::<Rec8>::new(splitters.clone());
        let inputs: Vec<Packet<Rec8>> = data.chunks(chunk).map(|c| Packet::new(c.to_vec())).collect();
        let out = drive(&mut f, inputs);
        let mut tags = Vec::new();
        for (port, p) in &out {
            for r in p.records() {
                prop_assert_eq!(bucket_of(r.key, &splitters), *port, "record on wrong port");
                tags.push(r.tag);
            }
        }
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..keys.len() as u32).collect::<Vec<u32>>());
    }

    /// Block sort: every emitted packet is a sorted run of ≤ β records;
    /// all full-size runs come before the flush tail; nothing is lost.
    #[test]
    fn block_sort_emits_bounded_sorted_runs(
        keys in prop::collection::vec(any::<u32>(), 0..500),
        beta in 1usize..128,
        chunk in 1usize..64,
    ) {
        let data = recs(&keys);
        let mut f = BlockSortFunctor::<Rec8>::new(beta);
        let inputs: Vec<Packet<Rec8>> = data.chunks(chunk).map(|c| Packet::new(c.to_vec())).collect();
        let out = drive(&mut f, inputs);
        let mut total = 0usize;
        for (i, (_, p)) in out.iter().enumerate() {
            prop_assert!(p.is_sorted(), "run {i} unsorted");
            prop_assert!(p.len() <= beta, "run {i} exceeds β");
            total += p.len();
        }
        prop_assert_eq!(total, keys.len());
        // Only the last run may be short.
        for (_, p) in out.iter().rev().skip(1) {
            prop_assert_eq!(p.len(), beta);
        }
    }

    /// Merge: feeding sorted runs in any grouping yields packets whose
    /// union is the sorted multiset (each output packet itself sorted).
    #[test]
    fn merge_outputs_sorted_packets_preserving_records(
        keys in prop::collection::vec(any::<u32>(), 0..400),
        gamma in 2usize..16,
        run_len in 1usize..50,
    ) {
        let mut data = recs(&keys);
        let mut f = MergeFunctor::<Rec8>::new(gamma);
        let inputs: Vec<Packet<Rec8>> = data
            .chunks(run_len)
            .map(|c| {
                let mut v = c.to_vec();
                v.sort_by_key(|r| r.key);
                Packet::new(v)
            })
            .collect();
        let out = drive(&mut f, inputs);
        let mut all: Vec<Rec8> = Vec::new();
        for (_, p) in &out {
            prop_assert!(p.is_sorted());
            all.extend(p.records().iter().copied());
        }
        prop_assert_eq!(all.len(), keys.len());
        let mut tags: Vec<u32> = all.iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..keys.len() as u32).collect::<Vec<u32>>());
        data.sort_by_key(|r| r.key);
        let mut merged_keys: Vec<u32> = all.iter().map(|r| r.key).collect();
        merged_keys.sort_unstable();
        prop_assert_eq!(merged_keys, data.iter().map(|r| r.key).collect::<Vec<u32>>());
    }

    /// Filter: kept + dropped = seen, and kept records all satisfy the
    /// predicate.
    #[test]
    fn filter_partitions_exactly(
        keys in prop::collection::vec(any::<u32>(), 0..400),
        threshold in any::<u32>(),
    ) {
        let data = recs(&keys);
        let mut f = FilterFunctor::new("ge", move |r: &Rec8| r.key >= threshold);
        let out = drive(&mut f, vec![Packet::new(data)]);
        let kept: usize = out.iter().map(|(_, p)| p.len()).sum();
        let (k, d) = f.counts();
        prop_assert_eq!(k as usize, kept);
        prop_assert_eq!((k + d) as usize, keys.len());
        for (_, p) in &out {
            prop_assert!(p.records().iter().all(|r| r.key >= threshold));
        }
    }

    /// Declared distribute cost matches the log₂α law for any packet.
    #[test]
    fn distribute_cost_law(nrec in 0usize..200, k in 1usize..300) {
        let data = recs(&vec![7u32; nrec]);
        let splitters: Vec<u32> = (1..k as u32).collect();
        let f = DistributeFunctor::<Rec8>::new(splitters);
        let w = f.cost(&Packet::new(data));
        prop_assert_eq!(w.compares, nrec as u64 * lmas_core::log2_ceil(k as u64));
        prop_assert_eq!(w.record_moves, nrec as u64);
    }
}
