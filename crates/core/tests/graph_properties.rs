//! Property tests for flow-graph validation and placement helpers.

use lmas_core::functor::lib::RelayFunctor;
use lmas_core::{
    EdgeKind, FlowGraph, Functor, FunctorKind, NodeId, Placement, Rec8, RoutingPolicy, StageId,
};
use proptest::prelude::*;

fn relay() -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + 'static {
    |_| Box::new(RelayFunctor::new("relay")) as Box<dyn Functor<Rec8>>
}

proptest! {
    /// Any linear chain of stages validates, and its topological order is
    /// exactly the chain order.
    #[test]
    fn linear_chains_validate(reps in prop::collection::vec(1usize..8, 1..10)) {
        let mut g: FlowGraph<Rec8> = FlowGraph::new();
        let ids: Vec<StageId> = reps
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if i == 0 {
                    g.add_source_stage(r, relay())
                } else {
                    g.add_stage(r, relay())
                }
            })
            .collect();
        for w in ids.windows(2) {
            g.connect(w[0], w[1], RoutingPolicy::RoundRobin, EdgeKind::Set).unwrap();
        }
        let order = g.validate().expect("chains are valid");
        prop_assert_eq!(order, ids.clone());
        // Every non-terminal stage has exactly one out edge; the last has none.
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(g.out_edge(*id).is_some(), i + 1 < ids.len());
        }
    }

    /// Any back edge added to a chain produces a cycle error.
    #[test]
    fn back_edges_are_cycles(len in 2usize..8, from in 1usize..8, to in 0usize..8) {
        let from = from.min(len - 1);
        let to = to.min(from.saturating_sub(1));
        let mut g: FlowGraph<Rec8> = FlowGraph::new();
        let ids: Vec<StageId> = (0..len)
            .map(|i| if i == 0 { g.add_source_stage(1, relay()) } else { g.add_stage(1, relay()) })
            .collect();
        for w in ids.windows(2) {
            g.connect(w[0], w[1], RoutingPolicy::Static, EdgeKind::Set).unwrap();
        }
        // The last stage gets a back edge to an earlier stage.
        g.connect(ids[len - 1], ids[to], RoutingPolicy::Static, EdgeKind::Set).unwrap();
        prop_assert!(matches!(
            g.validate(),
            Err(lmas_core::GraphError::Cycle)
        ), "back edge {} → {} must cycle", len - 1, to);
    }

    /// spread_over_hosts/asus covers every instance, round-robin.
    #[test]
    fn spread_helpers_cover_all_instances(n in 1usize..64, hosts in 1usize..8, asus in 1usize..8) {
        let s0 = StageId(0);
        let s1 = StageId(1);
        let mut p = Placement::new();
        p.spread_over_hosts(s0, n, hosts);
        p.spread_over_asus(s1, n, asus);
        for i in 0..n {
            prop_assert_eq!(p.node_of(s0, i), Some(NodeId::Host(i % hosts)));
            prop_assert_eq!(p.node_of(s1, i), Some(NodeId::Asu(i % asus)));
        }
        prop_assert_eq!(p.len(), 2 * n);
        prop_assert_eq!(p.asu_instances(s1).len(), n);
    }

    /// Placement validation accepts exactly the ASU-eligible placements.
    #[test]
    fn placement_validation_is_sound(
        mem in 0usize..10_000,
        bound in 0usize..10_000,
        on_asu in any::<bool>(),
        host_only in any::<bool>(),
    ) {
        let s = StageId(0);
        let mut p = Placement::new();
        p.assign(s, 0, if on_asu { NodeId::Asu(0) } else { NodeId::Host(0) });
        let kind = if host_only {
            FunctorKind::HostOnly
        } else {
            FunctorKind::AsuEligible { max_state_bytes: bound }
        };
        let ok = p.validate(&[(s, 1, kind)], mem).is_ok();
        let expect = !on_asu || (!host_only && bound <= mem);
        prop_assert_eq!(ok, expect);
    }
}
