//! Residual capacity: what fraction of each node's CPU, disk, and NIC
//! is still available to a *new* job once the jobs already running on
//! the cluster have taken their share.
//!
//! The estimator's raw rates describe an empty cluster. A multi-tenant
//! scheduler instead derives, for every node, the fraction of each
//! resource class the currently running jobs occupy (their predicted
//! per-node busy time over their predicted makespan) and hands the
//! *remainder* to [`estimate_residual`](crate::estimate::estimate_residual)
//! / [`plan_residual`](crate::search::plan_residual): a node half-busy
//! with someone else's sort effectively has half the CPU rate, so the
//! bottleneck-makespan search routes new work around it.
//!
//! Fractions are clamped to [`ResidualCapacity::FLOOR`] — a saturated
//! node never divides by zero, it just looks extremely slow. A
//! [`ResidualCapacity::full`] view (all 1.0) reproduces the raw-rate
//! estimate bit for bit (multiplying a rate by 1.0 is exact in IEEE
//! 754), which is what keeps every pre-scheduler golden unchanged.

use lmas_core::placement::NodeId;

/// Per-node fractional headroom in planner node order (hosts `0..H`,
/// then ASUs `H..H+D`), each component in `(0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualCapacity {
    /// CPU headroom fraction per node.
    pub cpu: Vec<f64>,
    /// Disk-bandwidth headroom fraction per node.
    pub disk: Vec<f64>,
    /// Outbound-NIC headroom fraction per node.
    pub nic: Vec<f64>,
}

impl ResidualCapacity {
    /// Minimum headroom a node is ever modeled with: occupancy beyond
    /// this makes the node look 20× slow rather than infinitely slow,
    /// keeping every estimate finite and the search total.
    pub const FLOOR: f64 = 0.05;

    /// An empty cluster: full headroom everywhere. Estimates taken
    /// against this view are bit-identical to the raw-rate estimator.
    pub fn full(nodes: usize) -> Self {
        ResidualCapacity {
            cpu: vec![1.0; nodes],
            disk: vec![1.0; nodes],
            nic: vec![1.0; nodes],
        }
    }

    /// Number of nodes this view covers.
    pub fn len(&self) -> usize {
        self.cpu.len()
    }

    /// True when the view covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
    }

    /// True when every component is exactly 1.0 (the empty-cluster view).
    pub fn is_full(&self) -> bool {
        self.cpu.iter().all(|&f| f == 1.0)
            && self.disk.iter().all(|&f| f == 1.0)
            && self.nic.iter().all(|&f| f == 1.0)
    }

    /// Planner node index of `node` given the host count (hosts first,
    /// then ASUs) — the order [`full`](Self::full) and the estimator use.
    pub fn node_index(hosts: usize, node: NodeId) -> usize {
        match node {
            NodeId::Host(i) => i,
            NodeId::Asu(i) => hosts + i,
        }
    }

    /// Subtract a running job's share of node `ui`'s resources, clamping
    /// each component to [`FLOOR`](Self::FLOOR). Shares outside [0, 1]
    /// are clamped before subtraction so a mis-scaled caller cannot
    /// produce negative headroom.
    pub fn occupy(&mut self, ui: usize, cpu: f64, disk: f64, nic: f64) {
        let take = |slot: &mut f64, share: f64| {
            *slot = (*slot - share.clamp(0.0, 1.0)).max(Self::FLOOR);
        };
        take(&mut self.cpu[ui], cpu);
        take(&mut self.disk[ui], disk);
        take(&mut self.nic[ui], nic);
    }

    /// Largest occupied CPU fraction across nodes (0.0 on an empty
    /// cluster): the load signal admission gates compare against their
    /// saturation threshold.
    pub fn peak_cpu_load(&self) -> f64 {
        self.cpu.iter().map(|&f| 1.0 - f).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_full() {
        let r = ResidualCapacity::full(5);
        assert_eq!(r.len(), 5);
        assert!(r.is_full());
        assert_eq!(r.peak_cpu_load(), 0.0);
    }

    #[test]
    fn occupy_clamps_to_floor() {
        let mut r = ResidualCapacity::full(2);
        r.occupy(0, 0.7, 2.5, -0.3);
        assert!((r.cpu[0] - 0.3).abs() < 1e-12);
        assert_eq!(r.disk[0], ResidualCapacity::FLOOR);
        assert_eq!(r.nic[0], 1.0);
        r.occupy(0, 0.9, 0.0, 0.0);
        assert_eq!(r.cpu[0], ResidualCapacity::FLOOR);
        assert!((r.peak_cpu_load() - (1.0 - ResidualCapacity::FLOOR)).abs() < 1e-12);
        assert!(!r.is_full());
    }

    #[test]
    fn node_index_orders_hosts_then_asus() {
        assert_eq!(ResidualCapacity::node_index(2, NodeId::Host(1)), 1);
        assert_eq!(ResidualCapacity::node_index(2, NodeId::Asu(0)), 2);
        assert_eq!(ResidualCapacity::node_index(2, NodeId::Asu(3)), 5);
    }
}
