//! Analytic bottleneck-makespan estimator.
//!
//! Scores a candidate assignment without running the emulator. The
//! model is a pipelined critical path over the stage DAG, tightened by
//! per-node resource bounds:
//!
//! * **fill** — `ready(s)`: when the first packet reaches stage `s`
//!   (source read time, plus one packet of upstream processing and a
//!   link hop per edge; a *blocking* upstream stage forwards nothing
//!   until it has drained completely);
//! * **busy** — `busy(s)`: the stage's steady-state occupancy, the max
//!   over nodes of the CPU (and, for sources, disk) time its instances
//!   spend there;
//! * **drain** — `done(s)`: the later of "filled + busy" and "last
//!   upstream packet processed and flushed through `s`";
//! * **node bounds** — no schedule beats the total CPU / disk / NIC
//!   time any single node must serve, offset by when that node first
//!   has work.
//!
//! All arithmetic is f64 over integer inputs in a fixed order — the
//! estimate is a pure deterministic function of (spec, shape,
//! assignment).

use crate::model::{ClusterShape, PlanSpec};
use crate::residual::ResidualCapacity;
use lmas_core::placement::NodeId;
use std::fmt;

/// What binds the predicted makespan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bottleneck {
    /// The pipelined critical path through a sink stage.
    Pipeline {
        /// Name of the binding sink stage.
        stage: String,
    },
    /// Aggregate CPU demand on one node.
    Cpu {
        /// The saturated node.
        node: NodeId,
    },
    /// Aggregate disk demand on one node.
    Disk {
        /// The saturated node.
        node: NodeId,
    },
    /// Aggregate outbound link demand on one node.
    Link {
        /// The saturated node.
        node: NodeId,
    },
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::Pipeline { stage } => write!(f, "pipeline:{stage}"),
            Bottleneck::Cpu { node } => write!(f, "cpu:{node}"),
            Bottleneck::Disk { node } => write!(f, "disk:{node}"),
            Bottleneck::Link { node } => write!(f, "link:{node}"),
        }
    }
}

/// Per-stage demand on each resource class: the max over the nodes the
/// stage's instances occupy of the CPU / disk / outbound-NIC time they
/// spend there. The largest of the three is what binds the stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageResource {
    /// CPU occupancy (ns) on the stage's most loaded node.
    pub cpu_ns: f64,
    /// Disk occupancy (ns), including any coded replicated writes.
    pub disk_ns: f64,
    /// Outbound NIC occupancy (ns) of the stage's out-edge.
    pub nic_ns: f64,
}

impl StageResource {
    /// Which resource class binds this stage.
    pub fn binds(&self) -> &'static str {
        if self.cpu_ns >= self.disk_ns && self.cpu_ns >= self.nic_ns {
            "cpu"
        } else if self.disk_ns >= self.nic_ns {
            "disk"
        } else {
            "nic"
        }
    }
}

/// The estimator's verdict on one assignment.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Predicted makespan in nanoseconds.
    pub makespan_ns: f64,
    /// The binding resource.
    pub bottleneck: Bottleneck,
    /// Per-stage steady-state occupancy (ns), indexed like the spec.
    pub stage_busy_ns: Vec<f64>,
    /// Per-stage completion time (ns), indexed like the spec.
    pub stage_done_ns: Vec<f64>,
    /// Aggregate CPU time per node (planner node order).
    pub node_cpu_ns: Vec<(NodeId, f64)>,
    /// Aggregate disk time per node (planner node order).
    pub node_disk_ns: Vec<(NodeId, f64)>,
    /// Aggregate outbound NIC time per node (planner node order).
    pub node_nic_ns: Vec<(NodeId, f64)>,
    /// Per-stage resource attribution, indexed like the spec.
    pub stage_resources: Vec<StageResource>,
}

impl Estimate {
    /// Predicted throughput of stage `s` in records/sec (its record
    /// volume over its occupancy); infinite for stages with no work.
    pub fn stage_rate(&self, spec: &PlanSpec, s: usize) -> f64 {
        let busy = self.stage_busy_ns[s];
        if busy <= 0.0 {
            f64::INFINITY
        } else {
            spec.stages[s].records as f64 / (busy / 1e9)
        }
    }
}

/// Per-instance record share under even dealing.
fn recs_per_instance(records: u64, replication: usize) -> f64 {
    records as f64 / replication as f64
}

/// Score `asg` (node of every `(stage, instance)`) for `spec` on
/// `shape`. `topo` is the spec's topological order.
pub fn estimate(
    spec: &PlanSpec,
    shape: &ClusterShape,
    asg: &[Vec<NodeId>],
    topo: &[usize],
) -> Estimate {
    estimate_residual(
        spec,
        shape,
        asg,
        topo,
        &ResidualCapacity::full(shape.total_nodes()),
    )
}

/// [`estimate`], but against the *residual* capacity of a cluster with
/// other jobs already running: every node's CPU speed, disk rate, and
/// outbound link rate is scaled by its headroom fraction in `res`
/// (planner node order). `ResidualCapacity::full` reproduces
/// [`estimate`] bit for bit — a rate times 1.0 is the rate.
pub fn estimate_residual(
    spec: &PlanSpec,
    shape: &ClusterShape,
    asg: &[Vec<NodeId>],
    topo: &[usize],
    res: &ResidualCapacity,
) -> Estimate {
    debug_assert_eq!(res.len(), shape.total_nodes());
    let nstages = spec.stages.len();
    let nodes = shape.nodes();
    let node_index = |node: NodeId| -> usize {
        match node {
            NodeId::Host(i) => i,
            NodeId::Asu(i) => shape.hosts + i,
        }
    };
    // Work → ns on a given node, per record and per flush.
    let per_rec_ns = |s: usize, node: NodeId| -> f64 {
        shape
            .cost
            .charge(
                spec.stages[s].per_record,
                shape.node_speed(node) * res.cpu[node_index(node)],
            )
            .as_nanos() as f64
    };
    let flush_ns = |s: usize, node: NodeId| -> f64 {
        shape
            .cost
            .charge(
                spec.stages[s].flush_per_instance,
                shape.node_speed(node) * res.cpu[node_index(node)],
            )
            .as_nanos() as f64
    };
    let disk_ns_per_byte = |node: NodeId| -> f64 {
        1e9 / (shape.disk_rate(node) * res.disk[node_index(node)])
    };
    let link_ns_per_byte =
        |node: NodeId| -> f64 { 1e9 / (shape.link_rate * res.nic[node_index(node)]) };

    // Slowest node hosting each stage (the pipeline's pace setter) and
    // the worst-case flush.
    let slowest_per_rec: Vec<f64> = (0..nstages)
        .map(|s| {
            asg[s]
                .iter()
                .map(|&u| per_rec_ns(s, u))
                .fold(0.0, f64::max)
        })
        .collect();
    let slowest_flush: Vec<f64> = (0..nstages)
        .map(|s| {
            asg[s].iter().map(|&u| flush_ns(s, u)).fold(0.0, f64::max)
        })
        .collect();

    // Per-node aggregates: CPU, disk, outbound NIC, across all stages.
    let mut node_cpu = vec![0.0f64; nodes.len()];
    let mut node_disk = vec![0.0f64; nodes.len()];
    let mut node_nic = vec![0.0f64; nodes.len()];
    for (s, stage_nodes) in asg.iter().enumerate() {
        let st = &spec.stages[s];
        let recs = recs_per_instance(st.records, st.replication);
        for &u in stage_nodes {
            let ui = node_index(u);
            node_cpu[ui] += recs * per_rec_ns(s, u) + flush_ns(s, u);
            if st.bytes_in > 0 {
                node_disk[ui] += st.bytes_in as f64
                    / st.replication as f64
                    * disk_ns_per_byte(u);
            }
            if st.bytes_out > 0 {
                node_disk[ui] += st.bytes_out as f64
                    / st.replication as f64
                    * disk_ns_per_byte(u);
            }
        }
    }
    // Outbound NIC: each record leaving stage `s` for a remote instance
    // of `t` is charged at the sender. With routing spreading records
    // across destinations, the remote fraction for a sender on node `u`
    // is the share of destination instances not on `u`. A coded edge
    // (receiver's `coded_group = r > 1`) coalesces every r remote
    // records into one frame — 1/r of the NIC bytes — and charges the
    // sender an (r-1)-way replicated disk write for the side
    // information.
    let mut stage_nic_on = vec![vec![0.0f64; nodes.len()]; nstages];
    let mut stage_coded_disk_on = vec![vec![0.0f64; nodes.len()]; nstages];
    for e in &spec.edges {
        let st = &spec.stages[e.from];
        let recs = recs_per_instance(st.records, st.replication);
        let dests = &asg[e.to];
        let r = spec.stages[e.to].coded_group.max(1);
        for &u in &asg[e.from] {
            let ui = node_index(u);
            let remote =
                dests.iter().filter(|&&d| d != u).count() as f64
                    / dests.len() as f64;
            let nic = recs * remote * spec.record_bytes as f64
                * link_ns_per_byte(u)
                / r as f64;
            node_nic[ui] += nic;
            stage_nic_on[e.from][ui] += nic;
            if r > 1 {
                let extra = recs
                    * remote
                    * spec.record_bytes as f64
                    * (r - 1) as f64
                    * disk_ns_per_byte(u);
                node_disk[ui] += extra;
                stage_coded_disk_on[e.from][ui] += extra;
            }
        }
    }

    // Per-stage busy: max over nodes of the time this stage's instances
    // occupy that node (CPU overlapped with local disk for sources; a
    // coded out-edge adds its replicated writes to the disk share).
    // Attribution (cpu/disk/nic maxes) is recorded alongside.
    let mut stage_busy = vec![0.0f64; nstages];
    let mut stage_resources = Vec::with_capacity(nstages);
    for s in 0..nstages {
        let st = &spec.stages[s];
        let recs = recs_per_instance(st.records, st.replication);
        let mut cpu_on = vec![0.0f64; nodes.len()];
        let mut disk_on = vec![0.0f64; nodes.len()];
        for &u in &asg[s] {
            let ui = node_index(u);
            cpu_on[ui] += recs * per_rec_ns(s, u) + flush_ns(s, u);
            disk_on[ui] += (st.bytes_in + st.bytes_out) as f64
                / st.replication as f64
                * disk_ns_per_byte(u);
        }
        for ui in 0..nodes.len() {
            disk_on[ui] += stage_coded_disk_on[s][ui];
            // The replicated side-information writes share the device
            // with everything else the node's disk serves (source
            // reads, co-resident sink writes): once coding competes
            // for the disk, the stage cannot finish before the whole
            // device drains.
            if stage_coded_disk_on[s][ui] > 0.0 {
                disk_on[ui] = disk_on[ui].max(node_disk[ui]);
            }
        }
        stage_busy[s] = cpu_on
            .iter()
            .zip(&disk_on)
            .map(|(&c, &d)| c.max(d))
            .fold(0.0, f64::max);
        stage_resources.push(StageResource {
            cpu_ns: cpu_on.iter().copied().fold(0.0, f64::max),
            disk_ns: disk_on.iter().copied().fold(0.0, f64::max),
            nic_ns: stage_nic_on[s].iter().copied().fold(0.0, f64::max),
        });
    }

    // Fill/drain recurrence in topo order.
    let mut ready = vec![0.0f64; nstages];
    let mut done = vec![0.0f64; nstages];
    for &s in topo {
        let st = &spec.stages[s];
        let packet_bytes =
            st.packet_records as f64 * spec.record_bytes as f64;
        let mut rdy = 0.0f64;
        if st.is_source {
            // First packet is one disk read away on the slowest source
            // node.
            rdy = asg[s]
                .iter()
                .map(|&u| packet_bytes * disk_ns_per_byte(u))
                .fold(0.0, f64::max);
        }
        let mut drain_floor = 0.0f64;
        for e in spec.in_edges(s) {
            let up = e.from;
            // A packet pays the link in proportion to how often routing
            // sends it off-node: the fraction of (sender, dest) instance
            // pairs living on different nodes.
            let pairs = (asg[up].len() * asg[s].len()) as f64;
            let remote = asg[up]
                .iter()
                .flat_map(|&a| asg[s].iter().map(move |&b| (a, b)))
                .filter(|(a, b)| a != b)
                .count() as f64
                / pairs;
            // A coded inbound edge ships full-width frames (the byte
            // savings are in frame *count*, charged in `node_nic`), and
            // the first frame only forms once r packets have been
            // produced upstream.
            let rcv = st.coded_group.max(1) as f64;
            // Charged at the slowest sender's residual-scaled link.
            let up_link_ns = asg[up]
                .iter()
                .map(|&u| link_ns_per_byte(u))
                .fold(0.0, f64::max);
            let link = remote
                * (packet_bytes * up_link_ns + shape.link_latency_ns);
            let step =
                spec.stages[up].packet_records as f64 * slowest_per_rec[up];
            let feed = if spec.stages[up].blocking {
                done[up] + link
            } else {
                ready[up] + rcv * step + link
            };
            rdy = rdy.max(feed);
            // Last upstream packet still has to pass through `s`.
            let tail = done[up]
                + link
                + st.packet_records as f64 * slowest_per_rec[s]
                + slowest_flush[s];
            drain_floor = drain_floor.max(tail);
        }
        ready[s] = rdy;
        done[s] = (rdy + stage_busy[s]).max(drain_floor);
    }

    // Critical path: sinks plus their final disk write.
    let mut cp = 0.0f64;
    let mut cp_stage = 0usize;
    for s in 0..nstages {
        if !spec.is_sink(s) {
            continue;
        }
        let st = &spec.stages[s];
        let tail = if st.bytes_out > 0 {
            let packet_bytes =
                st.packet_records as f64 * spec.record_bytes as f64;
            asg[s]
                .iter()
                .map(|&u| packet_bytes * disk_ns_per_byte(u))
                .fold(0.0, f64::max)
        } else {
            0.0
        };
        let t = done[s] + tail;
        if t > cp {
            cp = t;
            cp_stage = s;
        }
    }

    // Node bounds: a node cannot finish before its first work arrives
    // plus everything it must serve.
    let mut first_ready = vec![f64::INFINITY; nodes.len()];
    for s in 0..nstages {
        for &u in &asg[s] {
            let ui = node_index(u);
            first_ready[ui] = first_ready[ui].min(ready[s]);
        }
    }
    let mut best = cp;
    let mut bottleneck = Bottleneck::Pipeline {
        stage: spec.stages[cp_stage].name.clone(),
    };
    for (ui, &node) in nodes.iter().enumerate() {
        if !first_ready[ui].is_finite() {
            continue;
        }
        let base = first_ready[ui];
        for (total, mk) in [
            (node_cpu[ui], 0),
            (node_disk[ui], 1),
            (node_nic[ui], 2),
        ] {
            let bound = base + total;
            if bound > best {
                best = bound;
                bottleneck = match mk {
                    0 => Bottleneck::Cpu { node },
                    1 => Bottleneck::Disk { node },
                    _ => Bottleneck::Link { node },
                };
            }
        }
    }

    Estimate {
        makespan_ns: best,
        bottleneck,
        stage_busy_ns: stage_busy,
        stage_done_ns: done,
        node_cpu_ns: nodes
            .iter()
            .copied()
            .zip(node_cpu.iter().copied())
            .collect(),
        node_disk_ns: nodes
            .iter()
            .copied()
            .zip(node_disk.iter().copied())
            .collect(),
        node_nic_ns: nodes
            .iter()
            .copied()
            .zip(node_nic.iter().copied())
            .collect(),
        stage_resources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PlanEdge, StageSpec};
    use lmas_core::cost::Work;
    use lmas_core::functor::FunctorKind;

    fn two_stage_spec(records: u64) -> PlanSpec {
        let eligible = FunctorKind::AsuEligible { max_state_bytes: 0 };
        PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("read", 1, eligible)
                    .with_source(records * 128)
                    .with_work(Work::moves(1), records),
                StageSpec::new("crunch", 1, FunctorKind::HostOnly)
                    .with_work(Work::compares(8) + Work::moves(1), records),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        }
    }

    #[test]
    fn offloading_compute_to_slow_node_costs_time() {
        let spec = two_stage_spec(100_000);
        let shape = ClusterShape::era_2002(1, 1, 8.0);
        let topo = spec.topo_order().unwrap();
        let on_host = vec![vec![NodeId::Asu(0)], vec![NodeId::Host(0)]];
        let on_asu = vec![vec![NodeId::Asu(0)], vec![NodeId::Asu(0)]];
        let fast = estimate(&spec, &shape, &on_host, &topo);
        let slow = estimate(&spec, &shape, &on_asu, &topo);
        assert!(
            slow.makespan_ns > 2.0 * fast.makespan_ns,
            "8× slower CPU must dominate: host {} vs asu {}",
            fast.makespan_ns,
            slow.makespan_ns
        );
        assert!(matches!(slow.bottleneck, Bottleneck::Cpu { .. }));
    }

    #[test]
    fn replication_divides_busy_time() {
        let eligible = FunctorKind::AsuEligible { max_state_bytes: 0 };
        let mk = |repl: usize| PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("src", 1, eligible)
                    .with_source(128 * 1_000_000),
                StageSpec::new("work", repl, FunctorKind::HostOnly)
                    .with_work(Work::compares(16), 1_000_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(4, 1, 8.0);
        let s1 = mk(1);
        let s4 = mk(4);
        let topo = s1.topo_order().unwrap();
        let a1 = vec![vec![NodeId::Asu(0)], vec![NodeId::Host(0)]];
        let a4 = vec![
            vec![NodeId::Asu(0)],
            (0..4).map(NodeId::Host).collect(),
        ];
        let e1 = estimate(&s1, &shape, &a1, &topo);
        let e4 = estimate(&s4, &shape, &a4, &topo);
        assert!(
            e4.stage_busy_ns[1] < e1.stage_busy_ns[1] / 3.0,
            "4-way replication must cut stage occupancy"
        );
        assert!(e4.makespan_ns < e1.makespan_ns);
    }

    #[test]
    fn blocking_stage_serializes_downstream() {
        let eligible = FunctorKind::AsuEligible { max_state_bytes: 0 };
        let mk = |blocking: bool| PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("src", 1, eligible)
                    .with_source(128 * 200_000)
                    .with_work(Work::moves(1), 200_000)
                    .with_flush(Work::ZERO, blocking),
                StageSpec::new("down", 1, FunctorKind::HostOnly)
                    .with_work(Work::moves(1), 200_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(1, 1, 8.0);
        let topo = mk(false).topo_order().unwrap();
        let asg = vec![vec![NodeId::Asu(0)], vec![NodeId::Host(0)]];
        let streamed = estimate(&mk(false), &shape, &asg, &topo);
        let barrier = estimate(&mk(true), &shape, &asg, &topo);
        assert!(
            barrier.makespan_ns > streamed.makespan_ns,
            "a barrier stage must lengthen the pipeline"
        );
    }

    #[test]
    fn full_residual_estimate_is_bit_identical() {
        let spec = two_stage_spec(77_000);
        let shape = ClusterShape::era_2002(2, 3, 8.0);
        let topo = spec.topo_order().unwrap();
        let asg = vec![vec![NodeId::Asu(1)], vec![NodeId::Host(0)]];
        let raw = estimate(&spec, &shape, &asg, &topo);
        let res = ResidualCapacity::full(shape.total_nodes());
        let full = estimate_residual(&spec, &shape, &asg, &topo, &res);
        assert_eq!(raw.makespan_ns.to_bits(), full.makespan_ns.to_bits());
        assert_eq!(raw.bottleneck, full.bottleneck);
        for (a, b) in raw.node_cpu_ns.iter().zip(&full.node_cpu_ns) {
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        for (a, b) in raw.node_nic_ns.iter().zip(&full.node_nic_ns) {
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn occupied_node_inflates_estimate() {
        let spec = two_stage_spec(100_000);
        let shape = ClusterShape::era_2002(1, 1, 8.0);
        let topo = spec.topo_order().unwrap();
        let asg = vec![vec![NodeId::Asu(0)], vec![NodeId::Host(0)]];
        let empty = estimate(&spec, &shape, &asg, &topo);
        let mut res = ResidualCapacity::full(shape.total_nodes());
        res.occupy(0, 0.75, 0.0, 0.0); // host 0 CPU three-quarters busy
        let shared = estimate_residual(&spec, &shape, &asg, &topo, &res);
        assert!(
            shared.makespan_ns > empty.makespan_ns,
            "losing 3/4 of the host CPU must slow the crunch: {} vs {}",
            shared.makespan_ns,
            empty.makespan_ns
        );
    }

    #[test]
    fn estimate_is_deterministic() {
        let spec = two_stage_spec(12345);
        let shape = ClusterShape::era_2002(2, 3, 8.0);
        let topo = spec.topo_order().unwrap();
        let asg = vec![vec![NodeId::Asu(2)], vec![NodeId::Host(1)]];
        let a = estimate(&spec, &shape, &asg, &topo);
        let b = estimate(&spec, &shape, &asg, &topo);
        assert_eq!(a.makespan_ns.to_bits(), b.makespan_ns.to_bits());
        assert_eq!(a.bottleneck, b.bottleneck);
    }
}
