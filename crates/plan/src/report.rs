//! Machine-readable account of a planning decision.
//!
//! The report exists so experiments can assert *why* a placement looks
//! the way it does: predicted phase rates, the binding resource, how
//! many candidates were weighed and rejected, and the final
//! per-instance assignment. Rendering is hand-built JSON with fixed
//! number formatting — byte-identical across same-input runs.

use crate::estimate::Estimate;
use crate::model::{ClusterShape, PlanSpec};
use lmas_core::placement::NodeId;
use std::fmt::Write as _;

/// Predicted throughput of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRate {
    /// Stage name.
    pub name: String,
    /// Chosen replication degree.
    pub replication: usize,
    /// Predicted records/sec through the stage (0 for no-work stages).
    pub records_per_sec: f64,
    /// Stage occupancy in nanoseconds.
    pub busy_ns: u64,
}

/// Which resource binds one stage, and by how much: the per-resource
/// occupancy (ns) on the stage's most loaded node.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBinding {
    /// Stage name.
    pub name: String,
    /// CPU occupancy on the most loaded node.
    pub cpu_ns: u64,
    /// Disk occupancy (coded replicated writes included).
    pub disk_ns: u64,
    /// Outbound NIC occupancy of the stage's out-edge.
    pub nic_ns: u64,
    /// The binding resource class: `cpu`, `disk`, or `nic`.
    pub binds: String,
}

/// One point of the coded-shuffle tradeoff curve: what the estimator
/// predicts for a candidate broadcast-group size `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedPoint {
    /// Candidate broadcast-group size.
    pub r: usize,
    /// Best predicted makespan at this `r` (ns).
    pub predicted_makespan_ns: u64,
    /// Predicted shuffle payload bytes on the wire (≈ uncoded / r).
    pub predicted_nic_bytes: u64,
    /// Extra replicated-write bytes the senders pay for this `r`.
    pub extra_disk_bytes: u64,
}

/// The planner's decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Predicted makespan, nanoseconds.
    pub predicted_makespan_ns: u64,
    /// The binding resource, e.g. `cpu:asu0` or `pipeline:collect`.
    pub bottleneck: String,
    /// Per-stage predicted rates.
    pub stage_rates: Vec<StageRate>,
    /// Per-stage resource attribution (which of CPU/disk/NIC binds).
    pub stage_bindings: Vec<StageBinding>,
    /// Aggregate CPU nanoseconds per node (planner node order).
    pub node_cpu_ns: Vec<(String, u64)>,
    /// Aggregate disk nanoseconds per node (planner node order).
    pub node_disk_ns: Vec<(String, u64)>,
    /// Aggregate outbound NIC nanoseconds per node (planner node order).
    pub node_nic_ns: Vec<(String, u64)>,
    /// Predicted coded-shuffle tradeoff curve (empty when no r-sweep
    /// ran); the winning `r` is the curve's minimum makespan.
    pub coded_curve: Vec<CodedPoint>,
    /// Final assignment: stage name → node name per instance.
    pub assignments: Vec<(String, Vec<String>)>,
    /// Candidate specs weighed (≥ 1; > 1 when replication was
    /// enumerated).
    pub candidates_considered: usize,
    /// Candidates discarded for a worse predicted makespan (or a
    /// planning error).
    pub candidates_rejected: usize,
    /// Local-search moves (migrate/swap) the refiner applied.
    pub moves_applied: usize,
}

impl PlanReport {
    /// Build the report for a finished plan.
    pub fn from_plan(
        spec: &PlanSpec,
        _shape: &ClusterShape,
        asg: &[Vec<NodeId>],
        est: &Estimate,
        moves_applied: usize,
    ) -> PlanReport {
        let stage_rates = spec
            .stages
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let rate = est.stage_rate(spec, s);
                StageRate {
                    name: st.name.clone(),
                    replication: st.replication,
                    records_per_sec: if rate.is_finite() { rate } else { 0.0 },
                    busy_ns: est.stage_busy_ns[s] as u64,
                }
            })
            .collect();
        PlanReport {
            predicted_makespan_ns: est.makespan_ns as u64,
            bottleneck: est.bottleneck.to_string(),
            stage_rates,
            stage_bindings: spec
                .stages
                .iter()
                .zip(&est.stage_resources)
                .map(|(st, res)| StageBinding {
                    name: st.name.clone(),
                    cpu_ns: res.cpu_ns as u64,
                    disk_ns: res.disk_ns as u64,
                    nic_ns: res.nic_ns as u64,
                    binds: res.binds().to_string(),
                })
                .collect(),
            node_cpu_ns: est
                .node_cpu_ns
                .iter()
                .map(|(n, ns)| (n.to_string(), *ns as u64))
                .collect(),
            node_disk_ns: est
                .node_disk_ns
                .iter()
                .map(|(n, ns)| (n.to_string(), *ns as u64))
                .collect(),
            node_nic_ns: est
                .node_nic_ns
                .iter()
                .map(|(n, ns)| (n.to_string(), *ns as u64))
                .collect(),
            coded_curve: Vec::new(),
            assignments: spec
                .stages
                .iter()
                .zip(asg)
                .map(|(st, nodes)| {
                    (
                        st.name.clone(),
                        nodes.iter().map(|n| n.to_string()).collect(),
                    )
                })
                .collect(),
            candidates_considered: 1,
            candidates_rejected: 0,
            moves_applied,
        }
    }

    /// Render as deterministic JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"predicted_makespan_ns\": {},",
            self.predicted_makespan_ns
        );
        let _ = writeln!(out, "  \"bottleneck\": \"{}\",", self.bottleneck);
        let _ = writeln!(
            out,
            "  \"candidates\": {{ \"considered\": {}, \"rejected\": {} }},",
            self.candidates_considered, self.candidates_rejected
        );
        let _ = writeln!(out, "  \"moves_applied\": {},", self.moves_applied);
        out.push_str("  \"stages\": [\n");
        for (i, r) in self.stage_rates.iter().enumerate() {
            let comma = if i + 1 < self.stage_rates.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"replication\": {}, \
                 \"records_per_sec\": {:.1}, \"busy_ns\": {} }}{comma}",
                r.name, r.replication, r.records_per_sec, r.busy_ns
            );
        }
        out.push_str("  ],\n  \"stage_bindings\": [\n");
        for (i, b) in self.stage_bindings.iter().enumerate() {
            let comma = if i + 1 < self.stage_bindings.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"cpu_ns\": {}, \"disk_ns\": {}, \
                 \"nic_ns\": {}, \"binds\": \"{}\" }}{comma}",
                b.name, b.cpu_ns, b.disk_ns, b.nic_ns, b.binds
            );
        }
        out.push_str("  ],\n  \"coded_curve\": [\n");
        for (i, p) in self.coded_curve.iter().enumerate() {
            let comma = if i + 1 < self.coded_curve.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"r\": {}, \"predicted_makespan_ns\": {}, \
                 \"predicted_nic_bytes\": {}, \"extra_disk_bytes\": {} }}{comma}",
                p.r, p.predicted_makespan_ns, p.predicted_nic_bytes, p.extra_disk_bytes
            );
        }
        out.push_str("  ],\n  \"node_cpu_ns\": {\n");
        for (i, (n, ns)) in self.node_cpu_ns.iter().enumerate() {
            let comma = if i + 1 < self.node_cpu_ns.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{n}\": {ns}{comma}");
        }
        out.push_str("  },\n  \"node_disk_ns\": {\n");
        for (i, (n, ns)) in self.node_disk_ns.iter().enumerate() {
            let comma = if i + 1 < self.node_disk_ns.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{n}\": {ns}{comma}");
        }
        out.push_str("  },\n  \"node_nic_ns\": {\n");
        for (i, (n, ns)) in self.node_nic_ns.iter().enumerate() {
            let comma = if i + 1 < self.node_nic_ns.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{n}\": {ns}{comma}");
        }
        out.push_str("  },\n  \"assignments\": {\n");
        for (i, (stage, nodes)) in self.assignments.iter().enumerate() {
            let comma = if i + 1 < self.assignments.len() { "," } else { "" };
            let list = nodes
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "    \"{stage}\": [{list}]{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PlanEdge, StageSpec};
    use crate::search::plan;
    use lmas_core::cost::Work;
    use lmas_core::functor::FunctorKind;

    #[test]
    fn report_json_is_well_formed_and_stable() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new(
                    "src",
                    2,
                    FunctorKind::AsuEligible { max_state_bytes: 0 },
                )
                .with_source(128 * 10_000)
                .with_work(Work::moves(1), 10_000)
                .pinned_per_asu(2),
                StageSpec::new("sink", 1, FunctorKind::HostOnly)
                    .with_work(Work::compares(4), 10_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(1, 2, 8.0);
        let out = plan(&spec, &shape).expect("plans");
        let json = out.report.render_json();
        for needle in [
            "\"predicted_makespan_ns\"",
            "\"bottleneck\"",
            "\"candidates\"",
            "\"stages\"",
            "\"stage_bindings\"",
            "\"binds\"",
            "\"coded_curve\"",
            "\"node_disk_ns\"",
            "\"node_nic_ns\"",
            "\"assignments\"",
            "\"src\": [\"asu0\", \"asu1\"]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Every stage carries an attribution verdict.
        assert_eq!(out.report.stage_bindings.len(), 2);
        for b in &out.report.stage_bindings {
            assert!(["cpu", "disk", "nic"].contains(&b.binds.as_str()));
        }
        assert_eq!(json, out.report.render_json());
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }
}
