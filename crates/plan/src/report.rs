//! Machine-readable account of a planning decision.
//!
//! The report exists so experiments can assert *why* a placement looks
//! the way it does: predicted phase rates, the binding resource, how
//! many candidates were weighed and rejected, and the final
//! per-instance assignment. Rendering is hand-built JSON with fixed
//! number formatting — byte-identical across same-input runs.

use crate::estimate::Estimate;
use crate::model::{ClusterShape, PlanSpec};
use lmas_core::placement::NodeId;
use std::fmt::Write as _;

/// Predicted throughput of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRate {
    /// Stage name.
    pub name: String,
    /// Chosen replication degree.
    pub replication: usize,
    /// Predicted records/sec through the stage (0 for no-work stages).
    pub records_per_sec: f64,
    /// Stage occupancy in nanoseconds.
    pub busy_ns: u64,
}

/// The planner's decision record.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Predicted makespan, nanoseconds.
    pub predicted_makespan_ns: u64,
    /// The binding resource, e.g. `cpu:asu0` or `pipeline:collect`.
    pub bottleneck: String,
    /// Per-stage predicted rates.
    pub stage_rates: Vec<StageRate>,
    /// Aggregate CPU nanoseconds per node (planner node order).
    pub node_cpu_ns: Vec<(String, u64)>,
    /// Final assignment: stage name → node name per instance.
    pub assignments: Vec<(String, Vec<String>)>,
    /// Candidate specs weighed (≥ 1; > 1 when replication was
    /// enumerated).
    pub candidates_considered: usize,
    /// Candidates discarded for a worse predicted makespan (or a
    /// planning error).
    pub candidates_rejected: usize,
    /// Local-search moves (migrate/swap) the refiner applied.
    pub moves_applied: usize,
}

impl PlanReport {
    /// Build the report for a finished plan.
    pub fn from_plan(
        spec: &PlanSpec,
        _shape: &ClusterShape,
        asg: &[Vec<NodeId>],
        est: &Estimate,
        moves_applied: usize,
    ) -> PlanReport {
        let stage_rates = spec
            .stages
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let rate = est.stage_rate(spec, s);
                StageRate {
                    name: st.name.clone(),
                    replication: st.replication,
                    records_per_sec: if rate.is_finite() { rate } else { 0.0 },
                    busy_ns: est.stage_busy_ns[s] as u64,
                }
            })
            .collect();
        PlanReport {
            predicted_makespan_ns: est.makespan_ns as u64,
            bottleneck: est.bottleneck.to_string(),
            stage_rates,
            node_cpu_ns: est
                .node_cpu_ns
                .iter()
                .map(|(n, ns)| (n.to_string(), *ns as u64))
                .collect(),
            assignments: spec
                .stages
                .iter()
                .zip(asg)
                .map(|(st, nodes)| {
                    (
                        st.name.clone(),
                        nodes.iter().map(|n| n.to_string()).collect(),
                    )
                })
                .collect(),
            candidates_considered: 1,
            candidates_rejected: 0,
            moves_applied,
        }
    }

    /// Render as deterministic JSON.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"predicted_makespan_ns\": {},",
            self.predicted_makespan_ns
        );
        let _ = writeln!(out, "  \"bottleneck\": \"{}\",", self.bottleneck);
        let _ = writeln!(
            out,
            "  \"candidates\": {{ \"considered\": {}, \"rejected\": {} }},",
            self.candidates_considered, self.candidates_rejected
        );
        let _ = writeln!(out, "  \"moves_applied\": {},", self.moves_applied);
        out.push_str("  \"stages\": [\n");
        for (i, r) in self.stage_rates.iter().enumerate() {
            let comma = if i + 1 < self.stage_rates.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"replication\": {}, \
                 \"records_per_sec\": {:.1}, \"busy_ns\": {} }}{comma}",
                r.name, r.replication, r.records_per_sec, r.busy_ns
            );
        }
        out.push_str("  ],\n  \"node_cpu_ns\": {\n");
        for (i, (n, ns)) in self.node_cpu_ns.iter().enumerate() {
            let comma = if i + 1 < self.node_cpu_ns.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{n}\": {ns}{comma}");
        }
        out.push_str("  },\n  \"assignments\": {\n");
        for (i, (stage, nodes)) in self.assignments.iter().enumerate() {
            let comma = if i + 1 < self.assignments.len() { "," } else { "" };
            let list = nodes
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "    \"{stage}\": [{list}]{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PlanEdge, StageSpec};
    use crate::search::plan;
    use lmas_core::cost::Work;
    use lmas_core::functor::FunctorKind;

    #[test]
    fn report_json_is_well_formed_and_stable() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new(
                    "src",
                    2,
                    FunctorKind::AsuEligible { max_state_bytes: 0 },
                )
                .with_source(128 * 10_000)
                .with_work(Work::moves(1), 10_000)
                .pinned_per_asu(2),
                StageSpec::new("sink", 1, FunctorKind::HostOnly)
                    .with_work(Work::compares(4), 10_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(1, 2, 8.0);
        let out = plan(&spec, &shape).expect("plans");
        let json = out.report.render_json();
        for needle in [
            "\"predicted_makespan_ns\"",
            "\"bottleneck\"",
            "\"candidates\"",
            "\"stages\"",
            "\"assignments\"",
            "\"src\": [\"asu0\", \"asu1\"]",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert_eq!(json, out.report.render_json());
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }
}
