//! Planner inputs: the cluster shape and the per-stage work declaration.
//!
//! The paper's premise (Section 3.3) is that functors declare *bounded
//! cost per unit of I/O* so the system — not the application — can
//! decide placement and replication. [`PlanSpec`] is that declaration in
//! planner form: a stage list mirroring a `FlowGraph`, annotated with
//! per-record [`Work`], record volumes, packetization, and flush
//! behavior; [`ClusterShape`] is the machine model (H hosts, D ASUs,
//! CPU ratio c, disk/link rates) the estimator prices it against.

use lmas_core::adapt::PipelineModel;
use lmas_core::cost::{CostModel, Work};
use lmas_core::functor::FunctorKind;
use lmas_core::placement::{NodeId, PlacementError, StageId};
use std::fmt;

/// The cluster model the planner optimizes against. Mirrors the
/// emulator's `ClusterConfig` (era-2002 defaults) without depending on
/// the emulator crate.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    /// Number of dedicated hosts, H.
    pub hosts: usize,
    /// Number of active storage units, D.
    pub asus: usize,
    /// Host-to-ASU CPU speed ratio c (an ASU runs at 1/c).
    pub cpu_ratio_c: f64,
    /// Work → time conversion.
    pub cost: CostModel,
    /// Aggregate disk bandwidth per ASU brick, bytes/sec.
    pub asu_disk_rate: f64,
    /// Disk bandwidth of a host's private disk, bytes/sec.
    pub host_disk_rate: f64,
    /// Host↔ASU link bandwidth, bytes/sec.
    pub link_rate: f64,
    /// One-way link latency in nanoseconds.
    pub link_latency_ns: f64,
    /// Memory available for functor state on an ASU, bytes.
    pub asu_mem: usize,
}

impl ClusterShape {
    /// The paper-era cluster: gigabit links at 50 µs, 100 MB/s disk
    /// bricks, 32 MiB of ASU functor memory — matching the emulator's
    /// `ClusterConfig::era_2002(hosts, asus, c)`.
    pub fn era_2002(hosts: usize, asus: usize, cpu_ratio_c: f64) -> ClusterShape {
        ClusterShape {
            hosts,
            asus,
            cpu_ratio_c,
            cost: CostModel::p3_750mhz(),
            asu_disk_rate: 100.0e6,
            host_disk_rate: 100.0e6,
            link_rate: 1.0e9,
            link_latency_ns: 50_000.0,
            asu_mem: 32 << 20,
        }
    }

    /// Override the per-ASU aggregate disk rate (e.g. multi-disk bricks).
    pub fn with_asu_disk_rate(mut self, rate: f64) -> ClusterShape {
        self.asu_disk_rate = rate;
        self
    }

    /// All nodes in planner order: hosts first, then ASUs.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.hosts)
            .map(NodeId::Host)
            .chain((0..self.asus).map(NodeId::Asu))
            .collect()
    }

    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.hosts + self.asus
    }

    /// Relative CPU speed of `node` (host = 1.0).
    pub fn node_speed(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Host(_) => 1.0,
            NodeId::Asu(_) => 1.0 / self.cpu_ratio_c,
        }
    }

    /// Disk bandwidth local to `node`, bytes/sec.
    pub fn disk_rate(&self, node: NodeId) -> f64 {
        match node {
            NodeId::Host(_) => self.host_disk_rate,
            NodeId::Asu(_) => self.asu_disk_rate,
        }
    }

    /// Bridge to the phase-rate model of `lmas-core::adapt` for knob
    /// picking (α, γ-split) at a given record size.
    pub fn pipeline_model(&self, record_size: usize) -> PipelineModel {
        PipelineModel {
            cost: self.cost,
            hosts: self.hosts,
            asus: self.asus,
            cpu_ratio_c: self.cpu_ratio_c,
            disk_rate: self.asu_disk_rate,
            link_rate: self.link_rate,
            record_size,
        }
    }
}

/// One stage of the dataflow, annotated with the declared work the
/// planner prices.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage name (diagnostics and reports).
    pub name: String,
    /// Number of parallel instances.
    pub replication: usize,
    /// Placement contract of the functor.
    pub kind: FunctorKind,
    /// True when the stage reads its input from local disk.
    pub is_source: bool,
    /// Declared CPU work per record passing one instance.
    pub per_record: Work,
    /// Total records entering the stage (across all instances).
    pub records: u64,
    /// Bytes the stage reads from disk (sources; split across instances).
    pub bytes_in: u64,
    /// Bytes the stage writes to disk (sinks; split across instances).
    pub bytes_out: u64,
    /// Records per packet on the stage's inbound edge (pipelining grain).
    pub packet_records: u64,
    /// Extra work each instance performs at flush (end of stream).
    pub flush_per_instance: Work,
    /// True when the stage emits only at flush (a barrier: downstream
    /// cannot overlap with it, e.g. a full fan-in merge).
    pub blocking: bool,
    /// Per-instance placement pins (data residency); empty = all free.
    pub pinned: Vec<Option<NodeId>>,
    /// Coded-shuffle broadcast-group size on this stage's *inbound*
    /// edge (1 = uncoded). Senders pay an `(r-1)`-way replicated disk
    /// write per remote record and ship 1/r of the shuffle bytes.
    pub coded_group: usize,
}

impl StageSpec {
    /// A free (unpinned), non-source stage with no declared work.
    pub fn new(name: &str, replication: usize, kind: FunctorKind) -> StageSpec {
        StageSpec {
            name: name.to_string(),
            replication,
            kind,
            is_source: false,
            per_record: Work::ZERO,
            records: 0,
            bytes_in: 0,
            bytes_out: 0,
            packet_records: 1024,
            flush_per_instance: Work::ZERO,
            blocking: false,
            pinned: Vec::new(),
            coded_group: 1,
        }
    }

    /// Declare per-record work and total records.
    pub fn with_work(mut self, per_record: Work, records: u64) -> StageSpec {
        self.per_record = per_record;
        self.records = records;
        self
    }

    /// Mark as a disk source reading `bytes_in` in total.
    pub fn with_source(mut self, bytes_in: u64) -> StageSpec {
        self.is_source = true;
        self.bytes_in = bytes_in;
        self
    }

    /// Declare disk output (sinks).
    pub fn with_sink_bytes(mut self, bytes_out: u64) -> StageSpec {
        self.bytes_out = bytes_out;
        self
    }

    /// Set the inbound packet grain.
    pub fn with_packet_records(mut self, packet_records: u64) -> StageSpec {
        self.packet_records = packet_records.max(1);
        self
    }

    /// Declare flush work and whether the stage is a barrier.
    pub fn with_flush(mut self, flush: Work, blocking: bool) -> StageSpec {
        self.flush_per_instance = flush;
        self.blocking = blocking;
        self
    }

    /// Pin every instance: `pins[i]` fixes instance `i` when `Some`.
    pub fn with_pins(mut self, pins: Vec<Option<NodeId>>) -> StageSpec {
        self.pinned = pins;
        self
    }

    /// Set the coded broadcast-group size of the stage's inbound edge.
    pub fn with_coded(mut self, coded_group: usize) -> StageSpec {
        self.coded_group = coded_group.max(1);
        self
    }

    /// Pin instance `i` to `Asu(i % asus)` — the data-residency pattern
    /// of distribute/collect stages.
    pub fn pinned_per_asu(mut self, asus: usize) -> StageSpec {
        self.pinned = (0..self.replication)
            .map(|i| Some(NodeId::Asu(i % asus)))
            .collect();
        self
    }
}

/// A dataflow edge between stage indices of a [`PlanSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Producing stage index.
    pub from: usize,
    /// Consuming stage index.
    pub to: usize,
}

/// The full planner input: stages, edges, record size.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// Fixed record size in bytes.
    pub record_bytes: u64,
    /// Stages, indexed by the edge endpoints.
    pub stages: Vec<StageSpec>,
    /// Dataflow edges.
    pub edges: Vec<PlanEdge>,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The spec has no stages.
    EmptySpec,
    /// A stage declared zero instances.
    ZeroReplication {
        /// Offending stage index.
        stage: usize,
    },
    /// `pinned` is non-empty but does not cover every instance, or pins
    /// an instance onto a node outside the cluster.
    BadPin {
        /// Offending stage index.
        stage: usize,
    },
    /// An edge references a stage index out of range.
    BadEdge {
        /// Offending edge position.
        edge: usize,
    },
    /// The stage graph has a cycle.
    Cycle,
    /// No node can legally run an instance (e.g. a host-only stage on a
    /// cluster with zero hosts).
    NoFeasibleNode {
        /// Offending stage index.
        stage: usize,
    },
    /// Graph hints do not cover every stage.
    HintMismatch {
        /// Stages in the graph.
        expected: usize,
        /// Hints provided.
        got: usize,
    },
    /// A residual-capacity view does not cover the cluster's nodes.
    ResidualShape {
        /// Nodes in the cluster (hosts + ASUs).
        expected: usize,
        /// Nodes the residual view covers.
        got: usize,
    },
    /// The final placement failed `Placement::validate` — a planner bug
    /// surfaced as a typed error rather than an invalid artifact.
    Invalid(PlacementError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptySpec => write!(f, "plan spec has no stages"),
            PlanError::ZeroReplication { stage } => {
                write!(f, "stage {stage} declares zero instances")
            }
            PlanError::BadPin { stage } => {
                write!(f, "stage {stage} has malformed placement pins")
            }
            PlanError::BadEdge { edge } => {
                write!(f, "edge {edge} references a stage out of range")
            }
            PlanError::Cycle => write!(f, "stage graph has a cycle"),
            PlanError::NoFeasibleNode { stage } => {
                write!(f, "no node can run stage {stage}")
            }
            PlanError::HintMismatch { expected, got } => write!(
                f,
                "graph has {expected} stages but {got} hints were given"
            ),
            PlanError::ResidualShape { expected, got } => write!(
                f,
                "cluster has {expected} nodes but the residual view covers {got}"
            ),
            PlanError::Invalid(e) => write!(f, "planned placement invalid: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl PlanSpec {
    /// Validate the spec and return a deterministic topological order of
    /// stage indices (Kahn's algorithm, ready stages taken in index
    /// order).
    pub fn topo_order(&self) -> Result<Vec<usize>, PlanError> {
        if self.stages.is_empty() {
            return Err(PlanError::EmptySpec);
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.replication == 0 {
                return Err(PlanError::ZeroReplication { stage: i });
            }
            if !s.pinned.is_empty() && s.pinned.len() != s.replication {
                return Err(PlanError::BadPin { stage: i });
            }
        }
        let n = self.stages.len();
        for (e, edge) in self.edges.iter().enumerate() {
            if edge.from >= n || edge.to >= n {
                return Err(PlanError::BadEdge { edge: e });
            }
        }
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(&s) = ready.first() {
            ready.remove(0);
            order.push(s);
            for e in self.edges.iter().filter(|e| e.from == s) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    // Keep the ready list sorted so the order is a pure
                    // function of the spec.
                    let pos = ready
                        .iter()
                        .position(|&r| r > e.to)
                        .unwrap_or(ready.len());
                    ready.insert(pos, e.to);
                }
            }
        }
        if order.len() != n {
            return Err(PlanError::Cycle);
        }
        Ok(order)
    }

    /// In-edges of stage `t`.
    pub fn in_edges(&self, t: usize) -> impl Iterator<Item = &PlanEdge> {
        self.edges.iter().filter(move |e| e.to == t)
    }

    /// True when `s` has no out-edge (a sink).
    pub fn is_sink(&self, s: usize) -> bool {
        !self.edges.iter().any(|e| e.from == s)
    }

    /// Rows for `Placement::validate`.
    pub fn placement_rows(&self) -> Vec<(StageId, usize, FunctorKind)> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| (StageId(i), s.replication, s.kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nstages: usize, edges: &[(usize, usize)]) -> PlanSpec {
        PlanSpec {
            record_bytes: 128,
            stages: (0..nstages)
                .map(|i| {
                    StageSpec::new(
                        &format!("s{i}"),
                        1,
                        FunctorKind::AsuEligible { max_state_bytes: 0 },
                    )
                })
                .collect(),
            edges: edges
                .iter()
                .map(|&(from, to)| PlanEdge { from, to })
                .collect(),
        }
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let s = spec(4, &[(0, 2), (1, 2), (2, 3)]);
        assert_eq!(s.topo_order().unwrap(), vec![0, 1, 2, 3]);
        // Diamond: both orders of the middle pair are topologically
        // valid; index order breaks the tie.
        let d = spec(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(d.topo_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn topo_rejects_cycles_and_bad_specs() {
        assert_eq!(
            spec(0, &[]).topo_order(),
            Err(PlanError::EmptySpec)
        );
        assert_eq!(
            spec(2, &[(0, 1), (1, 0)]).topo_order(),
            Err(PlanError::Cycle)
        );
        assert_eq!(
            spec(2, &[(0, 5)]).topo_order(),
            Err(PlanError::BadEdge { edge: 0 })
        );
        let mut z = spec(1, &[]);
        z.stages[0].replication = 0;
        assert_eq!(
            z.topo_order(),
            Err(PlanError::ZeroReplication { stage: 0 })
        );
        let mut p = spec(1, &[]);
        p.stages[0].pinned = vec![None, None];
        assert_eq!(p.topo_order(), Err(PlanError::BadPin { stage: 0 }));
    }

    #[test]
    fn shape_rates_and_speeds() {
        let shape = ClusterShape::era_2002(2, 4, 8.0);
        assert_eq!(shape.total_nodes(), 6);
        assert_eq!(shape.node_speed(NodeId::Host(0)), 1.0);
        assert_eq!(shape.node_speed(NodeId::Asu(1)), 0.125);
        assert_eq!(shape.nodes()[0], NodeId::Host(0));
        assert_eq!(shape.nodes()[2], NodeId::Asu(0));
        let m = shape.pipeline_model(128);
        assert_eq!(m.hosts, 2);
        assert_eq!(m.asus, 4);
    }
}
