//! # lmas-plan — the load-management planner
//!
//! The paper's thesis is that declared functor costs let *the system*
//! decide placement, replication, and routing (Sections 3.3, 8). This
//! crate is that decision-maker, offline half: given a dataflow graph,
//! per-stage declared [`Work`](lmas_core::Work), functor memory
//! contracts, and the cluster model (H, D, c, disk/link rates), it
//!
//! 1. enumerates replication degrees ([`plan_best`] scores one
//!    candidate per degree),
//! 2. scores host/ASU assignments with an analytic bottleneck-makespan
//!    [`estimate`](estimate::estimate) (pipelined fill/busy/drain
//!    critical path, tightened by per-node CPU/disk/link bounds),
//! 3. refines greedily with deterministic local search (migrate and
//!    swap moves, first improvement, no RNG), and
//! 4. emits a validated [`Placement`](lmas_core::Placement) plus a
//!    machine-readable [`PlanReport`].
//!
//! The *runtime* half — the feedback balancer that re-weights replica
//! routing from observed queue depths — lives in the emulator
//! (`lmas-emulator::balance`), consuming the
//! [`Router::pick_routed`](lmas_core::Router::pick_routed) weight
//! channel this planner's placements are scored against.
//!
//! Entry points: [`AutoPlace::auto`] (`Placement::auto(...)`) for graph
//! + hints, or [`plan`]/[`plan_best`] on an explicit [`PlanSpec`].

#![warn(missing_docs)]

pub mod auto;
pub mod estimate;
pub mod model;
pub mod report;
pub mod residual;
pub mod search;

pub use auto::{spec_from_graph, AutoPlace, GraphHints, StageHint};
pub use estimate::{estimate, estimate_residual, Bottleneck, Estimate, StageResource};
pub use model::{ClusterShape, PlanEdge, PlanError, PlanSpec, StageSpec};
pub use report::{CodedPoint, PlanReport, StageBinding, StageRate};
pub use residual::ResidualCapacity;
pub use search::{plan, plan_best, plan_best_residual, plan_residual, PlanOutcome};
