//! `Placement::auto(...)` — plan a placement straight from a
//! `FlowGraph`.
//!
//! The graph already declares structure (stages, replication, edges,
//! functor kinds, sources); what it cannot know is *volume* — how many
//! records will flow, at what per-record cost, with which instances
//! pinned to resident data. [`GraphHints`] carries exactly that
//! per-stage annotation; [`AutoPlace::auto`] fuses graph + hints into a
//! [`PlanSpec`](crate::model::PlanSpec), runs the planner, and returns
//! a validated placement with its report.

use crate::model::{PlanEdge, PlanError, PlanSpec, StageSpec};
use crate::search::{plan, PlanOutcome};
use crate::ClusterShape;
use lmas_core::cost::Work;
use lmas_core::graph::FlowGraph;
use lmas_core::placement::{NodeId, Placement};
use lmas_core::record::Record;

/// Volume annotation for one stage (parallel to `FlowGraph::stages()`).
#[derive(Debug, Clone, Default)]
pub struct StageHint {
    /// CPU work per record through one instance.
    pub per_record: Work,
    /// Total records entering the stage.
    pub records: u64,
    /// Bytes read from disk (sources).
    pub bytes_in: u64,
    /// Bytes written to disk (sinks).
    pub bytes_out: u64,
    /// Records per inbound packet.
    pub packet_records: u64,
    /// Per-instance flush work.
    pub flush_per_instance: Work,
    /// True when the stage emits only at flush.
    pub blocking: bool,
    /// Data-residency pins; empty = planner's choice.
    pub pinned: Vec<Option<NodeId>>,
}

impl StageHint {
    /// A hint for a streaming stage of `records` at `per_record` each.
    pub fn streaming(per_record: Work, records: u64) -> StageHint {
        StageHint {
            per_record,
            records,
            packet_records: 1024,
            ..StageHint::default()
        }
    }

    /// Mark as a disk source.
    pub fn source(mut self, bytes_in: u64) -> StageHint {
        self.bytes_in = bytes_in;
        self
    }

    /// Mark disk output.
    pub fn sink(mut self, bytes_out: u64) -> StageHint {
        self.bytes_out = bytes_out;
        self
    }

    /// Set the packet grain.
    pub fn packets_of(mut self, records: u64) -> StageHint {
        self.packet_records = records.max(1);
        self
    }

    /// Declare flush work / barrier behavior.
    pub fn flushing(mut self, flush: Work, blocking: bool) -> StageHint {
        self.flush_per_instance = flush;
        self.blocking = blocking;
        self
    }

    /// Pin instance `i` to `Asu(i % asus)`.
    pub fn per_asu(mut self, replication: usize, asus: usize) -> StageHint {
        self.pinned = (0..replication)
            .map(|i| Some(NodeId::Asu(i % asus)))
            .collect();
        self
    }

    /// Pin every instance explicitly.
    pub fn pins(mut self, pins: Vec<Option<NodeId>>) -> StageHint {
        self.pinned = pins;
        self
    }
}

/// Per-stage volume hints for a whole graph, in stage order.
#[derive(Debug, Clone)]
pub struct GraphHints {
    /// Record size in bytes (usually `R::SIZE`).
    pub record_bytes: u64,
    /// One hint per graph stage, in `StageId` order.
    pub stages: Vec<StageHint>,
}

impl GraphHints {
    /// Hints sized for records of `record_bytes`.
    pub fn new(record_bytes: u64) -> GraphHints {
        GraphHints {
            record_bytes,
            stages: Vec::new(),
        }
    }

    /// Append the next stage's hint (call once per stage, in order).
    pub fn stage(mut self, hint: StageHint) -> GraphHints {
        self.stages.push(hint);
        self
    }
}

/// Build a [`PlanSpec`] from a graph and its volume hints.
pub fn spec_from_graph<R: Record>(
    graph: &FlowGraph<R>,
    hints: &GraphHints,
) -> Result<PlanSpec, PlanError> {
    let stages = graph.stages();
    if hints.stages.len() != stages.len() {
        return Err(PlanError::HintMismatch {
            expected: stages.len(),
            got: hints.stages.len(),
        });
    }
    let specs = stages
        .iter()
        .enumerate()
        .zip(&hints.stages)
        .map(|((i, st), h)| StageSpec {
            name: st.name.clone(),
            replication: st.replication,
            kind: st.kind,
            is_source: st.is_source,
            per_record: h.per_record,
            records: h.records,
            bytes_in: h.bytes_in,
            bytes_out: h.bytes_out,
            packet_records: h.packet_records.max(1),
            flush_per_instance: h.flush_per_instance,
            blocking: h.blocking,
            pinned: h.pinned.clone(),
            // The coded broadcast-group size rides the graph's inbound
            // edge; the plan model keys it on the receiving stage.
            coded_group: graph
                .edges()
                .iter()
                .find(|e| e.to.0 == i)
                .map(|e| e.coded_group)
                .unwrap_or(1),
        })
        .collect();
    let edges = graph
        .edges()
        .iter()
        .map(|e| PlanEdge {
            from: e.from.0,
            to: e.to.0,
        })
        .collect();
    Ok(PlanSpec {
        record_bytes: hints.record_bytes,
        stages: specs,
        edges,
    })
}

/// Extension trait putting the planner behind `Placement::auto(...)`.
pub trait AutoPlace {
    /// Plan a placement for `graph` on `shape` using `hints`, returning
    /// the placement together with the plan report.
    fn auto<R: Record>(
        graph: &FlowGraph<R>,
        hints: &GraphHints,
        shape: &ClusterShape,
    ) -> Result<PlanOutcome, PlanError>;
}

impl AutoPlace for Placement {
    fn auto<R: Record>(
        graph: &FlowGraph<R>,
        hints: &GraphHints,
        shape: &ClusterShape,
    ) -> Result<PlanOutcome, PlanError> {
        let spec = spec_from_graph(graph, hints)?;
        plan(&spec, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmas_core::container::Packet;
    use lmas_core::functor::{Emit, Functor, FunctorKind};
    use lmas_core::graph::EdgeKind;
    use lmas_core::record::Rec128;
    use lmas_core::routing::RoutingPolicy;

    struct Noop(&'static str);
    impl Functor<Rec128> for Noop {
        fn name(&self) -> String {
            self.0.to_string()
        }
        fn kind(&self) -> FunctorKind {
            FunctorKind::AsuEligible { max_state_bytes: 0 }
        }
        fn process(&mut self, input: Packet<Rec128>, out: &mut Emit<Rec128>) {
            out.push0(input);
        }
        fn flush(&mut self, _out: &mut Emit<Rec128>) {}
        fn cost(&self, _input: &Packet<Rec128>) -> Work {
            Work::ZERO
        }
    }

    fn two_stage_graph() -> FlowGraph<Rec128> {
        let mut g = FlowGraph::new();
        let a = g.add_source_stage(2, |_| Box::new(Noop("scan")));
        let b = g.add_stage(2, |_| Box::new(Noop("crunch")));
        g.connect(a, b, RoutingPolicy::RoundRobin, EdgeKind::Set)
            .expect("edge connects");
        g
    }

    #[test]
    fn auto_produces_valid_placement_with_report() {
        let g = two_stage_graph();
        let hints = GraphHints::new(128)
            .stage(
                StageHint::streaming(Work::moves(1), 50_000)
                    .source(128 * 50_000)
                    .per_asu(2, 2),
            )
            .stage(StageHint::streaming(
                Work::compares(16) + Work::moves(1),
                50_000,
            ));
        let shape = ClusterShape::era_2002(1, 2, 8.0);
        let out =
            Placement::auto(&g, &hints, &shape).expect("auto-placement");
        out.placement
            .validate(&g.placement_rows(), shape.asu_mem)
            .expect("planner output validates");
        assert!(out.report.predicted_makespan_ns > 0);
        assert_eq!(out.report.assignments.len(), 2);
    }

    #[test]
    fn hint_count_mismatch_is_typed() {
        let g = two_stage_graph();
        let hints = GraphHints::new(128)
            .stage(StageHint::streaming(Work::ZERO, 1));
        let shape = ClusterShape::era_2002(1, 2, 8.0);
        assert_eq!(
            Placement::auto(&g, &hints, &shape).unwrap_err(),
            PlanError::HintMismatch {
                expected: 2,
                got: 1
            }
        );
    }
}
