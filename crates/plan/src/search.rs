//! Placement search: deterministic greedy construction plus
//! first-improvement local search over the analytic estimator.
//!
//! The search space is the assignment of every `(stage, instance)` to a
//! node, subject to pins (data residency) and the functor's placement
//! contract. Moves are *migrate* (one instance to another feasible
//! node) and *swap* (exchange the nodes of two instances of different
//! stages); *re-replicate* is handled one level up by
//! [`plan_best`](crate::search::plan_best), which scores one fully
//! planned candidate per replication degree. The search has no RNG:
//! same spec + shape → byte-identical placement and report.

use crate::estimate::{estimate_residual, Estimate};
use crate::model::{ClusterShape, PlanError, PlanSpec};
use crate::report::PlanReport;
use crate::residual::ResidualCapacity;
use lmas_core::placement::{NodeId, Placement, StageId};

/// A finished plan: the validated placement plus its report.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The assignment, ready for the emulator.
    pub placement: Placement,
    /// Machine-readable account of the decision.
    pub report: PlanReport,
    /// Raw per-stage, per-instance node assignment.
    pub assignment: Vec<Vec<NodeId>>,
    /// The estimator's verdict on the final assignment.
    pub estimate: Estimate,
}

/// Search knobs (fixed defaults keep runs identical across sessions).
const MAX_ROUNDS: usize = 8;
const MAX_MOVES: usize = 512;
/// Improvement threshold in nanoseconds: moves must beat the incumbent
/// by a full nanosecond to be taken, so f64 dust cannot flip decisions.
const EPS_NS: f64 = 1.0;

/// Secondary objective: sum of squared per-node CPU demand. The
/// makespan is a *max* over node bounds, so unloading one of several
/// equally saturated nodes leaves it flat — a plateau first-improvement
/// search cannot cross (moving each of four overloaded instances helps
/// only once all four have moved). Accepting makespan-neutral moves
/// that strictly reduce this imbalance walks the search off such
/// plateaus deterministically.
fn imbalance(e: &Estimate) -> f64 {
    e.node_cpu_ns.iter().map(|(_, c)| c * c).sum()
}

/// Feasible nodes for a stage, in planner order (hosts, then ASUs).
fn candidates(
    spec: &PlanSpec,
    shape: &ClusterShape,
    s: usize,
) -> Vec<NodeId> {
    let st = &spec.stages[s];
    if st.kind.asu_placeable(shape.asu_mem) {
        shape.nodes()
    } else {
        (0..shape.hosts).map(NodeId::Host).collect()
    }
}

/// Plan a single spec: seed an assignment, refine it, validate it.
pub fn plan(
    spec: &PlanSpec,
    shape: &ClusterShape,
) -> Result<PlanOutcome, PlanError> {
    plan_residual(spec, shape, &ResidualCapacity::full(shape.total_nodes()))
}

/// [`plan`], but scored against the residual capacity of a cluster
/// with other jobs running (see
/// [`estimate_residual`](crate::estimate::estimate_residual)): the
/// search places this job *around* the occupied nodes. A
/// [`ResidualCapacity::full`] view reproduces [`plan`] bit for bit.
pub fn plan_residual(
    spec: &PlanSpec,
    shape: &ClusterShape,
    res: &ResidualCapacity,
) -> Result<PlanOutcome, PlanError> {
    if res.len() != shape.total_nodes() {
        return Err(PlanError::ResidualShape {
            expected: shape.total_nodes(),
            got: res.len(),
        });
    }
    let estimate = |spec: &PlanSpec,
                    shape: &ClusterShape,
                    asg: &[Vec<NodeId>],
                    topo: &[usize]|
     -> Estimate { estimate_residual(spec, shape, asg, topo, res) };
    let topo = spec.topo_order()?;
    let nstages = spec.stages.len();

    // Feasibility and pin validation up front.
    let cands: Vec<Vec<NodeId>> =
        (0..nstages).map(|s| candidates(spec, shape, s)).collect();
    for (s, st) in spec.stages.iter().enumerate() {
        if cands[s].is_empty() {
            return Err(PlanError::NoFeasibleNode { stage: s });
        }
        for pin in st.pinned.iter().flatten() {
            let in_cluster = match *pin {
                NodeId::Host(i) => i < shape.hosts,
                NodeId::Asu(i) => i < shape.asus,
            };
            if !in_cluster || (pin.is_asu() && !st.kind.asu_placeable(shape.asu_mem))
            {
                return Err(PlanError::BadPin { stage: s });
            }
        }
    }

    // Greedy seed: stages in topo order, instances dealt round-robin
    // across the feasible nodes. Pins win outright.
    let mut asg: Vec<Vec<NodeId>> = vec![Vec::new(); nstages];
    for &s in &topo {
        let st = &spec.stages[s];
        asg[s] = (0..st.replication)
            .map(|i| {
                st.pinned
                    .get(i)
                    .copied()
                    .flatten()
                    .unwrap_or(cands[s][i % cands[s].len()])
            })
            .collect();
    }

    // First-improvement local search: migrate, then swap, to fixpoint.
    // A move is taken when it beats the incumbent makespan, or holds it
    // while strictly evening out per-node CPU demand (plateau escape).
    let mut best = estimate(spec, shape, &asg, &topo);
    let mut best_imb = imbalance(&best);
    let mut moves_applied = 0usize;
    let pinned = |s: usize, i: usize| -> bool {
        spec.stages[s].pinned.get(i).copied().flatten().is_some()
    };
    let accepts = |e: &Estimate, best: &Estimate, best_imb: f64| -> bool {
        e.makespan_ns < best.makespan_ns - EPS_NS
            || (e.makespan_ns < best.makespan_ns + EPS_NS
                && imbalance(e) < best_imb - 1.0)
    };
    'search: for _round in 0..MAX_ROUNDS {
        let mut improved = false;
        // Migrate: every unpinned instance tries every other node.
        for s in 0..nstages {
            for i in 0..spec.stages[s].replication {
                if pinned(s, i) {
                    continue;
                }
                let cur = asg[s][i];
                for &cand in &cands[s] {
                    if cand == cur {
                        continue;
                    }
                    asg[s][i] = cand;
                    let e = estimate(spec, shape, &asg, &topo);
                    if accepts(&e, &best, best_imb) {
                        best_imb = imbalance(&e);
                        best = e;
                        improved = true;
                        moves_applied += 1;
                        if moves_applied >= MAX_MOVES {
                            break 'search;
                        }
                        break; // keep this node, rescan later
                    }
                    asg[s][i] = cur;
                }
            }
        }
        // Swap: exchange nodes across stage pairs (useful when both
        // stages are at their per-stage optimum but contend on a node).
        for s in 0..nstages {
            for t in (s + 1)..nstages {
                for i in 0..spec.stages[s].replication {
                    for j in 0..spec.stages[t].replication {
                        if pinned(s, i) || pinned(t, j) {
                            continue;
                        }
                        let (a, b) = (asg[s][i], asg[t][j]);
                        if a == b
                            || !cands[s].contains(&b)
                            || !cands[t].contains(&a)
                        {
                            continue;
                        }
                        asg[s][i] = b;
                        asg[t][j] = a;
                        let e = estimate(spec, shape, &asg, &topo);
                        if accepts(&e, &best, best_imb) {
                            best_imb = imbalance(&e);
                            best = e;
                            improved = true;
                            moves_applied += 1;
                            if moves_applied >= MAX_MOVES {
                                break 'search;
                            }
                        } else {
                            asg[s][i] = a;
                            asg[t][j] = b;
                        }
                    }
                }
            }
        }
        // Rehome: a stage straddling slow nodes can sit behind a
        // multi-move barrier — migrating any single replica off a slow
        // node looks worse until the *last* one leaves, because the
        // slowest remaining replica still paces the whole stage while
        // the fast node's backlog grows. Jumping every unpinned replica
        // of the stage onto the host candidates (round-robin) crosses
        // that barrier as one compound move.
        for s in 0..nstages {
            let hosts: Vec<NodeId> = cands[s]
                .iter()
                .copied()
                .filter(|n| !n.is_asu())
                .collect();
            if hosts.is_empty() {
                continue;
            }
            let saved = asg[s].clone();
            let mut dealt = 0usize;
            for (i, slot) in asg[s].iter_mut().enumerate() {
                if !pinned(s, i) {
                    *slot = hosts[dealt % hosts.len()];
                    dealt += 1;
                }
            }
            if asg[s] == saved {
                continue;
            }
            let e = estimate(spec, shape, &asg, &topo);
            if accepts(&e, &best, best_imb) {
                best_imb = imbalance(&e);
                best = e;
                improved = true;
                moves_applied += 1;
                if moves_applied >= MAX_MOVES {
                    break 'search;
                }
            } else {
                asg[s] = saved;
            }
        }
        if !improved {
            break;
        }
    }

    // Canonical form: instances of one stage are symmetric in the model
    // (each carries the same share of records), so permuting a stage's
    // nodes across its unpinned instances estimates identically. Sort
    // each stage's unpinned nodes (hosts first, then ASUs, index
    // ascending) so tied layouts always materialize the same way —
    // e.g. k = 1 all-on-hosts becomes the paper's contiguous static
    // assignment instead of an artifact of move order. Re-score so the
    // report describes exactly the assignment handed out.
    for (s, stage_nodes) in asg.iter_mut().enumerate() {
        let unpinned: Vec<usize> = (0..spec.stages[s].replication)
            .filter(|&i| !pinned(s, i))
            .collect();
        let mut nodes: Vec<NodeId> =
            unpinned.iter().map(|&i| stage_nodes[i]).collect();
        nodes.sort_by_key(|n| match *n {
            NodeId::Host(i) => (0, i),
            NodeId::Asu(i) => (1, i),
        });
        for (&i, &n) in unpinned.iter().zip(&nodes) {
            stage_nodes[i] = n;
        }
    }
    best = estimate(spec, shape, &asg, &topo);

    // Materialize and self-check: an invalid placement is a typed
    // planner bug, never an artifact handed to the caller.
    let mut placement = Placement::new();
    for (s, nodes) in asg.iter().enumerate() {
        for (i, &node) in nodes.iter().enumerate() {
            placement.assign(StageId(s), i, node);
        }
    }
    placement
        .validate(&spec.placement_rows(), shape.asu_mem)
        .map_err(PlanError::Invalid)?;

    let report = PlanReport::from_plan(spec, shape, &asg, &best, moves_applied);
    Ok(PlanOutcome {
        placement,
        report,
        assignment: asg,
        estimate: best,
    })
}

/// Plan every candidate spec (e.g. one per replication degree) and keep
/// the one with the lowest predicted makespan; ties go to the earliest
/// candidate. Returns the winning index and its outcome, with the
/// report's candidate counters filled in.
pub fn plan_best(
    specs: &[PlanSpec],
    shape: &ClusterShape,
) -> Result<(usize, PlanOutcome), PlanError> {
    plan_best_residual(specs, shape, &ResidualCapacity::full(shape.total_nodes()))
}

/// [`plan_best`], scored against residual capacity (see
/// [`plan_residual`]); the winning candidate minimizes the predicted
/// makespan *on the shared cluster*.
pub fn plan_best_residual(
    specs: &[PlanSpec],
    shape: &ClusterShape,
    res: &ResidualCapacity,
) -> Result<(usize, PlanOutcome), PlanError> {
    if specs.is_empty() {
        return Err(PlanError::EmptySpec);
    }
    let mut winner: Option<(usize, PlanOutcome)> = None;
    let mut rejected = 0usize;
    let mut last_err = None;
    for (k, spec) in specs.iter().enumerate() {
        match plan_residual(spec, shape, res) {
            Ok(outcome) => {
                let better = winner
                    .as_ref()
                    .map(|(_, w)| {
                        outcome.estimate.makespan_ns
                            < w.estimate.makespan_ns - EPS_NS
                    })
                    .unwrap_or(true);
                if better {
                    if winner.is_some() {
                        rejected += 1;
                    }
                    winner = Some((k, outcome));
                } else {
                    rejected += 1;
                }
            }
            Err(e) => {
                rejected += 1;
                last_err = Some(e);
            }
        }
    }
    match winner {
        Some((k, mut outcome)) => {
            outcome.report.candidates_considered = specs.len();
            outcome.report.candidates_rejected = rejected;
            Ok((k, outcome))
        }
        None => Err(last_err.unwrap_or(PlanError::EmptySpec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{PlanEdge, StageSpec};
    use lmas_core::cost::Work;
    use lmas_core::functor::FunctorKind;

    fn eligible() -> FunctorKind {
        FunctorKind::AsuEligible { max_state_bytes: 0 }
    }

    /// A source on ASUs feeding a CPU-heavy stage: the planner must put
    /// the heavy stage on the fast hosts, not the 1/8-speed ASUs.
    #[test]
    fn planner_moves_heavy_work_to_hosts() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("scan", 2, eligible())
                    .with_source(128 * 400_000)
                    .with_work(Work::moves(1), 400_000)
                    .pinned_per_asu(2),
                StageSpec::new("crunch", 2, eligible())
                    .with_work(Work::compares(32) + Work::moves(1), 400_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(2, 2, 8.0);
        let out = plan(&spec, &shape).expect("plans");
        for i in 0..2 {
            let node = out.placement.node_of(StageId(1), i).unwrap();
            assert!(
                !node.is_asu(),
                "heavy stage instance {i} landed on {node}"
            );
        }
        // Pins survived.
        assert_eq!(
            out.placement.node_of(StageId(0), 1),
            Some(NodeId::Asu(1))
        );
    }

    /// Light relay work next to pinned data should stay on the ASU
    /// rather than drag every record across a slow link twice.
    #[test]
    fn planner_keeps_light_work_near_data() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("scan", 1, eligible())
                    .with_source(128 * 2_000_000)
                    .with_work(Work::ZERO, 2_000_000)
                    .pinned_per_asu(1),
                StageSpec::new("relay", 1, eligible())
                    .with_work(Work::ZERO, 2_000_000),
                StageSpec::new("store", 1, eligible())
                    .with_work(Work::ZERO, 2_000_000)
                    .with_sink_bytes(128 * 2_000_000)
                    .pinned_per_asu(1),
            ],
            edges: vec![
                PlanEdge { from: 0, to: 1 },
                PlanEdge { from: 1, to: 2 },
            ],
        };
        // A 10 MB/s link makes off-node routing ruinously expensive.
        let shape = ClusterShape {
            link_rate: 10.0e6,
            ..ClusterShape::era_2002(1, 1, 8.0)
        };
        let out = plan(&spec, &shape).expect("plans");
        let relay = out.placement.node_of(StageId(1), 0).unwrap();
        assert!(
            relay.is_asu(),
            "zero-cost relay left the data path: {relay}"
        );
    }

    #[test]
    fn host_only_stage_on_hostless_cluster_is_typed_error() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![StageSpec::new("m", 1, FunctorKind::HostOnly)],
            edges: vec![],
        };
        let shape = ClusterShape::era_2002(0, 2, 8.0);
        assert_eq!(
            plan(&spec, &shape).unwrap_err(),
            PlanError::NoFeasibleNode { stage: 0 }
        );
    }

    #[test]
    fn bad_pin_rejected() {
        // Pin onto an ASU that does not exist.
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![StageSpec::new("s", 1, eligible())
                .with_pins(vec![Some(NodeId::Asu(7))])],
            edges: vec![],
        };
        let shape = ClusterShape::era_2002(1, 2, 8.0);
        assert_eq!(
            plan(&spec, &shape).unwrap_err(),
            PlanError::BadPin { stage: 0 }
        );
        // Pin a host-only stage onto an ASU.
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![StageSpec::new("m", 1, FunctorKind::HostOnly)
                .with_pins(vec![Some(NodeId::Asu(0))])],
            edges: vec![],
        };
        assert_eq!(
            plan(&spec, &shape).unwrap_err(),
            PlanError::BadPin { stage: 0 }
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("a", 3, eligible())
                    .with_source(128 * 90_000)
                    .with_work(Work::compares(2), 90_000),
                StageSpec::new("b", 4, eligible())
                    .with_work(Work::compares(9) + Work::moves(1), 90_000),
                StageSpec::new("c", 2, eligible())
                    .with_work(Work::moves(1), 90_000)
                    .with_sink_bytes(128 * 90_000),
            ],
            edges: vec![
                PlanEdge { from: 0, to: 1 },
                PlanEdge { from: 1, to: 2 },
            ],
        };
        let shape = ClusterShape::era_2002(2, 3, 8.0);
        let a = plan(&spec, &shape).expect("plans");
        let b = plan(&spec, &shape).expect("plans");
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(
            a.estimate.makespan_ns.to_bits(),
            b.estimate.makespan_ns.to_bits()
        );
        assert_eq!(a.report.render_json(), b.report.render_json());
    }

    #[test]
    fn residual_search_places_around_loaded_hosts() {
        // Two identical hosts; host 0 is 90% busy with someone else's
        // job. The empty-cluster plan is free to use host 0; the
        // residual plan must put the heavy stage on host 1.
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("scan", 1, eligible())
                    .with_source(128 * 400_000)
                    .with_work(Work::moves(1), 400_000)
                    .pinned_per_asu(1),
                StageSpec::new("crunch", 1, FunctorKind::HostOnly)
                    .with_work(Work::compares(32) + Work::moves(1), 400_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(2, 1, 8.0);
        let mut res = ResidualCapacity::full(shape.total_nodes());
        res.occupy(0, 0.9, 0.9, 0.9);
        let out = plan_residual(&spec, &shape, &res).expect("plans");
        assert_eq!(
            out.placement.node_of(StageId(1), 0),
            Some(NodeId::Host(1)),
            "crunch must avoid the saturated host"
        );
        // Full residual reproduces plan() exactly.
        let a = plan(&spec, &shape).expect("plans");
        let b = plan_residual(&spec, &shape, &ResidualCapacity::full(shape.total_nodes()))
            .expect("plans");
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.estimate.makespan_ns.to_bits(), b.estimate.makespan_ns.to_bits());
    }

    #[test]
    fn residual_shape_mismatch_is_typed_error() {
        let spec = PlanSpec {
            record_bytes: 128,
            stages: vec![StageSpec::new("s", 1, eligible())],
            edges: vec![],
        };
        let shape = ClusterShape::era_2002(2, 2, 8.0);
        assert_eq!(
            plan_residual(&spec, &shape, &ResidualCapacity::full(3)).unwrap_err(),
            PlanError::ResidualShape { expected: 4, got: 3 }
        );
    }

    #[test]
    fn plan_best_prefers_lower_makespan_and_counts_rejects() {
        let mk = |repl: usize| PlanSpec {
            record_bytes: 128,
            stages: vec![
                StageSpec::new("src", 2, eligible())
                    .with_source(128 * 500_000)
                    .pinned_per_asu(2),
                StageSpec::new("work", repl, FunctorKind::HostOnly)
                    .with_work(Work::compares(24) + Work::moves(1), 500_000),
            ],
            edges: vec![PlanEdge { from: 0, to: 1 }],
        };
        let shape = ClusterShape::era_2002(4, 2, 8.0);
        let specs: Vec<PlanSpec> = (1..=4).map(mk).collect();
        let (k, out) = plan_best(&specs, &shape).expect("plans");
        assert!(k > 0, "more host parallelism must beat one instance");
        assert_eq!(out.report.candidates_considered, 4);
        assert!(out.report.candidates_rejected >= 1);
    }
}
