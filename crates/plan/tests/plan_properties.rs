//! Planner property tests: over randomized graph shapes, declared
//! workloads, and cluster geometries, the planner must (a) always emit
//! a placement passing `Placement::validate` — memory contracts
//! respected, no unassigned instance — or a typed error, never an
//! invalid artifact, and (b) be a pure function of its inputs: planning
//! the same spec twice is byte-identical.

use lmas_core::cost::Work;
use lmas_core::functor::FunctorKind;
use lmas_core::placement::NodeId;
use lmas_plan::{plan, ClusterShape, PlanEdge, PlanSpec, StageSpec};
use proptest::prelude::*;

/// Build a randomized linear pipeline spec from drawn parameters.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    nstages: usize,
    repls: &[usize],
    kinds: &[u8],
    compares: &[u64],
    records: u64,
    state_bytes: &[usize],
    pin_first_per_asu: bool,
    asus: usize,
) -> PlanSpec {
    let stages = (0..nstages)
        .map(|s| {
            let kind = match kinds[s] % 3 {
                0 => FunctorKind::AsuEligible {
                    max_state_bytes: state_bytes[s],
                },
                1 => FunctorKind::VerifiedKernel {
                    max_state_bytes: state_bytes[s],
                },
                _ => FunctorKind::HostOnly,
            };
            let mut spec = StageSpec::new(&format!("s{s}"), repls[s], kind)
                .with_work(
                    Work::compares(compares[s]) + Work::moves(1),
                    records,
                );
            if s == 0 {
                // Sources are ASU-eligible scans, optionally pinned to
                // their resident bricks.
                spec = StageSpec::new(
                    "scan",
                    repls[0],
                    FunctorKind::AsuEligible { max_state_bytes: 0 },
                )
                .with_work(Work::moves(1), records)
                .with_source(records * 128);
                if pin_first_per_asu {
                    spec = spec.pinned_per_asu(asus);
                }
            }
            if s + 1 == nstages {
                spec = spec.with_sink_bytes(records * 128);
            }
            spec
        })
        .collect();
    PlanSpec {
        record_bytes: 128,
        stages,
        edges: (1..nstages)
            .map(|s| PlanEdge {
                from: s - 1,
                to: s,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the graph and cluster shape, a successful plan always
    /// passes `Placement::validate` and covers every instance.
    #[test]
    fn planned_placements_always_validate(
        nstages in 2usize..5,
        hosts in 1usize..4,
        asus in 1usize..5,
        c in 2u32..12,
        records in 1_000u64..200_000,
        seed_bits in any::<u64>(),
        pin in any::<bool>(),
    ) {
        // Derive per-stage parameters deterministically from seed_bits
        // so the case is reproducible from the printed inputs.
        let mut x = seed_bits;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let repls: Vec<usize> = (0..nstages).map(|_| 1 + (next() % 6) as usize).collect();
        let kinds: Vec<u8> = (0..nstages).map(|_| next() as u8).collect();
        let compares: Vec<u64> = (0..nstages).map(|_| next() % 40).collect();
        let state: Vec<usize> = (0..nstages)
            .map(|_| if next() % 4 == 0 { 64 << 20 } else { (next() % 4096) as usize })
            .collect();
        let spec = build_spec(nstages, &repls, &kinds, &compares, records, &state, pin, asus);
        let shape = ClusterShape::era_2002(hosts, asus, c as f64);
        match plan(&spec, &shape) {
            Ok(out) => {
                out.placement
                    .validate(&spec.placement_rows(), shape.asu_mem)
                    .expect("planner emitted an invalid placement");
                for (s, st) in spec.stages.iter().enumerate() {
                    for i in 0..st.replication {
                        let node = out
                            .placement
                            .node_of(lmas_core::placement::StageId(s), i)
                            .expect("unassigned instance");
                        if let NodeId::Asu(_) = node {
                            prop_assert!(
                                st.kind.asu_placeable(shape.asu_mem),
                                "ineligible stage {s} landed on an ASU"
                            );
                        }
                    }
                }
                prop_assert!(out.report.predicted_makespan_ns > 0);
            }
            // Typed failure is acceptable (e.g. a host-only stage pinned
            // into an impossible corner); an invalid artifact is not.
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
        }
    }

    /// Planning is a pure function: same spec + shape twice gives
    /// byte-identical assignments, estimates, and report JSON.
    #[test]
    fn same_inputs_plan_byte_identically(
        nstages in 2usize..5,
        hosts in 1usize..4,
        asus in 1usize..5,
        c in 2u32..12,
        records in 1_000u64..200_000,
        seed_bits in any::<u64>(),
    ) {
        let mut x = seed_bits;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let repls: Vec<usize> = (0..nstages).map(|_| 1 + (next() % 6) as usize).collect();
        let kinds: Vec<u8> = (0..nstages).map(|_| next() as u8).collect();
        let compares: Vec<u64> = (0..nstages).map(|_| next() % 40).collect();
        let state: Vec<usize> = (0..nstages).map(|_| (next() % 4096) as usize).collect();
        let spec = build_spec(nstages, &repls, &kinds, &compares, records, &state, false, asus);
        let shape = ClusterShape::era_2002(hosts, asus, c as f64);
        let a = plan(&spec, &shape);
        let b = plan(&spec, &shape);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.assignment, b.assignment);
                prop_assert_eq!(
                    a.estimate.makespan_ns.to_bits(),
                    b.estimate.makespan_ns.to_bits()
                );
                prop_assert_eq!(a.report.render_json(), b.report.render_json());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}
