//! Emulator invariants under randomized pipelines: conservation of
//! records, causal makespans, and reproducibility.

use lmas_core::functor::lib::{MapFunctor, RelayFunctor};
use lmas_core::{
    generate_rec8, packetize, EdgeKind, FlowGraph, Functor, KeyDist, Placement, Rec8,
    RoutingPolicy, Work,
};
use lmas_emulator::{run_job, ClusterConfig, Job};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn burn(cost: u64) -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + 'static {
    move |_| {
        Box::new(MapFunctor::new("burn", Work::compares(cost), |r: Rec8| r))
            as Box<dyn Functor<Rec8>>
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the topology parameters, every record injected at the
    /// sources arrives at the sinks exactly once, and the makespan is at
    /// least each node's busy time.
    #[test]
    fn records_are_conserved(
        n in 100u64..3_000,
        hosts in 1usize..3,
        asus in 1usize..5,
        mid_repl in 1usize..5,
        cost in 0u64..64,
        packet in 1usize..256,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut cfg = ClusterConfig::era_2002(hosts, asus, 8.0);
        cfg.seed = seed;
        let policy = [
            RoutingPolicy::RoundRobin,
            RoutingPolicy::SimpleRandomization,
            RoutingPolicy::LoadAware,
        ][policy_idx];
        let data = generate_rec8(n, KeyDist::Uniform, seed);

        let mut g: FlowGraph<Rec8> = FlowGraph::new();
        let src = g.add_source_stage(asus, |_| {
            Box::new(RelayFunctor::new("scan")) as Box<dyn Functor<Rec8>>
        });
        let mid = g.add_stage(mid_repl, burn(cost));
        let sink = g.add_stage(1, |_| {
            Box::new(RelayFunctor::new("collect")) as Box<dyn Functor<Rec8>>
        });
        g.connect(src, mid, policy, EdgeKind::Set).unwrap();
        g.connect(mid, sink, RoutingPolicy::RoundRobin, EdgeKind::Set).unwrap();

        let mut placement = Placement::new();
        placement.spread_over_asus(src, asus, asus);
        placement.spread_over_hosts(mid, mid_repl, hosts);
        placement.spread_over_hosts(sink, 1, hosts);

        let mut inputs = BTreeMap::new();
        let share = (n as usize).div_ceil(asus);
        for (i, chunk) in data.chunks(share).enumerate() {
            inputs.insert((src.0, i), packetize(chunk.to_vec(), packet));
        }

        let report = run_job(&cfg, Job { graph: g, placement, inputs }).expect("runs");
        // Conservation: all n records reach the sink, each exactly once.
        let mut tags: Vec<u32> = report.sink_records().iter().map(|r| r.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..n as u32).collect::<Vec<u32>>());
        // Every stage saw all records exactly once.
        prop_assert_eq!(&report.stage_records_in, &vec![n, n, n]);
        // Causality: no node can be busy longer than the run.
        for node in &report.nodes {
            prop_assert!(node.cpu_busy.as_nanos() <= report.makespan.as_nanos());
            prop_assert!(node.mean_cpu_util <= 1.0 + 1e-9);
        }
        // Work accounting: the mid stage declared exactly n·cost compares.
        prop_assert_eq!(report.stage_work[1].1.compares, n * cost);
    }

    /// Doubling the per-record cost of the bottleneck stage cannot make
    /// the run faster.
    #[test]
    fn monotone_in_work(n in 200u64..2_000, cost in 1u64..64, seed in any::<u64>()) {
        let run = |c: u64| {
            let cfg = ClusterConfig::era_2002(1, 1, 8.0);
            let data = generate_rec8(n, KeyDist::Uniform, seed);
            let mut g: FlowGraph<Rec8> = FlowGraph::new();
            let src = g.add_source_stage(1, |_| {
                Box::new(RelayFunctor::new("scan")) as Box<dyn Functor<Rec8>>
            });
            let mid = g.add_stage(1, burn(c));
            g.connect(src, mid, RoutingPolicy::Static, EdgeKind::Set).unwrap();
            let mut placement = Placement::new();
            placement.spread_over_asus(src, 1, 1);
            placement.spread_over_hosts(mid, 1, 1);
            let mut inputs = BTreeMap::new();
            inputs.insert((src.0, 0usize), packetize(data, 128));
            run_job(&cfg, Job { graph: g, placement, inputs })
                .expect("runs")
                .makespan
        };
        prop_assert!(run(2 * cost) >= run(cost));
    }
}
