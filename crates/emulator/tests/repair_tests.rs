//! Background re-replication: end-to-end repair runs through the real
//! runtime — bandwidth-cap pacing, convergence to the replication
//! target, cancellation on timely recovery, and byte-identical
//! determinism across seeds and thread counts.

use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    packetize, EdgeKind, FlowGraph, Functor, NodeId, Placement, Rec8, RoutingPolicy, Work,
};
use lmas_emulator::{
    asu_index, run_job_with_faults, ClusterConfig, FaultSpec, Job, JobError, RepairSpec,
};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn relay_factory() -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + Sync + 'static {
    |_| Box::new(MapFunctor::new("relay", Work::compares(4), |r: Rec8| r))
}

type Inputs = BTreeMap<(usize, usize), Vec<lmas_core::Packet<Rec8>>>;

/// Source on host 0 → relay replicated across the ASUs → sink on the
/// last host: the foreground job repair traffic contends with.
fn fleet_job(hosts: usize, asus: usize, n: u32) -> (FlowGraph<Rec8>, Placement, Inputs) {
    let data: Vec<Rec8> = (0..n).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, relay_factory());
    let mid = g.add_stage(asus, relay_factory());
    let dst = g.add_stage(1, relay_factory());
    g.connect(src, mid, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .unwrap();
    g.connect(mid, dst, RoutingPolicy::Static, EdgeKind::Set)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Host(0));
    for i in 0..asus {
        placement.assign(mid, i, NodeId::Asu(i));
    }
    placement.assign(dst, 0, NodeId::Host(hosts - 1));
    let mut inputs = BTreeMap::new();
    inputs.insert((src.0, 0usize), packetize(data, 50));
    (g, placement, inputs)
}

const MIB: u64 = 1 << 20;

/// A crash with no recovery: the detector fires, every block the dead
/// ASU held is re-replicated onto survivors, and the final histogram is
/// back at the replication target with zero loss.
#[test]
fn crash_repairs_back_to_target_on_survivors() {
    let cfg = ClusterConfig::era_2002(2, 6, 8.0);
    let rs =
        RepairSpec::new(64, 2, MIB, 64.0 * MIB as f64).with_sampling(SimDuration::from_millis(20));
    let plan = FaultPlan::new().crash(asu_index(&cfg, 1), SimTime(2_000_000));
    let spec = FaultSpec::with_plan(plan).with_repair(rs);
    let (g, placement, inputs) = fleet_job(2, 6, 1_000);
    let report = run_job_with_faults(
        &cfg,
        &spec,
        Job {
            graph: g,
            placement,
            inputs,
        },
    )
    .unwrap();

    assert!(report.repair.enqueued > 0, "the crash triggered repairs");
    assert_eq!(report.repair.blocks_lost, 0, "r=2 survives one crash");
    assert_eq!(
        report.replica_hist,
        vec![0, 0, 64],
        "all blocks back at target"
    );
    assert_eq!(
        report.repair.bytes_repaired,
        report.repair.completed * MIB,
        "every credited repair moved one block"
    );
    // The dead ASU sourced nothing; survivors carried the traffic.
    assert_eq!(
        report.repair_src_bytes[1], 0,
        "no repair sourced from the dead node"
    );
    assert!(report.repair_src_bytes.iter().sum::<u64>() >= report.repair.completed * MIB);
    // Trajectory: sampled, starts at target, dips, returns.
    assert!(!report.repair_trajectory.is_empty(), "sampling was on");
    assert_eq!(report.repair_trajectory[0].hist, vec![0, 0, 64]);
    assert!(
        report.repair_trajectory.iter().any(|s| s.hist[1] > 0),
        "the degraded phase is visible in the trajectory"
    );
}

/// Restore mode + recovery inside the heartbeat timeout: the detector
/// never fires, the copies come back, and the repair layer stays quiet.
/// The same outage in destroy mode re-replicates at rejoin instead.
#[test]
fn timely_recovery_cancels_repair_restore_mode_and_rejoins_destroy_mode() {
    let cfg = ClusterConfig::era_2002(1, 4, 8.0);
    let t_crash = SimTime(1_000_000);
    let t_back = t_crash + SimDuration::from_millis(5); // < 15 ms timeout
    let run = |restore: bool| {
        let plan = FaultPlan::new()
            .crash(asu_index(&cfg, 2), t_crash)
            .recover(asu_index(&cfg, 2), t_back);
        let rs = RepairSpec::new(32, 2, MIB, 64.0 * MIB as f64).with_restore(restore);
        let spec = FaultSpec::with_plan(plan).with_repair(rs);
        let (g, placement, inputs) = fleet_job(1, 4, 500);
        run_job_with_faults(
            &cfg,
            &spec,
            Job {
                graph: g,
                placement,
                inputs,
            },
        )
        .unwrap()
    };
    let restored = run(true);
    assert_eq!(restored.fault.detections, 0, "recovered before the timeout");
    assert_eq!(
        restored.repair.enqueued, 0,
        "no detection, copies back: nothing to repair"
    );
    assert_eq!(restored.replica_hist, vec![0, 0, 32]);

    let destroyed = run(false);
    assert!(
        destroyed.repair.enqueued > 0,
        "destroy mode rejoins blank: the rejoin report triggers repairs"
    );
    assert_eq!(destroyed.replica_hist, vec![0, 0, 32], "and they converge");
    assert_eq!(destroyed.repair.blocks_lost, 0);
}

/// A repair spec that does not fit the cluster is a typed error.
#[test]
fn invalid_repair_spec_is_a_typed_error() {
    let cfg = ClusterConfig::era_2002(1, 2, 8.0);
    let plan = FaultPlan::new().crash(asu_index(&cfg, 0), SimTime(1_000_000));
    let spec =
        FaultSpec::with_plan(plan).with_repair(RepairSpec::new(16, 3, MIB, 64.0 * MIB as f64)); // r=3 > 2 ASUs
    let (g, placement, inputs) = fleet_job(1, 2, 100);
    let err = run_job_with_faults(
        &cfg,
        &spec,
        Job {
            graph: g,
            placement,
            inputs,
        },
    )
    .unwrap_err();
    assert!(matches!(err, JobError::RepairConfig(_)), "got {err}");
}

/// The same repair-enabled run is byte-identical sequentially and under
/// the partitioned kernel at 2 and 4 threads — and none of them fall
/// back ([`lmas_emulator::EmulationReport::par_fallback`] stays `None`).
#[test]
fn repair_runs_identically_across_thread_counts() {
    let base = ClusterConfig::era_2002(4, 8, 8.0);
    let run = |threads: usize| {
        let cfg = base.with_threads(threads);
        let plan = FaultPlan::poisson(
            0xFEED,
            base.hosts..base.hosts + base.asus,
            SimDuration::from_millis(40),
            SimDuration::from_millis(8),
            SimDuration::from_millis(120),
        );
        let rs = RepairSpec::new(96, 3, MIB / 4, 256.0 * MIB as f64)
            .with_sampling(SimDuration::from_millis(10));
        let spec = FaultSpec::with_plan(plan).with_repair(rs);
        let (g, placement, inputs) = fleet_job(4, 8, 2_000);
        run_job_with_faults(
            &cfg,
            &spec,
            Job {
                graph: g,
                placement,
                inputs,
            },
        )
        .unwrap()
    };
    let seq = run(1);
    assert!(
        seq.repair.enqueued > 0,
        "the sweep actually exercised repair"
    );
    for threads in [2usize, 4] {
        let par = run(threads);
        assert!(par.par.is_some(), "threads={threads} ran partitioned");
        assert_eq!(par.par_fallback, None, "no new fallback reason");
        assert_eq!(seq.makespan, par.makespan, "threads={threads}");
        assert_eq!(seq.dispatched, par.dispatched, "threads={threads}");
        assert_eq!(seq.repair, par.repair, "threads={threads}");
        assert_eq!(seq.replica_hist, par.replica_hist, "threads={threads}");
        assert_eq!(
            seq.repair_trajectory, par.repair_trajectory,
            "threads={threads}"
        );
        assert_eq!(
            seq.repair_src_bytes, par.repair_src_bytes,
            "threads={threads}"
        );
        assert_eq!(seq.fault, par.fault, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random seeded fault schedules through the real runtime: the
    /// per-node pacing cap bounds what any ASU sources, no repair is
    /// ever sourced from a node while it is down (audited via the dead
    /// ASU's byte counter against its downtime), the histogram always
    /// accounts for every block, and the same seed reruns identically.
    #[test]
    fn repair_invariants_under_random_fault_schedules(
        seed in any::<u64>(),
        asus in 4usize..8,
        blocks in 16u64..64,
        bw_mib in 16u64..128,
    ) {
        let cfg = ClusterConfig::era_2002(2, asus, 8.0);
        let bw = bw_mib as f64 * MIB as f64;
        let run = || {
            let plan = FaultPlan::poisson(
                seed,
                cfg.hosts..cfg.hosts + cfg.asus,
                SimDuration::from_millis(30),
                SimDuration::from_millis(10),
                SimDuration::from_millis(90),
            );
            let rs = RepairSpec::new(blocks, 2, MIB / 4, bw);
            let spec = FaultSpec::with_plan(plan).with_repair(rs);
            let (g, placement, inputs) = fleet_job(2, asus, 400);
            run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap()
        };
        let a = run();
        // Histogram always partitions the block population.
        prop_assert_eq!(a.replica_hist.iter().sum::<u64>(), blocks);
        // Pacing: one block per `block_bytes / bw` per node, so over a
        // makespan of T seconds a node sources at most bw·T bytes plus
        // one block of slack (the first dispatch is not paced).
        let t_secs = a.makespan.as_nanos() as f64 / 1e9;
        for (d, &bytes) in a.repair_src_bytes.iter().enumerate() {
            prop_assert!(
                bytes as f64 <= bw * t_secs + (MIB / 4) as f64,
                "ASU {} sourced {} bytes in {}s against a {}B/s cap",
                d, bytes, t_secs, bw
            );
        }
        // Same seed, same bytes: the whole report is deterministic.
        let b = run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.dispatched, b.dispatched);
        prop_assert_eq!(a.repair, b.repair);
        prop_assert_eq!(a.replica_hist, b.replica_hist);
        prop_assert_eq!(a.repair_src_bytes, b.repair_src_bytes);
    }
}
