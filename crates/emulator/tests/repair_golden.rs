//! Pinned golden for a repair-enabled multi-host run: a seeded Poisson
//! fault schedule over a 4-host × 8-ASU fleet with background
//! re-replication on. Every virtual-time observable is frozen here, and
//! the same constants must hold sequentially and under the partitioned
//! kernel at 2 and 4 threads — repair drift across simulator rewrites
//! shows up as a hard diff against these pins.

use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    packetize, EdgeKind, FlowGraph, Functor, NodeId, Placement, Rec8, RoutingPolicy, Work,
};
use lmas_emulator::{
    run_job_with_faults, ClusterConfig, EmulationReport, FaultSpec, Job, RepairSpec,
};
use lmas_sim::{FaultPlan, SimDuration};
use std::collections::BTreeMap;

/// FNV-1a over a byte stream; stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

const HOSTS: usize = 4;
const ASUS: usize = 8;
const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;

/// The frozen scenario: source on host 0 → relay on every ASU → sink on
/// host 3, under a seeded Poisson crash/recovery schedule with repair.
fn pinned_run(threads: usize) -> EmulationReport<Rec8> {
    let cfg = ClusterConfig::era_2002(HOSTS, ASUS, 8.0).with_threads(threads);
    let plan = FaultPlan::poisson(
        0xD15C,
        HOSTS..HOSTS + ASUS,
        SimDuration::from_millis(200),
        SimDuration::from_millis(10),
        SimDuration::from_millis(160),
    );
    let rs = RepairSpec::new(96, 3, 256 * KIB, 256.0 * MIB as f64)
        .with_sampling(SimDuration::from_millis(10));
    let spec = FaultSpec::with_plan(plan).with_repair(rs);

    let relay = |_| -> Box<dyn Functor<Rec8>> {
        Box::new(MapFunctor::new("relay", Work::compares(4), |r: Rec8| r))
    };
    let data: Vec<Rec8> = (0..2_000u32).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, relay);
    let mid = g.add_stage(ASUS, relay);
    let dst = g.add_stage(1, relay);
    g.connect(src, mid, RoutingPolicy::RoundRobin, EdgeKind::Set)
        .unwrap();
    g.connect(mid, dst, RoutingPolicy::Static, EdgeKind::Set)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Host(0));
    for i in 0..ASUS {
        placement.assign(mid, i, NodeId::Asu(i));
    }
    placement.assign(dst, 0, NodeId::Host(HOSTS - 1));
    let mut inputs = BTreeMap::new();
    inputs.insert((src.0, 0usize), packetize(data, 50));
    run_job_with_faults(
        &cfg,
        &spec,
        Job {
            graph: g,
            placement,
            inputs,
        },
    )
    .unwrap()
}

fn assert_pinned(r: &EmulationReport<Rec8>) {
    assert_eq!(r.makespan.as_nanos(), 294_943_378, "makespan");
    assert_eq!(r.dispatched, 2_163, "dispatched");
    assert_eq!(r.repair.enqueued, 313, "enqueued");
    assert_eq!(r.repair.completed, 286, "completed");
    assert_eq!(r.repair.cancelled, 0, "cancelled");
    assert_eq!(r.repair.reassigned, 22, "reassigned");
    assert_eq!(r.repair.wasted, 5, "wasted");
    assert_eq!(r.repair.blocks_lost, 14, "blocks_lost");
    assert_eq!(r.repair.bytes_repaired, 74_973_184, "bytes_repaired");
    assert_eq!(r.replica_hist, vec![8, 0, 0, 88], "replica_hist");
    assert_eq!(r.repair_trajectory.len(), 325, "trajectory len");
    let traj_fnv = fnv1a(r.repair_trajectory.iter().flat_map(|s| {
        s.at.0
            .to_le_bytes()
            .into_iter()
            .chain(s.hist.iter().flat_map(|c| c.to_le_bytes()))
    }));
    assert_eq!(traj_fnv, 0x4607_b336_cf43_4cd6, "trajectory fnv");
    assert_eq!(
        r.repair_src_bytes,
        vec![
            9_175_040, 1_572_864, 17_825_792, 9_961_472, 10_223_616, 10_223_616, 9_699_328,
            8_912_896
        ],
        "repair_src_bytes"
    );
    assert_eq!(r.fault.detections, 3, "detections");
}

#[test]
fn repair_golden_holds_sequentially_and_at_every_thread_count() {
    let seq = pinned_run(1);
    assert!(seq.par.is_none(), "threads=1 runs the sequential engine");
    assert_pinned(&seq);
    for threads in [2usize, 4] {
        let par = pinned_run(threads);
        let stats = par
            .par
            .as_ref()
            .expect("multi-host threaded run parallelizes");
        assert!(
            stats.partitions > 1,
            "threads={threads} actually partitions"
        );
        assert_eq!(
            par.par_fallback, None,
            "repair introduces no fallback reason"
        );
        assert_pinned(&par);
    }
}

#[test]
#[ignore]
fn dump() {
    let r = pinned_run(1);
    println!("makespan {}", r.makespan.as_nanos());
    println!("dispatched {}", r.dispatched);
    println!(
        "repair enq {} comp {} canc {} reass {} wasted {} lost {} bytes {}",
        r.repair.enqueued,
        r.repair.completed,
        r.repair.cancelled,
        r.repair.reassigned,
        r.repair.wasted,
        r.repair.blocks_lost,
        r.repair.bytes_repaired
    );
    println!("hist {:?}", r.replica_hist);
    println!("traj_len {}", r.repair_trajectory.len());
    let traj_fnv = fnv1a(r.repair_trajectory.iter().flat_map(|s| {
        s.at.0
            .to_le_bytes()
            .into_iter()
            .chain(s.hist.iter().flat_map(|c| c.to_le_bytes()))
    }));
    println!("traj_fnv {traj_fnv:#018x}");
    println!("src_bytes {:?}", r.repair_src_bytes);
    println!("detections {}", r.fault.detections);
}
