//! Unit tests for the partitioned engine's sequential-fallback
//! reasons (`EmulationReport::par_fallback`). Each of the four reasons
//! — `"backlog routing"`, `"zero latency"`, `"fault plan"`,
//! `"balancer"` — is pinned by a run that triggers exactly it, and the
//! zero-latency eligibility boundary is tested from both sides: a zero
//! `link_latency` with a positive NIC frame overhead still yields a
//! positive minimum cross-node delay and parallelizes, while a truly
//! zero delay cannot support conservative lookahead and falls back.

use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    generate_rec8, packetize, EdgeKind, FlowGraph, Functor, KeyDist, NodeId, Placement, Rec8,
    RoutingPolicy, Work,
};
use lmas_emulator::{
    asu_index, run_job, run_job_with_faults, BalanceSpec, ClusterConfig, EmulationReport,
    FaultSpec, Job,
};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use std::collections::BTreeMap;

fn identity_factory() -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + 'static {
    |_| Box::new(MapFunctor::new("id", Work::compares(8), |r: Rec8| r))
}

/// Two-host job with a replicated downstream stage so every routing
/// policy (and the balancer) has freedom to exercise.
fn job(routing: RoutingPolicy) -> Job<Rec8> {
    let data = generate_rec8(4_000, KeyDist::Uniform, 9);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(2, identity_factory());
    let dst = g.add_stage(2, identity_factory());
    g.connect(src, dst, routing, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(src, 1, NodeId::Asu(1));
    placement.assign(dst, 0, NodeId::Host(0));
    placement.assign(dst, 1, NodeId::Host(1));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data.clone(), 100));
    inputs.insert((0usize, 1usize), packetize(data, 100));
    Job { graph: g, placement, inputs }
}

fn cfg() -> ClusterConfig {
    ClusterConfig::era_2002(2, 2, 8.0).with_threads(4)
}

fn expect_sequential(r: &EmulationReport<Rec8>, reason: &str) {
    assert!(r.par.is_none(), "run must stay sequential ({reason})");
    assert_eq!(r.par_fallback, Some(reason), "fallback reason");
}

fn expect_parallel(r: &EmulationReport<Rec8>) {
    let stats = r.par.as_ref().expect("run must use the partitioned engine");
    assert_eq!(stats.partitions, 2, "two hosts bound the partition count");
    assert_eq!(r.par_fallback, None);
}

#[test]
fn backlog_routing_falls_back() {
    let r = run_job(&cfg(), job(RoutingPolicy::PowerOfTwoChoices)).unwrap();
    expect_sequential(&r, "backlog routing");
    let r = run_job(&cfg(), job(RoutingPolicy::LoadAware)).unwrap();
    expect_sequential(&r, "backlog routing");
    // Partition-local policies stay eligible.
    let r = run_job(&cfg(), job(RoutingPolicy::SimpleRandomization)).unwrap();
    expect_parallel(&r);
}

#[test]
fn zero_latency_falls_back_only_when_the_minimum_delay_is_truly_zero() {
    // Zero propagation latency AND zero per-frame NIC overhead: no
    // cross-node message can be bounded away from "now" — no lookahead.
    let mut zero = cfg();
    zero.link_latency = SimDuration::ZERO;
    zero.nic_frame_overhead_bytes = 0;
    let r = run_job(&zero, job(RoutingPolicy::RoundRobin)).unwrap();
    expect_sequential(&r, "zero latency");

    // Zero propagation latency but a positive per-frame overhead: the
    // minimum cross-node delay is the NIC service time of an empty
    // frame, which is a valid (if narrow) conservative lookahead.
    let framed = zero.with_nic_frame_overhead(64);
    let seq = run_job(&framed.with_threads(1), job(RoutingPolicy::RoundRobin)).unwrap();
    let par = run_job(&framed, job(RoutingPolicy::RoundRobin)).unwrap();
    expect_parallel(&par);
    assert_eq!(seq.makespan, par.makespan, "virtual time is engine-invariant");
    assert_eq!(seq.dispatched, par.dispatched);
    assert_eq!(seq.stage_records_in, par.stage_records_in);
}

#[test]
fn fail_fast_fault_plans_fall_back_but_ordinary_plans_do_not() {
    let plan = || FaultPlan::new().crash(asu_index(&cfg(), 0), SimTime(200_000));
    let fast = FaultSpec::with_plan(plan()).failing_fast(true);
    let r = run_job_with_faults(&cfg(), &fast, job(RoutingPolicy::RoundRobin)).unwrap();
    expect_sequential(&r, "fault plan");

    // The same plan without fail_fast runs partitioned.
    let spec = FaultSpec::with_plan(plan());
    let r = run_job_with_faults(&cfg(), &spec, job(RoutingPolicy::RoundRobin)).unwrap();
    expect_parallel(&r);
}

#[test]
fn live_balancer_falls_back_but_snapshot_mode_does_not() {
    let live = cfg().with_balancer(
        BalanceSpec::every(SimDuration::from_micros(500)).live_sampling(),
    );
    let r = run_job(&live, job(RoutingPolicy::SimpleRandomization)).unwrap();
    expect_sequential(&r, "balancer");

    // Snapshot mode (the default) runs partitioned.
    let snap = cfg().with_balancer(BalanceSpec::every(SimDuration::from_micros(500)));
    let r = run_job(&snap, job(RoutingPolicy::SimpleRandomization)).unwrap();
    expect_parallel(&r);
}

#[test]
fn sequential_runs_never_carry_a_fallback_reason() {
    // threads == 1 never consults the eligibility chain — even a run
    // that would be ineligible reports None.
    let mut one = cfg();
    one.threads = 1;
    let r = run_job(&one, job(RoutingPolicy::PowerOfTwoChoices)).unwrap();
    assert!(r.par.is_none());
    assert_eq!(r.par_fallback, None);
}
