//! Fault-injection tests: crash failover, detection latency, fencing,
//! degraded mode, lossy links, and chaos determinism.

use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    packetize, EdgeKind, FlowGraph, Functor, NodeId, Placement, Rec8, RoutingPolicy, Work,
};
use lmas_emulator::{
    asu_index, run_job, run_job_with_faults, ClusterConfig, FaultSpec, Job, JobError, NodeHealth,
};
use lmas_sim::{FaultPlan, SimDuration, SimTime};
use std::collections::BTreeMap;

fn relay_factory() -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + Sync + 'static {
    |_| Box::new(MapFunctor::new("relay", Work::compares(4), |r: Rec8| r))
}

type Inputs = BTreeMap<(usize, usize), Vec<lmas_core::Packet<Rec8>>>;

/// Source on host 0 → relay replicated on the ASUs → sink on host 0.
fn replicated_relay_job(
    n: u32,
    replicas: usize,
    routing: RoutingPolicy,
) -> (FlowGraph<Rec8>, Placement, Inputs) {
    let data: Vec<Rec8> = (0..n).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, relay_factory());
    let mid = g.add_stage(replicas, relay_factory());
    let dst = g.add_stage(1, relay_factory());
    g.connect(src, mid, routing, EdgeKind::Set).unwrap();
    g.connect(mid, dst, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Host(0));
    for i in 0..replicas {
        placement.assign(mid, i, NodeId::Asu(i));
    }
    placement.assign(dst, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((src.0, 0usize), packetize(data, 50));
    (g, placement, inputs)
}

fn sorted_tags(records: &[Rec8]) -> Vec<u32> {
    let mut t: Vec<u32> = records.iter().map(|r| r.tag).collect();
    t.sort_unstable();
    t
}

/// Crash one of two relay replicas mid-run: deliveries bounce, fail over
/// to the survivor, and every record is either delivered or accounted
/// lost with the dead node. The job drains without manual intervention.
#[test]
fn crash_fails_over_to_surviving_replica_and_conserves_records() {
    let cfg = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 2_000u32;
    let (g0, p0, i0) = replicated_relay_job(n, 2, RoutingPolicy::RoundRobin);
    let base = run_job(&cfg, Job { graph: g0, placement: p0, inputs: i0 }).unwrap();
    // Crash early, while the source is still streaming, so deliveries
    // are genuinely in flight when the node dies.
    let early = SimTime((base.makespan.0 / 8).max(200_000));

    let plan = FaultPlan::new().crash(asu_index(&cfg, 1), early);
    let spec = FaultSpec::with_plan(plan);
    let (g, placement, inputs) = replicated_relay_job(n, 2, RoutingPolicy::RoundRobin);
    let report = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap();

    let delivered = report.sink_records().len() as u64;
    let lost = report.fault.lost_queued_records + report.fault.abandoned_records;
    assert_eq!(delivered + lost, n as u64, "every record delivered or accounted lost");
    assert!(delivered > 0, "the survivor kept the pipeline alive");
    assert!(report.fault.nacks > 0, "deliveries bounced off the dead node");
    assert!(report.fault.retries > 0, "bounced deliveries were retried");
    assert_eq!(report.fault.detections, 1, "the heartbeat detected the crash");
    assert!(report.fault.fenced_instances >= 1, "the dead relay was fenced");
    assert_eq!(report.down_nodes, vec![NodeId::Asu(1)]);
    assert!(
        report.makespan > base.makespan,
        "masking a crash costs time: {:?} vs fault-free {:?}",
        report.makespan,
        base.makespan
    );
    let dead = report.nodes.iter().find(|nr| nr.id == NodeId::Asu(1)).unwrap();
    assert_eq!(dead.health, NodeHealth::Down);
}

/// With a single replica and `fail_fast`, losing it is a typed error
/// carrying partial progress — not a panic, not a hang.
#[test]
fn all_replicas_down_is_a_typed_error_under_fail_fast() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let n = 2_000u32;
    let (g0, p0, i0) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let base = run_job(&cfg, Job { graph: g0, placement: p0, inputs: i0 }).unwrap();

    // Crash while the source is still streaming so deliveries are in
    // flight; with one replica there is nowhere to fail over to.
    let plan = FaultPlan::new()
        .crash(asu_index(&cfg, 0), SimTime((base.makespan.0 / 8).max(200_000)));
    let spec = FaultSpec::with_plan(plan).failing_fast(true);
    let (g, placement, inputs) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let err = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap_err();
    match err {
        JobError::AllReplicasDown { stage, at, records_processed } => {
            assert_eq!(stage, 1, "the relay stage was unreachable");
            assert!(at > SimTime::ZERO);
            assert!(records_processed > 0, "partial progress is reported");
            assert!(records_processed < 3 * n as u64, "but not full progress");
        }
        other => panic!("expected AllReplicasDown, got {other}"),
    }
}

/// A degraded node is slower, not dead: no NACKs, no detection, no
/// fencing — just a longer makespan (the false-positive guard).
#[test]
fn degraded_node_is_slow_but_never_declared_down() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let n = 1_000u32;
    let (g0, p0, i0) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let base = run_job(&cfg, Job { graph: g0, placement: p0, inputs: i0 }).unwrap();

    let plan = FaultPlan::new().degrade(asu_index(&cfg, 0), SimTime::ZERO, 0.25, 0.5);
    let spec = FaultSpec::with_plan(plan);
    let (g, placement, inputs) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let report = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap();

    assert_eq!(report.sink_records().len() as u64, n as u64, "nothing lost");
    assert_eq!(report.fault.nacks, 0);
    assert_eq!(report.fault.detections, 0, "slowness is not failure");
    assert_eq!(report.fault.fenced_instances, 0);
    assert!(report.down_nodes.is_empty());
    assert!(
        report.makespan > base.makespan,
        "a 4x slower CPU shows up in the makespan"
    );
    let node = report.nodes.iter().find(|nr| nr.id == NodeId::Asu(0)).unwrap();
    assert!(matches!(node.health, NodeHealth::Degraded { .. }));
}

/// A crash repaired within the heartbeat timeout never trips the
/// detector: bounced packets retry against the same node and land once
/// it returns.
#[test]
fn fast_recovery_beats_the_failure_detector() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let n = 2_000u32;
    let (g0, p0, i0) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let base = run_job(&cfg, Job { graph: g0, placement: p0, inputs: i0 }).unwrap();
    let t_crash = SimTime((base.makespan.0 / 8).max(200_000));
    let t_back = t_crash + SimDuration::from_millis(5); // < 15 ms timeout

    let plan = FaultPlan::new()
        .crash(asu_index(&cfg, 0), t_crash)
        .recover(asu_index(&cfg, 0), t_back);
    let spec = FaultSpec::with_plan(plan);
    let (g, placement, inputs) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let report = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap();

    let delivered = report.sink_records().len() as u64;
    let lost = report.fault.lost_queued_records + report.fault.abandoned_records;
    assert_eq!(delivered + lost, n as u64);
    assert!(report.fault.nacks > 0, "the outage bounced in-flight packets");
    assert_eq!(report.fault.detections, 0, "recovered before the timeout");
    assert_eq!(report.fault.fenced_instances, 0);
    assert!(report.down_nodes.is_empty());
}

/// A lossy link drops frames, the NACK/retry path redelivers them, and
/// the sink still sees every record exactly once.
#[test]
fn lossy_link_redelivers_every_record() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let n = 2_000u32;
    // 30% loss on host 0 → ASU 0 (the source → relay link) from t = 0.
    let plan = FaultPlan::new().link_loss(0, asu_index(&cfg, 0), SimTime::ZERO, 0.3);
    let spec = FaultSpec::with_plan(plan);
    let (g, placement, inputs) = replicated_relay_job(n, 1, RoutingPolicy::Static);
    let report = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap();

    assert!(report.fault.drops > 0, "the link actually dropped frames");
    assert!(report.fault.retries >= report.fault.drops);
    let delivered = report.sink_records().len() as u64;
    assert_eq!(
        delivered + report.fault.abandoned_records,
        n as u64,
        "every record delivered or abandoned after the retry budget"
    );
    assert_eq!(
        sorted_tags(&report.sink_records()).len(),
        delivered as usize,
        "no duplicates from redelivery"
    );
}

/// A plan naming a node outside the cluster is rejected up front.
#[test]
fn out_of_range_plan_node_is_rejected() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let plan = FaultPlan::new().crash(99, SimTime(1));
    let spec = FaultSpec::with_plan(plan);
    let (g, placement, inputs) = replicated_relay_job(100, 1, RoutingPolicy::Static);
    let err = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap_err();
    assert!(matches!(err, JobError::FaultPlanNode { node: 99 }));
}

/// The same seeded chaos run, executed twice, is bit-identical: same
/// makespan, same fault counters, same dispatch count, same output.
#[test]
fn same_seed_chaos_runs_are_identical() {
    let cfg = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 2_000u32;
    let run = || {
        let plan = FaultPlan::new()
            .crash(asu_index(&cfg, 1), SimTime(3_000_000))
            .link_loss(0, asu_index(&cfg, 0), SimTime::ZERO, 0.1);
        let spec = FaultSpec::with_plan(plan);
        let (g, placement, inputs) =
            replicated_relay_job(n, 2, RoutingPolicy::SimpleRandomization);
        run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.dispatched, b.dispatched);
    assert_eq!(a.fault, b.fault);
    assert_eq!(sorted_tags(&a.sink_records()), sorted_tags(&b.sink_records()));
}

/// An inactive spec is the fault-free runtime, bit for bit.
#[test]
fn inactive_spec_matches_fault_free_run_exactly() {
    let cfg = ClusterConfig::era_2002(1, 2, 8.0);
    let (g0, p0, i0) = replicated_relay_job(1_000, 2, RoutingPolicy::LoadAware);
    let base = run_job(&cfg, Job { graph: g0, placement: p0, inputs: i0 }).unwrap();
    let (g, placement, inputs) = replicated_relay_job(1_000, 2, RoutingPolicy::LoadAware);
    let spec = FaultSpec::none();
    let same = run_job_with_faults(&cfg, &spec, Job { graph: g, placement, inputs }).unwrap();
    assert_eq!(base.makespan, same.makespan);
    assert_eq!(base.dispatched, same.dispatched);
    assert!(same.fault.is_quiet());
    assert_eq!(
        sorted_tags(&base.sink_records()),
        sorted_tags(&same.sink_records())
    );
}
