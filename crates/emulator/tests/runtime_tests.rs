//! Integration tests for the dataflow runtime on the emulated cluster.

use lmas_core::functor::lib::{BlockSortFunctor, DistributeFunctor, MapFunctor, MergeFunctor};
use lmas_core::{
    generate_rec8, packetize, EdgeKind, FlowGraph, Functor, KeyDist, NodeId, Packet, Placement,
    Rec8, RoutingPolicy, StageId, Work,
};
use lmas_emulator::{run_job, BalanceSpec, ClusterConfig, Job, JobError};
use lmas_sim::SimDuration;
use std::collections::BTreeMap;

fn identity_factory() -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + 'static {
    |_| Box::new(MapFunctor::new("id", Work::ZERO, |r: Rec8| r))
}

fn keys(records: &[Rec8]) -> Vec<u32> {
    records.iter().map(|r| r.key).collect()
}

fn sorted_tags(records: &[Rec8]) -> Vec<u32> {
    let mut t: Vec<u32> = records.iter().map(|r| r.tag).collect();
    t.sort_unstable();
    t
}

/// Source on an ASU streaming to a sink on the host: everything arrives.
#[test]
fn identity_pipeline_delivers_all_records() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let data = generate_rec8(1_000, KeyDist::Uniform, 1);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let dst = g.add_stage(1, identity_factory());
    g.connect(src, dst, RoutingPolicy::Static, EdgeKind::Stream)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(dst, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data.clone(), 100));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();

    let out = report.sink_records();
    assert_eq!(out.len(), 1_000);
    assert_eq!(sorted_tags(&out), (0..1_000).collect::<Vec<u32>>());
    assert!(report.makespan.as_nanos() > 0);
    assert!(report.mem_violations.is_empty());
    // Both stages saw all records.
    assert_eq!(report.stage_records_in, vec![1_000, 1_000]);
    // Data crossed the ASU→host link.
    let asu = report
        .nodes
        .iter()
        .find(|n| n.id == NodeId::Asu(0))
        .unwrap();
    assert!(asu.nic_busy.as_nanos() > 0);
    // Source read from disk; sink wrote to disk.
    let (reads, _, bytes_read, _) = asu.disk;
    assert_eq!(reads, 10);
    assert_eq!(bytes_read, 8 * 1_000);
    let host = report
        .nodes
        .iter()
        .find(|n| n.id == NodeId::Host(0))
        .unwrap();
    let (_, writes, _, bytes_written) = host.disk;
    assert!(writes > 0);
    assert_eq!(bytes_written, 8 * 1_000);
}

/// Stream edges preserve order end to end.
#[test]
fn stream_edge_preserves_sequence() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let data: Vec<Rec8> = (0..500).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let dst = g.add_stage(1, identity_factory());
    g.connect(src, dst, RoutingPolicy::Static, EdgeKind::Stream)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(dst, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 64));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();
    assert_eq!(keys(&report.sink_records()), (0..500).collect::<Vec<u32>>());
}

/// Distribute ports map statically onto downstream instances.
#[test]
fn static_routing_pins_ports_to_instances() {
    let cfg = ClusterConfig::era_2002(2, 1, 8.0);
    let data: Vec<Rec8> = (0..100).map(|i| Rec8 { key: i, tag: i }).collect();
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    // 2 buckets: keys < 50 on port 0, >= 50 on port 1.
    let src = g.add_source_stage(1, |_| {
        Box::new(DistributeFunctor::<Rec8>::new(vec![50])) as Box<dyn Functor<Rec8>>
    });
    let dst = g.add_stage(2, identity_factory());
    g.connect(src, dst, RoutingPolicy::Static, EdgeKind::Set)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.spread_over_hosts(dst, 2, 2);
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 10));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();

    let low = report.sink_outputs.get(&(1, 0)).unwrap();
    let high = report.sink_outputs.get(&(1, 1)).unwrap();
    let low_keys: Vec<u32> = low
        .iter()
        .flat_map(|(_, p)| p.records().iter().map(|r| r.key))
        .collect();
    let high_keys: Vec<u32> = high
        .iter()
        .flat_map(|(_, p)| p.records().iter().map(|r| r.key))
        .collect();
    assert!(low_keys.iter().all(|&k| k < 50), "{low_keys:?}");
    assert!(high_keys.iter().all(|&k| k >= 50), "{high_keys:?}");
    assert_eq!(low_keys.len() + high_keys.len(), 100);
}

/// A distribute → block-sort → merge pipeline yields a sorted permutation.
#[test]
fn three_stage_sort_pipeline_sorts() {
    let cfg = ClusterConfig::era_2002(1, 2, 8.0);
    let n = 2_000u64;
    let data = generate_rec8(n, KeyDist::Uniform, 9);
    let splitters = lmas_core::kernels::select_splitters(data.clone(), 4);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let sp = splitters.clone();
    let src = g.add_source_stage(2, move |_| {
        Box::new(DistributeFunctor::<Rec8>::new(sp.clone())) as Box<dyn Functor<Rec8>>
    });
    // 4 block-sorters, one per bucket (static port routing).
    let bs = g.add_stage(4, |_| {
        Box::new(BlockSortFunctor::<Rec8>::new(128)) as Box<dyn Functor<Rec8>>
    });
    let mg = g.add_stage(4, |_| {
        Box::new(MergeFunctor::<Rec8>::new(64)) as Box<dyn Functor<Rec8>>
    });
    g.connect(src, bs, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    g.connect(bs, mg, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.spread_over_asus(src, 2, 2);
    placement.spread_over_hosts(bs, 4, 1);
    placement.spread_over_hosts(mg, 4, 1);
    let mut inputs = BTreeMap::new();
    let half = (n / 2) as usize;
    inputs.insert((0usize, 0usize), packetize(data[..half].to_vec(), 100));
    inputs.insert((0usize, 1usize), packetize(data[half..].to_vec(), 100));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();

    // Each merge sink instance i holds bucket i fully sorted; bucket i
    // keys all precede bucket i+1 keys.
    let mut all = Vec::new();
    for i in 0..4 {
        if let Some(outs) = report.sink_outputs.get(&(2, i)) {
            let recs: Vec<Rec8> = outs
                .iter()
                .flat_map(|(_, p)| p.records().iter().cloned())
                .collect();
            assert!(
                lmas_core::kernels::is_sorted_by_key(&recs),
                "bucket {i} not sorted"
            );
            all.extend(recs);
        }
    }
    assert_eq!(all.len(), n as usize);
    assert!(lmas_core::kernels::is_sorted_by_key(&all), "global order");
    assert_eq!(sorted_tags(&all), (0..n as u32).collect::<Vec<u32>>());
}

/// Two instances sharing one CPU take about twice as long as two on
/// separate CPUs.
#[test]
fn colocated_instances_contend_for_cpu() {
    let run = |hosts: usize| {
        let cfg = ClusterConfig::era_2002(hosts, 1, 8.0);
        let data = generate_rec8(20_000, KeyDist::Uniform, 4);
        let mut g: FlowGraph<Rec8> = FlowGraph::new();
        let src = g.add_source_stage(1, identity_factory());
        let work = g.add_stage(2, |_| {
            Box::new(MapFunctor::new("burn", Work::compares(64), |r: Rec8| r))
                as Box<dyn Functor<Rec8>>
        });
        g.connect(src, work, RoutingPolicy::RoundRobin, EdgeKind::Set)
            .unwrap();
        let mut placement = Placement::new();
        placement.assign(src, 0, NodeId::Asu(0));
        placement.spread_over_hosts(work, 2, hosts);
        let mut inputs = BTreeMap::new();
        inputs.insert((0usize, 0usize), packetize(data, 500));
        run_job(&cfg, Job { graph: g, placement, inputs })
            .unwrap()
            .makespan
            .as_secs_f64()
    };
    let shared = run(1);
    let separate = run(2);
    let ratio = shared / separate;
    assert!(
        (1.5..2.5).contains(&ratio),
        "contention ratio {ratio} (shared {shared}s, separate {separate}s)"
    );
}

/// Same seed ⇒ identical makespan and stage work; different seed with SR
/// routing ⇒ (almost surely) different packet placement.
#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut cfg = ClusterConfig::era_2002(2, 2, 8.0);
        cfg.seed = seed;
        let data = generate_rec8(5_000, KeyDist::Uniform, 7);
        let mut g: FlowGraph<Rec8> = FlowGraph::new();
        let src = g.add_source_stage(2, identity_factory());
        let work = g.add_stage(2, identity_factory());
        g.connect(src, work, RoutingPolicy::SimpleRandomization, EdgeKind::Set)
            .unwrap();
        let mut placement = Placement::new();
        placement.spread_over_asus(src, 2, 2);
        placement.spread_over_hosts(work, 2, 2);
        let mut inputs = BTreeMap::new();
        inputs.insert((0usize, 0usize), packetize(data[..2500].to_vec(), 50));
        inputs.insert((0usize, 1usize), packetize(data[2500..].to_vec(), 50));
        let r = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();
        let recs0 = r
            .sink_outputs
            .get(&(1, 0))
            .map(|v| v.iter().map(|(_, p)| p.len()).sum::<usize>())
            .unwrap_or(0);
        (r.makespan, recs0)
    };
    assert_eq!(run(42), run(42));
    let (_, a) = run(42);
    let (_, b) = run(43);
    assert_ne!(a, b, "SR routing should differ across seeds");
}

/// The runtime flags functors whose state exceeds node memory.
#[test]
fn memory_violations_are_reported() {
    let mut cfg = ClusterConfig::era_2002(1, 1, 8.0);
    cfg.host_mem_bytes = 64; // absurdly small host
    let data = generate_rec8(1_000, KeyDist::Uniform, 3);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    // Block sort buffers 1000 records = 8000 bytes >> 64.
    let bs = g.add_stage(1, |_| {
        Box::new(BlockSortFunctor::<Rec8>::new(10_000)) as Box<dyn Functor<Rec8>>
    });
    g.connect(src, bs, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(bs, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 100));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();
    assert!(!report.mem_violations.is_empty());
}

/// Placement of a host-only functor on an ASU is rejected up front.
#[test]
fn asu_ineligible_placement_rejected() {
    struct HostOnly;
    impl Functor<Rec8> for HostOnly {
        fn name(&self) -> String {
            "host-only".into()
        }
        fn kind(&self) -> lmas_core::FunctorKind {
            lmas_core::FunctorKind::HostOnly
        }
        fn process(&mut self, p: Packet<Rec8>, out: &mut lmas_core::Emit<Rec8>) {
            out.push0(p);
        }
        fn flush(&mut self, _out: &mut lmas_core::Emit<Rec8>) {}
        fn cost(&self, _p: &Packet<Rec8>) -> Work {
            Work::ZERO
        }
    }
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, |_| Box::new(HostOnly) as Box<dyn Functor<Rec8>>);
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    let err = run_job(
        &cfg,
        Job { graph: g, placement, inputs: BTreeMap::new() },
    )
    .unwrap_err();
    assert!(matches!(err, JobError::Placement(_)), "{err}");
}

/// Input handed to a non-source stage is rejected.
#[test]
fn input_for_non_source_rejected() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let dst = g.add_stage(1, identity_factory());
    g.connect(src, dst, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(dst, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((1usize, 0usize), vec![Packet::new(vec![Rec8 { key: 1, tag: 0 }])]);
    let err = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap_err();
    assert!(matches!(err, JobError::InputForNonSource { stage: 1, .. }));
}

/// A non-source stage with no incoming edge is rejected.
#[test]
fn disconnected_stage_rejected() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let _orphan = g.add_stage(1, identity_factory());
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(StageId(1), 0, NodeId::Host(0));
    let err = run_job(
        &cfg,
        Job { graph: g, placement, inputs: BTreeMap::new() },
    )
    .unwrap_err();
    assert!(matches!(err, JobError::DisconnectedStage(_)));
}

/// Load-aware routing sends more records to the faster of two
/// heterogeneous destinations.
#[test]
fn load_aware_routing_respects_capacity() {
    // Destination 0 on an ASU (slow), destination 1 on a host (fast).
    let cfg = ClusterConfig::era_2002(1, 2, 8.0);
    let data = generate_rec8(20_000, KeyDist::Uniform, 11);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let work = g.add_stage(2, |_| {
        Box::new(MapFunctor::new("burn", Work::compares(32), |r: Rec8| r))
            as Box<dyn Functor<Rec8>>
    });
    g.connect(src, work, RoutingPolicy::LoadAware, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(work, 0, NodeId::Asu(1));
    placement.assign(work, 1, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 200));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();
    let count = |i: usize| {
        report
            .sink_outputs
            .get(&(1, i))
            .map(|v| v.iter().map(|(_, p)| p.len()).sum::<usize>())
            .unwrap_or(0)
    };
    let slow = count(0);
    let fast = count(1);
    assert_eq!(slow + fast, 20_000);
    assert!(
        fast > slow * 3,
        "fast host should absorb most load: fast={fast} slow={slow}"
    );
}

/// Placement validation error paths surface as typed `JobError`s: an
/// instance with no node is `Unassigned`; a functor whose declared
/// state bound exceeds ASU memory cannot land on an ASU.
#[test]
fn placement_error_paths_are_typed() {
    use lmas_core::PlacementError;
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    // Unassigned: second instance of the sink never placed.
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let dst = g.add_stage(2, identity_factory());
    g.connect(src, dst, RoutingPolicy::RoundRobin, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(dst, 0, NodeId::Host(0));
    let err = run_job(&cfg, Job { graph: g, placement, inputs: BTreeMap::new() }).unwrap_err();
    match err {
        JobError::Placement(PlacementError::Unassigned { stage, instance }) => {
            assert_eq!((stage, instance), (StageId(1), 1));
        }
        other => panic!("expected Unassigned, got {other}"),
    }

    // Memory bound: an ASU-eligible functor whose state bound exceeds
    // ASU memory is not placeable there.
    struct Fat;
    impl Functor<Rec8> for Fat {
        fn name(&self) -> String {
            "fat".into()
        }
        fn kind(&self) -> lmas_core::FunctorKind {
            lmas_core::FunctorKind::AsuEligible { max_state_bytes: 1 << 40 }
        }
        fn process(&mut self, p: Packet<Rec8>, out: &mut lmas_core::Emit<Rec8>) {
            out.push0(p);
        }
        fn flush(&mut self, _out: &mut lmas_core::Emit<Rec8>) {}
        fn cost(&self, _p: &Packet<Rec8>) -> Work {
            Work::ZERO
        }
    }
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, |_| Box::new(Fat) as Box<dyn Functor<Rec8>>);
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    let err = run_job(&cfg, Job { graph: g, placement, inputs: BTreeMap::new() }).unwrap_err();
    match err {
        JobError::Placement(PlacementError::NotAsuEligible { node, .. }) => {
            assert_eq!(node, NodeId::Asu(0));
        }
        other => panic!("expected NotAsuEligible, got {other}"),
    }
}

/// Time-weighted queue statistics: a fast source feeding a slow worker
/// builds queue on the worker; the report surfaces nonzero peak and
/// mean depth for the worker stage, zero for the source, and all queues
/// drained at the end of a clean run.
#[test]
fn queue_stats_report_time_weighted_depths() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let data = generate_rec8(10_000, KeyDist::Uniform, 5);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let work = g.add_stage(1, |_| {
        Box::new(MapFunctor::new("burn", Work::compares(128), |r: Rec8| r))
            as Box<dyn Functor<Rec8>>
    });
    g.connect(src, work, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(work, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 250));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();

    assert_eq!(report.queue_stats.len(), 2);
    // Sources pull from disk; they never queue.
    assert_eq!(report.queue_stats[0].max_peak(), 0);
    let worker = &report.queue_stats[1].instances[0];
    assert!(worker.peak_depth > 0, "worker never queued");
    assert!(worker.mean_depth > 0.0);
    assert!(
        worker.mean_depth <= worker.peak_depth as f64,
        "mean {} cannot exceed peak {}",
        worker.mean_depth,
        worker.peak_depth
    );
    assert_eq!(worker.final_depth, 0, "clean runs drain");
    assert_eq!(report.reweights, 0, "balancer is off by default");
    // The rendered summary carries the queue section.
    let text = lmas_emulator::render_summary(&report);
    assert!(text.contains("-- queues"), "{text}");
}

fn skew_job(cfg: &ClusterConfig) -> Result<lmas_emulator::EmulationReport<Rec8>, JobError> {
    // Source on ASU 0; two replicas of a hot stage, one on the 8×
    // slower ASU 1 and one on the host. SR routing splits ~50/50, so
    // the ASU replica's queue grows without feedback.
    let data = generate_rec8(30_000, KeyDist::Uniform, 13);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let work = g.add_stage(2, |_| {
        Box::new(MapFunctor::new("burn", Work::compares(64), |r: Rec8| r))
            as Box<dyn Functor<Rec8>>
    });
    g.connect(src, work, RoutingPolicy::SimpleRandomization, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(work, 0, NodeId::Asu(1));
    placement.assign(work, 1, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 200));
    run_job(cfg, Job { graph: g, placement, inputs })
}

/// The runtime balancer: under a skewed replica set it re-weights
/// routing toward the faster replica, shifting records and shortening
/// the makespan versus the unbalanced run.
#[test]
fn balancer_shifts_load_and_shortens_makespan() {
    let base = ClusterConfig::era_2002(1, 2, 8.0);
    let balanced_cfg = base.with_balancer(
        BalanceSpec::every(SimDuration::from_micros(500)).with_deadband(256),
    );
    let plain = skew_job(&base).unwrap();
    let balanced = skew_job(&balanced_cfg).unwrap();

    assert!(balanced.reweights > 0, "skew must trigger reweighting");
    let count = |r: &lmas_emulator::EmulationReport<Rec8>, i: usize| {
        r.sink_outputs
            .get(&(1, i))
            .map(|v| v.iter().map(|(_, p)| p.len()).sum::<usize>())
            .unwrap_or(0)
    };
    // All records still arrive, but the host absorbs a larger share
    // than under unweighted SR.
    assert_eq!(count(&balanced, 0) + count(&balanced, 1), 30_000);
    assert!(
        count(&balanced, 1) > count(&plain, 1),
        "host share should grow: balanced {} vs plain {}",
        count(&balanced, 1),
        count(&plain, 1)
    );
    assert!(
        balanced.makespan < plain.makespan,
        "feedback should shorten the run: {} vs {}",
        balanced.makespan,
        plain.makespan
    );
}

/// A balancer that never leaves its deadband changes nothing: virtual
/// time and outputs are byte-identical to a balancer-free run.
#[test]
fn idle_balancer_is_byte_identical() {
    let base = ClusterConfig::era_2002(1, 2, 8.0);
    let idle = base.with_balancer(
        BalanceSpec::every(SimDuration::from_micros(500))
            .with_deadband(u64::MAX)
            .with_cpu_deadband(SimDuration(u64::MAX)),
    );
    let plain = skew_job(&base).unwrap();
    let watched = skew_job(&idle).unwrap();
    assert_eq!(watched.reweights, 0);
    assert_eq!(plain.makespan, watched.makespan);
    let flat = |r: &lmas_emulator::EmulationReport<Rec8>| {
        r.sink_outputs
            .iter()
            .map(|(&k, v)| (k, v.iter().map(|(_, p)| p.len()).sum::<usize>()))
            .collect::<Vec<_>>()
    };
    assert_eq!(flat(&plain), flat(&watched), "identical packet routing");
    // Deterministic reruns, balancer on.
    let again = skew_job(&idle).unwrap();
    assert_eq!(again.makespan, watched.makespan);
}

/// The work audit: stage work matches the functor cost declarations.
#[test]
fn stage_work_matches_declared_costs() {
    let cfg = ClusterConfig::era_2002(1, 1, 8.0);
    let n = 1_024u64;
    let data = generate_rec8(n, KeyDist::Uniform, 2);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, |_| {
        // α = 16 distribute: 4 compares per record.
        Box::new(DistributeFunctor::<Rec8>::new(
            lmas_core::kernels::select_splitters(
                generate_rec8(256, KeyDist::Uniform, 2),
                16,
            ),
        )) as Box<dyn Functor<Rec8>>
    });
    let sink = g.add_stage(1, identity_factory());
    g.connect(src, sink, RoutingPolicy::Static, EdgeKind::Set).unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(sink, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 128));
    let report = run_job(&cfg, Job { graph: g, placement, inputs }).unwrap();
    let (name, w) = &report.stage_work[0];
    assert!(name.contains("distribute"));
    assert_eq!(w.compares, n * 4, "n·log2(16) compares");
}
