//! Integration tests for the storage substrate wired through the
//! emulator: striped multi-disk ASUs, the buffer pool, and read-ahead.

use lmas_core::functor::lib::MapFunctor;
use lmas_core::{
    generate_rec8, packetize, EdgeKind, FlowGraph, Functor, KeyDist, NodeId, Placement, Rec8,
    RoutingPolicy, Work,
};
use lmas_emulator::{run_job, ClusterConfig, Job, StorageSpec};
use std::collections::BTreeMap;

fn identity_factory() -> impl Fn(usize) -> Box<dyn Functor<Rec8>> + Send + 'static {
    |_| Box::new(MapFunctor::new("id", Work::ZERO, |r: Rec8| r))
}

fn sorted_tags(records: &[Rec8]) -> Vec<u32> {
    let mut t: Vec<u32> = records.iter().map(|r| r.tag).collect();
    t.sort_unstable();
    t
}

/// Build + run a 1-source/1-sink pipeline (ASU → host) under `cfg`.
fn run_pipeline_cfg(cfg: ClusterConfig, n: u64) -> lmas_emulator::EmulationReport<Rec8> {
    let data = generate_rec8(n, KeyDist::Uniform, 5);
    let mut g: FlowGraph<Rec8> = FlowGraph::new();
    let src = g.add_source_stage(1, identity_factory());
    let dst = g.add_stage(1, identity_factory());
    g.connect(src, dst, RoutingPolicy::Static, EdgeKind::Stream)
        .unwrap();
    let mut placement = Placement::new();
    placement.assign(src, 0, NodeId::Asu(0));
    placement.assign(dst, 0, NodeId::Host(0));
    let mut inputs = BTreeMap::new();
    inputs.insert((0usize, 0usize), packetize(data, 100));
    run_job(&cfg, Job { graph: g, placement, inputs }).unwrap()
}

/// [`run_pipeline_cfg`] with 2002-era devices.
fn run_pipeline(storage: StorageSpec, n: u64) -> lmas_emulator::EmulationReport<Rec8> {
    run_pipeline_cfg(ClusterConfig::era_2002(1, 1, 8.0).with_storage(storage), n)
}

/// The pooled, striped, read-ahead path delivers exactly the records the
/// plain path delivers — the storage substrate changes timing only.
#[test]
fn pooled_striped_run_matches_plain_output() {
    let n = 4_000u64;
    let plain = run_pipeline(StorageSpec::default(), n);
    let pooled = run_pipeline(
        StorageSpec::striped(2).with_pool(64).with_read_ahead(2),
        n,
    );
    assert_eq!(
        sorted_tags(&plain.sink_records()),
        sorted_tags(&pooled.sink_records()),
        "storage substrate must not change dataflow results"
    );
    assert!(pooled.makespan.as_nanos() > 0);

    // ASU carries the stripe set; hosts stay single-spindle.
    let asu = pooled
        .nodes
        .iter()
        .find(|nr| nr.id == NodeId::Asu(0))
        .unwrap();
    assert_eq!(asu.per_disk.len(), 2, "ASU should expose 2 spindles");
    let host = pooled
        .nodes
        .iter()
        .find(|nr| nr.id == NodeId::Host(0))
        .unwrap();
    assert_eq!(host.per_disk.len(), 1, "hosts are not multi-disk");

    // The pool saw the source's block traffic.
    let pool = asu.pool;
    assert!(pool.hits + pool.misses > 0, "pool stats must be populated");

    // Every stripe took reads: the block run alternates spindles.
    for (i, d) in asu.per_disk.iter().enumerate() {
        assert!(d.bytes_read > 0, "spindle {i} never read");
    }
    let per_disk_total: u64 = asu.per_disk.iter().map(|d| d.bytes_read).sum();
    assert_eq!(per_disk_total, asu.disk.2, "per-disk reads must sum to the node total");
}

/// More spindles shorten a disk-bound ASU→ASU transfer: with a slow
/// disk and blocks fine enough that each packet spans all spindles, the
/// stripe's parallel charge dominates the makespan. The sink sits on a
/// second ASU (hosts always keep one spindle and would cap the run).
#[test]
fn striping_scales_a_disk_bound_scan() {
    let n = 50_000u64;
    let run = |d: usize| {
        let mut spec = StorageSpec::striped(d)
            .with_pool(64)
            .with_read_ahead(2)
            // 100-record packets = 800 bytes = 4 blocks, striped one
            // block per spindle.
            .with_block_bytes(200);
        spec.blocks_per_stripe = 1;
        let mut cfg = ClusterConfig::era_2002(1, 2, 8.0).with_storage(spec);
        cfg.disk.rate_bytes_per_sec = 0.25e6; // firmly disk-bound
        let data = generate_rec8(n, KeyDist::Uniform, 5);
        let mut g: FlowGraph<Rec8> = FlowGraph::new();
        let src = g.add_source_stage(1, identity_factory());
        let dst = g.add_stage(1, identity_factory());
        g.connect(src, dst, RoutingPolicy::Static, EdgeKind::Stream)
            .unwrap();
        let mut placement = Placement::new();
        placement.assign(src, 0, NodeId::Asu(0));
        placement.assign(dst, 0, NodeId::Asu(1));
        let mut inputs = BTreeMap::new();
        inputs.insert((0usize, 0usize), packetize(data, 100));
        run_job(&cfg, Job { graph: g, placement, inputs })
            .unwrap()
            .makespan
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four.as_secs_f64() < 0.5 * one.as_secs_f64(),
        "4 spindles should clearly beat 1: d=4 {four} vs d=1 {one}"
    );
}

/// Read-ahead overlaps media time with CPU time: a pooled source with a
/// prefetch window finishes no later than the same source without one.
#[test]
fn read_ahead_never_slows_a_run() {
    let n = 100_000u64;
    let none = run_pipeline(StorageSpec::default().with_pool(64), n).makespan;
    let ra = run_pipeline(StorageSpec::default().with_pool(64).with_read_ahead(4), n).makespan;
    assert!(
        ra <= none,
        "read-ahead must not slow the pipeline: ra {ra} vs none {none}"
    );
}

/// Two identical pooled runs are bit-identical in time and counters.
#[test]
fn pooled_runs_are_deterministic() {
    let spec = StorageSpec::striped(2)
        .with_pool(32)
        .with_read_ahead(3)
        .with_sched_window(8);
    let a = run_pipeline(spec, 20_000);
    let b = run_pipeline(spec, 20_000);
    assert_eq!(a.makespan, b.makespan);
    let asu = |r: &lmas_emulator::EmulationReport<Rec8>| {
        r.nodes
            .iter()
            .find(|nr| nr.id == NodeId::Asu(0))
            .map(|nr| (nr.disk, nr.pool, nr.per_disk.clone()))
            .unwrap()
    };
    assert_eq!(asu(&a), asu(&b));
}
