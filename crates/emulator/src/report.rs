//! Plain-text rendering of emulation reports.

use crate::runtime::EmulationReport;
use lmas_core::Record;
use std::fmt::Write as _;

/// Render a one-screen summary of a run: makespan, per-node utilization,
/// per-stage work.
pub fn render_summary<R: Record>(r: &EmulationReport<R>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "makespan: {}", r.makespan);
    let _ = writeln!(out, "records processed: {}", r.records_processed);
    let _ = writeln!(out, "-- nodes --");
    for n in &r.nodes {
        let (dr, dw, dbr, dbw) = n.disk;
        let _ = writeln!(
            out,
            "{:>7}  cpu {:>5.1}%  busy {:>12}  recs {:>10}  disk r/w {}/{} ({}/{} B)  nic {}",
            n.id.to_string(),
            n.mean_cpu_util * 100.0,
            n.cpu_busy.to_string(),
            n.records,
            dr,
            dw,
            dbr,
            dbw,
            n.nic_busy
        );
        if n.per_disk.len() > 1 {
            for (i, (d, busy)) in n.per_disk.iter().zip(&n.per_disk_busy).enumerate() {
                let _ = writeln!(
                    out,
                    "         disk{} r/w {}/{} ({}/{} B)  busy {}",
                    i, d.reads, d.writes, d.bytes_read, d.bytes_written, busy
                );
            }
        }
        let pool = n.pool;
        if pool.hits + pool.misses > 0 {
            let _ = writeln!(
                out,
                "         pool hit {:>5.1}%  ({} hits / {} misses, {} evict, {} wb blocks, {} flushed)",
                pool.hit_rate() * 100.0,
                pool.hits,
                pool.misses,
                pool.evictions,
                pool.writeback_blocks,
                pool.flushed_blocks
            );
        }
    }
    let _ = writeln!(out, "-- stages --");
    for (i, (name, w)) in r.stage_work.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>2} {:<24} in {:>10} recs  work: {} cmp, {} mov, {} B",
            i, name, r.stage_records_in[i], w.compares, w.record_moves, w.bytes
        );
    }
    let queued: Vec<_> = r.queue_stats.iter().filter(|q| q.max_peak() > 0).collect();
    if !queued.is_empty() {
        let _ = writeln!(out, "-- queues (records, time-weighted) --");
        for q in queued {
            let means: Vec<String> = q
                .instances
                .iter()
                .map(|i| format!("{:.1}", i.mean_depth))
                .collect();
            let _ = writeln!(
                out,
                "{:<24} peak {:>8}  mean/instance [{}]",
                q.stage,
                q.max_peak(),
                means.join(", ")
            );
        }
    }
    if r.reweights > 0 {
        let _ = writeln!(out, "balancer reweights: {}", r.reweights);
    }
    if !r.mem_violations.is_empty() {
        let _ = writeln!(out, "-- memory violations --");
        for v in &r.mem_violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    out
}

/// Render utilization series as CSV: `t_seconds,node0,node1,...`.
pub fn render_utilization_csv<R: Record>(r: &EmulationReport<R>, bin_secs: f64) -> String {
    let mut out = String::new();
    let _ = write!(out, "t");
    for n in &r.nodes {
        let _ = write!(out, ",{}", n.id);
    }
    let _ = writeln!(out);
    let len = r.nodes.iter().map(|n| n.cpu_series.len()).max().unwrap_or(0);
    for bin in 0..len {
        let _ = write!(out, "{:.3}", bin as f64 * bin_secs);
        for n in &r.nodes {
            let v = n.cpu_series.get(bin).copied().unwrap_or(0.0);
            let _ = write!(out, ",{v:.4}");
        }
        let _ = writeln!(out);
    }
    out
}
