//! Cluster configuration: the parameters of the emulated system.
//!
//! Section 5: "The parameters to the emulator include the number of hosts
//! and ASUs and their CPU speeds relative to the emulation platform",
//! plus disk I/O properties and network latency and bandwidth. Defaults
//! correspond to the paper's testbed era: a 750 MHz P-III-class host,
//! ASUs at `1/c` of host speed with `c ∈ {4, 8}`, ASU storage "bricks"
//! aggregating several ~25 MB/s spindles behind one port (~100 MB/s),
//! and a SAN whose links are fast enough that "the processor saturates
//! before the individual network links".
//!
//! `ClusterConfig` describes the *healthy* cluster; fault-injection
//! knobs (the plan, heartbeat cadence, detection timeout, and delivery
//! retry backoff) live in [`FaultSpec`](crate::fault::FaultSpec), which
//! is passed separately to
//! [`run_job_with_faults`](crate::run_job_with_faults).

use crate::balance::BalanceSpec;
use lmas_core::CostModel;
use lmas_sim::SimDuration;
use lmas_storage::{DiskParams, StorageSpec};

/// Full parameter set of an emulated active storage cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of hosts, H.
    pub hosts: usize,
    /// Number of ASUs, D.
    pub asus: usize,
    /// Host-to-ASU CPU power ratio, c (ASU speed = host speed / c).
    pub cpu_ratio_c: f64,
    /// Cost model converting declared functor work into CPU time.
    pub cost: CostModel,
    /// Per-node disk timing parameters (per spindle when striping).
    pub disk: DiskParams,
    /// Storage substrate: spindles per ASU, striping, buffer pool,
    /// scheduler, and read-ahead. The default is the plain single-disk
    /// model (byte-identical to the pre-substrate emulator).
    pub storage: StorageSpec,
    /// Host↔ASU link bandwidth, bytes per second (per node NIC).
    pub link_bytes_per_sec: f64,
    /// One-way network latency.
    pub link_latency: SimDuration,
    /// Fixed per-frame NIC bytes charged on every transfer (headers,
    /// preamble). Zero by default. Together with `link_latency` it sets
    /// the *minimum cross-node delay* the partitioned engine uses as its
    /// lookahead, so zero-latency links with a positive per-hop charge
    /// still parallelize.
    pub nic_frame_overhead_bytes: u64,
    /// ASU memory available for functor state and buffers.
    pub asu_mem_bytes: usize,
    /// Host memory available for functor state and buffers.
    pub host_mem_bytes: usize,
    /// Bin width for utilization time series (Figure 10 resolution).
    pub util_bin: SimDuration,
    /// Master seed for all randomized routing in this run.
    pub seed: u64,
    /// Fraction of each ASU's CPU consumed by competing tenants
    /// (Section 1: "network storage is a shared resource"). 0 = idle.
    pub background_asu_cpu: f64,
    /// Fraction of each ASU's disk bandwidth consumed by competing
    /// tenants. 0 = idle.
    pub background_asu_disk: f64,
    /// Ring-buffer capacity of the run's event trace; 0 disables tracing
    /// entirely (the dispatch loop then allocates no trace strings —
    /// see [`lmas_sim::Trace::record_with`]).
    pub trace_capacity: usize,
    /// Runtime load balancer: periodic queue-depth sampling that
    /// re-weights replica routing. Disabled by default (zero period),
    /// which keeps runs byte-identical to the balancer-free runtime.
    pub balance: BalanceSpec,
    /// Worker threads for the emulation itself. `1` (the default) runs
    /// the classic sequential engine. Larger values partition the actor
    /// graph across threads under conservative lookahead synchronization
    /// (see `lmas_sim::par`); virtual time stays byte-identical, wall
    /// clock shrinks. Fault plans and the (snapshot-mode) balancer run
    /// partitioned too; the few shapes the partitioned engine cannot
    /// preserve exactly (backlog-sensitive routing, zero cross-node
    /// delay, `fail_fast` fault specs, the live-read balancer compat
    /// mode) fall back to the sequential path, recording the reason in
    /// `EmulationReport::par_fallback`.
    pub threads: usize,
}

impl ClusterConfig {
    /// A 2002-era cluster of `hosts` hosts and `asus` ASUs at ratio `c`.
    pub fn era_2002(hosts: usize, asus: usize, cpu_ratio_c: f64) -> ClusterConfig {
        assert!(hosts > 0, "need at least one host");
        assert!(asus > 0, "need at least one ASU");
        assert!(cpu_ratio_c >= 1.0, "ASUs are not faster than hosts");
        ClusterConfig {
            hosts,
            asus,
            cpu_ratio_c,
            cost: CostModel::p3_750mhz(),
            disk: DiskParams::asu_brick_2002(),
            storage: StorageSpec::default(),
            // Gigabit-class SAN per node; fast enough that CPUs, not
            // links, saturate (the paper's stated network assumption).
            link_bytes_per_sec: 1.0e9,
            link_latency: SimDuration::from_micros(50),
            nic_frame_overhead_bytes: 0,
            asu_mem_bytes: 32 << 20,
            host_mem_bytes: 512 << 20,
            util_bin: SimDuration::from_millis(100),
            seed: 0x1A5,
            background_asu_cpu: 0.0,
            background_asu_disk: 0.0,
            trace_capacity: 0,
            balance: BalanceSpec::disabled(),
            threads: 1,
        }
    }

    /// This cluster emulated on `n` worker threads. Virtual time is
    /// byte-identical to `threads == 1`; only wall-clock time changes.
    pub fn with_threads(mut self, n: usize) -> ClusterConfig {
        assert!(n >= 1, "need at least one worker thread");
        self.threads = n;
        self
    }

    /// This cluster with `bytes` of per-frame NIC overhead charged on
    /// every transfer (and folded into the parallel engine's lookahead).
    pub fn with_nic_frame_overhead(mut self, bytes: u64) -> ClusterConfig {
        self.nic_frame_overhead_bytes = bytes;
        self
    }

    /// This cluster with the runtime load balancer enabled per `spec`
    /// (see [`BalanceSpec::every`] for sensible defaults).
    pub fn with_balancer(mut self, spec: BalanceSpec) -> ClusterConfig {
        self.balance = spec;
        self
    }

    /// This cluster with an event trace retaining the `capacity`
    /// most-recent entries (rendered into the run report).
    pub fn with_trace(mut self, capacity: usize) -> ClusterConfig {
        self.trace_capacity = capacity;
        self
    }

    /// This cluster with the given storage substrate (striping, buffer
    /// pool, scheduler, read-ahead). `cfg.disk` then describes one
    /// spindle, and an ASU's aggregate bandwidth scales with
    /// `storage.disks`.
    pub fn with_storage(mut self, storage: StorageSpec) -> ClusterConfig {
        self.storage = storage;
        self
    }

    /// This cluster with competing tenants consuming `cpu` of each ASU's
    /// processor and `disk` of each ASU's bandwidth (both in [0, 1)).
    /// Hosts are dedicated to the application (Section 2.2) and stay
    /// uncontended.
    pub fn with_background(mut self, cpu: f64, disk: f64) -> ClusterConfig {
        assert!((0.0..1.0).contains(&cpu), "cpu fraction in [0,1)");
        assert!((0.0..1.0).contains(&disk), "disk fraction in [0,1)");
        self.background_asu_cpu = cpu;
        self.background_asu_disk = disk;
        self
    }

    /// The *effective* host/ASU ratio after background interference: an
    /// ASU at 1/c speed with fraction `b` stolen behaves like 1/(c/(1-b)).
    pub fn effective_cpu_ratio(&self) -> f64 {
        self.cpu_ratio_c / (1.0 - self.background_asu_cpu)
    }

    /// Relative CPU speed of a host (1.0 by definition).
    pub fn host_speed(&self) -> f64 {
        1.0
    }

    /// Relative CPU speed of an ASU (`1/c`).
    pub fn asu_speed(&self) -> f64 {
        1.0 / self.cpu_ratio_c
    }

    /// Total nodes (hosts + ASUs).
    pub fn total_nodes(&self) -> usize {
        self.hosts + self.asus
    }

    /// The analytic pipeline model for this cluster (drives adaptation).
    /// Background interference is folded into the effective CPU ratio and
    /// disk rate, so the configurator adapts to shared-ASU conditions.
    pub fn pipeline_model(&self, record_size: usize) -> lmas_core::PipelineModel {
        lmas_core::PipelineModel {
            cost: self.cost,
            hosts: self.hosts,
            asus: self.asus,
            cpu_ratio_c: self.effective_cpu_ratio(),
            // Aggregate ASU bandwidth: per-spindle rate × spindles.
            disk_rate: self.disk.rate_bytes_per_sec
                * (1.0 - self.background_asu_disk)
                * self.storage.disks as f64,
            link_rate: self.link_bytes_per_sec,
            record_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClusterConfig::era_2002(2, 16, 8.0);
        assert_eq!(c.total_nodes(), 18);
        assert_eq!(c.host_speed(), 1.0);
        assert!((c.asu_speed() - 0.125).abs() < 1e-12);
        assert!(c.link_bytes_per_sec > c.disk.rate_bytes_per_sec);
    }

    #[test]
    fn pipeline_model_mirrors_config() {
        let c = ClusterConfig::era_2002(1, 4, 4.0);
        let m = c.pipeline_model(128);
        assert_eq!(m.hosts, 1);
        assert_eq!(m.asus, 4);
        assert_eq!(m.record_size, 128);
        assert!((m.cpu_ratio_c - 4.0).abs() < 1e-12);
    }

    #[test]
    fn background_interference_derates_asus_only() {
        let c = ClusterConfig::era_2002(1, 4, 8.0).with_background(0.5, 0.25);
        assert!((c.effective_cpu_ratio() - 16.0).abs() < 1e-12);
        let m = c.pipeline_model(128);
        assert!((m.cpu_ratio_c - 16.0).abs() < 1e-12);
        assert!((m.disk_rate - 75.0e6).abs() < 1.0);
        // Hosts unaffected.
        assert_eq!(c.host_speed(), 1.0);
    }

    #[test]
    #[should_panic(expected = "cpu fraction")]
    fn full_background_rejected() {
        ClusterConfig::era_2002(1, 1, 8.0).with_background(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one ASU")]
    fn zero_asus_rejected() {
        ClusterConfig::era_2002(1, 0, 8.0);
    }

    #[test]
    #[should_panic(expected = "not faster")]
    fn sub_one_ratio_rejected() {
        ClusterConfig::era_2002(1, 1, 0.5);
    }
}
